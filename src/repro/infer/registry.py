"""Named serving models with deterministic parameters.

Serving traffic addresses models by name (``repro serve --model
pointnet2-cls``); the registry maps each name to a small, fully
deterministic backbone instance.  Parameters derive from a fixed seed,
so every thread, worker process, and offline reference builds
bit-identical weights — the property the served-vs-offline parity
guarantee stands on.

Model instances cache forward-pass state on their layers (for manual
backprop), so one instance must never run concurrent forwards;
:func:`get_model` therefore hands out *thread-local* instances.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

import numpy as np

from .. import obs
from ..networks import PNNClassifier, PNNClassifierMSG, PNNSegmenter
from ..networks.backends import PointOpsBackend, make_backend
from ..networks.layers import Module

__all__ = [
    "MODELS",
    "MODEL_NAMES",
    "ModelSpec",
    "get_model",
    "model_spec",
    "run_model",
    "run_offline",
]


@dataclass(frozen=True)
class ModelSpec:
    """One servable model: name → deterministic construction recipe.

    Attributes:
        name: registry key (the ``--model`` flag value).
        task: ``"cls"`` (one logit row per cloud) or ``"seg"`` (one
            logit row per point).
        arch: backbone family — an :data:`repro.networks.models.ARCHS`
            key, or ``"msg"`` for the multi-scale-grouping classifier.
        num_classes: output classes.
        num_points: nominal input size the stage widths derive from
            (clouds of any size still run; stages clamp).
        seed: parameter-init seed — fixed, so instances are identical
            everywhere.
    """

    name: str
    task: str
    arch: str
    num_classes: int = 8
    num_points: int = 256
    seed: int = 0

    def build(self) -> Module:
        """Construct a fresh instance with the spec's deterministic seed."""
        if self.arch == "msg":
            return PNNClassifierMSG(
                self.num_classes, num_points=self.num_points, seed=self.seed
            )
        if self.task == "seg":
            return PNNSegmenter(
                self.num_classes, num_points=self.num_points,
                arch=self.arch, seed=self.seed,
            )
        return PNNClassifier(
            self.num_classes, num_points=self.num_points,
            arch=self.arch, seed=self.seed,
        )


MODELS: dict[str, ModelSpec] = {
    spec.name: spec
    for spec in (
        ModelSpec("pointnet2-cls", task="cls", arch="pointnet2"),
        ModelSpec("pointnext-cls", task="cls", arch="pointnext"),
        ModelSpec("pointvector-cls", task="cls", arch="pointvector"),
        ModelSpec("pointnet2-msg-cls", task="cls", arch="msg"),
        ModelSpec("pointnet2-seg", task="seg", arch="pointnet2"),
    )
}

MODEL_NAMES: tuple[str, ...] = tuple(MODELS)

_LOCAL = threading.local()


def model_spec(name: str) -> ModelSpec:
    """Registry lookup; raises ``ValueError`` on unknown names."""
    if name not in MODELS:
        raise ValueError(
            f"unknown model {name!r}; expected one of {list(MODELS)}"
        )
    return MODELS[name]


def get_model(name: str) -> Module:
    """The calling thread's instance of ``name`` (built on first use).

    Thread-local because layers cache forward state for backprop; the
    deterministic seed makes every thread's copy bit-identical, so
    which thread serves a request never shows in the output.
    """
    spec = model_spec(name)
    instances = getattr(_LOCAL, "instances", None)
    if instances is None:
        instances = _LOCAL.instances = {}
    model = instances.get(name)
    if model is None:
        model = instances[name] = spec.build()
    return model


def run_model(
    model: Module,
    coords: np.ndarray,
    features: np.ndarray | None,
    backend: PointOpsBackend,
    agg: str = "auto",
) -> np.ndarray:
    """One per-cloud forward pass under a ``model.forward`` span.

    ``features`` is accepted for signature parity with the engine's
    cloud tuples but ignored: the serving backbones derive features from
    geometry (stem MLP or raw coordinates), matching how they train.
    """
    del features
    with (
        obs.span("model.forward", points=len(coords))
        if obs.enabled()
        else obs.NULL_SPAN
    ):
        return model.forward(coords, backend, agg=agg)


def run_offline(
    name: str,
    cloud: object,
    *,
    partitioner: str = "fractal",
    block_size: int = 256,
    kernel: str = "auto",
    agg: str = "auto",
    backend: PointOpsBackend | None = None,
) -> np.ndarray:
    """The offline reference: one cloud, one model, no engine.

    Defaults mirror :class:`repro.runtime.BatchExecutor` construction
    defaults, so ``run_offline(name, cloud)`` is the parity baseline
    for a default-configured serving engine.  Coordinates are consumed
    exactly like the engine consumes them (float64).
    """
    coords = cloud.coords if hasattr(cloud, "coords") else cloud
    coords = np.asarray(coords, dtype=np.float64)
    if backend is None:
        backend = make_backend(
            partitioner, max_points_per_block=block_size, kernel=kernel
        )
    return run_model(get_model(name), coords, None, backend, agg=agg)
