"""Dispatch-boundary tests: the stacked→ragged→loop crossover is pinned.

``repro.core.dispatch`` resolves every block op to one of three
bit-identical kernels.  These tests pin the boundary behaviour:

- parity on synthetic partitions whose per-block work products sit *just
  below*, *at*, and *just above* ``_STACK_SMALL`` (the stacked fast
  path's cutoff) — the regime the ragged kernels were built for;
- the cost model's regime choices and the ``REPRO_KERNEL`` override;
- a hypothesis property: kernel choice never changes indices, for any
  cloud/partitioner/blocksize drawn;
- cache hygiene: ``clear_caches`` flushes every live partition cache and
  the ragged layouts riding on them.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import bppo, dispatch, ragged
from repro.core.blocks import Block, BlockStructure, PartitionCost
from repro.core.bppo import _STACK_SMALL
from repro.core.ragged import RAGGED_BLOCK_MAX
from repro.partition import get_partitioner
from repro.runtime import PartitionCache, clear_caches
from repro.runtime.cache import clear_all_partition_caches


def synthetic_structure(block_size: int, num_blocks: int, seed: int = 0):
    """Partition of contiguous equal-size blocks (search space = block)."""
    n = block_size * num_blocks
    coords = np.random.default_rng(seed).normal(size=(n, 3))
    blocks = [
        Block(np.arange(b * block_size, (b + 1) * block_size))
        for b in range(num_blocks)
    ]
    structure = BlockStructure(
        num_points=n,
        blocks=blocks,
        search_spaces=[b.indices.copy() for b in blocks],
        cost=PartitionCost(),
        strategy="synthetic",
    )
    structure.validate()
    return structure, coords


class TestStackSmallStraddle:
    """Parity with per-block products just below / at / just above the
    stacked cutoff — the crossover the dispatcher moves across."""

    # block_size=16 and 7/8/9 centres per block give products 112/128/144:
    # strictly below, exactly at, and strictly above _STACK_SMALL=128.
    CENTERS_PER_BLOCK = (7, 8, 9)

    def _centers(self, structure, per_block):
        return np.concatenate(
            [block.indices[:per_block] for block in structure.blocks]
        )

    @pytest.mark.parametrize("per_block", CENTERS_PER_BLOCK)
    def test_ball_query_crossover(self, per_block):
        structure, coords = synthetic_structure(16, 6, seed=per_block)
        centers = self._centers(structure, per_block)
        product = per_block * 16
        assert (product < _STACK_SMALL) or (product == _STACK_SMALL) or (
            product > _STACK_SMALL
        )
        serial, _ = bppo.block_ball_query(structure, coords, centers, 0.6, 5)
        stacked, _ = bppo.block_ball_query_batched(structure, coords, centers, 0.6, 5)
        fused, _ = ragged.ragged_ball_query(structure, coords, centers, 0.6, 5)
        assert np.array_equal(serial, stacked)
        assert np.array_equal(serial, fused)

    @pytest.mark.parametrize("per_block", CENTERS_PER_BLOCK)
    def test_knn_crossover(self, per_block):
        structure, coords = synthetic_structure(16, 6, seed=10 + per_block)
        centers = self._centers(structure, per_block)
        candidates = np.arange(0, structure.num_points, 2, dtype=np.int64)
        serial, t_serial = bppo.block_knn(structure, coords, centers, candidates, 3)
        stacked, _ = bppo.block_knn_batched(structure, coords, centers, candidates, 3)
        fused, t_fused = ragged.ragged_knn(structure, coords, centers, candidates, 3)
        assert np.array_equal(serial, stacked)
        assert np.array_equal(serial, fused)
        assert [w.widened for w in t_serial.blocks] == [
            w.widened for w in t_fused.blocks
        ]

    def test_duplicates_at_the_boundary(self):
        """Exact duplicates (tie-breaking stress) exactly at the cutoff."""
        structure, coords = synthetic_structure(16, 4, seed=3)
        coords[8:16] = coords[0:8]  # duplicate within block 0
        centers = self._centers(structure, 8)  # product == _STACK_SMALL
        serial, _ = bppo.block_ball_query(structure, coords, centers, 0.5, 4)
        fused, _ = ragged.ragged_ball_query(structure, coords, centers, 0.5, 4)
        assert np.array_equal(serial, fused)
        candidates = np.arange(0, structure.num_points, 2, dtype=np.int64)
        s_knn, _ = bppo.block_knn(structure, coords, centers, candidates, 3)
        r_knn, _ = ragged.ragged_knn(structure, coords, centers, candidates, 3)
        assert np.array_equal(s_knn, r_knn)


class TestCostModel:
    """The auto chooser picks the regime holding the work mass."""

    def test_small_blocks_go_stacked(self):
        structure, _ = synthetic_structure(8, 10)
        # ~4 centres per 8-point block → products ≈ 32 « _STACK_SMALL.
        assert dispatch.choose_kernel("ball_query", structure, 40) == "stacked"

    def test_mid_blocks_go_ragged(self):
        structure, _ = synthetic_structure(32, 10)
        # ~16 centres per 32-point block → products ≈ 512: mid regime.
        assert dispatch.choose_kernel("ball_query", structure, 160) == "ragged"

    def test_big_blocks_go_loop(self):
        structure, _ = synthetic_structure(256, 4)
        # ~128 centres per 256-point block → products ≈ 32768 > ceiling.
        assert RAGGED_BLOCK_MAX < 128 * 256
        assert dispatch.choose_kernel("ball_query", structure, 512) == "loop"

    def test_gather_goes_through_cost_model(self):
        """Regression: gather was hardcoded to 'loop' with a stale
        "single implementation" comment despite the registry holding
        stacked and ragged gather entries; it must cost-dispatch like
        every other op."""
        small, _ = synthetic_structure(8, 10)
        assert dispatch.choose_kernel("gather", small, 40) == "stacked"
        mid, _ = synthetic_structure(32, 10)
        assert dispatch.choose_kernel("gather", mid, 160) == "ragged"
        big, _ = synthetic_structure(256, 4)
        assert dispatch.choose_kernel("gather", big, 512) == "loop"

    def test_measured_center_counts_beat_the_estimate(self):
        """Skewed measured counts flip the choice the proportional
        estimate would make: 6 blocks of 16 points, 48 centres.  Spread
        proportionally (8 per block) every product is 128 → stacked; all
        measured onto one block the product is 48·16 = 768 → loop."""
        structure, _ = synthetic_structure(16, 6)
        assert dispatch.choose_kernel("ball_query", structure, 48) == "stacked"
        measured = np.array([48, 0, 0, 0, 0, 0], dtype=np.int64)
        assert (
            dispatch.choose_kernel("ball_query", structure, 48, measured)
            == "loop"
        )
        with pytest.raises(ValueError, match="center_counts"):
            dispatch.choose_kernel("ball_query", structure, 48, measured[:3])

    def test_explicit_kernel_beats_env(self, monkeypatch):
        """Regression: REPRO_KERNEL used to silently override an explicit
        kernel= argument; precedence is explicit arg > env > auto."""
        structure, coords = synthetic_structure(8, 4, seed=5)
        monkeypatch.setenv(dispatch.KERNEL_ENV, "ragged")
        assert dispatch.resolve_kernel("fps", structure, 10, "loop") == "loop"
        assert dispatch.resolve_kernel("fps", structure, 10, "auto") == "ragged"
        assert dispatch.resolve_kernel("fps", structure, 10) == "ragged"
        monkeypatch.setenv(dispatch.KERNEL_ENV, "bogus")
        with pytest.raises(ValueError, match="kernel"):
            dispatch.resolve_kernel("fps", structure, 10)
        # A bogus env var is irrelevant when the caller pinned a kernel.
        assert dispatch.resolve_kernel("fps", structure, 10, "stacked") == "stacked"

    def test_run_op_rejects_unknown(self):
        structure, coords = synthetic_structure(8, 2)
        with pytest.raises(ValueError, match="unknown op"):
            dispatch.run_op("sort", structure, coords, 4)
        with pytest.raises(ValueError, match="kernel"):
            dispatch.run_op("fps", structure, coords, 4, kernel="vectorised")


class TestDispatchNeverChangesIndices:
    """Property: for any cloud, partitioner, and block size, every kernel
    (and the auto choice) returns the serial reference's exact indices."""

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        n=st.integers(2, 220),
        block_size=st.sampled_from([4, 8, 16, 48]),
        partitioner=st.sampled_from(["kdtree", "uniform", "octree", "fractal"]),
        duplicates=st.booleans(),
    )
    def test_all_kernels_agree(self, seed, n, block_size, partitioner, duplicates):
        rng = np.random.default_rng(seed)
        coords = rng.normal(size=(n, 3))
        if duplicates and n >= 4:
            coords[n // 2:] = coords[: n - n // 2]
        structure = get_partitioner(
            partitioner, max_points_per_block=block_size
        )(coords)
        num = max(1, n // 3)
        ref_fps, _ = bppo.block_fps(structure, coords, num)
        ref_ball, _ = bppo.block_ball_query(structure, coords, ref_fps, 0.5, 6)
        candidates = ref_fps
        k = min(3, len(candidates))
        centers = np.arange(n, dtype=np.int64)
        ref_knn, _ = bppo.block_knn(structure, coords, centers, candidates, k)
        for kernel in ("stacked", "ragged", "auto"):
            got_fps, _ = dispatch.run_op(
                "fps", structure, coords, num, kernel=kernel, num_centers=num
            )
            assert np.array_equal(ref_fps, got_fps)
            got_ball, _ = dispatch.run_op(
                "ball_query", structure, coords, ref_fps, 0.5, 6,
                kernel=kernel, num_centers=len(ref_fps),
            )
            assert np.array_equal(ref_ball, got_ball)
            got_knn, _ = dispatch.run_op(
                "knn", structure, coords, centers, candidates, k,
                kernel=kernel, num_centers=n,
            )
            assert np.array_equal(ref_knn, got_knn)


class TestCacheClearing:
    """clear_caches flushes partition caches and their ragged layouts."""

    def test_clear_all_partition_caches(self):
        cache = PartitionCache(get_partitioner("kdtree", max_points_per_block=16))
        coords = np.random.default_rng(0).normal(size=(100, 3))
        cache.get(coords)
        assert len(cache) == 1
        cleared = clear_all_partition_caches()
        assert cleared >= 1
        assert len(cache) == 0 and cache.hits == 0 and cache.misses == 0

    def test_compiler_clear_caches_reaches_partition_caches(self):
        cache = PartitionCache(get_partitioner("kdtree", max_points_per_block=16))
        coords = np.random.default_rng(1).normal(size=(80, 3))
        cache.get(coords)
        clear_caches()
        assert len(cache) == 0

    def test_ragged_layout_rides_the_cache(self):
        cache = PartitionCache(get_partitioner("kdtree", max_points_per_block=16))
        coords = np.random.default_rng(2).normal(size=(60, 3))
        s1, rb1, hit1 = cache.get_ragged(coords)
        s2, rb2, hit2 = cache.get_ragged(coords.copy())
        assert (hit1, hit2) == (False, True)
        assert rb1 is rb2  # memoized alongside the cached structure

    def test_ragged_memo_guards_full_precision(self):
        """The partition cache keys at float32 — a float64-distinct but
        float32-equal cloud replays the structure yet must rebuild the
        ragged layout (it carries the coordinates themselves)."""
        cache = PartitionCache(get_partitioner("kdtree", max_points_per_block=16))
        a = np.random.default_rng(3).normal(size=(50, 3))
        b = a.copy()
        b[0, 0] = np.nextafter(a[0, 0], np.inf)  # one float64 ulp apart
        assert np.float32(a[0, 0]) == np.float32(b[0, 0])
        s1, rb1, _ = cache.get_ragged(a)
        s2, rb2, hit = cache.get_ragged(b)
        assert hit  # same structure replayed ...
        assert s1 is s2
        assert rb1 is not rb2  # ... but the layout was rebuilt
        assert np.array_equal(rb2.coords, b[rb2.perm])
