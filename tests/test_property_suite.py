"""Cross-module property-based tests (hypothesis).

End-to-end invariants that must hold for *any* input: fractal → BPPO →
metric chains, partitioner interchangeability, and simulator monotonicity
— the whole-system analogue of the per-module property tests.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core import FractalConfig, fractal_partition
from repro.core.bppo import allocate_samples, block_ball_query, block_fps
from repro.core.layout import BlockLayout
from repro.geometry import farthest_point_sample, pairwise_sq_dists
from repro.runtime import BatchExecutor, PipelineSpec


def _cloud(seed: int, n: int, clustered: bool) -> np.ndarray:
    rng = np.random.default_rng(seed)
    if clustered:
        centers = rng.normal(scale=3.0, size=(4, 3))
        assignments = rng.integers(0, 4, size=n)
        return centers[assignments] + rng.normal(scale=0.3, size=(n, 3))
    return rng.normal(size=(n, 3))


class TestFractalChainProperties:
    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 10_000), st.integers(16, 600),
           st.integers(4, 64), st.booleans())
    def test_fps_chain_produces_valid_unique_samples(self, seed, n, th, clustered):
        coords = _cloud(seed, n, clustered)
        tree = fractal_partition(coords, FractalConfig(threshold=th))
        structure = tree.block_structure()
        s = max(1, n // 3)
        sampled, trace = block_fps(structure, coords, s)
        assert len(sampled) == s
        assert len(set(sampled.tolist())) == s
        assert sampled.min() >= 0 and sampled.max() < n
        assert trace.total_outputs == s

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 10_000), st.integers(32, 400), st.integers(8, 64))
    def test_ball_query_chain_returns_indices_in_search_space(self, seed, n, th):
        coords = _cloud(seed, n, clustered=False)
        tree = fractal_partition(coords, FractalConfig(threshold=th))
        structure = tree.block_structure()
        centers, _ = block_fps(structure, coords, max(1, n // 4))
        neighbors, _ = block_ball_query(structure, coords, centers, 0.5, 8)
        owner = structure.block_of_point()
        spaces = [set(s.tolist()) for s in structure.search_spaces]
        for row, c in enumerate(centers):
            assert set(neighbors[row].tolist()) <= spaces[owner[c]]

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 10_000), st.integers(16, 500), st.integers(4, 128))
    def test_layout_roundtrip_any_cloud(self, seed, n, th):
        coords = _cloud(seed, n, clustered=True)
        tree = fractal_partition(coords, FractalConfig(threshold=th))
        layout = BlockLayout.from_tree(tree)
        stored = layout.reorder(coords)
        restored = stored[layout.inverse]
        assert np.allclose(restored, coords)

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 10_000), st.integers(32, 300))
    def test_block_sampling_never_catastrophically_worse(self, seed, n):
        """Mean coverage of block-FPS stays within a constant factor of
        exact FPS for arbitrary clouds (the accuracy-preservation core)."""
        coords = _cloud(seed, n, clustered=True)
        tree = fractal_partition(coords, FractalConfig(threshold=64))
        s = max(2, n // 4)
        sampled, _ = block_fps(tree.block_structure(), coords, s)
        exact = farthest_point_sample(coords, s)

        def mean_cov(sel):
            return np.sqrt(pairwise_sq_dists(coords, coords[sel]).min(axis=1)).mean()

        exact_cov = mean_cov(exact)
        if exact_cov < 1e-12:
            return  # degenerate: everything coincident
        assert mean_cov(sampled) / exact_cov < 4.0


class TestAllocationProperties:
    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.integers(1, 300), min_size=2, max_size=30), st.data())
    def test_one_per_block_when_budget_allows(self, sizes, data):
        sizes = np.array(sizes)
        s = data.draw(st.integers(len(sizes), int(sizes.sum())))
        quotas = allocate_samples(sizes, s)
        assert (quotas >= 1).all()

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.integers(1, 300), min_size=1, max_size=30), st.data())
    def test_rate_fairness(self, sizes, data):
        """No block's sampling rate deviates wildly from the global rate
        (the 'fixed sampling rate' rule, up to rounding + min-one)."""
        sizes = np.array(sizes)
        total = int(sizes.sum())
        s = data.draw(st.integers(min(len(sizes), total), total))
        quotas = allocate_samples(sizes, s)
        global_rate = s / total
        rates = quotas / sizes
        # Every block's rate is within [rate/4 - eps, 4*rate + 1/size].
        assert (rates <= 4 * global_rate + 1.0 / sizes + 1e-9).all()


class TestExecutorProperties:
    """The batched engine is a pure function of (cloud, pipeline): its
    per-cloud results must not depend on batch order, worker count, or
    cache state."""

    @staticmethod
    def _run(clouds, **kwargs):
        engine = BatchExecutor("kdtree", block_size=32, **kwargs)
        pipeline = PipelineSpec(radius=0.5, group_size=4)
        return engine, engine.run(clouds, pipeline)

    @staticmethod
    def _assert_same(a, b):
        assert np.array_equal(a.sampled, b.sampled)
        assert np.array_equal(a.neighbors, b.neighbors)
        assert np.array_equal(a.interpolated, b.interpolated)

    @settings(max_examples=8, deadline=None)
    @given(st.integers(0, 10_000), st.integers(2, 5), st.booleans())
    def test_batch_order_and_worker_count_invariance(self, seed, m, clustered):
        clouds = [_cloud(seed + i, 20 + (37 * i) % 180, clustered)
                  for i in range(m)]
        _, one = self._run(clouds, max_workers=1)
        _, many = self._run(clouds, max_workers=4)
        _, reversed_ = self._run(clouds[::-1], max_workers=1)
        for i in range(m):
            self._assert_same(one.results[i], many.results[i])
            self._assert_same(one.results[i], reversed_.results[m - 1 - i])

    @settings(max_examples=8, deadline=None)
    @given(st.integers(0, 10_000), st.integers(1, 4))
    def test_cold_vs_warm_cache_invariance(self, seed, m):
        clouds = [_cloud(seed + i, 25 + 31 * i, clustered=False) for i in range(m)]
        engine, cold = self._run(clouds, max_workers=2)
        warm = engine.run(clouds, PipelineSpec(radius=0.5, group_size=4))
        assert cold.stats.cache_hits == 0
        assert warm.stats.cache_hits + warm.stats.reused == m  # fully warm
        for i in range(m):
            self._assert_same(cold.results[i], warm.results[i])


class TestSimulatorProperties:
    @settings(max_examples=8, deadline=None)
    @given(st.sampled_from([1024, 2048, 4096, 8192]),
           st.sampled_from([2048, 4096, 8192, 16384]))
    def test_latency_monotone_in_scale(self, n1, n2):
        from repro.hw import AcceleratorSim, FRACTALCLOUD
        from repro.networks import get_workload

        if n1 == n2:
            return
        lo, hi = min(n1, n2), max(n1, n2)
        sim = AcceleratorSim(FRACTALCLOUD)
        spec = get_workload("PN++(s)")
        assert sim.run(spec, lo).latency_s <= sim.run(spec, hi).latency_s
