"""16x16 systolic PE array model for MLP / feature computation.

All four accelerators in Table II use a 16x16 array at 1 GHz (512 GOPS
peak, counting one MAC as two ops).  The model tiles a pointwise MLP
(GEMM of ``n_points x c_in`` by ``c_in x c_out`` per layer) onto the
array with output-stationary tiling, charging pipeline fill per tile and
weight/activation traffic.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from . import energy as E

__all__ = ["PEArrayModel", "MLPCost"]


@dataclass
class MLPCost:
    """Cycles + traffic of one MLP execution."""

    cycles: float
    macs: float
    sram_bytes: float
    weight_bytes: float

    @property
    def compute_energy_j(self) -> float:
        return self.macs * E.PJ_PER_MAC_FP16 * 1e-12


@dataclass(frozen=True)
class PEArrayModel:
    """Systolic array of ``rows x cols`` MACs.

    Attributes:
        rows / cols: array dimensions (16 x 16 per Table II).
        utilization: sustained fraction of peak under realistic tiling.
    """

    rows: int = 16
    cols: int = 16
    utilization: float = 0.85

    @property
    def macs_per_cycle(self) -> float:
        return self.rows * self.cols * self.utilization

    def mlp_cost(self, n_points: int, widths: tuple[int, ...], in_channels: int) -> MLPCost:
        """Cost of a shared MLP over ``n_points`` rows.

        Args:
            n_points: rows fed through the MLP (points or grouped points).
            widths: layer output widths.
            in_channels: input width of the first layer.
        """
        if n_points <= 0:
            return MLPCost(0.0, 0.0, 0.0, 0.0)
        cycles = 0.0
        macs = 0.0
        sram_bytes = 0.0
        weight_bytes = 0.0
        c_in = in_channels
        for c_out in widths:
            layer_macs = float(n_points) * c_in * c_out
            macs += layer_macs
            # Weight-stationary column strips: row tiles stream back to
            # back through a loaded strip, so fill/drain is paid once per
            # strip rather than once per tile.
            strips = math.ceil(c_out / self.cols)
            cycles += layer_macs / self.macs_per_cycle + strips * (self.rows + self.cols)
            sram_bytes += float(n_points) * (c_in + c_out) * E.BYTES_PER_SCALAR
            weight_bytes += float(c_in) * c_out * E.BYTES_PER_SCALAR
            c_in = c_out
        return MLPCost(cycles=cycles, macs=macs, sram_bytes=sram_bytes, weight_bytes=weight_bytes)
