"""FractalCloud's core contribution: Fractal partitioning + BPPO.

- :func:`fractal_partition` — shape-aware threshold-controlled
  partitioning (paper Alg. 1).
- :class:`FractalTree` / :class:`BlockLayout` — binary tree and its
  DFT-contiguous memory layout.
- :mod:`repro.core.bppo` — block-parallel sampling, neighbour search,
  interpolation, and gathering (per-block loop + padded stacked paths).
- :mod:`repro.core.ragged` — the CSR block layout and fused segment-wise
  kernels for the mid-size block regime (and whole-cloud fusion).
- :mod:`repro.core.dispatch` — the kernel registry and cost-model
  dispatcher choosing ``loop | stacked | ragged`` per call.
- :mod:`repro.core.coldpath` — the fused build-and-sample cold-path
  kernel (FPS interleaved with partition construction).
- :mod:`repro.core.delta` — frame deltas, rebuild certificates, and the
  incremental-update glue of the streaming-frames protocol.
"""

from .blocks import Block, BlockStructure, PartitionCost
from .bppo import (
    BlockWork,
    OpTrace,
    allocate_samples,
    block_ball_query,
    block_ball_query_batched,
    block_fps,
    block_fps_batched,
    block_gather,
    block_gather_batched,
    block_interpolate,
    block_interpolate_batched,
    block_knn,
    block_knn_batched,
)
from .config import (
    DEFAULT_LARGE_SCALE_THRESHOLD,
    DEFAULT_SMALL_SCALE_THRESHOLD,
    FractalConfig,
)
from .coldpath import (
    FusedBuildUnsupported,
    fused_build_and_sample,
    supports_fused_build,
)
from .delta import (
    FrameDelta,
    PatchPolicy,
    attach_certificate,
    certificate_of,
    updater_from_certificate,
)
from .dispatch import (
    BUILD_KERNEL_NAMES,
    KERNEL_NAMES,
    KERNELS,
    choose_build_kernel,
    choose_kernel,
    resolve_build_kernel,
    resolve_kernel,
    run_build,
    run_op,
)
from .fractal import fractal_partition
from .ragged import (
    RAGGED_BLOCK_MAX,
    RaggedBlocks,
    ragged_ball_query,
    ragged_fps,
    ragged_gather,
    ragged_interpolate,
    ragged_knn,
    ragged_of,
)
from .graph import block_knn_graph, edge_recall, exact_knn_graph
from .layout import BlockLayout
from .serialize import load_block_structure, save_block_structure, save_tree
from .tree import FractalNode, FractalTree

__all__ = [
    "BUILD_KERNEL_NAMES",
    "Block",
    "BlockLayout",
    "BlockStructure",
    "BlockWork",
    "DEFAULT_LARGE_SCALE_THRESHOLD",
    "DEFAULT_SMALL_SCALE_THRESHOLD",
    "FractalConfig",
    "FractalNode",
    "FractalTree",
    "FrameDelta",
    "FusedBuildUnsupported",
    "KERNELS",
    "KERNEL_NAMES",
    "OpTrace",
    "PartitionCost",
    "PatchPolicy",
    "RAGGED_BLOCK_MAX",
    "RaggedBlocks",
    "allocate_samples",
    "attach_certificate",
    "certificate_of",
    "block_ball_query",
    "block_ball_query_batched",
    "block_fps",
    "block_fps_batched",
    "block_gather",
    "block_gather_batched",
    "block_interpolate",
    "block_interpolate_batched",
    "block_knn",
    "block_knn_batched",
    "block_knn_graph",
    "choose_build_kernel",
    "choose_kernel",
    "edge_recall",
    "exact_knn_graph",
    "fractal_partition",
    "fused_build_and_sample",
    "load_block_structure",
    "ragged_ball_query",
    "ragged_fps",
    "ragged_gather",
    "ragged_interpolate",
    "ragged_knn",
    "ragged_of",
    "resolve_build_kernel",
    "resolve_kernel",
    "run_build",
    "run_op",
    "save_block_structure",
    "save_tree",
    "supports_fused_build",
    "updater_from_certificate",
]
