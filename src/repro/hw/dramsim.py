"""Row-buffer-level DRAM state machine (DRAMsim3-style detail).

The aggregate :class:`~repro.hw.dram.DRAMModel` prices traffic with two
fixed efficiencies (streamed vs random).  This module justifies those
numbers from first principles: a small DDR4 state machine with banks,
open rows, and tCAS/tRCD/tRP timing replays an address trace and reports
the achieved bandwidth and row-hit rate.  ``tests/test_dramsim.py``
checks that the aggregate efficiencies fall inside the bands this model
produces for streamed and random traces — the calibration story for the
simulator's DRAM constants.

Timing parameters follow DDR4-2133 (CL-RCD-RP 15-15-15 at 1066 MHz I/O,
64-byte bursts over a 64-bit channel).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["DDR4Timing", "DRAMSimLite", "TraceResult"]


@dataclass(frozen=True)
class DDR4Timing:
    """DDR4-2133 timing in memory-clock cycles (1066 MHz)."""

    tCAS: int = 15  # column access (row already open)
    tRCD: int = 15  # row activate before column access
    tRP: int = 15   # precharge before a new activate
    tFAW: int = 26  # four-activate window (activate-rate limit)
    burst_cycles: int = 4   # BL8 on a DDR interface
    clock_hz: float = 1_066e6
    bytes_per_burst: int = 64

    @property
    def peak_gbps(self) -> float:
        return self.bytes_per_burst / self.burst_cycles * self.clock_hz / 1e9


@dataclass
class TraceResult:
    """Outcome of replaying one address trace."""

    cycles: float
    bytes_moved: float
    row_hits: int
    row_misses: int
    timing: DDR4Timing

    @property
    def hit_rate(self) -> float:
        total = self.row_hits + self.row_misses
        return self.row_hits / total if total else 0.0

    @property
    def achieved_gbps(self) -> float:
        seconds = self.cycles / self.timing.clock_hz
        return self.bytes_moved / seconds / 1e9 if seconds else 0.0

    @property
    def efficiency(self) -> float:
        """Fraction of peak bandwidth achieved."""
        return self.achieved_gbps / self.timing.peak_gbps


@dataclass
class DRAMSimLite:
    """A bank-state DDR4 channel replaying 64-byte-burst address traces.

    Attributes:
        timing: DDR4 timing bundle.
        num_banks: banks per channel (16 for DDR4 x64 with bank groups
            flattened).
        row_bytes: bytes per row (2 KB typical).
    """

    timing: DDR4Timing = field(default_factory=DDR4Timing)
    num_banks: int = 16
    row_bytes: int = 2048

    def replay(self, addresses: np.ndarray) -> TraceResult:
        """Replay a sequence of byte addresses (one burst each).

        Consecutive bursts to the same open row pipeline at the burst
        rate; a row change pays precharge + activate + CAS.  Banks hold
        independent open rows.
        """
        addresses = np.asarray(addresses, dtype=np.int64)
        t = self.timing
        open_rows = np.full(self.num_banks, -1, dtype=np.int64)
        cycles = 0.0
        hits = misses = 0
        rows = addresses // self.row_bytes
        banks = rows % self.num_banks
        for row, bank in zip(rows, banks):
            if open_rows[bank] == row:
                hits += 1
                cycles += t.burst_cycles
            else:
                misses += 1
                penalty = t.tRP if open_rows[bank] != -1 else 0
                cycles += penalty + t.tRCD + t.tCAS + t.burst_cycles
                open_rows[bank] = row
        return TraceResult(
            cycles=cycles,
            bytes_moved=float(len(addresses)) * t.bytes_per_burst,
            row_hits=hits,
            row_misses=misses,
            timing=t,
        )

    def replay_bank_parallel(self, addresses: np.ndarray) -> TraceResult:
        """Replay with bank-level parallelism (out-of-order-ish controller).

        Activates to *different* banks overlap; the data bus serialises
        bursts; the four-activate window (tFAW) caps the activate rate.
        This is the upper bound a good controller reaches on random
        traffic — the serialised :meth:`replay` is the lower bound.
        """
        addresses = np.asarray(addresses, dtype=np.int64)
        t = self.timing
        open_rows = np.full(self.num_banks, -1, dtype=np.int64)
        bank_free = np.zeros(self.num_banks)
        recent_activates: list[float] = []  # times of the last 4 activates
        bus_free = 0.0
        hits = misses = 0
        rows = addresses // self.row_bytes
        banks = rows % self.num_banks
        for row, bank in zip(rows, banks):
            if open_rows[bank] == row:
                hits += 1
                data_start = max(bus_free, bank_free[bank])
            else:
                misses += 1
                activate_at = max(bank_free[bank], bus_free - t.tRCD)
                if len(recent_activates) == 4:
                    activate_at = max(activate_at, recent_activates[0] + t.tFAW)
                    recent_activates.pop(0)
                penalty = t.tRP if open_rows[bank] != -1 else 0
                activate_at += penalty
                recent_activates.append(activate_at)
                open_rows[bank] = row
                bank_free[bank] = activate_at + t.tRCD
                data_start = max(bus_free, bank_free[bank])
            bus_free = data_start + t.burst_cycles
            bank_free[bank] = max(bank_free[bank], data_start)
        return TraceResult(
            cycles=bus_free,
            bytes_moved=float(len(addresses)) * t.bytes_per_burst,
            row_hits=hits,
            row_misses=misses,
            timing=t,
        )

    def streamed_trace(self, nbytes: int) -> np.ndarray:
        """Sequential burst addresses covering ``nbytes``."""
        bursts = max(nbytes // self.timing.bytes_per_burst, 1)
        return np.arange(bursts, dtype=np.int64) * self.timing.bytes_per_burst

    def random_trace(self, nbytes: int, span_bytes: int, seed: int = 0) -> np.ndarray:
        """Uniformly random burst addresses within a ``span_bytes`` region."""
        bursts = max(nbytes // self.timing.bytes_per_burst, 1)
        rng = np.random.default_rng(seed)
        slots = max(span_bytes // self.timing.bytes_per_burst, 1)
        return rng.integers(0, slots, size=bursts) * self.timing.bytes_per_burst

    def measure_efficiencies(
        self, nbytes: int = 1 << 20, span_bytes: int = 1 << 28, seed: int = 0
    ) -> tuple[float, float]:
        """(streamed, random) bandwidth efficiencies for typical traces."""
        streamed = self.replay(self.streamed_trace(nbytes)).efficiency
        random = self.replay(self.random_trace(nbytes, span_bytes, seed)).efficiency
        return streamed, random
