"""Axis-aligned bounding boxes for point clouds.

The Fractal partitioner (``repro.core.fractal``) splits blocks at the
midpoint of the current dimension's extrema, so bounding-box bookkeeping is
on the critical path of the whole system.  This module keeps it small and
explicit: an :class:`AABB` is an immutable pair of ``(3,)`` float arrays.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["AABB", "aabb_of_points"]


@dataclass(frozen=True)
class AABB:
    """An axis-aligned bounding box in 3-D.

    Attributes:
        lo: componentwise minimum corner, shape ``(3,)``.
        hi: componentwise maximum corner, shape ``(3,)``.
    """

    lo: np.ndarray
    hi: np.ndarray

    def __post_init__(self) -> None:
        lo = np.asarray(self.lo, dtype=np.float64)
        hi = np.asarray(self.hi, dtype=np.float64)
        if lo.shape != (3,) or hi.shape != (3,):
            raise ValueError(f"AABB corners must have shape (3,), got {lo.shape} / {hi.shape}")
        if np.any(lo > hi):
            raise ValueError(f"AABB lo must be <= hi componentwise, got lo={lo}, hi={hi}")
        object.__setattr__(self, "lo", lo)
        object.__setattr__(self, "hi", hi)

    @property
    def extent(self) -> np.ndarray:
        """Edge lengths along each axis, shape ``(3,)``."""
        return self.hi - self.lo

    @property
    def center(self) -> np.ndarray:
        """Geometric centre, shape ``(3,)``."""
        return (self.lo + self.hi) / 2.0

    @property
    def volume(self) -> float:
        """Product of extents (zero for degenerate boxes)."""
        return float(np.prod(self.extent))

    @property
    def longest_axis(self) -> int:
        """Index of the axis with the largest extent (ties break low)."""
        return int(np.argmax(self.extent))

    def midpoint(self, dim: int) -> float:
        """Min-max average along ``dim`` — the Fractal split coordinate.

        This mirrors the hardware midpoint-computation unit, which
        implements ``(max + min) / 2`` as an add and a right shift.
        """
        return float((self.lo[dim] + self.hi[dim]) / 2.0)

    def contains(self, points: np.ndarray, *, atol: float = 1e-9) -> np.ndarray:
        """Boolean mask of which ``(n, 3)`` points fall inside the box."""
        points = np.asarray(points, dtype=np.float64)
        return np.all((points >= self.lo - atol) & (points <= self.hi + atol), axis=1)

    def split(self, dim: int, value: float) -> tuple["AABB", "AABB"]:
        """Split into (low-side, high-side) halves at ``value`` on ``dim``."""
        if not (self.lo[dim] <= value <= self.hi[dim]):
            raise ValueError(
                f"split value {value} outside box range [{self.lo[dim]}, {self.hi[dim]}] on dim {dim}"
            )
        lo_hi = self.hi.copy()
        lo_hi[dim] = value
        hi_lo = self.lo.copy()
        hi_lo[dim] = value
        return AABB(self.lo, lo_hi), AABB(hi_lo, self.hi)

    def union(self, other: "AABB") -> "AABB":
        """Smallest box containing both boxes."""
        return AABB(np.minimum(self.lo, other.lo), np.maximum(self.hi, other.hi))

    def intersects(self, other: "AABB") -> bool:
        """True when the two boxes overlap (touching counts)."""
        return bool(np.all(self.lo <= other.hi) and np.all(other.lo <= self.hi))


def aabb_of_points(points: np.ndarray) -> AABB:
    """Tight bounding box of an ``(n, 3)`` array (n >= 1)."""
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2 or points.shape[1] != 3:
        raise ValueError(f"expected (n, 3) points, got shape {points.shape}")
    if len(points) == 0:
        raise ValueError("cannot bound an empty point set")
    return AABB(points.min(axis=0), points.max(axis=0))
