"""Fig. 4 — GPU latency and the tensor→point-operation bottleneck shift.

Regenerates the motivation figure: GPU inference latency for the Table I
workloads at increasing input scales, with the percentage of time spent
in point operations.  Expected shape: point operations grow from ~30-50%
of latency at 1 K points to >90% beyond 100 K (paper: 36% → 99%).
"""

from repro.analysis import format_table
from repro.hw import GPUModel
from repro.networks import get_workload

from _common import emit

SERIES = [
    ("PN++(c)", [1024, 2048, 4096]),
    ("PNXt(c)", [1024, 2048, 4096]),
    ("PN++(s)", [4096, 16384, 66_000]),
    ("PNXt(s)", [16384, 66_000, 289_000]),
    ("PVr(s)", [16384, 66_000, 289_000]),
]


def run_fig04():
    gpu = GPUModel()
    rows = []
    for key, scales in SERIES:
        spec = get_workload(key)
        for n in scales:
            r = gpu.run(spec, n)
            share = 100.0 * r.point_op_seconds / r.latency_s
            rows.append([
                key, n,
                f"{r.latency_s * 1e3:.2f}",
                f"{r.point_op_seconds * 1e3:.2f}",
                f"{r.mlp_seconds * 1e3:.2f}",
                f"{share:.0f}%",
            ])
    return format_table(
        ["workload", "points", "total ms", "point-op ms", "MLP ms", "point-op %"],
        rows,
        title="Fig. 4 — GPU latency breakdown across scales (bottleneck shift)",
    )


def test_fig04_bottleneck(benchmark):
    table = benchmark.pedantic(run_fig04, rounds=1, iterations=1)
    emit("fig04_bottleneck", table)
    rows = [l.split() for l in table.splitlines()[3:]]
    share = {(r[0], int(r[1])): float(r[5].rstrip("%")) for r in rows}
    assert share[("PN++(c)", 1024)] < 75
    assert share[("PNXt(s)", 289_000)] > 90
    assert share[("PVr(s)", 289_000)] > 90
