"""The :class:`PointCloud` container used across the library.

A point cloud carries two kinds of information (paper §II-A): spatial
coordinates ``p`` and per-point features ``f``; segmentation workloads also
carry per-point integer labels.  Coordinates are always float32 ``(n, 3)``;
features are float32 ``(n, c)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from .bbox import AABB, aabb_of_points

__all__ = ["PointCloud"]


@dataclass
class PointCloud:
    """An unordered set of 3-D points with optional features and labels.

    Attributes:
        coords: ``(n, 3)`` float32 spatial coordinates.
        features: optional ``(n, c)`` float32 per-point features.
        labels: optional ``(n,)`` integer per-point labels (segmentation)
            or a scalar class id attached by dataset generators
            (classification; stored separately as ``class_id``).
        class_id: optional scalar class label for whole-cloud tasks.
    """

    coords: np.ndarray
    features: Optional[np.ndarray] = None
    labels: Optional[np.ndarray] = None
    class_id: Optional[int] = None

    def __post_init__(self) -> None:
        coords = np.ascontiguousarray(self.coords, dtype=np.float32)
        if coords.ndim != 2 or coords.shape[1] != 3:
            raise ValueError(f"coords must be (n, 3), got {coords.shape}")
        self.coords = coords
        if self.features is not None:
            features = np.ascontiguousarray(self.features, dtype=np.float32)
            if features.ndim != 2 or features.shape[0] != len(coords):
                raise ValueError(
                    f"features must be (n, c) with n={len(coords)}, got {features.shape}"
                )
            self.features = features
        if self.labels is not None:
            labels = np.ascontiguousarray(self.labels)
            if labels.shape != (len(coords),):
                raise ValueError(f"labels must be (n,) with n={len(coords)}, got {labels.shape}")
            if not np.issubdtype(labels.dtype, np.integer):
                raise ValueError(f"labels must be integers, got dtype {labels.dtype}")
            self.labels = labels

    def __len__(self) -> int:
        return len(self.coords)

    @property
    def num_points(self) -> int:
        """Number of points ``n``."""
        return len(self.coords)

    @property
    def num_features(self) -> int:
        """Feature channels ``c`` (0 when no features attached)."""
        return 0 if self.features is None else self.features.shape[1]

    @property
    def bbox(self) -> AABB:
        """Tight axis-aligned bounding box of the coordinates."""
        return aabb_of_points(self.coords)

    def select(self, indices: np.ndarray) -> "PointCloud":
        """A new cloud containing the points at ``indices`` (fancy index)."""
        indices = np.asarray(indices)
        return PointCloud(
            coords=self.coords[indices],
            features=None if self.features is None else self.features[indices],
            labels=None if self.labels is None else self.labels[indices],
            class_id=self.class_id,
        )

    def permute(self, permutation: np.ndarray) -> "PointCloud":
        """Reorder points by ``permutation`` (must be a bijection).

        Used by the DFT memory layout (``repro.core.layout``): after
        Fractal the cloud is stored block-contiguously in DFT order.
        """
        permutation = np.asarray(permutation)
        if sorted(permutation.tolist()) != list(range(len(self))):
            raise ValueError("permutation must be a bijection over all point indices")
        return self.select(permutation)

    def with_features(self, features: np.ndarray) -> "PointCloud":
        """A copy of this cloud with ``features`` attached."""
        return PointCloud(self.coords, features, self.labels, self.class_id)

    def normalized(self) -> "PointCloud":
        """Centre at origin and scale into the unit sphere.

        Standard preprocessing for object-level workloads (ModelNet-style).
        """
        centered = self.coords - self.coords.mean(axis=0, keepdims=True)
        scale = float(np.linalg.norm(centered, axis=1).max())
        if scale == 0.0:
            scale = 1.0
        return PointCloud(centered / scale, self.features, self.labels, self.class_id)

    def nbytes(self, *, bytes_per_scalar: int = 2) -> int:
        """Storage footprint in bytes (FP16 by default, matching the chip)."""
        n_scalars = self.coords.size + (0 if self.features is None else self.features.size)
        return n_scalars * bytes_per_scalar

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        parts = [f"n={len(self)}"]
        if self.features is not None:
            parts.append(f"c={self.num_features}")
        if self.labels is not None:
            parts.append("labeled")
        if self.class_id is not None:
            parts.append(f"class={self.class_id}")
        return f"PointCloud({', '.join(parts)})"
