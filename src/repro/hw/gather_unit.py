"""Gathering-unit timing model (paper §V-B, Fig. 10).

Gathering retrieves feature rows by neighbour index.  The access pattern
is what the paper optimises:

- **Global gathering** hits random addresses across the whole feature
  table: bank conflicts on-chip, and — when the table exceeds the buffer —
  random DRAM lookups (PointAcc's large-scale penalty).
- **Block-wise gathering** confines each unit to its own bank, the
  block + parent data always fit on-chip, and any DRAM refill is a
  streamed block read thanks to the DFT layout.
"""

from __future__ import annotations

from dataclasses import dataclass

from . import energy as E
from .cost import UnitCost
from .sram import SRAMModel

__all__ = ["GatherUnitModel"]


@dataclass(frozen=True)
class GatherUnitModel:
    """Gather engine with ``num_units`` parallel index streams."""

    num_units: int = 2
    rows_per_cycle_per_unit: int = 1

    def gather_global(
        self, rows: int, k: int, channels: int, table_bytes: float, sram: SRAMModel
    ) -> UnitCost:
        """Random gathering over a global feature table.

        Args:
            rows: number of centres (each gathers ``k`` rows).
            k: neighbours per centre.
            channels: feature channels per row.
            table_bytes: size of the full feature table.
            sram: buffer model (decides on-chip vs DRAM residency).
        """
        accesses = float(rows) * k
        gathered_bytes = accesses * channels * E.BYTES_PER_SCALAR
        throughput = self.num_units * self.rows_per_cycle_per_unit
        cycles = accesses / throughput
        if sram.fits(table_bytes):
            # Random on-chip access: bank conflicts handled by the SRAM
            # model via the random-pattern bytes.
            return UnitCost(
                compute_cycles=cycles,
                sram_random_bytes=gathered_bytes,
                dram_stream_bytes=table_bytes,  # initial fill
            )
        # Table spills: the miss fraction goes to DRAM at random-access
        # efficiency — the conventional-gathering penalty.
        on_chip_fraction = sram.usable_bytes / table_bytes
        hit_bytes = gathered_bytes * on_chip_fraction
        miss_bytes = gathered_bytes - hit_bytes
        return UnitCost(
            compute_cycles=cycles,
            sram_random_bytes=hit_bytes,
            dram_stream_bytes=sram.usable_bytes,
            dram_random_bytes=miss_bytes,
        )

    def gather_blocks(
        self, rows: int, k: int, channels: int, table_bytes: float, sram: SRAMModel
    ) -> UnitCost:
        """Block-wise gathering: conflict-free, fully on-chip retrieval.

        The whole table still streams from DRAM once (block by block, in
        DFT order), but every lookup is served on-chip from the unit's
        own bank.
        """
        accesses = float(rows) * k
        gathered_bytes = accesses * channels * E.BYTES_PER_SCALAR
        throughput = self.num_units * self.rows_per_cycle_per_unit
        cycles = accesses / throughput
        return UnitCost(
            compute_cycles=cycles,
            sram_stream_bytes=gathered_bytes,
            dram_stream_bytes=table_bytes,
        )
