"""Extension bench — Mesorasi-style delayed aggregation on MSG inference.

The set-abstraction stages of the serving backbones admit two
aggregation orders: **eager** gathers every neighbour's input features
and runs the shared MLP over the ``m * k`` gathered rows; **delayed**
runs the MLP once per input point (``n`` rows) and gathers the *output*
channels afterwards.  Both are bit-identical; the win is pure work
elimination wherever neighbour groups overlap (``m * k > n``).  The MSG
classifier is the stage shape where that overlap is largest — every
level gathers each centre at two radii, so the eager order pays the
gathered-MLP pass twice per level.

Acceptance bar: delayed >= 1.3x over eager on the aggregation path
(MLP + gather + pool over precomputed neighbour tables) of the MSG
classification workload over a warm ROI-crop-sized stream.  The
end-to-end forward (which adds the identical-under-both-orders
partition/FPS/ball-query structure work) is reported alongside,
unasserted — it dilutes the ratio with work the aggregation order
cannot touch.

Marked ``slow``: run with ``pytest -m slow benchmarks/bench_infer.py``.
"""

import numpy as np
import pytest

from repro.analysis import format_table
from repro.infer import get_model
from repro.networks.backends import make_backend

from _common import best_time, emit

pytestmark = pytest.mark.slow

#: ROI-crop-sized serving clouds: small enough that every MSG scale
#: overlaps its neighbour groups 4-8x over the input points.
SIZE_RANGE = (96, 192)
CLOUDS = 32
BAR = 1.3


def _prepare(model, backend, clouds):
    """Structure work per cloud, shared by both timed orders: centres
    and per-scale neighbour tables for both levels, plus the level-1
    features sa2 consumes."""
    prep = []
    for c in clouds:
        centers1 = backend.sample(c, min(model.sa1.n_out, len(c)))
        nb1 = [backend.group(c, centers1, r, k) for r, k in model.sa1.scales]
        f1 = np.concatenate(
            [
                s.compute(c, None, nb, agg="eager")
                for s, nb in zip(model.sa1.stages, nb1)
            ],
            axis=1,
        )
        c1 = c[centers1]
        centers2 = backend.sample(c1, min(model.sa2.n_out, len(c1)))
        nb2 = [backend.group(c1, centers2, r, k) for r, k in model.sa2.scales]
        prep.append((c, nb1, c1, f1, nb2))
    return prep


def run_bench():
    rng = np.random.default_rng(0)
    clouds = [
        np.asarray(rng.normal(size=(int(n), 3)), dtype=np.float64)
        for n in rng.integers(*SIZE_RANGE, size=CLOUDS)
    ]
    model = get_model("pointnet2-msg-cls")
    backend = make_backend("fractal", max_points_per_block=64)

    # Warm the partition cache and pin the parity obligation: the two
    # orders must agree bit for bit before either is worth timing.
    for c in clouds:
        assert np.array_equal(
            model.forward(c, backend, agg="eager"),
            model.forward(c, backend, agg="delayed"),
        )

    prep = _prepare(model, backend, clouds)

    def agg_pass(agg):
        for c, nb1, c1, f1, nb2 in prep:
            for s, nb in zip(model.sa1.stages, nb1):
                s.compute(c, None, nb, agg=agg)
            for s, nb in zip(model.sa2.stages, nb2):
                s.compute(c1, f1, nb, agg=agg)

    def forward_pass(agg):
        for c in clouds:
            model.forward(c, backend, agg=agg)

    t_agg_eager, _ = best_time(lambda: agg_pass("eager"), repeats=5)
    t_agg_delayed, _ = best_time(lambda: agg_pass("delayed"), repeats=5)
    t_fwd_eager, _ = best_time(lambda: forward_pass("eager"))
    t_fwd_delayed, _ = best_time(lambda: forward_pass("delayed"))

    agg_speedup = t_agg_eager / t_agg_delayed
    rows = [
        ["aggregation path", "eager", f"{t_agg_eager * 1e3:.1f}", "1.00x"],
        ["aggregation path", "delayed", f"{t_agg_delayed * 1e3:.1f}",
         f"{agg_speedup:.2f}x"],
        ["full forward", "eager", f"{t_fwd_eager * 1e3:.1f}", "1.00x"],
        ["full forward", "delayed", f"{t_fwd_delayed * 1e3:.1f}",
         f"{t_fwd_eager / t_fwd_delayed:.2f}x"],
    ]
    table = format_table(
        ["path", "agg", "ms / stream", "speedup"],
        rows,
        title=f"delayed vs eager aggregation — pointnet2-msg-cls, "
              f"{CLOUDS} clouds of {SIZE_RANGE[0]}-{SIZE_RANGE[1] - 1} "
              f"points (fractal, warm partitions)",
    )
    return table, agg_speedup


def test_bench_infer(benchmark):
    table, agg_speedup = benchmark.pedantic(run_bench, rounds=1, iterations=1)
    emit("infer", table)
    assert agg_speedup >= BAR, agg_speedup
