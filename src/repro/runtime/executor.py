"""Batched multi-cloud execution engine.

The functional layers below this one process exactly one cloud at a time;
this module is the throughput story on top of them: it takes a sequence
(or generator) of point clouds, partitions each with any registered
strategy (content-hash cached), runs the block-parallel point-operation
pipeline — block FPS → ball-query grouping → gathering → KNN
interpolation — per cloud with the stacked fast paths of
:mod:`repro.core.bppo`, and schedules clouds across a configurable
``concurrent.futures`` worker pool (threads, processes, or a serial
fallback).  Results stream back in submission order together with
aggregate throughput statistics.

Scheduling granularity is the *cloud*: blocks inside a cloud are already
executed "in parallel" by the stacked ops (one vectorized pass over many
blocks), so the pool only needs to overlap independent clouds — the
delayed-batching lesson of Mesorasi applied at the request level.  With
``fuse=True`` the engine goes one level further and batches *across*
clouds: near-equal-size clouds bucket into one ragged problem per
pipeline stage (mixed sizes fuse via per-cloud quotas and offset
tables), so heterogeneous serving traffic restructures into a handful of
uniform kernel invocations.

Everything the engine computes is bit-identical to the serial reference
path; ``tests/test_batch_parity.py`` holds the proof obligations.
"""

from __future__ import annotations

import dataclasses
import os
import threading
import weakref
from collections import OrderedDict, deque
from collections.abc import Iterable, Iterator
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field

import numpy as np

from .. import obs
from ..core import bppo, dispatch
from ..core.bppo import BlockWork, OpTrace, allocate_samples
from ..core.coldpath import fused_build_and_sample
from ..core.delta import PatchPolicy
from ..core.ragged import (
    RaggedBlocks,
    ball_query_on_layout,
    fps_on_layout,
    knn_on_layout,
)
from ..geometry import ops as exact_ops
from ..obs import latency_percentiles
from ..partition.base import Partitioner, get_partitioner
from ..serve.planner import WindowPlan, plan_buckets
from .cache import PartitionCache, result_key

__all__ = [
    "PipelineSpec",
    "CloudResult",
    "ExecutorStats",
    "BatchReport",
    "BatchExecutor",
]


@dataclass(frozen=True)
class PipelineSpec:
    """The BPPO stage chain applied to every cloud of a batch.

    Mirrors one set-abstraction + feature-propagation round of the
    PointNet++ family: sample centres, group neighbours within a radius,
    gather their features, then interpolate features back onto the dense
    cloud through block-wise KNN.

    Attributes:
        sample_ratio: fraction of points kept by block FPS (used when
            ``num_samples`` is None; always at least one sample).
        num_samples: absolute sample count; clamped to the cloud size so
            a fixed setting survives tiny streamed clouds.
        radius: ball-query grouping radius.
        group_size: neighbours per centre in the grouping stage.
        interpolate_k: K for the interpolation KNN (clamped to the
            number of sampled centres).
        with_interpolation: skip the interpolation stage when False
            (classification-style pipelines stop after grouping).
        model: name of a registered serving model
            (:data:`repro.infer.MODEL_NAMES`).  When set, the pipeline
            runs full network inference instead of the raw BPPO stage
            chain: results carry ``model_output`` and the point-op
            fields stay empty.  The sampling/grouping knobs above are
            ignored — the model's own stage parameters drive the point
            operations.
        agg: set-abstraction aggregation order for model pipelines —
            ``"auto"`` (cost model / ``REPRO_AGG``), ``"eager"``
            (gather-then-MLP), or ``"delayed"`` (MLP-then-gather,
            Mesorasi-style).  Both orders are bit-identical.
    """

    sample_ratio: float = 0.25
    num_samples: int | None = None
    radius: float = 0.2
    group_size: int = 16
    interpolate_k: int = 3
    with_interpolation: bool = True
    model: str | None = None
    agg: str = "auto"

    def __post_init__(self):
        dispatch.validate_agg(self.agg)

    def samples_for(self, num_points: int) -> int:
        """Sample count for a cloud of ``num_points`` (clamped to [1, n])."""
        if self.num_samples is not None:
            return max(1, min(int(self.num_samples), num_points))
        return max(1, min(num_points, round(self.sample_ratio * num_points)))


@dataclass
class CloudResult:
    """Per-cloud output of the engine, in submission order.

    ``reused`` marks a result replayed from an identical earlier cloud of
    the same batch (request deduplication); its arrays are shared with the
    original result, so treat them as read-only.

    ``partition_source`` records how the partition was obtained —
    ``"warm"`` (exact cache hit), ``"reused"`` (certificate-verified
    reuse of a near-match), ``"patched"`` (incremental delta update), or
    ``"cold"`` (full build); empty on results from engines predating the
    delta protocol.

    ``model_output`` holds the network output of a model pipeline
    (``PipelineSpec.model``): per-cloud logits for classifiers,
    per-point logits for segmenters; ``None`` on raw BPPO pipelines,
    whose point-op arrays are empty in the model case.
    """

    index: int
    num_points: int
    num_blocks: int
    cache_hit: bool
    seconds: float
    sampled: np.ndarray
    neighbors: np.ndarray
    grouped: np.ndarray
    interpolated: np.ndarray | None
    traces: dict[str, OpTrace] = field(default_factory=dict)
    reused: bool = False
    partition_source: str = ""
    model_output: np.ndarray | None = None


@dataclass
class ExecutorStats:
    """Aggregate throughput statistics of one :meth:`BatchExecutor.run`."""

    clouds: int = 0
    points: int = 0
    wall_seconds: float = 0.0
    busy_seconds: float = 0.0
    cache_hits: int = 0
    cache_misses: int = 0
    reused: int = 0
    #: Cache misses absorbed by the delta protocol (certificate reuse or
    #: an incremental patch) instead of a full rebuild.  Zero unless the
    #: engine was built with ``delta=True``.
    patched: int = 0
    #: Cache misses that paid a full partition build.
    cold: int = 0
    #: Per-cloud processing-latency percentiles in seconds (replayed
    #: duplicates count at ~0 — a served repeat really is that cheap).
    latency_p50: float = 0.0
    latency_p95: float = 0.0
    latency_p99: float = 0.0

    @property
    def clouds_per_second(self) -> float:
        return self.clouds / self.wall_seconds if self.wall_seconds > 0 else 0.0

    @property
    def points_per_second(self) -> float:
        return self.points / self.wall_seconds if self.wall_seconds > 0 else 0.0

    @property
    def speedup_over_busy(self) -> float:
        """Overlap achieved by the pool: per-cloud work time / wall time."""
        return self.busy_seconds / self.wall_seconds if self.wall_seconds > 0 else 0.0

    def summary(self) -> str:
        """One line with the numbers an operator looks at first."""
        return (
            f"throughput {self.clouds_per_second:.1f} clouds/s "
            f"({self.points_per_second / 1e3:.0f}K points/s) | "
            f"latency p50/p95/p99 {self.latency_p50 * 1e3:.2f}/"
            f"{self.latency_p95 * 1e3:.2f}/{self.latency_p99 * 1e3:.2f} ms | "
            f"cache {self.cache_hits}/{self.clouds} hits, "
            f"{self.reused} reused | "
            + (
                f"partitions {self.cold} cold, {self.patched} patched | "
                if self.patched
                else ""
            )
            + f"overlap {self.speedup_over_busy:.2f}x"
        )


@dataclass
class BatchReport:
    """Everything :meth:`BatchExecutor.run` produces."""

    results: list[CloudResult]
    stats: ExecutorStats

    def summary(self) -> str:
        """Delegates to :meth:`ExecutorStats.summary`."""
        return self.stats.summary()


def _as_cloud(item: object) -> tuple[np.ndarray, np.ndarray | None]:
    """Normalise one batch item to ``(coords, features-or-None)``.

    Accepts an ``(n, 3)`` array, a ``(coords, features)`` pair, or any
    object with a ``coords`` attribute (e.g. :class:`repro.geometry.
    pointcloud.PointCloud`).
    """
    features = None
    if isinstance(item, (tuple, list)) and len(item) == 2:
        item, features = item
    if hasattr(item, "coords"):
        item = item.coords
    coords = np.asarray(item, dtype=np.float64)
    if coords.ndim != 2 or coords.shape[1] != 3:
        raise ValueError(f"each cloud must be (n, 3), got shape {coords.shape}")
    if len(coords) == 0:
        raise ValueError("clouds must contain at least one point")
    if features is not None:
        features = np.asarray(features, dtype=np.float64)
        if features.ndim != 2 or len(features) != len(coords):
            raise ValueError(
                f"features must be (n, c) aligned with coords, got "
                f"{features.shape} for {len(coords)} points"
            )
    return coords, features


# -- process-mode plumbing ---------------------------------------------------
# Each worker process builds its own serial engine once (fork inherits the
# parent's modules, so this is cheap) and reuses it for every task; the
# parent only ships (index, coords, features, pipeline) per cloud.

def _shutdown_pool(pool: Executor) -> None:
    """GC finalizer for engines dropped without :meth:`BatchExecutor.
    close` — non-blocking so collection never stalls on workers."""
    pool.shutdown(wait=False)


_PROCESS_ENGINE: "BatchExecutor | None" = None


def _process_init(partitioner_name: str, block_size: int, kernel: str,
                  cache_size: int, build_kernel: str = "auto",
                  delta: bool = False,
                  delta_policy: "PatchPolicy | None" = None) -> None:
    global _PROCESS_ENGINE
    # A forked pool child inherits the parent's tracer but nothing ever
    # drains it here (the shard workers are the traced multi-process
    # path); disable so inherited spans don't accumulate.
    obs.configure(trace=False, metrics=False)
    # Serial (max_workers=1): never builds a pool, lives exactly as long
    # as its worker process — there is nothing to release.
    _PROCESS_ENGINE = BatchExecutor(  # repro: ignore[REP004]
        partitioner_name,
        block_size=block_size,
        max_workers=1,
        kernel=kernel,
        cache_size=cache_size,
        build_kernel=build_kernel,
        delta=delta,
        delta_policy=delta_policy,
    )


def _process_run(args: tuple) -> CloudResult:
    index, coords, features, pipeline = args
    assert _PROCESS_ENGINE is not None
    return _PROCESS_ENGINE._execute(index, coords, features, pipeline)


class BatchExecutor:
    """Batched multi-cloud BPPO engine with partition caching.

    Usage::

        from repro.runtime import BatchExecutor, PipelineSpec

        engine = BatchExecutor("fractal", block_size=128, max_workers=4)
        report = engine.run(clouds, PipelineSpec(radius=0.3, group_size=16))
        for result in report.results:          # submission order
            use(result.sampled, result.neighbors, result.interpolated)
        print(f"{report.stats.clouds_per_second:.1f} clouds/s, "
              f"{report.stats.cache_hits} cache hits")

        for result in engine.stream(sensor_frames()):   # generator in,
            consume(result)                             # results stream out
        engine.close()   # joins the persistent worker pool (or use `with`)

    The worker pool is **persistent**: created lazily on the first
    parallel call, shared by every subsequent ``stream()`` /
    ``execute_window()``, and joined by :meth:`close` (the engine also
    works as a context manager).  Serving layers that close a window
    every few milliseconds reuse one pool instead of churning one per
    window.

    Args:
        partitioner: strategy name from :mod:`repro.partition` or a
            ready :class:`Partitioner` instance.
        block_size: partition threshold (``th`` / BS) when constructing
            from a name.
        max_workers: worker count; ``1`` (or ``mode="serial"``) runs the
            serial fallback with no pool.  Defaults to ``min(4, cpus)``.
        in_flight: backpressure bound — how many clouds :meth:`stream`
            keeps in flight (and the serving layer's puller-queue
            capacity) before the source is stalled.  Defaults to
            ``2 × max_workers``.
        mode: ``"thread"`` (shared partition cache, numpy releases the
            GIL in the heavy kernels), ``"process"`` (independent caches,
            full parallelism; requires a partitioner *name*), or
            ``"serial"``.
        kernel: block-op implementation — ``"auto"`` (default) resolves
            each op per call through the cost-model dispatcher of
            :mod:`repro.core.dispatch`; ``"loop" | "stacked" | "ragged"``
            pin one path.  Results are bit-identical either way.
        fuse: default for :meth:`run`'s whole-cloud fusion — clouds of a
            batch are size-bucketed and each bucket is concatenated into
            one ragged problem executed as a single kernel invocation per
            stage, results split back in submission order.  Mixed sizes
            fuse fine (each cloud keeps its own sample quota and offsets);
            the bucketing knobs below bound how unlike a bucket may get.
        fuse_max_points: fused-group budget — a bucket never holds more
            than this many total points (``None`` = unbounded).  Bounds
            the flat arrays one fused invocation materialises.
        fuse_max_spread: largest/smallest cloud-size ratio allowed inside
            one bucket (``None`` = unbounded).  Wildly unlike sizes fuse
            correctly but share little per-stage work shape, so the
            scheduler prefers splitting them; clouds left alone fall back
            to the per-cloud pool path.
        use_batched_ops: legacy boolean equivalent of ``kernel``
            (``False`` → ``"loop"``); kept for callers of the PR-1 API.
        cache_size: LRU capacity of the partition cache.
        reuse_results: deduplicate identical clouds within a stream —
            compute once, replay the result (``CloudResult.reused``).
            Identity is the exact float64 content of coords + features.
        reuse_window: distinct recent clouds eligible for reuse.  The
            engine retains the full result arrays of that many recent
            clouds even when nothing repeats, so the window bounds
            steady-state memory on unbounded unique streams (at the
            default 32 and 8 K-point clouds, a few tens of MB).
        delta: enable the streaming-frames delta protocol — on a cache
            miss the partition cache scans recent entries for a
            near-match and serves a certificate-verified reuse or an
            incrementally patched structure (bit-identical to a rebuild)
            instead of partitioning from scratch.  See
            :class:`repro.core.delta.PatchPolicy`.
        delta_policy: explicit :class:`~repro.core.delta.PatchPolicy`
            (implies ``delta=True``); ``None`` with ``delta=True`` uses
            the policy defaults.
        build_kernel: cold-build strategy on a cache miss —
            ``"build_then_sample"`` partitions then runs block FPS,
            ``"fused"`` interleaves per-leaf FPS with tree construction
            (:mod:`repro.core.coldpath`), ``"auto"`` (default) lets the
            cost model pick (``REPRO_BUILD`` overrides).  Bit-identical
            either way.
    """

    def __init__(
        self,
        partitioner: str | Partitioner = "fractal",
        *,
        block_size: int = 256,
        max_workers: int | None = None,
        in_flight: int | None = None,
        mode: str = "thread",
        kernel: str = "auto",
        fuse: bool = False,
        fuse_max_points: int | None = 262_144,
        fuse_max_spread: float | None = 4.0,
        use_batched_ops: bool = True,
        cache_size: int = 64,
        reuse_results: bool = True,
        reuse_window: int = 32,
        delta: bool = False,
        delta_policy: PatchPolicy | None = None,
        build_kernel: str = "auto",
    ):
        if mode not in ("thread", "process", "serial"):
            raise ValueError(f"mode must be thread|process|serial, got {mode!r}")
        if isinstance(partitioner, Partitioner):
            self.partitioner = partitioner
            self.partitioner_name = partitioner.name
            self._from_name = False
        else:
            self.partitioner = get_partitioner(
                partitioner, max_points_per_block=block_size
            )
            self.partitioner_name = partitioner
            self._from_name = True
        if mode == "process" and not self._from_name:
            raise ValueError(
                "process mode needs a partitioner name (instances do not "
                "cross process boundaries); pass e.g. partitioner='kdtree'"
            )
        self.block_size = block_size
        self.max_workers = max_workers if max_workers else min(4, os.cpu_count() or 1)
        self.mode = "serial" if self.max_workers <= 1 else mode
        if in_flight is not None and in_flight < 1:
            raise ValueError(f"in_flight must be >= 1 or None, got {in_flight}")
        self.in_flight = (
            int(in_flight) if in_flight is not None else 2 * self.max_workers
        )
        if not use_batched_ops and kernel == "auto":
            kernel = "loop"
        self.kernel = dispatch.validate_kernel(kernel)
        self.fuse = fuse
        if fuse_max_points is not None and fuse_max_points < 1:
            raise ValueError(
                f"fuse_max_points must be >= 1 or None, got {fuse_max_points}"
            )
        if fuse_max_spread is not None and fuse_max_spread < 1.0:
            raise ValueError(
                f"fuse_max_spread must be >= 1.0 or None, got {fuse_max_spread}"
            )
        self.fuse_max_points = fuse_max_points
        self.fuse_max_spread = fuse_max_spread
        self.use_batched_ops = use_batched_ops
        self.cache_size = cache_size
        self.reuse_results = reuse_results
        self.reuse_window = reuse_window
        self.build_kernel = dispatch.validate_build_kernel(build_kernel)
        policy = (
            (delta_policy or PatchPolicy())
            if (delta or delta_policy is not None)
            else None
        )
        self.delta = policy is not None
        self.cache = PartitionCache(
            self.partitioner, maxsize=cache_size, policy=policy
        )
        # Persistent worker pool: created lazily on first parallel use,
        # reused by every stream()/execute_window() after that, joined by
        # close().  The serving layer closes one window every few ms, so
        # a throwaway pool per window was measurable churn.
        self._pool: Executor | None = None
        self._pool_lock = threading.Lock()

    # -- single-cloud pipeline ----------------------------------------------

    def _execute(
        self,
        index: int,
        coords: np.ndarray,
        features: np.ndarray | None,
        pipeline: PipelineSpec,
    ) -> CloudResult:
        """Run the full BPPO pipeline on one cloud."""
        if obs.enabled():
            with obs.span("engine.cloud", points=len(coords)) as span:
                result = self._execute_impl(index, coords, features, pipeline)
                span.annotate(source=result.partition_source)
                return result
        return self._execute_impl(index, coords, features, pipeline)

    def _execute_impl(
        self,
        index: int,
        coords: np.ndarray,
        features: np.ndarray | None,
        pipeline: PipelineSpec,
    ) -> CloudResult:
        if pipeline.model is not None:
            return self._execute_model_impl(index, coords, features, pipeline)
        start = obs.now()
        n = len(coords)
        num_samples = pipeline.samples_for(n)

        def cold_build(c: np.ndarray):
            """Cache-miss builder: the fused kernel hands back its FPS
            result as the acquire payload, so a fused cold build never
            pays a second sampling pass below."""
            name = dispatch.resolve_build_kernel(
                self.partitioner, n, num_samples, self.build_kernel
            )
            if name == "fused":
                built, sampled, trace = fused_build_and_sample(
                    self.partitioner, c, num_samples
                )
                return built, (sampled, trace)
            return self.partitioner(c), None

        structure, source, payload = self.cache.acquire(
            coords, builder=cold_build
        )
        cache_hit = source == "warm"

        feats = coords if features is None else features
        traces: dict[str, OpTrace] = {}

        # Each stage knows exactly how many centres every block will see —
        # the FPS quotas up front, then a bincount of the sampled centres
        # over the owner map — so auto dispatch runs on measured per-block
        # work instead of the population-proportion estimate.  A pinned
        # kernel never consults the cost model, so skip the bookkeeping.
        auto = self.kernel == "auto"
        if payload is not None:
            sampled, traces["fps"] = payload
        else:
            quotas = (
                allocate_samples(structure.block_sizes, num_samples, clamp=True)
                if auto
                else None
            )
            sampled, traces["fps"] = dispatch.run_op(
                "fps", structure, coords, num_samples,
                kernel=self.kernel, num_centers=num_samples, center_counts=quotas,
            )
        sampled_counts = (
            np.bincount(
                structure.block_of_point()[sampled],
                minlength=structure.num_blocks,
            )
            if auto
            else None
        )
        neighbors, traces["ball_query"] = dispatch.run_op(
            "ball_query", structure, coords, sampled,
            pipeline.radius, pipeline.group_size,
            kernel=self.kernel, num_centers=len(sampled),
            center_counts=sampled_counts,
        )
        grouped, traces["gather"] = dispatch.run_op(
            "gather", structure, feats, neighbors, sampled,
            kernel=self.kernel, num_centers=len(sampled),
            center_counts=sampled_counts,
        )
        interpolated = None
        if pipeline.with_interpolation:
            k = min(pipeline.interpolate_k, len(sampled))
            interpolated, traces["interpolate"] = dispatch.run_op(
                "interpolate", structure, coords, np.arange(n, dtype=np.int64),
                sampled, feats[sampled], k,
                kernel=self.kernel, num_centers=n,
                center_counts=structure.block_sizes if auto else None,
            )
        return CloudResult(
            index=index,
            num_points=n,
            num_blocks=structure.num_blocks,
            cache_hit=cache_hit,
            seconds=obs.now() - start,
            sampled=sampled,
            neighbors=neighbors,
            grouped=grouped,
            interpolated=interpolated,
            traces=traces,
            partition_source=source,
        )

    def _execute_model_impl(
        self,
        index: int,
        coords: np.ndarray,
        features: np.ndarray | None,
        pipeline: PipelineSpec,
    ) -> CloudResult:
        """Run full network inference on one cloud.

        The model's point operations resolve through a backend that
        shares this engine's partition cache and kernel choice, so every
        pyramid level's partition is content-cached exactly like raw
        BPPO traffic (the level-0 acquire below only claims the
        warm/cold accounting before the backend warm-hits it).
        """
        from ..infer import get_model, run_model
        from ..networks.backends import BlockBackend

        start = obs.now()
        structure, source, _ = self.cache.acquire(coords)
        backend = BlockBackend(
            self.partitioner, kernel=self.kernel, cache=self.cache
        )
        output = run_model(
            get_model(pipeline.model), coords, features, backend,
            agg=pipeline.agg,
        )
        return CloudResult(
            index=index,
            num_points=len(coords),
            num_blocks=structure.num_blocks,
            cache_hit=source == "warm",
            seconds=obs.now() - start,
            sampled=np.zeros(0, dtype=np.int64),
            neighbors=np.zeros((0, 0), dtype=np.int64),
            grouped=np.zeros((0, 0, 0)),
            interpolated=None,
            partition_source=source,
            model_output=output,
        )

    def run_cloud(
        self,
        cloud: object,
        pipeline: PipelineSpec | None = None,
        *,
        index: int = 0,
    ) -> CloudResult:
        """Run the pipeline on a single cloud in the calling thread."""
        coords, features = _as_cloud(cloud)
        return self._execute(index, coords, features, pipeline or PipelineSpec())

    # -- batched execution ---------------------------------------------------

    def stream(
        self,
        clouds: Iterable[object],
        pipeline: PipelineSpec | None = None,
    ) -> Iterator[CloudResult]:
        """Yield one :class:`CloudResult` per cloud, in submission order.

        ``clouds`` may be any iterable — including an unbounded generator:
        at most ``in_flight`` clouds (default ``2 × max_workers``) are in
        flight at a time, so the engine pulls from the source at the rate
        it can process (simple backpressure for sensor streams).

        When ``reuse_results`` is on, a cloud whose (coords, features)
        content already appeared among the last ``reuse_window`` distinct
        clouds of this stream is never recomputed — its result is
        replayed with the new index and ``reused=True`` (repeated frames,
        retries, and popular assets are the common case of serving
        traffic).
        """
        pipeline = pipeline or PipelineSpec()

        def keyed():
            for i, c in enumerate(clouds):
                coords, features = _as_cloud(c)
                key = result_key(coords, features) if self.reuse_results else None
                yield i, coords, features, key

        def replay(result: CloudResult, index: int) -> CloudResult:
            return dataclasses.replace(
                result, index=index, cache_hit=True, seconds=0.0, reused=True
            )

        if self.mode == "serial":
            done: OrderedDict = OrderedDict()
            for index, coords, features, key in keyed():
                if key is not None and key in done:
                    done.move_to_end(key)
                    yield replay(done[key], index)
                    continue
                result = self._execute(index, coords, features, pipeline)
                if key is not None:
                    done[key] = result
                    while len(done) > self.reuse_window:
                        done.popitem(last=False)
                yield result
            return

        pool = self._ensure_pool()
        pending: deque = deque()
        in_flight: OrderedDict = OrderedDict()
        window = self.in_flight

        def drain_one() -> CloudResult:
            index, future, is_replay = pending.popleft()
            result = future.result()
            return replay(result, index) if is_replay else result

        for index, coords, features, key in keyed():
            if key is not None and key in in_flight:
                in_flight.move_to_end(key)
                pending.append((index, in_flight[key], True))
            else:
                future = self._submit(pool, (index, coords, features), pipeline)
                if key is not None:
                    in_flight[key] = future
                    while len(in_flight) > self.reuse_window:
                        in_flight.popitem(last=False)
                pending.append((index, future, False))
            while len(pending) >= window:
                yield drain_one()
        while pending:
            yield drain_one()

    def run(
        self,
        clouds: Iterable[object],
        pipeline: PipelineSpec | None = None,
        *,
        fuse: bool | None = None,
    ) -> BatchReport:
        """Process a batch and return ordered results plus throughput stats.

        ``fuse=True`` (or constructing the engine with ``fuse=True``)
        enables whole-cloud fusion: clouds are size-bucketed
        (``fuse_max_points`` / ``fuse_max_spread``), each bucket is
        concatenated into one ragged problem, and each pipeline stage
        runs as a single kernel invocation over all of its clouds — the
        batch-level analogue of stacking blocks.  Sizes need not match:
        every cloud keeps its own sample quota and offset-table slice, so
        ragged serving streams (LiDAR frames, mixed assets) fuse too.
        Results are bit-identical to the unfused path and are returned in
        submission order; fusion replaces pool scheduling for the fused
        buckets (the fused kernels *are* the parallelism).
        """
        fuse = self.fuse if fuse is None else fuse
        start = obs.now()
        if fuse:
            results = self._run_fused(clouds, pipeline or PipelineSpec())
        else:
            results = list(self.stream(clouds, pipeline))
        wall = obs.now() - start
        p50, p95, p99 = latency_percentiles([r.seconds for r in results])
        stats = ExecutorStats(
            clouds=len(results),
            points=sum(r.num_points for r in results),
            wall_seconds=wall,
            busy_seconds=sum(r.seconds for r in results),
            cache_hits=sum(1 for r in results if r.cache_hit and not r.reused),
            cache_misses=sum(1 for r in results if not r.cache_hit),
            reused=sum(1 for r in results if r.reused),
            patched=sum(
                1 for r in results
                if not r.reused and r.partition_source in ("patched", "reused")
            ),
            cold=sum(
                1 for r in results
                if not r.reused and r.partition_source == "cold"
            ),
            latency_p50=p50,
            latency_p95=p95,
            latency_p99=p99,
        )
        return BatchReport(results=results, stats=stats)

    # -- whole-cloud fusion --------------------------------------------------

    def _run_fused(
        self, clouds: Iterable[object], pipeline: PipelineSpec
    ) -> list[CloudResult]:
        """Execute a batch with size-bucketed clouds fused per stage.

        Clouds first split into *lanes* that must never share a kernel
        invocation — effective feature width, and (when interpolating)
        the effective KNN ``k`` (tiny clouds whose sample count clamps
        ``interpolate_k`` need their own ``k``).  Within a lane the
        size-bucketing scheduler (:meth:`_fuse_buckets`) packs near-equal
        clouds under the fuse-group budget; every bucket with at least
        two distinct members runs through :meth:`_execute_fused`,
        singletons fall back to the per-cloud path (scheduled across the
        worker pool when one is configured, so a poorly-fusable batch
        never loses the pool overlap), and content-identical repeats are
        replayed exactly like the streaming dedup.
        """
        dup_of: dict[int, int] = {}
        canonical: dict[bytes, int] = {}
        uniques: list[tuple[int, np.ndarray, np.ndarray | None]] = []
        count = 0
        for index, cloud in enumerate(clouds):
            count += 1
            coords, features = _as_cloud(cloud)
            if self.reuse_results:
                key = result_key(coords, features)
                if key in canonical:
                    dup_of[index] = canonical[key]
                    continue
                canonical[key] = index
            uniques.append((index, coords, features))

        results, _ = self.execute_window(uniques, pipeline)
        for index, original in dup_of.items():
            results[index] = dataclasses.replace(
                results[original], index=index, cache_hit=True,
                seconds=0.0, reused=True,
            )
        return [results[index] for index in range(count)]

    def execute_window(
        self,
        items: list[tuple[int, np.ndarray, np.ndarray | None]],
        pipeline: PipelineSpec,
    ) -> tuple[dict[int, CloudResult], WindowPlan]:
        """Fused execution of pre-normalised ``(index, coords, features)``
        clouds: the shared engine entry point of :meth:`run` (``fuse=True``)
        and the windowed serving layer (:class:`repro.serve.WindowedServer`).

        Items split into fusion lanes, each lane's buckets come from the
        bin-packing planner, multi-cloud buckets run through
        :meth:`_execute_fused`, and singletons fall back to the per-cloud
        path (across the worker pool when one is configured).  Callers own
        deduplication; every item here is executed.  Returns results keyed
        by item index plus the :class:`~repro.serve.planner.WindowPlan`
        counters describing how the window was scheduled.
        """
        lanes: dict[tuple, list] = {}
        for item in items:
            _, coords, features = item
            if pipeline.model is not None:
                # One pipeline per window means one (model, agg) pair;
                # the fused forward handles mixed sizes and ignores
                # features, so every cloud shares a single lane.
                lane = ("model",)
            elif pipeline.with_interpolation:
                width = 3 if features is None else features.shape[1]
                k_eff = min(
                    pipeline.interpolate_k, pipeline.samples_for(len(coords))
                )
                lane = (width, k_eff)
            else:
                width = 3 if features is None else features.shape[1]
                lane = (width,)
            lanes.setdefault(lane, []).append(item)

        results: dict[int, CloudResult] = {}
        fused_buckets = 0
        singletons: list[tuple[int, np.ndarray, np.ndarray | None]] = []
        with (
            obs.span("engine.window", clouds=len(items))
            if obs.enabled()
            else obs.NULL_SPAN
        ):
            for members in lanes.values():
                for bucket in self._fuse_buckets(members):
                    if len(bucket) == 1:
                        singletons.append(bucket[0])
                    else:
                        fused_buckets += 1
                        for result in self._execute_fused(bucket, pipeline):
                            results[result.index] = result
            if singletons:
                if self.mode == "serial" or len(singletons) == 1:
                    for index, coords, features in singletons:
                        results[index] = self._execute(
                            index, coords, features, pipeline
                        )
                else:
                    pool = self._ensure_pool()
                    futures = [
                        self._submit(pool, item, pipeline) for item in singletons
                    ]
                    for future in futures:
                        result = future.result()
                        results[result.index] = result
        plan = WindowPlan(
            buckets=fused_buckets,
            fused_clouds=len(items) - len(singletons),
            singleton_clouds=len(singletons),
            singleton_indices=tuple(sorted(index for index, _, _ in singletons)),
        )
        return results, plan

    def _fuse_buckets(
        self, members: list[tuple[int, np.ndarray, np.ndarray | None]]
    ) -> list[list[tuple[int, np.ndarray, np.ndarray | None]]]:
        """Bin-pack one fuse lane under the engine's fusion caps.

        Delegates to the best-fit-decreasing planner of
        :mod:`repro.serve.planner`.  Bucket composition only affects
        speed: every bucket is bit-identical to running its clouds alone.
        """
        return plan_buckets(
            members,
            max_points=self.fuse_max_points,
            max_spread=self.fuse_max_spread,
        )

    def _execute_fused(
        self,
        items: list[tuple[int, np.ndarray, np.ndarray | None]],
        pipeline: PipelineSpec,
    ) -> list[CloudResult]:
        impl = (
            self._execute_fused_model_impl
            if pipeline.model is not None
            else self._execute_fused_impl
        )
        if obs.enabled():
            with obs.span("engine.fused", clouds=len(items)):
                return impl(items, pipeline)
        return impl(items, pipeline)

    def _execute_fused_model_impl(
        self,
        items: list[tuple[int, np.ndarray, np.ndarray | None]],
        pipeline: PipelineSpec,
    ) -> list[CloudResult]:
        """Fused network inference over a group of clouds.

        The fused forward (:func:`repro.infer.run_fused`) shares one
        FPS/ball-query structure pass per pyramid level across every
        cloud of the group while the row-wise network math runs over
        the concatenated feature rows — bit-identical to the per-cloud
        model path.
        """
        from ..infer import run_fused

        start = obs.now()
        outputs, sources, num_blocks = run_fused(
            pipeline.model, items, self.cache, agg=pipeline.agg
        )
        elapsed = obs.now() - start
        total_points = sum(len(coords) for _, coords, _ in items)
        return [
            CloudResult(
                index=index,
                num_points=len(coords),
                num_blocks=num_blocks[g],
                cache_hit=sources[g] == "warm",
                seconds=elapsed * len(coords) / total_points,
                sampled=np.zeros(0, dtype=np.int64),
                neighbors=np.zeros((0, 0), dtype=np.int64),
                grouped=np.zeros((0, 0, 0)),
                interpolated=None,
                partition_source=sources[g],
                model_output=outputs[g],
            )
            for g, (index, coords, _) in enumerate(items)
        ]

    def _execute_fused_impl(
        self,
        items: list[tuple[int, np.ndarray, np.ndarray | None]],
        pipeline: PipelineSpec,
    ) -> list[CloudResult]:
        """Run the pipeline once over a fused group of clouds.

        Cloud sizes may differ: each cloud keeps its own (cached)
        partition and its own sample quota (``pipeline.samples_for(n_i)``
        allocated across its blocks), and the per-cloud ragged layouts
        are concatenated into one problem whose blocks span all clouds.
        Every stage — FPS, ball query, gather, KNN interpolation — runs
        as a single kernel invocation; per-cloud row/point/block offset
        tables carry the boundaries through every stage and drive the
        split-back.  Blocks never search outside their own cloud (search
        spaces are per-partition and KNN widening is group-confined), so
        the results are bit-identical to running each cloud alone.

        Requires one shared effective interpolation ``k`` across the
        group — the lane keys of :meth:`_run_fused` guarantee it.
        """
        start = obs.now()
        structures, layouts, sources = [], [], []
        for _, coords, _ in items:
            structure, layout, source = self.cache.acquire_ragged(coords)
            structures.append(structure)
            layouts.append(layout)
            sources.append(source)
        fused = RaggedBlocks.concatenate(layouts)
        coords_f = np.concatenate(
            [np.asarray(coords, dtype=np.float64) for _, coords, _ in items]
        )
        feats_f = np.concatenate(
            [
                np.asarray(coords if features is None else features, np.float64)
                for _, coords, features in items
            ]
        )

        # Per-cloud sample quotas and the offset tables of the split-back:
        # rows (sampled centres), points, and blocks, one cumulative table
        # each, all in fused cloud order.
        quotas = [
            allocate_samples(
                s.block_sizes, pipeline.samples_for(len(coords)), clamp=True
            )
            for s, (_, coords, _) in zip(structures, items)
        ]
        samples_per_cloud = [int(q.sum()) for q in quotas]
        row_offsets = np.zeros(len(items) + 1, dtype=np.int64)
        np.cumsum(samples_per_cloud, out=row_offsets[1:])
        point_offsets = fused.group_point_offsets
        block_offsets = fused.group_block_offsets

        traced = obs.enabled()
        with obs.span("op.fps", kernel="ragged") if traced else obs.NULL_SPAN:
            sampled_f = fps_on_layout(fused, np.concatenate(quotas))
        with (
            obs.span("op.ball_query", kernel="ragged")
            if traced
            else obs.NULL_SPAN
        ):
            neighbors_f, ball_counts = ball_query_on_layout(
                fused, coords_f, sampled_f, pipeline.radius, pipeline.group_size
            )
        with obs.span("op.gather", kernel="ragged") if traced else obs.NULL_SPAN:
            grouped_f = exact_ops.gather_features(feats_f, neighbors_f)
        interpolated_f = None
        knn_stats = None
        if pipeline.with_interpolation:
            k_per_cloud = {
                min(pipeline.interpolate_k, s) for s in samples_per_cloud
            }
            if len(k_per_cloud) != 1:
                raise ValueError(
                    "fused group mixes effective interpolation k values "
                    f"{sorted(k_per_cloud)}; the scheduler must keep them "
                    "in separate lanes"
                )
            k = k_per_cloud.pop()
            centers_f = np.arange(fused.num_points, dtype=np.int64)
            with (
                obs.span("op.knn", kernel="ragged") if traced else obs.NULL_SPAN
            ):
                knn_f, knn_counts, knn_cands, widened = knn_on_layout(
                    fused, coords_f, centers_f, sampled_f, k
                )
            with (
                obs.span("op.interpolate", kernel="ragged")
                if traced
                else obs.NULL_SPAN
            ):
                interpolated_f = bppo._interpolate_from_neighbors(
                    fused.num_points, coords_f, centers_f, sampled_f,
                    feats_f[sampled_f], knn_f,
                )
            knn_stats = (knn_counts, knn_cands, widened, k)

        elapsed = obs.now() - start
        total_points = int(point_offsets[-1])
        results = []
        for g, ((index, coords, _), structure) in enumerate(zip(items, structures)):
            n = len(coords)
            blocks = slice(int(block_offsets[g]), int(block_offsets[g + 1]))
            row_lo, row_hi = int(row_offsets[g]), int(row_offsets[g + 1])
            point_off = int(point_offsets[g])
            sizes = structure.block_sizes
            search = fused.search_sizes[blocks]
            traces = {
                "fps": self._fused_trace(
                    "fps", sizes, sizes, quotas[g], 1
                ),
                "ball_query": self._fused_trace(
                    "ball_query", sizes, search, ball_counts[blocks],
                    pipeline.group_size,
                ),
                "gather": self._fused_trace(
                    "gather", sizes, search, ball_counts[blocks],
                    pipeline.group_size,
                ),
            }
            interpolated = None
            if knn_stats is not None:
                knn_counts, knn_cands, widened, k = knn_stats
                traces["interpolate"] = self._fused_trace(
                    "interpolate", sizes, knn_cands[blocks],
                    knn_counts[blocks], k, widened[blocks],
                )
                interpolated = interpolated_f[point_off: point_off + n]
            results.append(
                CloudResult(
                    index=index,
                    num_points=n,
                    num_blocks=structure.num_blocks,
                    cache_hit=sources[g] == "warm",
                    seconds=elapsed * n / total_points,
                    sampled=sampled_f[row_lo:row_hi] - point_off,
                    neighbors=neighbors_f[row_lo:row_hi] - point_off,
                    grouped=grouped_f[row_lo:row_hi],
                    interpolated=interpolated,
                    traces=traces,
                    partition_source=sources[g],
                )
            )
        return results

    @staticmethod
    def _fused_trace(
        kind: str,
        block_sizes: np.ndarray,
        search_sizes: np.ndarray,
        center_counts: np.ndarray,
        outputs_per_center: int,
        widened: np.ndarray | None = None,
    ) -> OpTrace:
        """Per-cloud work trace reconstructed from fused per-block arrays."""
        trace = OpTrace(kind=kind)
        for block_id in range(len(block_sizes)):
            trace.blocks.append(
                BlockWork(
                    block_id=block_id,
                    n_points=int(block_sizes[block_id]),
                    n_search=int(search_sizes[block_id]),
                    n_centers=int(center_counts[block_id]),
                    n_outputs=int(center_counts[block_id]) * outputs_per_center,
                    widened=bool(widened[block_id]) if widened is not None else False,
                )
            )
        return trace

    # -- pool plumbing -------------------------------------------------------

    @property
    def pool(self) -> Executor | None:
        """The persistent worker pool (``None`` until first parallel use,
        and again after :meth:`close`)."""
        return self._pool

    def _ensure_pool(self) -> Executor:
        """Return the persistent pool, creating it on first use.

        The pool outlives individual streams and windows: the windowed
        serving layer closes a window every few milliseconds and a fresh
        pool per window (threads spawned, joined, discarded) was pure
        overhead.  :meth:`close` joins it; a closed engine lazily builds
        a fresh pool if it is used again.
        """
        with self._pool_lock:
            if self._pool is None:
                self._pool = self._make_pool()
                # Engines dropped without close() (loops over configs,
                # REPL use) must not accumulate idle workers: shut the
                # pool down when the engine is collected.  close() first
                # is fine — shutdown is idempotent.
                weakref.finalize(self, _shutdown_pool, self._pool)
            return self._pool

    def close(self) -> None:
        """Join and discard the persistent worker pool (idempotent).

        Safe to call on an engine that never went parallel.  The engine
        stays usable afterwards — the next parallel call builds a new
        pool — but long-lived servers should call this exactly once, at
        shutdown, so worker threads/processes do not linger.
        """
        with self._pool_lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    def __enter__(self) -> "BatchExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _make_pool(self) -> Executor:
        if self.mode == "process":
            return ProcessPoolExecutor(
                max_workers=self.max_workers,
                initializer=_process_init,
                initargs=(
                    self.partitioner_name,
                    self.block_size,
                    self.kernel,
                    self.cache_size,
                    self.build_kernel,
                    self.delta,
                    self.cache.policy,
                ),
            )
        return ThreadPoolExecutor(
            max_workers=self.max_workers,
            thread_name_prefix="repro-batch",
        )

    def _submit(self, pool: Executor, task: tuple, pipeline: PipelineSpec):
        index, coords, features = task
        if self.mode == "process":
            return pool.submit(_process_run, (index, coords, features, pipeline))
        return pool.submit(self._execute, index, coords, features, pipeline)
