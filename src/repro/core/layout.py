"""DFT-based memory layout (paper §IV-A).

After Fractal, points are stored block-contiguously in depth-first
traversal order.  Two properties of this layout matter to the hardware:

1. **Subtree contiguity** — every tree node's points occupy one contiguous
   range of the permuted array (a node's descendants are consecutive in
   DFT order), so loading a leaf's *parent* search space is a single
   streamed read.
2. **Bank separation** — consecutive blocks map to different SRAM banks,
   so per-block compute units never conflict.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .tree import FractalNode, FractalTree

__all__ = ["BlockLayout"]


@dataclass
class BlockLayout:
    """Memory layout derived from a :class:`FractalTree`.

    Attributes:
        permutation: ``(n,)`` original point indices in DFT storage order;
            ``stored[i] = original[permutation[i]]``.
        inverse: ``(n,)`` map from original index to storage position.
        block_starts / block_ends: per-leaf ranges into the stored order
            (leaf ``b`` occupies ``permutation[block_starts[b]:block_ends[b]]``).
    """

    permutation: np.ndarray
    inverse: np.ndarray
    block_starts: np.ndarray
    block_ends: np.ndarray

    @classmethod
    def from_tree(cls, tree: FractalTree) -> "BlockLayout":
        """Build the layout for ``tree``'s DFT leaf order."""
        sizes = tree.block_sizes
        ends = np.cumsum(sizes)
        starts = ends - sizes
        permutation = tree.dft_permutation()
        inverse = np.empty_like(permutation)
        inverse[permutation] = np.arange(len(permutation))
        return cls(
            permutation=permutation,
            inverse=inverse,
            block_starts=starts.astype(np.int64),
            block_ends=ends.astype(np.int64),
        )

    @property
    def num_points(self) -> int:
        return len(self.permutation)

    @property
    def num_blocks(self) -> int:
        return len(self.block_starts)

    def block_range(self, block_id: int) -> tuple[int, int]:
        """Storage range ``[start, end)`` of leaf ``block_id``."""
        return int(self.block_starts[block_id]), int(self.block_ends[block_id])

    def node_range(self, node: FractalNode) -> tuple[int, int]:
        """Storage range covered by an arbitrary tree node.

        DFT layout guarantees each node's points are contiguous; the range
        is recovered from the node's leftmost/rightmost descendant leaves.
        """
        leftmost = node
        while not leftmost.is_leaf:
            leftmost = leftmost.left
        rightmost = node
        while not rightmost.is_leaf:
            rightmost = rightmost.right
        start = int(self.inverse[leftmost.indices].min())
        end = int(self.inverse[rightmost.indices].max()) + 1
        return start, end

    def bank_of_block(self, num_banks: int) -> np.ndarray:
        """Round-robin block→bank assignment (consecutive blocks differ)."""
        if num_banks < 1:
            raise ValueError(f"num_banks must be >= 1, got {num_banks}")
        return np.arange(self.num_blocks, dtype=np.int64) % num_banks

    def reorder(self, array: np.ndarray) -> np.ndarray:
        """Apply the layout to a per-point array (rows follow the points)."""
        array = np.asarray(array)
        if array.shape[0] != self.num_points:
            raise ValueError(
                f"array has {array.shape[0]} rows, layout covers {self.num_points} points"
            )
        return array[self.permutation]
