"""Fig. 13 — speedup and energy saving over GPU for all accelerators.

The headline evaluation: Mesorasi / PointAcc / Crescent / FractalCloud,
normalised to GPU performance, across the Table I workloads (small-scale
object tasks at 1-4 K points) and the S3DIS-Test sweeps (8 K-289 K).

Expected shape (paper): small-scale FractalCloud ≈ 5-26x over GPU with
Crescent within ~20%; large-scale PointAcc and Crescent fall to ≈GPU or
below while FractalCloud grows to tens of x; energy savings vs GPU reach
three orders of magnitude at 289 K.
"""

from repro.analysis import format_table, geomean
from repro.hw import AcceleratorSim, GPUModel, SOTA_CONFIGS
from repro.networks import get_workload

from _common import emit

SMALL = [
    ("PN++(c)", 1024), ("PNXt(c)", 2048), ("PN++(ps)", 2048),
    ("PNXt(ps)", 4096), ("PN++(s)", 4096),
]
LARGE = [
    ("PNXt(s)", 8192), ("PNXt(s)", 33_000), ("PNXt(s)", 131_000), ("PNXt(s)", 289_000),
    ("PVr(s)", 8192), ("PVr(s)", 33_000), ("PVr(s)", 131_000), ("PVr(s)", 289_000),
]
ACCELERATORS = list(SOTA_CONFIGS)


def run_fig13():
    gpu = GPUModel()
    sims = {name: AcceleratorSim(cfg) for name, cfg in SOTA_CONFIGS.items()}
    speed_rows, energy_rows = [], []
    speedups = {name: {"small": [], "large": []} for name in ACCELERATORS}
    energies = {name: {"small": [], "large": []} for name in ACCELERATORS}
    for group, cases in (("small", SMALL), ("large", LARGE)):
        for key, n in cases:
            spec = get_workload(key)
            g = gpu.run(spec, n)
            srow, erow = [f"{key}@{n}"], [f"{key}@{n}"]
            for name in ACCELERATORS:
                r = sims[name].run(spec, n)
                s = g.latency_s / r.latency_s
                e = g.energy_j / r.energy_j
                speedups[name][group].append(s)
                energies[name][group].append(e)
                srow.append(f"{s:.1f}")
                erow.append(f"{e:.0f}")
            speed_rows.append(srow)
            energy_rows.append(erow)

    summary = []
    for name in ACCELERATORS:
        summary.append([
            name,
            f"{geomean(speedups[name]['small']):.1f}",
            f"{geomean(speedups[name]['large']):.1f}",
            f"{geomean(energies[name]['small']):.0f}",
            f"{geomean(energies[name]['large']):.0f}",
        ])
    parts = [
        format_table(["workload"] + ACCELERATORS, speed_rows,
                     title="Fig. 13(a) — speedup over GPU (higher is better)"),
        "",
        format_table(["workload"] + ACCELERATORS, energy_rows,
                     title="Fig. 13(b) — energy saving over GPU (higher is better)"),
        "",
        format_table(
            ["accelerator", "speedup small", "speedup large",
             "energy small", "energy large"],
            summary,
            title="Geomean summary (paper: FractalCloud 19.4x/27.4x speedup vs GPU; "
                  "21.7x avg over SOTA accelerators; 27x energy over SOTA)",
        ),
    ]
    return "\n".join(parts), speedups, energies


def test_fig13_speedup_energy(benchmark):
    (table, speedups, energies) = benchmark.pedantic(run_fig13, rounds=1, iterations=1)
    emit("fig13_speedup_energy", table)

    fract_small = geomean(speedups["FractalCloud"]["small"])
    fract_large = geomean(speedups["FractalCloud"]["large"])
    # FractalCloud clearly beats the GPU at both scales and its advantage
    # grows with scale.
    assert fract_small > 4
    assert fract_large > fract_small
    # Baselines collapse at large scale (the crossover of Fig. 13).
    assert geomean(speedups["PointAcc"]["large"]) < 1.5
    assert geomean(speedups["Crescent"]["large"]) < 4
    # FractalCloud vs SOTA accelerators: double-digit average at large scale.
    vs_pointacc = geomean(
        [f / p for f, p in zip(speedups["FractalCloud"]["large"],
                               speedups["PointAcc"]["large"])]
    )
    assert vs_pointacc > 15
    # Energy savings vs GPU reach 3 orders of magnitude at large scale.
    assert geomean(energies["FractalCloud"]["large"]) > 500
