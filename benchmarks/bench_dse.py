"""Extension bench — hardware design-space exploration.

Applies the paper's greedy-DSE methodology (§VI-C, used there for the
threshold) to the micro-architectural knobs: RSPU core count and lanes
per core, reporting the latency/area trade-off and the Pareto frontier.
The shipping configuration (16 cores x 8 lanes, 1.5 mm²) should sit on
or near the frontier.
"""

from repro.analysis import format_table
from repro.hw.dse import pareto_frontier, sweep
from repro.networks import get_workload

from _common import emit


def run_dse():
    points = sweep(
        get_workload("PNXt(s)"), 33_000,
        unit_counts=(4, 8, 16, 32),
        lane_counts=(4, 8, 16),
    )
    frontier = pareto_frontier(points)
    frontier_keys = {(p.num_point_units, p.lanes_per_unit) for p in frontier}
    rows = []
    for p in sorted(points, key=lambda p: p.area_mm2):
        rows.append([
            p.num_point_units, p.lanes_per_unit,
            f"{p.area_mm2:.2f}",
            f"{p.latency_s * 1e3:.3f}",
            f"{p.energy_j * 1e3:.2f}",
            "*" if (p.num_point_units, p.lanes_per_unit) in frontier_keys else "",
        ])
    table = format_table(
        ["RSPU cores", "lanes/core", "area mm2", "latency ms", "energy mJ", "Pareto"],
        rows,
        title="Design-space exploration @ 33K PNXt(s) "
              "(shipping config: 16 cores x 8 lanes, 1.5 mm2)",
    )
    return table, points, frontier


def test_dse(benchmark):
    table, points, frontier = benchmark.pedantic(run_dse, rounds=1, iterations=1)
    emit("dse", table)
    assert 1 <= len(frontier) <= len(points)
    # The shipping configuration is not dominated by a smaller design
    # that is also faster.
    shipping = next(p for p in points
                    if p.num_point_units == 16 and p.lanes_per_unit == 8)
    dominating = [
        p for p in points
        if p.area_mm2 < shipping.area_mm2 and p.latency_s < shipping.latency_s
    ]
    assert not dominating
