"""Point-operation backends: exact global search vs block-parallel.

The PNN backbones never call point operations directly; they go through a
backend, so the *same trained architecture* can run with the original
global-search operations (PointAcc baseline), or with block-wise
operations over any partitioning strategy (uniform / KD-tree / octree /
Fractal).  The accuracy experiments (Fig. 3, 14, 17) are exactly this
swap.
"""

from __future__ import annotations

import abc

import numpy as np

from ..core import blocks as core_blocks
from ..core import bppo
from ..geometry import ops as exact_ops
from ..partition.base import Partitioner, get_partitioner
from ..runtime.cache import PartitionCache

__all__ = ["PointOpsBackend", "ExactBackend", "BlockBackend", "make_backend"]


class PointOpsBackend(abc.ABC):
    """Interface consumed by the network stages."""

    name: str = "abstract"

    @abc.abstractmethod
    def sample(self, coords: np.ndarray, num_samples: int) -> np.ndarray:
        """FPS-style sampling: ``(num_samples,)`` indices into ``coords``."""

    @abc.abstractmethod
    def group(
        self, coords: np.ndarray, center_indices: np.ndarray, radius: float, k: int
    ) -> np.ndarray:
        """Ball-query grouping: ``(m, k)`` indices into ``coords``."""

    @abc.abstractmethod
    def interpolate_indices(
        self,
        coords: np.ndarray,
        center_indices: np.ndarray,
        candidate_indices: np.ndarray,
        k: int = 3,
    ) -> tuple[np.ndarray, np.ndarray]:
        """KNN + inverse-distance weights for feature propagation.

        Returns ``(indices, weights)`` of shapes ``(m, k)``; indices are
        global point ids drawn from ``candidate_indices``; weight rows
        sum to one.
        """


def _idw_weights(centers: np.ndarray, neighbors_xyz: np.ndarray) -> np.ndarray:
    d2 = np.sum((centers[:, None, :] - neighbors_xyz) ** 2, axis=2)
    inv = 1.0 / np.maximum(d2, 1e-8)
    return inv / inv.sum(axis=1, keepdims=True)


class ExactBackend(PointOpsBackend):
    """Original global-search operations (accuracy-lossless anchor)."""

    name = "exact"

    def sample(self, coords: np.ndarray, num_samples: int) -> np.ndarray:
        return exact_ops.farthest_point_sample(coords, num_samples)

    def group(self, coords, center_indices, radius, k):
        return exact_ops.ball_query(coords[center_indices], coords, radius, k)

    def interpolate_indices(self, coords, center_indices, candidate_indices, k=3):
        candidate_indices = np.asarray(candidate_indices, dtype=np.int64)
        local = exact_ops.knn_search(
            coords[center_indices], coords[candidate_indices], k
        )
        idx = candidate_indices[local]
        weights = _idw_weights(coords[center_indices], coords[idx])
        return idx, weights


class BlockBackend(PointOpsBackend):
    """Block-parallel operations over a partitioning strategy.

    Partitions are cached per coordinate set through the runtime's
    shared :class:`~repro.runtime.cache.PartitionCache` (keyed by content
    hash), so a forward pass that calls sample/group/interpolate on the
    same level partitions once — matching the hardware, where Fractal
    runs once per stage input.

    ``batched=True`` (the default) routes the point operations through
    the stacked fast paths of :mod:`repro.core.bppo`; the parity suite
    guarantees bit-identical results, so the flag only affects speed.
    """

    def __init__(
        self, partitioner: Partitioner, cache_size: int = 8, *, batched: bool = True
    ):
        self.partitioner = partitioner
        self.name = partitioner.name
        self.batched = batched
        self._cache = PartitionCache(partitioner, maxsize=cache_size)

    def _structure(self, coords: np.ndarray) -> core_blocks.BlockStructure:
        structure, _ = self._cache.get(coords)
        return structure

    def sample(self, coords: np.ndarray, num_samples: int) -> np.ndarray:
        structure = self._structure(coords)
        fps = bppo.block_fps_batched if self.batched else bppo.block_fps
        indices, _ = fps(structure, coords, num_samples)
        return indices

    def group(self, coords, center_indices, radius, k):
        structure = self._structure(coords)
        ball = bppo.block_ball_query_batched if self.batched else bppo.block_ball_query
        neighbors, _ = ball(structure, coords, center_indices, radius, k)
        return neighbors

    def interpolate_indices(self, coords, center_indices, candidate_indices, k=3):
        structure = self._structure(coords)
        knn = bppo.block_knn_batched if self.batched else bppo.block_knn
        idx, _ = knn(structure, coords, center_indices, candidate_indices, k)
        weights = _idw_weights(
            np.asarray(coords, dtype=np.float64)[center_indices],
            np.asarray(coords, dtype=np.float64)[idx],
        )
        return idx, weights


def make_backend(
    name: str, *, max_points_per_block: int = 64, batched: bool = True
) -> PointOpsBackend:
    """Factory: ``exact`` or any partitioner name from :mod:`repro.partition`."""
    if name == "exact":
        return ExactBackend()
    return BlockBackend(
        get_partitioner(name, max_points_per_block=max_points_per_block),
        batched=batched,
    )
