"""Windowed micro-batching: whole-cloud fusion for unbounded streams.

``BatchExecutor.run(fuse=True)`` needs the whole batch in hand before it
can plan fused buckets, so the streaming path — the one that actually
models sensor and serving traffic — never benefited from fusion.  The
:class:`WindowedServer` closes that gap with the classic serving trade:
hold each request for at most ``T`` milliseconds, batch whatever arrived
(up to ``W`` clouds), and run the batch through the same bin-packing
planner and fused kernels as the offline path.

The loop:

1. a puller thread drains the source iterator into a bounded queue
   (capacity ``engine.in_flight``), so a slow consumer stalls the pull,
   never memory; including the window being assembled, at most
   ``in_flight + max_clouds`` clouds are ever held ahead of emission;
2. the scheduler opens a window at the first arrival and closes it after
   ``window.max_clouds`` clouds or ``window.max_wait`` seconds,
   whichever comes first — occupancy rides the traffic rate;
3. the window dedups exact repeats (against this window *and* the last
   ``engine.reuse_window`` distinct clouds of the stream), plans fused
   buckets for the rest, executes via the engine's fused machinery, and
   emits :class:`~repro.runtime.executor.CloudResult`\\ s in submission
   order.

Results are bit-identical to ``run(fuse=True)`` over the same finite
stream, and therefore to the serial per-cloud reference — window
boundaries affect latency and throughput, never a single index or bit.

``W`` and ``T`` may be static (:class:`WindowConfig`) or controlled
online by an :class:`~repro.serve.controller.AdaptiveWindow` (pass
``controller=``); multi-stream serving with fairness across clients
lives one layer up in :mod:`repro.serve.tenancy`.
"""

from __future__ import annotations

import dataclasses
import queue
import threading
from collections import OrderedDict
from collections.abc import Iterable, Iterator
from dataclasses import dataclass

import numpy as np

from .. import obs
from ..runtime.cache import result_key
from ..runtime.executor import BatchExecutor, CloudResult, PipelineSpec, _as_cloud
from .controller import AdaptiveWindow
from .telemetry import ServeTelemetry

__all__ = ["WindowConfig", "WindowedServer"]

#: Queue markers from the puller thread: source exhausted / source raised.
_DONE = object()


@dataclass(frozen=True)
class WindowConfig:
    """Micro-batching window: close after ``max_clouds`` arrivals or
    ``max_wait`` seconds past the first arrival, whichever comes first.

    ``max_wait`` is the latency an idle-ish stream pays for batching;
    ``max_clouds`` is the biggest fused plan a busy stream can build.
    """

    max_clouds: int = 16
    max_wait: float = 0.05

    def __post_init__(self):
        if self.max_clouds < 1:
            raise ValueError(f"max_clouds must be >= 1, got {self.max_clouds}")
        if self.max_wait <= 0:
            raise ValueError(f"max_wait must be > 0, got {self.max_wait}")


@dataclass
class _Arrival:
    index: int
    arrived: float
    coords: np.ndarray
    features: np.ndarray | None
    key: bytes | None


class WindowedServer:
    """Serve an unbounded cloud stream through windowed fused execution.

    Usage::

        engine = BatchExecutor("fractal", block_size=128, fuse_max_spread=4.0)
        server = WindowedServer(engine, WindowConfig(max_clouds=16,
                                                     max_wait=0.02))
        for result in server.serve(sensor_frames(), pipeline):
            consume(result)                      # submission order
        print(server.telemetry.report(wall).format())

    Args:
        engine: the :class:`BatchExecutor` that executes windows; its
            fusion caps steer the bucket planner, ``in_flight`` bounds
            the pull-ahead, and ``reuse_results`` / ``reuse_window``
            drive cross-window dedup.
        window: the :class:`WindowConfig` (default 16 clouds / 50 ms).
        controller: an :class:`~repro.serve.controller.AdaptiveWindow`
            that resizes ``W``/``T`` online within its configured bounds
            (arrival rate + rolling p95); when given it replaces the
            static ``window`` limits (which then only size telemetry).
        telemetry: a :class:`ServeTelemetry` to record into; one is
            created (sized to the window) when omitted.

    The server closes like the engine it wraps: :meth:`close` joins the
    engine's persistent worker pool (also available as a context
    manager).
    """

    def __init__(
        self,
        engine: BatchExecutor,
        window: WindowConfig | None = None,
        *,
        controller: AdaptiveWindow | None = None,
        telemetry: ServeTelemetry | None = None,
    ):
        self.engine = engine
        self.window = window or WindowConfig()
        self.controller = controller
        capacity = (
            controller.config.max_clouds if controller else self.window.max_clouds
        )
        self.telemetry = telemetry or ServeTelemetry(window_capacity=capacity)

    def close(self) -> None:
        """Join the engine's persistent worker pool."""
        self.engine.close()

    def __enter__(self) -> "WindowedServer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _limits(self) -> tuple[int, float]:
        """The next window's ``(W, T)`` — adaptive when a controller is
        attached, the static config otherwise."""
        if self.controller is not None:
            return self.controller.limits()
        return (self.window.max_clouds, self.window.max_wait)

    def serve(
        self,
        clouds: Iterable[object],
        pipeline: PipelineSpec | None = None,
        *,
        on_stats=None,
    ) -> Iterator[CloudResult]:
        """Yield one :class:`CloudResult` per cloud, in submission order.

        ``on_stats`` (e.g. ``print``) receives the periodic telemetry
        line every ``telemetry.every`` windows.  The source may be
        unbounded; closing the generator stops the puller thread.
        """
        pipeline = pipeline or PipelineSpec()
        inbox: queue.Queue = queue.Queue(maxsize=max(1, self.engine.in_flight))
        stop = threading.Event()

        def put(item) -> None:
            while not stop.is_set():
                try:
                    inbox.put(item, timeout=0.05)
                    return
                except queue.Full:
                    continue

        def pull() -> None:
            try:
                for cloud in clouds:
                    put((cloud, obs.now()))
                    if stop.is_set():
                        return
            except BaseException as exc:  # re-raised on the consumer side
                put((_DONE, exc))
            else:
                put((_DONE, None))

        puller = threading.Thread(
            target=pull, name="repro-serve-pull", daemon=True
        )
        puller.start()
        # Cross-window dedup: content -> canonical CloudResult of the last
        # `reuse_window` distinct clouds (same bound as stream()).
        done: OrderedDict[bytes, CloudResult] = OrderedDict()
        next_index = 0
        source_error: BaseException | None = None
        try:
            exhausted = False
            while not exhausted:
                item = inbox.get()
                if item[0] is _DONE:
                    source_error = item[1]
                    break
                batch = [self._admit(item, next_index)]
                next_index += 1
                max_clouds, max_wait = self._limits()
                deadline = obs.now() + max_wait
                timed_out = False
                while len(batch) < max_clouds:
                    remaining = deadline - obs.now()
                    if remaining <= 0:
                        timed_out = True
                        break
                    try:
                        item = inbox.get(timeout=remaining)
                    except queue.Empty:
                        timed_out = True
                        break
                    if item[0] is _DONE:
                        source_error = item[1]
                        exhausted = True
                        break
                    batch.append(self._admit(item, next_index))
                    next_index += 1
                yield from self._run_window(
                    batch, pipeline, done, inbox.qsize(), timed_out, on_stats
                )
            if source_error is not None:
                raise source_error
        finally:
            stop.set()
            # Bounded: put() polls the stop event every 50 ms, so the
            # puller exits promptly unless the *source* iterator itself
            # is blocked — then the timeout abandons the daemon thread
            # rather than hanging shutdown.
            puller.join(timeout=1.0)

    # -- internals -----------------------------------------------------------

    def _admit(self, item: tuple, index: int) -> _Arrival:
        """Normalise one queued arrival and key it for dedup."""
        cloud, arrived = item
        coords, features = _as_cloud(cloud)
        key = (
            result_key(coords, features) if self.engine.reuse_results else None
        )
        if self.controller is not None:
            self.controller.observe_arrival(arrived)
        return _Arrival(index, arrived, coords, features, key)

    def _run_window(
        self,
        batch: list[_Arrival],
        pipeline: PipelineSpec,
        done: OrderedDict,
        queue_depth: int,
        timed_out: bool,
        on_stats,
    ) -> Iterator[CloudResult]:
        """Dedup, plan, execute, and emit one closed window."""
        first_arrival = min(arrival.arrived for arrival in batch)
        with (
            obs.span(
                "serve.window",
                start=first_arrival,
                clouds=len(batch),
                timed_out=timed_out,
            )
            if obs.enabled()
            else obs.NULL_SPAN
        ):
            uniques: list[tuple[int, np.ndarray, np.ndarray | None]] = []
            canonical: dict[bytes, int] = {}
            replays: list[tuple[int, bytes]] = []
            dup_of: dict[int, int] = {}
            for arrival in batch:
                key = arrival.key
                if key is not None and key in done:
                    replays.append((arrival.index, key))
                elif key is not None and key in canonical:
                    dup_of[arrival.index] = canonical[key]
                else:
                    if key is not None:
                        canonical[key] = arrival.index
                    uniques.append(
                        (arrival.index, arrival.coords, arrival.features)
                    )

            exec_start = obs.now()
            # Queue wait is everything between the window's first arrival
            # and execution start — recorded retroactively as a child so
            # the summarizer books it under "queueing".
            obs.record("serve.wait", first_arrival, exec_start)
            results, plan = self.engine.execute_window(uniques, pipeline)
            exec_seconds = obs.now() - exec_start
            if self.controller is not None and uniques:
                self.controller.observe_service(exec_seconds, len(uniques))
            obs.observe("repro_serve_window_seconds", exec_seconds)
            obs.inc("repro_serve_clouds", len(batch))
            obs.inc("repro_serve_windows")
            for index, key in replays:
                done.move_to_end(key)
                results[index] = dataclasses.replace(
                    done[key], index=index, cache_hit=True, seconds=0.0,
                    reused=True,
                )
            for index, original in dup_of.items():
                results[index] = dataclasses.replace(
                    results[original], index=index, cache_hit=True,
                    seconds=0.0, reused=True,
                )
            for key, index in canonical.items():
                done[key] = results[index]
                while len(done) > self.engine.reuse_window:
                    done.popitem(last=False)

            sources = [
                results[index].partition_source for index, _, _ in uniques
            ]
            self.telemetry.record_window(
                size=len(batch),
                buckets=plan.buckets,
                fused=plan.fused_clouds,
                singletons=plan.singleton_clouds,
                reused=len(replays) + len(dup_of),
                queue_depth=queue_depth,
                timed_out=timed_out,
                cold=sources.count("cold"),
                patched=sources.count("patched") + sources.count("reused"),
                warm=sources.count("warm"),
            )
        for arrival in batch:
            latency = obs.now() - arrival.arrived
            self.telemetry.record_latency(latency)
            if self.controller is not None:
                self.controller.observe_latency(latency)
            yield results[arrival.index]
        if self.controller is not None:
            self.controller.update()
        line = self.telemetry.tick()
        if line is not None and on_stats is not None:
            on_stats(line)
