"""DESIGN §4.3 ablation — dimension cycling vs longest-extent splitting.

The paper cycles x→y→z per level to avoid coplanar pathologies (§VI-D);
an obvious alternative splits the longest extent.  This ablation compares
block balance, tree depth, and coverage quality of both rules across the
three dataset families.
"""

import numpy as np

from repro.analysis import format_table
from repro.core import FractalConfig, dispatch, fractal_partition
from repro.datasets import load_cloud
from repro.geometry import farthest_point_sample, pairwise_sq_dists

from _common import emit

DATASETS = [("modelnet40", 4096, 64), ("s3dis", 33_000, 256), ("lidar", 33_000, 256)]


def _mean_coverage(coords, sampled):
    """Mean nearest-sample distance (outlier-robust coverage)."""
    return float(np.sqrt(pairwise_sq_dists(coords, coords[sampled]).min(axis=1)).mean())


def run_splitrule():
    rows = []
    stats = {}
    for dataset, n, th in DATASETS:
        coords = load_cloud(dataset, n, seed=0).coords.astype(np.float64)
        exact_cov = _mean_coverage(coords, farthest_point_sample(coords, n // 4))
        for rule in ("cycle", "longest"):
            tree = fractal_partition(coords, FractalConfig(threshold=th, split_rule=rule))
            sampled, _ = dispatch.run_op(
                "fps", tree.block_structure(), coords, n // 4,
                num_centers=n // 4,
            )
            cov = _mean_coverage(coords, sampled) / exact_cov
            balance = tree.block_sizes.max() / tree.block_sizes.mean()
            stats[(dataset, rule)] = (tree.num_levels, balance, cov)
            rows.append([
                dataset, rule, tree.num_blocks, tree.num_levels,
                f"{balance:.2f}", f"{cov:.2f}",
            ])
    table = format_table(
        ["dataset", "rule", "blocks", "levels", "balance", "FPS cov ratio"],
        rows,
        title="Ablation — split rule: dimension cycling (paper) vs longest extent",
    )
    return table, stats


def test_ablation_splitrule(benchmark):
    table, stats = benchmark.pedantic(run_splitrule, rounds=1, iterations=1)
    emit("ablation_splitrule", table)
    # Both rules produce usable partitions on every dataset family.
    for (dataset, rule), (levels, balance, cov) in stats.items():
        assert levels >= 1, (dataset, rule)
        assert balance < 4.0, (dataset, rule)
        assert cov < 3.0, (dataset, rule)  # mean coverage stays near exact
