"""Parameter-sweep helpers used by the threshold/scale experiments."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core import FractalConfig, dispatch, fractal_partition
from ..geometry import coverage_radius, farthest_point_sample
from ..hw import AcceleratorSim, FRACTALCLOUD
from ..networks.workloads import WorkloadSpec

__all__ = ["ThresholdPoint", "threshold_sweep", "scale_sweep"]


@dataclass
class ThresholdPoint:
    """One point of the Fig. 17 threshold sweep."""

    threshold: int | None  # None = no Fractal (global ops)
    latency_s: float
    speedup_vs_no_fractal: float
    coverage_ratio: float  # block-FPS coverage vs exact FPS (1.0 = exact)


def threshold_sweep(
    spec: WorkloadSpec,
    num_points: int,
    thresholds: list[int | None],
    *,
    coords: np.ndarray | None = None,
    sample_fraction: float = 0.25,
    seed: int = 0,
) -> list[ThresholdPoint]:
    """Hardware latency + sampling-quality across Fractal thresholds.

    Quality proxy: the coverage ratio of block-wise FPS against exact FPS
    on the same cloud — the geometric driver of the accuracy trend in
    Fig. 17 (tiny thresholds distort sampling; huge ones lose speed).
    """
    from dataclasses import replace as dc_replace

    if coords is None:
        from ..datasets import load_cloud

        coords = load_cloud(spec.dataset, num_points, seed).coords.astype(np.float64)
    n_eval = min(len(coords), 4096)
    rng = np.random.default_rng(seed)
    eval_coords = coords[rng.choice(len(coords), size=n_eval, replace=False)]
    n_samples = max(int(n_eval * sample_fraction), 8)
    exact_cov = coverage_radius(
        eval_coords, farthest_point_sample(eval_coords, n_samples)
    )

    base_cfg = dc_replace(
        FRACTALCLOUD, name="NoFractal", partitioner="none",
        block_sampling=False, block_grouping=False,
        block_interpolation=False, block_gathering=False,
    )
    base_latency = AcceleratorSim(base_cfg).run(spec, num_points, seed).latency_s

    points: list[ThresholdPoint] = []
    for th in thresholds:
        if th is None:
            points.append(ThresholdPoint(None, base_latency, 1.0, 1.0))
            continue
        cfg = dc_replace(FRACTALCLOUD, block_size=th)
        latency = AcceleratorSim(cfg).run(spec, num_points, seed).latency_s
        tree = fractal_partition(eval_coords, FractalConfig(threshold=max(th, 2)))
        idx, _ = dispatch.run_op(
            "fps", tree.block_structure(), eval_coords, n_samples,
            num_centers=n_samples,
        )
        cov = coverage_radius(eval_coords, idx)
        points.append(
            ThresholdPoint(
                threshold=th,
                latency_s=latency,
                speedup_vs_no_fractal=base_latency / latency,
                coverage_ratio=cov / exact_cov if exact_cov > 0 else 1.0,
            )
        )
    return points


def scale_sweep(
    sim: AcceleratorSim,
    spec: WorkloadSpec,
    scales: list[int],
    seed: int = 0,
):
    """Latency/energy/traffic across input scales (Fig. 1 backbone)."""
    return [sim.run(spec, n, seed) for n in scales]
