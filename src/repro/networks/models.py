"""Trainable PNN backbones (PointNet++ / PointNeXt / PointVector variants).

Small-but-real versions of the three evaluated networks, sharing one
set-abstraction/feature-propagation skeleton and differing exactly where
the real architectures differ:

- **pointnet2** — plain SA stages, max pooling (Qi et al., NeurIPS'17).
- **pointnext** — adds a pointwise stem and inverted-residual blocks
  after each SA stage (Qian et al., NeurIPS'22).
- **pointvector** — adds the stem and a max+mean vector-aggregation
  fusion in place of pure max pooling (Deng et al., CVPR'23).

They are trained from scratch in numpy by :mod:`repro.networks.train`;
the accuracy experiments swap the point-operation backend and retrain,
exactly like the paper retrains its modified networks.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .backends import PointOpsBackend
from .layers import Module, SharedMLP
from .modules import FPStage, GlobalSA, SAStage
from .msg import SAStageMSG

__all__ = ["ArchSpec", "ARCHS", "PNNClassifier", "PNNClassifierMSG", "PNNSegmenter"]


@dataclass(frozen=True)
class ArchSpec:
    """Variant switches distinguishing the three backbones."""

    name: str
    stem_channels: int  # 0 = no stem MLP
    pooling: str  # "max" | "maxmean"
    post_blocks: int  # InvResBlocks per SA stage


ARCHS: dict[str, ArchSpec] = {
    "pointnet2": ArchSpec("pointnet2", 0, "max", 0),
    "pointnext": ArchSpec("pointnext", 32, "max", 1),
    "pointvector": ArchSpec("pointvector", 32, "maxmean", 0),
}


def _resolve(arch: str | ArchSpec) -> ArchSpec:
    if isinstance(arch, ArchSpec):
        return arch
    if arch not in ARCHS:
        raise ValueError(f"unknown architecture {arch!r}; expected one of {list(ARCHS)}")
    return ARCHS[arch]


class PNNClassifier(Module):
    """Two-stage SA classifier with a global pooling head (Fig. 2(d), top).

    Args:
        num_classes: output classes.
        num_points: nominal input size (stage widths derive from it).
        arch: one of ``pointnet2 | pointnext | pointvector``.
        seed: parameter-init seed.
    """

    def __init__(
        self,
        num_classes: int,
        num_points: int = 1024,
        arch: str | ArchSpec = "pointnet2",
        seed: int = 0,
    ):
        spec = _resolve(arch)
        rng = np.random.default_rng(seed)
        self.spec = spec
        self.num_classes = num_classes

        c0 = spec.stem_channels
        self.stem = SharedMLP([3, c0], rng) if c0 else None
        self.sa1 = SAStage(
            n_out=max(num_points // 4, 32), radius=0.25, k=16,
            in_channels=c0, mlp_widths=[32, 64], rng=rng,
            pooling=spec.pooling, post_blocks=spec.post_blocks,
        )
        self.sa2 = SAStage(
            n_out=max(num_points // 16, 16), radius=0.5, k=16,
            in_channels=64, mlp_widths=[64, 128], rng=rng,
            pooling=spec.pooling, post_blocks=spec.post_blocks,
        )
        self.global_sa = GlobalSA(128, [256], rng)
        self.head = SharedMLP([256, 128, num_classes], rng, final_relu=False)

    def forward(
        self, coords: np.ndarray, backend: PointOpsBackend, agg: str = "auto"
    ) -> np.ndarray:
        """Logits ``(num_classes,)`` for one cloud."""
        feats = self.stem.forward(coords) if self.stem else None
        c1, f1, _ = self.sa1.forward(coords, feats, backend, agg=agg)
        c2, f2, _ = self.sa2.forward(c1, f1, backend, agg=agg)
        g = self.global_sa.forward(c2, f2)
        return self.head.forward(g[None, :])[0]

    def backward(self, grad_logits: np.ndarray) -> None:
        grad = self.head.backward(grad_logits[None, :])[0]
        grad_f2 = self.global_sa.backward(grad)
        grad_f1 = self.sa2.backward(grad_f2)
        grad_f0 = self.sa1.backward(grad_f1)
        if self.stem is not None and grad_f0 is not None:
            self.stem.backward(grad_f0)


class PNNClassifierMSG(Module):
    """Multi-scale-grouping classifier (PointNet++-MSG, Fig. 2(d) top).

    Same two-level skeleton as :class:`PNNClassifier`, but each level
    groups every centre at two radii and concatenates the per-scale
    pooled features — the density-robust variant, and the stage shape
    where delayed aggregation pays most (one neighbour search and one
    gathered MLP pass *per scale* under the eager order, against one
    per-point MLP pass per scale under the delayed order).
    """

    def __init__(
        self,
        num_classes: int,
        num_points: int = 1024,
        seed: int = 0,
    ):
        rng = np.random.default_rng(seed)
        self.num_classes = num_classes
        self.sa1 = SAStageMSG(
            n_out=max(num_points // 4, 32),
            scales=[(0.2, 8), (0.4, 16)],
            in_channels=0, mlp_widths=[32, 64], rng=rng,
        )
        self.sa2 = SAStageMSG(
            n_out=max(num_points // 16, 16),
            scales=[(0.4, 8), (0.8, 16)],
            in_channels=self.sa1.out_channels, mlp_widths=[64, 128], rng=rng,
        )
        self.global_sa = GlobalSA(self.sa2.out_channels, [256], rng)
        self.head = SharedMLP([256, 128, num_classes], rng, final_relu=False)

    def forward(
        self, coords: np.ndarray, backend: PointOpsBackend, agg: str = "auto"
    ) -> np.ndarray:
        """Logits ``(num_classes,)`` for one cloud."""
        c1, f1, _ = self.sa1.forward(coords, None, backend, agg=agg)
        c2, f2, _ = self.sa2.forward(c1, f1, backend, agg=agg)
        g = self.global_sa.forward(c2, f2)
        return self.head.forward(g[None, :])[0]

    def backward(self, grad_logits: np.ndarray) -> None:
        grad = self.head.backward(grad_logits[None, :])[0]
        grad_f2 = self.global_sa.backward(grad)
        grad_f1 = self.sa2.backward(grad_f2)
        self.sa1.backward(grad_f1)


class PNNSegmenter(Module):
    """SA encoder + FP decoder per-point segmenter (Fig. 2(d), bottom).

    Same two SA stages as the classifier, mirrored by two feature-
    propagation stages with skip connections, ending in a per-point head.
    """

    def __init__(
        self,
        num_classes: int,
        num_points: int = 1024,
        arch: str | ArchSpec = "pointnet2",
        seed: int = 0,
    ):
        spec = _resolve(arch)
        rng = np.random.default_rng(seed)
        self.spec = spec
        self.num_classes = num_classes

        c0 = spec.stem_channels
        self.stem = SharedMLP([3, c0], rng) if c0 else None
        self.sa1 = SAStage(
            n_out=max(num_points // 4, 32), radius=0.25, k=16,
            in_channels=c0, mlp_widths=[32, 64], rng=rng,
            pooling=spec.pooling, post_blocks=spec.post_blocks,
        )
        self.sa2 = SAStage(
            n_out=max(num_points // 16, 16), radius=0.5, k=16,
            in_channels=64, mlp_widths=[64, 128], rng=rng,
            pooling=spec.pooling, post_blocks=spec.post_blocks,
        )
        self.fp2 = FPStage(sparse_channels=128, skip_channels=64, mlp_widths=[128], rng=rng)
        self.fp1 = FPStage(sparse_channels=128, skip_channels=c0, mlp_widths=[128, 64], rng=rng)
        self.head = SharedMLP([64, num_classes], rng, final_relu=False)

    def forward(
        self, coords: np.ndarray, backend: PointOpsBackend, agg: str = "auto"
    ) -> np.ndarray:
        """Per-point logits ``(n, num_classes)``."""
        feats = self.stem.forward(coords) if self.stem else None
        c1, f1, i1 = self.sa1.forward(coords, feats, backend, agg=agg)
        c2, f2, i2 = self.sa2.forward(c1, f1, backend, agg=agg)
        p1 = self.fp2.forward(c1, f1, i2, f2, backend)
        p0 = self.fp1.forward(coords, feats, i1, p1, backend)
        return self.head.forward(p0)

    def backward(self, grad_logits: np.ndarray) -> None:
        grad_p0 = self.head.backward(grad_logits)
        grad_p1, grad_skip0 = self.fp1.backward(grad_p0)
        grad_f2, grad_skip1 = self.fp2.backward(grad_p1)
        grad_f1 = self.sa2.backward(grad_f2)
        if grad_skip1 is not None:
            grad_f1 = grad_f1 + grad_skip1
        grad_f0 = self.sa1.backward(grad_f1)
        if self.stem is not None:
            total = None
            if grad_f0 is not None:
                total = grad_f0
            if grad_skip0 is not None:
                total = grad_skip0 if total is None else total + grad_skip0
            if total is not None:
                self.stem.backward(total)
