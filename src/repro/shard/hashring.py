"""Consistent hashing for the sharded serving front-end.

The router's placement problem: spread request keys across N engine
shards so that (a) every shard owns a near-equal share, (b) the same key
always lands on the same shard — the property that keeps each shard's
``PartitionCache`` and dedup window hot for its slice of the catalog —
and (c) adding or removing one shard remaps only ~1/N of the key space,
so a rebalance never flushes every warm cache at once.

:class:`HashRing` is the classic construction: every shard contributes
``replicas`` virtual nodes, each a 64-bit blake2b point on a ring; a key
hashes to a point and is owned by the first virtual node clockwise from
it.  The ring is rebuilt from the *sorted* shard set on every membership
change, so routing is a pure function of the member set — two routers
holding the same shards agree on every key regardless of join order.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["HashRing"]


def _point(label: bytes) -> int:
    """64-bit ring position of one label (virtual node or key)."""
    return int.from_bytes(
        hashlib.blake2b(label, digest_size=8).digest(), "big"
    )


class HashRing:
    """Consistent-hash ring with virtual nodes.

    Args:
        shards: initial shard names.
        replicas: virtual nodes per shard.  More replicas tighten the
            balance (share deviation shrinks like ``1/sqrt(replicas)``)
            at a small ring-rebuild cost; 128 keeps every shard's share
            within roughly a factor of two of fair for small fleets.
    """

    def __init__(self, shards=(), *, replicas: int = 128):
        if replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {replicas}")
        self.replicas = replicas
        self._shards: set[str] = set()
        self._points = np.empty(0, dtype=np.uint64)
        self._owners: list[str] = []
        for shard in shards:
            self.add(shard)

    # -- membership ----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._shards)

    def __contains__(self, shard: str) -> bool:
        return shard in self._shards

    @property
    def shards(self) -> tuple[str, ...]:
        """Member shards, sorted (the canonical order the ring is built
        from)."""
        return tuple(sorted(self._shards))

    def add(self, shard: str) -> None:
        """Add a shard; no-op if already a member."""
        if not shard:
            raise ValueError("shard name must be non-empty")
        if shard in self._shards:
            return
        self._shards.add(shard)
        self._rebuild()

    def remove(self, shard: str) -> None:
        """Remove a shard; future keys rehash onto the survivors."""
        if shard not in self._shards:
            raise KeyError(f"unknown shard {shard!r}")
        self._shards.remove(shard)
        self._rebuild()

    def _rebuild(self) -> None:
        """Recompute the sorted ring from the member set.

        Ties between virtual-node points (vanishingly rare at 64 bits)
        break by shard name, so the ring is deterministic even then.
        """
        entries: list[tuple[int, str]] = []
        for shard in sorted(self._shards):
            for i in range(self.replicas):
                entries.append((_point(f"{shard}#{i}".encode()), shard))
        entries.sort()
        self._points = np.array(
            [p for p, _ in entries], dtype=np.uint64
        )
        self._owners = [s for _, s in entries]

    # -- routing -------------------------------------------------------------

    def route(self, key: bytes) -> str:
        """The shard owning ``key`` — first virtual node clockwise."""
        if not self._owners:
            raise RuntimeError("cannot route on an empty ring")
        pos = _point(key)
        i = int(np.searchsorted(self._points, np.uint64(pos), side="left"))
        if i == len(self._owners):  # wrap past the highest point
            i = 0
        return self._owners[i]

    def route_many(self, keys) -> list[str]:
        """Vectorised :meth:`route` for a batch of keys."""
        return [self.route(key) for key in keys]
