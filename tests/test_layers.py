"""Numerical gradient checks for the numpy NN layers."""

import numpy as np
import pytest

from repro.networks import Adam, Dense, Parameter, ReLU, SharedMLP, softmax_cross_entropy
from repro.networks.layers import max_pool, max_pool_backward


def numeric_grad(f, x, eps=1e-6):
    """Central-difference gradient of scalar f wrt array x."""
    grad = np.zeros_like(x)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        old = x[idx]
        x[idx] = old + eps
        hi = f()
        x[idx] = old - eps
        lo = f()
        x[idx] = old
        grad[idx] = (hi - lo) / (2 * eps)
        it.iternext()
    return grad


class TestDense:
    def test_forward_shape(self, rng):
        layer = Dense(4, 7, rng)
        out = layer.forward(rng.normal(size=(3, 5, 4)))
        assert out.shape == (3, 5, 7)

    def test_input_gradient(self, rng):
        layer = Dense(4, 3, rng)
        x = rng.normal(size=(5, 4))
        target = rng.normal(size=(5, 3))

        def loss():
            return 0.5 * np.sum((layer.forward(x) - target) ** 2)

        out = layer.forward(x)
        grad_in = layer.backward(out - target)
        assert np.allclose(grad_in, numeric_grad(loss, x), atol=1e-5)

    def test_weight_gradient(self, rng):
        layer = Dense(4, 3, rng)
        x = rng.normal(size=(5, 4))
        target = rng.normal(size=(5, 3))

        def loss():
            return 0.5 * np.sum((layer.forward(x) - target) ** 2)

        layer.zero_grad()
        out = layer.forward(x)
        layer.backward(out - target)
        assert np.allclose(layer.weight.grad, numeric_grad(loss, layer.weight.value), atol=1e-5)
        assert np.allclose(layer.bias.grad, numeric_grad(loss, layer.bias.value), atol=1e-5)

    def test_backward_before_forward(self, rng):
        with pytest.raises(RuntimeError, match="forward"):
            Dense(2, 2, rng).backward(np.zeros((1, 2)))


class TestReLU:
    def test_gradient_mask(self, rng):
        relu = ReLU()
        x = rng.normal(size=(10,))
        out = relu.forward(x)
        grad = relu.backward(np.ones_like(x))
        assert np.array_equal(grad, (x > 0).astype(float))
        assert (out >= 0).all()


class TestSharedMLP:
    def test_gradient_through_stack(self, rng):
        mlp = SharedMLP([3, 8, 4], rng)
        x = rng.normal(size=(6, 3))
        target = rng.normal(size=(6, 4))

        def loss():
            return 0.5 * np.sum((mlp.forward(x) - target) ** 2)

        out = mlp.forward(x)
        grad_in = mlp.backward(out - target)
        assert np.allclose(grad_in, numeric_grad(loss, x), atol=1e-5)

    def test_parameter_gradients(self, rng):
        mlp = SharedMLP([3, 5, 2], rng)
        x = rng.normal(size=(4, 3))
        target = rng.normal(size=(4, 2))

        def loss():
            return 0.5 * np.sum((mlp.forward(x) - target) ** 2)

        mlp.zero_grad()
        out = mlp.forward(x)
        mlp.backward(out - target)
        for p in mlp.parameters():
            assert np.allclose(p.grad, numeric_grad(loss, p.value), atol=1e-5)

    def test_final_relu_flag(self, rng):
        with_relu = SharedMLP([2, 2], rng, final_relu=True)
        no_relu = SharedMLP([2, 2], rng, final_relu=False)
        x = rng.normal(size=(100, 2)) * 10
        assert (with_relu.forward(x) >= 0).all()
        assert (no_relu.forward(x) < 0).any()

    def test_needs_two_widths(self, rng):
        with pytest.raises(ValueError, match="at least"):
            SharedMLP([4], rng)


class TestMaxPool:
    def test_pool_and_scatter(self, rng):
        x = rng.normal(size=(4, 6, 3))
        pooled, arg = max_pool(x, axis=1)
        assert pooled.shape == (4, 3)
        assert np.allclose(pooled, x.max(axis=1))
        grad = rng.normal(size=(4, 3))
        scattered = max_pool_backward(grad, arg, x.shape, axis=1)
        assert scattered.shape == x.shape
        assert np.allclose(scattered.sum(axis=1), grad)

    def test_gradient_matches_numeric(self, rng):
        x = rng.normal(size=(3, 5, 2))
        target = rng.normal(size=(3, 2))

        def loss():
            pooled, _ = max_pool(x, axis=1)
            return 0.5 * np.sum((pooled - target) ** 2)

        pooled, arg = max_pool(x, axis=1)
        grad = max_pool_backward(pooled - target, arg, x.shape, axis=1)
        assert np.allclose(grad, numeric_grad(loss, x), atol=1e-5)


class TestSoftmaxCE:
    def test_loss_value(self):
        logits = np.array([[10.0, 0.0, 0.0]])
        loss, _, probs = softmax_cross_entropy(logits, np.array([0]))
        assert loss < 1e-3
        assert probs[0, 0] > 0.99

    def test_gradient_matches_numeric(self, rng):
        logits = rng.normal(size=(5, 4))
        labels = rng.integers(0, 4, size=5)

        def loss():
            return softmax_cross_entropy(logits, labels)[0]

        _, grad, _ = softmax_cross_entropy(logits, labels)
        assert np.allclose(grad, numeric_grad(loss, logits), atol=1e-5)

    def test_gradient_rows_sum_to_zero(self, rng):
        logits = rng.normal(size=(6, 3))
        labels = rng.integers(0, 3, size=6)
        _, grad, _ = softmax_cross_entropy(logits, labels)
        assert np.allclose(grad.sum(axis=1), 0.0, atol=1e-12)


class TestAdam:
    def test_minimises_quadratic(self):
        p = Parameter(np.array([5.0, -3.0]))
        opt = Adam([p], lr=0.1)
        for _ in range(300):
            opt.zero_grad()
            p.grad[...] = 2 * p.value  # d/dx of x^2
            opt.step()
        assert np.allclose(p.value, 0.0, atol=1e-2)

    def test_zero_grad(self):
        p = Parameter(np.ones(3))
        p.grad[...] = 7.0
        Adam([p]).zero_grad()
        assert (p.grad == 0).all()
