"""Fig. 15 — latency and energy breakdowns at 33 K points.

Regenerates both panels for PointAcc / Crescent / FractalCloud running
PointNeXt segmentation on an S3DIS-like scene with 33 K inputs:
(a) latency split into Point Ops / MLPs / Others, (b) energy split into
Compute / SRAM / DRAM (+static).

Expected shape: PointAcc dominated by point operations with heavy DRAM
traffic; Crescent trades DRAM for SRAM energy (large buffer) and still
pays KD-tree partitioning; FractalCloud becomes MLP-bound with an order
of magnitude less total latency and energy (paper: 16.2x latency, 8.5x
compute-energy, 14.7x memory-energy reductions on average).
"""

from repro.analysis import format_table
from repro.hw import AcceleratorSim, CRESCENT, FRACTALCLOUD, POINTACC
from repro.networks import get_workload

from _common import emit

N_POINTS = 33_000
CONFIGS = [POINTACC, CRESCENT, FRACTALCLOUD]


def run_fig15():
    spec = get_workload("PNXt(s)")
    results = {cfg.name: AcceleratorSim(cfg).run(spec, N_POINTS) for cfg in CONFIGS}

    lat_rows = []
    for name, r in results.items():
        lat_rows.append([
            name,
            f"{r.point_op_seconds * 1e3:.2f}",
            f"{r.mlp_seconds * 1e3:.2f}",
            f"{r.other_seconds * 1e3:.2f}",
            f"{r.latency_s * 1e3:.2f}",
        ])
    energy_rows = []
    for name, r in results.items():
        bd = r.energy_breakdown()
        energy_rows.append([
            name,
            f"{bd['compute'] * 1e3:.2f}",
            f"{bd['sram'] * 1e3:.2f}",
            f"{bd['dram'] * 1e3:.2f}",
            f"{bd['static'] * 1e3:.2f}",
            f"{r.energy_j * 1e3:.2f}",
        ])
    parts = [
        format_table(["accelerator", "point ops ms", "MLPs ms", "others ms", "total ms"],
                     lat_rows, title=f"Fig. 15(a) — latency breakdown @ {N_POINTS} pts"),
        "",
        format_table(["accelerator", "compute mJ", "SRAM mJ", "DRAM mJ", "static mJ", "total mJ"],
                     energy_rows, title=f"Fig. 15(b) — energy breakdown @ {N_POINTS} pts"),
    ]
    return "\n".join(parts), results


def test_fig15_breakdown(benchmark):
    table, results = benchmark.pedantic(run_fig15, rounds=1, iterations=1)
    emit("fig15_breakdown", table)

    pa, cr, fc = results["PointAcc"], results["Crescent"], results["FractalCloud"]
    # PointAcc: point ops dominate.
    assert pa.point_op_seconds > pa.mlp_seconds
    # FractalCloud: point ops collapse below the MLP floor.
    assert fc.point_op_seconds < fc.mlp_seconds
    # Total latency gap ~order of magnitude (paper avg 16.2x vs both).
    assert pa.latency_s / fc.latency_s > 5
    # Crescent's SRAM energy exceeds both others' (its big buffer).
    assert cr.energy_breakdown()["sram"] > fc.energy_breakdown()["sram"]
    # PointAcc's DRAM energy dominates its breakdown.
    pa_bd = pa.energy_breakdown()
    assert pa_bd["dram"] > pa_bd["compute"]
