"""Table I — evaluated networks and datasets.

Prints the workload registry in the paper's layout and benchmarks a
functional forward pass of the smallest workload as the timing subject.
"""

import numpy as np

from repro.analysis import format_table
from repro.networks import WORKLOADS, PNNClassifier, make_backend

from _common import emit

TASK_NAMES = {"cls": "Classification", "partseg": "Part Segmentation", "seg": "Segmentation"}
SCENES = {"modelnet40": "Object", "shapenet": "Object", "s3dis": "Indoor"}
MODEL_NAMES = {"pointnet2": "PointNet++", "pointnext": "PointNeXt", "pointvector": "PointVector"}


def run_table1():
    rows = []
    for key, spec in WORKLOADS.items():
        rows.append([
            MODEL_NAMES[spec.model],
            key,
            TASK_NAMES[spec.task],
            spec.dataset,
            SCENES[spec.dataset],
            len(spec.sa_stages),
            len(spec.fp_stages),
            spec.num_classes,
        ])
    return format_table(
        ["Model", "Notation", "Task", "Dataset", "Scene",
         "SA stages", "FP stages", "classes"],
        rows,
        title="Table I — evaluated networks and datasets",
    )


def test_table1_workloads(benchmark):
    table = run_table1()
    emit("table1_workloads", table)
    # Benchmark subject: a functional classifier forward pass.
    model = PNNClassifier(num_classes=10, num_points=256, seed=0)
    backend = make_backend("fractal", max_points_per_block=64)
    coords = np.random.default_rng(0).normal(size=(256, 3))
    coords /= np.linalg.norm(coords, axis=1).max()
    logits = benchmark(model.forward, coords, backend)
    assert logits.shape == (10,)
    assert len(table.splitlines()) == 3 + len(WORKLOADS)
