"""Tests for the baseline partitioners (uniform / KD-tree / octree / none)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.geometry import block_balance_factor
from repro.partition import (
    KDTreePartitioner,
    NoPartitioner,
    OctreePartitioner,
    UniformPartitioner,
    get_partitioner,
    PARTITIONER_NAMES,
)


class TestFactory:
    @pytest.mark.parametrize("name", PARTITIONER_NAMES)
    def test_all_strategies_produce_valid_partitions(self, name, scene_coords):
        structure = get_partitioner(name, max_points_per_block=128)(scene_coords)
        structure.validate()  # would raise on overlap/missing points
        assert structure.strategy == name
        assert structure.block_sizes.sum() == len(scene_coords)

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown partitioner"):
            get_partitioner("voronoi")


class TestNoPartitioner:
    def test_single_global_block(self, gaussian_cloud):
        s = NoPartitioner()(gaussian_cloud)
        assert s.num_blocks == 1
        assert len(s.search_spaces[0]) == len(gaussian_cloud)
        assert s.cost.num_sorts == 0 and s.cost.num_traversals == 0

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="empty"):
            NoPartitioner()(np.empty((0, 3)))


class TestUniform:
    def test_single_streaming_pass(self, scene_coords):
        s = UniformPartitioner(target_block_size=128)(scene_coords)
        assert s.cost.passes == [len(scene_coords)]
        assert s.cost.levels == 1
        assert s.cost.num_sorts == 0

    def test_cells_are_spatially_disjoint(self, scene_coords):
        s = UniformPartitioner(resolution=4)(scene_coords)
        # Each block's bounding box must not contain another block's points.
        for block in s.blocks[:10]:
            pts = scene_coords[block.indices]
            assert len(pts) == len(block)

    def test_imbalance_on_nonuniform_data(self, scene_coords):
        """The paper's core criticism: uniform cells follow space, not
        density, so real scenes produce badly imbalanced blocks."""
        s = UniformPartitioner(target_block_size=128)(scene_coords)
        assert block_balance_factor(s.block_sizes) > 2.0

    def test_search_space_is_cell_only(self, scene_coords):
        s = UniformPartitioner(target_block_size=128)(scene_coords)
        for block, space in zip(s.blocks, s.search_spaces):
            assert np.array_equal(block.indices, space)

    def test_validates_params(self):
        with pytest.raises(ValueError, match="target_block_size"):
            UniformPartitioner(target_block_size=0)
        with pytest.raises(ValueError, match="resolution"):
            UniformPartitioner(resolution=0)


class TestKDTree:
    def test_strict_balance(self, scene_coords):
        """Median splits: block sizes differ by at most 2x and the
        balance factor stays near 1 (Fig. 3(c) 'strictly balance')."""
        s = KDTreePartitioner(max_leaf_size=128)(scene_coords)
        assert block_balance_factor(s.block_sizes) < 1.3
        assert s.block_sizes.max() <= 128

    def test_sort_count_matches_internal_nodes(self, gaussian_cloud):
        s = KDTreePartitioner(max_leaf_size=64)(gaussian_cloud)
        # A strictly binary tree with L leaves has L-1 internal nodes,
        # each of which performed exactly one sort.
        assert s.cost.num_sorts == s.num_blocks - 1

    def test_sorts_grow_much_faster_than_fractal_traversals(self, scene_coords):
        from repro.core import FractalConfig, fractal_partition

        kd = KDTreePartitioner(max_leaf_size=128)(scene_coords)
        fr = fractal_partition(scene_coords, FractalConfig(threshold=128))
        # Fig. 5: sorts scale with the *number of nodes* (exponential in
        # depth) while traversals scale with the number of *levels*.
        assert kd.cost.num_sorts > 5 * fr.cost.num_traversals
        assert kd.cost.num_sorts == kd.num_blocks - 1
        assert fr.cost.num_traversals == fr.num_levels

    def test_parent_search_spaces(self, scene_coords):
        s = KDTreePartitioner(max_leaf_size=128)(scene_coords)
        deep = [i for i, b in enumerate(s.blocks) if b.depth > 1]
        assert deep, "expected some deep leaves"
        for i in deep[:20]:
            assert len(s.search_spaces[i]) >= 2 * len(s.blocks[i]) * 0.9

    def test_leaf_only_option(self, gaussian_cloud):
        s = KDTreePartitioner(max_leaf_size=64, parent_search=False)(gaussian_cloud)
        for block, space in zip(s.blocks, s.search_spaces):
            assert np.array_equal(np.sort(block.indices), np.sort(space))

    def test_validates_params(self):
        with pytest.raises(ValueError, match="max_leaf_size"):
            KDTreePartitioner(max_leaf_size=0)


class TestOctree:
    def test_leaf_bound_respected(self, scene_coords):
        s = OctreePartitioner(max_leaf_size=128)(scene_coords)
        assert s.block_sizes.max() <= 128

    def test_adaptivity_beats_flat_grid_balance(self, scene_coords):
        octree = OctreePartitioner(max_leaf_size=128)(scene_coords)
        # Octree respects the hard cap; a flat grid with similar mean
        # block size does not (its max block can be much larger).
        uniform = UniformPartitioner(target_block_size=128)(scene_coords)
        assert octree.block_sizes.max() <= 128
        assert uniform.block_sizes.max() > 128

    def test_coincident_points_terminate(self):
        pts = np.zeros((1000, 3))
        s = OctreePartitioner(max_leaf_size=64, max_depth=6)(pts)
        assert s.num_blocks == 1  # cannot split identical points

    def test_streaming_passes_recorded(self, scene_coords):
        s = OctreePartitioner(max_leaf_size=128)(scene_coords)
        assert s.cost.levels >= 1
        assert len(s.cost.passes) == s.cost.levels
        assert s.cost.num_sorts == 0

    def test_validates_params(self):
        with pytest.raises(ValueError, match="max_leaf_size"):
            OctreePartitioner(max_leaf_size=0)


class TestCrossStrategyOrdering:
    def test_balance_ordering_matches_paper(self, scene_coords):
        """Fig. 3: KD-tree strictly balanced < Fractal moderately
        balanced < octree < uniform (imbalanced)."""
        from repro.core import FractalConfig, fractal_partition

        kd = block_balance_factor(
            KDTreePartitioner(max_leaf_size=128)(scene_coords).block_sizes
        )
        fr = block_balance_factor(
            fractal_partition(scene_coords, FractalConfig(threshold=128)).block_sizes
        )
        un = block_balance_factor(
            UniformPartitioner(target_block_size=128)(scene_coords).block_sizes
        )
        assert kd < fr < un

    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 500))
    def test_all_partitioners_cover_random_clouds(self, seed):
        pts = np.random.default_rng(seed).normal(size=(400, 3))
        for name in PARTITIONER_NAMES:
            structure = get_partitioner(name, max_points_per_block=64)(pts)
            structure.validate()
