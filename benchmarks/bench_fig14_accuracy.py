"""Fig. 14 — network accuracy under each accelerator's point operations.

Trains the small numpy backbones from scratch with each point-operation
backend (the paper retrains networks per accelerator) and reports:

- classification overall accuracy (OA) on a ModelNet40-like task,
- part-segmentation mIoU on a ShapeNet-like task.

Backend mapping (see DESIGN.md): Original/PointAcc → exact global ops,
Crescent → KD-tree block ops, PNNPU → uniform block ops, FractalCloud →
Fractal block ops.  Expected shape: uniform clearly degrades; KD-tree and
Fractal land within noise of exact (paper: PNNPU −8.8%, Fractal <0.7%).

Training is deliberately small (minutes-scale): the *relative* ordering,
not absolute accuracy, is the reproduction target.
"""

from repro.analysis import format_table
from repro.datasets import make_classification_dataset, make_part_dataset
from repro.networks import (
    PNNClassifier,
    PNNSegmenter,
    evaluate_classifier,
    evaluate_segmenter,
    make_backend,
    train_classifier,
    train_segmenter,
)

from _common import emit

BACKENDS = [
    ("Original/PointAcc", "exact"),
    ("Crescent (KD-tree)", "kdtree"),
    ("PNNPU (uniform)", "uniform"),
    ("FractalCloud", "fractal"),
]
N_POINTS = 128
BLOCK = 32


def run_fig14():
    train_cls = make_classification_dataset(60, N_POINTS, seed=0)
    test_cls = make_classification_dataset(30, N_POINTS, seed=100)
    train_seg = make_part_dataset(24, N_POINTS, seed=0)
    test_seg = make_part_dataset(12, N_POINTS, seed=100)

    rows = []
    metrics = {}
    for label, backend_name in BACKENDS:
        backend = make_backend(backend_name, max_points_per_block=BLOCK)

        cls_model = PNNClassifier(num_classes=10, num_points=N_POINTS,
                                  arch="pointnet2", seed=0)
        train_classifier(cls_model, train_cls, backend, epochs=10, batch_size=8, lr=3e-3)
        oa = evaluate_classifier(cls_model, test_cls, backend)

        seg_model = PNNSegmenter(num_classes=4, num_points=N_POINTS,
                                 arch="pointnet2", seed=0)
        train_segmenter(seg_model, train_seg, backend, epochs=10, batch_size=4, lr=3e-3)
        miou = evaluate_segmenter(seg_model, test_seg, backend)

        metrics[backend_name] = (oa, miou)
        rows.append([label, f"{100 * oa:.1f}", f"{100 * miou:.1f}"])

    table = format_table(
        ["accelerator (backend)", "classification OA %", "part-seg mIoU %"],
        rows,
        title="Fig. 14 — accuracy after retraining with each backend "
              "(paper: uniform -8.8%, Fractal within 0.7% of original)",
    )
    return table, metrics


def test_fig14_accuracy(benchmark):
    table, metrics = benchmark.pedantic(run_fig14, rounds=1, iterations=1)
    emit("fig14_accuracy", table)
    exact_oa, exact_miou = metrics["exact"]
    # All backends train to something meaningful.
    assert exact_oa > 0.2 and exact_miou > 0.15
    # Fractal lands in the same accuracy regime as exact ops.
    assert metrics["fractal"][0] > exact_oa - 0.3
    assert metrics["fractal"][1] > exact_miou - 0.2
