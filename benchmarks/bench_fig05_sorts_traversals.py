"""Fig. 5 — exclusive KD-tree sorts vs inclusive Fractal traversals.

Regenerates the workflow-comparison counts, both analytically (the
formulas printed in the figure) and measured on real partitioning runs.
Paper values: 1 K points @ BS=64 → 15 sorts vs 4 traversals;
289 K points @ BS=256 → 2047 sorts vs 11 traversals.
"""

import numpy as np

from repro.analysis import format_table
from repro.datasets import load_cloud
from repro.partition import (
    KDTreePartitioner,
    fractal_traversal_count,
    kdtree_sort_count,
)
from repro.core import FractalConfig, fractal_partition

from _common import emit

CASES = [(1024, 64), (33_000, 256), (289_000, 256)]


def run_fig05():
    rows = []
    for n, bs in CASES:
        coords = load_cloud("s3dis", max(n, 1024), seed=0).coords.astype(np.float64)[:n]
        kd = KDTreePartitioner(max_leaf_size=bs)(coords)
        fr = fractal_partition(coords, FractalConfig(threshold=bs))
        rows.append([
            n, bs,
            kdtree_sort_count(n, bs),
            kd.cost.num_sorts,
            fractal_traversal_count(n, bs),
            fr.cost.num_traversals,
            f"{kd.cost.num_sorts / max(fr.cost.num_traversals, 1):.0f}x",
        ])
    return format_table(
        ["points", "BS", "sorts (formula)", "sorts (measured)",
         "traversals (formula)", "traversals (measured)", "ratio"],
        rows,
        title="Fig. 5 — KD-tree sorts vs Fractal traversals",
    )


def test_fig05_sorts_vs_traversals(benchmark):
    table = benchmark.pedantic(run_fig05, rounds=1, iterations=1)
    emit("fig05_sorts_vs_traversals", table)
    rows = [l.split() for l in table.splitlines()[3:]]
    # Paper's quoted numbers hold analytically.
    assert int(rows[0][2]) == 15 and int(rows[0][4]) == 4
    assert int(rows[2][2]) == 2047 and int(rows[2][4]) == 11
    # Measured counts are the same order as the balanced formulas.
    for r in rows:
        assert int(r[3]) >= int(r[2]) * 0.5
        assert int(r[5]) <= int(r[4]) + 6
