"""Resource-lifecycle invariants: REP003 (shm homing) and REP004 (release).

PR 7's hardest bugs were lifecycle bugs: shared-memory segments leaked
past process exit (spurious resource-tracker warnings), and worker pools
rebuilt per window until the pool was made persistent-with-``close()``.
REP003 keeps raw ``SharedMemory`` construction inside the one module
whose job is segment lifetime (:mod:`repro.shard.transport`); REP004
requires every thread/pool/arena/engine acquisition to have a reachable
release — a cleanup call, a ``with`` block, or an ownership transfer.

REP004 is deliberately an *escape* analysis, not a path analysis: a
resource that is returned, yielded, stored on an object, or passed to
another call has transferred ownership and is someone else's obligation.
Only a resource that provably stays local to its scope and never sees a
``close()``/``join()``-class call is flagged.  That keeps the rule
near-zero-noise at the cost of missing laundered leaks — the runtime
sanitizer (:mod:`repro.analysis.sanitize`) is the backstop for those.
"""

from __future__ import annotations

import ast

from .engine import ModuleContext, call_name
from .registry import rule

__all__ = ["CLEANUP_METHODS", "RESOURCE_CTORS"]

#: The one module allowed to construct SharedMemory segments.
_SHM_HOME = ("repro.shard.transport",)


@rule(
    "REP003",
    "shm-outside-transport",
    "SharedMemory segments may be constructed only in repro.shard.transport",
)
def check_shared_memory_home(ctx: ModuleContext):
    if ctx.in_module(*_SHM_HOME):
        return
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Call) and call_name(node.func) == "SharedMemory":
            yield (
                node.lineno, node.col_offset,
                "raw SharedMemory constructed outside repro.shard.transport; "
                "use ShmArena/ShmPeer so segments are pooled, reclaimed, and "
                "unlinked exactly once",
            )


#: Constructors whose result must be released: threads and processes,
#: executor pools, shm arenas/segments, and the repo's own engine/server
#: classes (each has close() and context-manager support).
RESOURCE_CTORS = frozenset({
    "Thread", "Process",
    "ThreadPoolExecutor", "ProcessPoolExecutor", "Pool",
    "ShmArena", "SharedMemory",
    "BatchExecutor", "ShardRouter", "WindowedServer", "MultiTenantServer",
})

#: Method names that count as releasing a resource.
CLEANUP_METHODS = frozenset({
    "close", "join", "shutdown", "terminate", "unlink", "stop", "kill",
    "release",
})


def _contains_name(node: ast.AST, var: str) -> bool:
    return any(
        isinstance(n, ast.Name) and n.id == var for n in ast.walk(node)
    )


def _is_self_attr(node: ast.AST, attr: str) -> bool:
    return (
        isinstance(node, ast.Attribute)
        and node.attr == attr
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    )


def _contains_self_attr(node: ast.AST, attr: str) -> bool:
    return any(_is_self_attr(n, attr) for n in ast.walk(node))


def _enclosing(ctx: ModuleContext, node: ast.AST, kinds) -> ast.AST | None:
    cursor = ctx.parent(node)
    while cursor is not None and not isinstance(cursor, kinds):
        cursor = ctx.parent(cursor)
    return cursor


def _local_is_released(scope: ast.AST, var: str, acquisition: ast.AST) -> bool:
    """Does ``var`` get cleaned up, managed, or escape within ``scope``?"""
    for node in ast.walk(scope):
        if node is acquisition:
            continue
        if isinstance(node, ast.withitem):
            if _contains_name(node.context_expr, var):
                return True
        elif isinstance(node, ast.Call):
            # var.close() / var.pipe().join() — any cleanup reached from var.
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in CLEANUP_METHODS
                and _contains_name(func.value, var)
            ):
                return True
            # Passed to another call: ownership transferred.
            if any(_contains_name(arg, var) for arg in node.args):
                return True
            if any(_contains_name(kw.value, var) for kw in node.keywords):
                return True
        elif isinstance(node, (ast.Return, ast.Yield, ast.YieldFrom)):
            if node.value is not None and _contains_name(node.value, var):
                return True
        elif isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            value = node.value
            if value is not None and _contains_name(value, var):
                return True  # aliased or stored — tracked elsewhere
    return False


def _attr_is_released(cls: ast.ClassDef, attr: str, acquisition: ast.AST) -> bool:
    """Does any method of ``cls`` clean up, manage, or hand off ``self.attr``?"""
    for node in ast.walk(cls):
        if node is acquisition:
            continue
        if isinstance(node, ast.withitem):
            if _contains_self_attr(node.context_expr, attr):
                return True
        elif isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in CLEANUP_METHODS
                and _contains_self_attr(func.value, attr)
            ):
                return True
            if any(_contains_self_attr(a, attr) for a in node.args):
                return True
            if any(_contains_self_attr(kw.value, attr) for kw in node.keywords):
                return True
        elif isinstance(node, (ast.Assign, ast.AugAssign)):
            if _contains_self_attr(node.value, attr):
                return True  # aliased out (e.g. pool, self._pool = self._pool, None)
    return False


@rule(
    "REP004",
    "unreleased-resource",
    "every Thread/pool/ShmArena/SharedMemory/engine acquisition needs a "
    "reachable close()/join()/unlink() or context-manager exit",
)
def check_resource_release(ctx: ModuleContext):
    scopes = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Module)
    for node in ast.walk(ctx.tree):
        if not (isinstance(node, ast.Call) and call_name(node.func) in RESOURCE_CTORS):
            continue
        ctor = call_name(node.func)
        parent = ctx.parent(node)
        if isinstance(parent, ast.withitem):
            continue  # with Ctor(...) as x:
        if isinstance(parent, ast.Call):
            continue  # argument of another call — ownership transferred
        if isinstance(parent, (ast.Return, ast.Yield, ast.YieldFrom)):
            continue  # caller owns it now
        if isinstance(parent, ast.Attribute):
            # Ctor(...).method() with no binding: unreleasable unless the
            # one chained call is itself the cleanup.
            if parent.attr in CLEANUP_METHODS:
                continue
            yield (
                node.lineno, node.col_offset,
                f"{ctor} is constructed and immediately discarded; bind it "
                "so it can be closed/joined",
            )
            continue
        if isinstance(parent, ast.Expr):
            yield (
                node.lineno, node.col_offset,
                f"{ctor} result is discarded; the resource can never be "
                "released",
            )
            continue
        if isinstance(parent, (ast.Assign, ast.AnnAssign)):
            targets = (
                parent.targets if isinstance(parent, ast.Assign)
                else [parent.target]
            )
            if len(targets) != 1:
                continue  # chained assignment — aliased, assume managed
            target = targets[0]
            if isinstance(target, ast.Name):
                scope = _enclosing(ctx, node, scopes) or ctx.tree
                if not _local_is_released(scope, target.id, parent):
                    yield (
                        node.lineno, node.col_offset,
                        f"{ctor} bound to {target.id!r} is never closed/"
                        "joined and never leaves this scope; use a context "
                        "manager or call its cleanup before returning",
                    )
            elif (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                cls = _enclosing(ctx, node, (ast.ClassDef,))
                if cls is not None and not _attr_is_released(cls, target.attr, parent):
                    yield (
                        node.lineno, node.col_offset,
                        f"{ctor} stored on self.{target.attr} but no method "
                        f"of {cls.name} ever closes/joins it; add a close() "
                        "or __exit__ that releases it",
                    )
            # other targets (obj.attr, d[k], tuple) — stored away, assume
            # the owner releases it
