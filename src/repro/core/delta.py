"""Frame deltas, rebuild certificates, and the structure-patch protocol.

Streaming sensors make every frame a *near* miss of the partition cache:
the cloud moved a little, so the content key changes, but the tree the
previous frame paid for is usually still the tree a rebuild would
produce.  This module gives the cache the machinery to prove or repair
that, instead of rebuilding:

- :class:`FrameDelta` aligns two frames under the streaming contract
  (retained points keep their row order; deletions come off the tail of
  the old frame; insertions append to the new one) and measures motion
  and churn.
- **Rebuild certificates** (:class:`KDTreeCertificate`,
  :class:`OctreeCertificate`, :class:`GridCertificate`,
  :class:`FractalCertificate`) are cheap per-structure summaries,
  attached at build time, whose ``verify(structure, new_coords)`` is
  *sound*: when it returns True, a from-scratch rebuild on the new
  coordinates is guaranteed to reproduce the cached structure bit for
  bit, so the cache may reuse it outright.  Verification re-derives each
  split decision from per-leaf extrema of the new coordinates — O(n)
  numpy work instead of a full build.  It is deliberately conservative:
  a tie or a crossed split plane fails the check and falls back to a
  rebuild, never to a wrong structure.
- :class:`PatchPolicy` bounds when patching is attempted at all (motion
  threshold, churn budget, candidate scan depth); beyond those bounds
  the cache rebuilds.
- :func:`updater_from_certificate` reconstructs a routed
  :class:`~repro.core.update.FractalUpdater` from a certificate without
  re-partitioning, so insert/delete/move churn on fractal structures is
  absorbed by the incremental machinery of :mod:`repro.core.update`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .blocks import BlockStructure
from .config import FractalConfig

__all__ = [
    "FrameDelta",
    "FractalCertificate",
    "GridCertificate",
    "KDTreeCertificate",
    "OctreeCertificate",
    "PatchPolicy",
    "attach_certificate",
    "certificate_of",
    "updater_from_certificate",
]

#: Mirrors the builders' degenerate-extent cutoff.
_DEGENERATE_EXTENT = 1e-12

#: Dynamic attribute carrying the certificate (same pattern as the
#: ``_owner_memo`` / ``_ragged`` memos on :class:`BlockStructure`).
_CERT_ATTR = "_rebuild_cert"


def attach_certificate(structure: BlockStructure, cert) -> None:
    """Attach ``cert`` to ``structure`` for the cache's delta protocol."""
    setattr(structure, _CERT_ATTR, cert)


def certificate_of(structure: BlockStructure):
    """The rebuild certificate attached at build time, or ``None``."""
    return getattr(structure, _CERT_ATTR, None)


# --------------------------------------------------------------------------
# frame alignment
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class PatchPolicy:
    """Bounds on when a near-miss frame may patch instead of rebuild.

    Args:
        motion_threshold: maximum per-point displacement (Euclidean) a
            retained point may have moved; beyond it the drift is assumed
            to exceed block bounds and the frame rebuilds.
        max_churn: maximum ``(inserts + deletes) / n_old`` fraction the
            incremental updater will absorb.
        candidates: how many most-recent cache entries are scanned for a
            near match before giving up.
    """

    motion_threshold: float = 0.1
    max_churn: float = 0.25
    candidates: int = 4

    def __post_init__(self):
        if self.motion_threshold < 0:
            raise ValueError(
                f"motion_threshold must be >= 0, got {self.motion_threshold}"
            )
        if not 0 <= self.max_churn <= 1:
            raise ValueError(f"max_churn must be in [0, 1], got {self.max_churn}")
        if self.candidates < 1:
            raise ValueError(f"candidates must be >= 1, got {self.candidates}")


@dataclass(frozen=True)
class FrameDelta:
    """Row-aligned difference between two frames of one stream.

    The streaming contract: the first ``retained`` rows of both frames
    are the same physical points (possibly moved); rows past ``retained``
    are deletions (old frame) and insertions (new frame).  ``between``
    infers ``retained`` by trimming the trailing run of rows whose
    displacement exceeds the motion threshold — a sensor that drops the
    tail of its sweep and appends fresh returns produces exactly that
    shape, and a genuinely teleporting mid-frame point simply pushes
    ``max_motion`` over the threshold and forces a rebuild.
    """

    n_old: int
    n_new: int
    moved: np.ndarray  # retained rows whose coordinates changed
    max_motion: float  # largest displacement among ``moved``
    retained: int
    n_inserted: int
    n_deleted: int

    @property
    def churn(self) -> float:
        return (self.n_inserted + self.n_deleted) / max(1, self.n_old)

    @property
    def pure_jitter(self) -> bool:
        return self.n_inserted == 0 and self.n_deleted == 0

    @classmethod
    def between(
        cls, old_coords: np.ndarray, new_coords: np.ndarray, motion_threshold: float
    ) -> "FrameDelta":
        old = np.asarray(old_coords, dtype=np.float64)
        new = np.asarray(new_coords, dtype=np.float64)
        prefix = min(len(old), len(new))
        diff = new[:prefix] - old[:prefix]
        disp = np.sqrt(np.sum(diff * diff, axis=1))
        over = disp > motion_threshold
        # Trim the trailing run of over-threshold rows: those are
        # delete+insert pairs under the streaming contract, not moves.
        retained = prefix
        while retained > 0 and over[retained - 1]:
            retained -= 1
        moved = np.nonzero(disp[:retained] > 0.0)[0].astype(np.int64)
        max_motion = float(disp[moved].max()) if moved.size else 0.0
        return cls(
            n_old=len(old),
            n_new=len(new),
            moved=moved,
            max_motion=max_motion,
            retained=retained,
            n_inserted=len(new) - retained,
            n_deleted=len(old) - retained,
        )


# --------------------------------------------------------------------------
# certificate helpers
# --------------------------------------------------------------------------


def _leaf_extrema(
    structure: BlockStructure, coords: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Per-block coordinate min/max — the only O(n) pass of verification."""
    mins = np.empty((structure.num_blocks, 3), dtype=np.float64)
    maxs = np.empty((structure.num_blocks, 3), dtype=np.float64)
    for i, block in enumerate(structure.blocks):
        pts = coords[block.indices]
        mins[i] = pts.min(axis=0)
        maxs[i] = pts.max(axis=0)
    return mins, maxs


def _leaf_positions(leaves: list) -> dict[int, int]:
    return {id(leaf): pos for pos, leaf in enumerate(leaves)}


class KDTreeCertificate:
    """Split summary of a median KD-tree.

    One record per internal node: the split dimension (``depth % 3``) and
    the node's leaf range ``[leaf_lo, leaf_hi)`` with the left/right
    boundary at ``leaf_split``, all in DFS leaf order.  A rebuild
    reproduces the tree exactly iff at every node the left half is
    strictly below the right half on the split dimension — the stable
    median sort then lands the same membership on each side, and leaf
    blocks are order-normalised by sorting.
    """

    strategy = "kdtree"

    def __init__(self, dims, leaf_lo, leaf_split, leaf_hi):
        self.dims = np.asarray(dims, dtype=np.int64)
        self.leaf_lo = np.asarray(leaf_lo, dtype=np.int64)
        self.leaf_split = np.asarray(leaf_split, dtype=np.int64)
        self.leaf_hi = np.asarray(leaf_hi, dtype=np.int64)

    @classmethod
    def from_tree(cls, root, leaves: list) -> "KDTreeCertificate":
        pos = _leaf_positions(leaves)
        dims: list[int] = []
        lo: list[int] = []
        split: list[int] = []
        hi: list[int] = []

        def walk(node) -> tuple[int, int]:
            if node.is_leaf:
                p = pos[id(node)]
                return p, p + 1
            l_lo, l_hi = walk(node.left)
            r_lo, r_hi = walk(node.right)
            dims.append(node.depth % 3)
            lo.append(l_lo)
            split.append(r_lo)
            hi.append(r_hi)
            return l_lo, r_hi

        walk(root)
        return cls(dims, lo, split, hi)

    def verify(self, structure: BlockStructure, new_coords: np.ndarray) -> bool:
        if len(new_coords) != structure.num_points:
            return False
        mins, maxs = _leaf_extrema(structure, new_coords)
        for dim, lo, split, hi in zip(
            self.dims, self.leaf_lo, self.leaf_split, self.leaf_hi
        ):
            left_max = maxs[lo:split, dim].max()
            right_min = mins[split:hi, dim].min()
            if not left_max < right_min:  # ties fail: stable sort could flip
                return False
        return True


class OctreeCertificate:
    """Octant summary of an octree: per node, the child octant codes and
    their leaf ranges.  Boxes are re-derived top-down from the new
    bounding box; every point must still classify into its stored octant,
    and leaf/split decisions (leaf bound, max depth, degenerate cell)
    must re-derive identically.
    """

    strategy = "octree"

    class _Node:
        __slots__ = ("depth", "leaf_lo", "leaf_hi", "oversized", "children")

        def __init__(self, depth, leaf_lo, leaf_hi, oversized, children):
            self.depth = depth
            self.leaf_lo = leaf_lo
            self.leaf_hi = leaf_hi
            self.oversized = oversized
            self.children = children  # list[(code, _Node)]

    def __init__(self, root: "OctreeCertificate._Node", max_depth: int):
        self.root = root
        self.max_depth = max_depth

    @classmethod
    def from_tree(cls, root, leaves: list, max_leaf_size: int, max_depth: int):
        pos = _leaf_positions(leaves)

        def walk(node) -> tuple["OctreeCertificate._Node", int, int]:
            if node.is_leaf:
                p = pos[id(node)]
                out = cls._Node(
                    node.depth, p, p + 1, len(node.indices) > max_leaf_size, []
                )
                return out, p, p + 1
            children = []
            lo = hi = None
            for child in node.children:
                sub, c_lo, c_hi = walk(child)
                children.append((child.code, sub))
                lo = c_lo if lo is None else min(lo, c_lo)
                hi = c_hi if hi is None else max(hi, c_hi)
            out = cls._Node(node.depth, lo, hi, True, children)
            return out, lo, hi

        cert_root, _, _ = walk(root)
        return cls(cert_root, max_depth)

    def verify(self, structure: BlockStructure, new_coords: np.ndarray) -> bool:
        if len(new_coords) != structure.num_points:
            return False
        mins, maxs = _leaf_extrema(structure, new_coords)
        lo = mins.min(axis=0)
        hi = maxs.max(axis=0)
        return self._check(self.root, lo, hi, mins, maxs)

    def _check(self, node, lo, hi, mins, maxs) -> bool:
        if not node.children:
            if not node.oversized:
                return True  # under the leaf bound: a rebuild stops here too
            if node.depth >= self.max_depth:
                return True  # depth bound forces the leaf regardless
            return bool(np.all(hi - lo <= _DEGENERATE_EXTENT))
        if node.depth >= self.max_depth or np.all(hi - lo <= _DEGENERATE_EXTENT):
            return False  # a rebuild would stop where the cache split
        mid = (lo + hi) / 2.0
        for code, child in node.children:
            c_min = mins[child.leaf_lo : child.leaf_hi].min(axis=0)
            c_max = maxs[child.leaf_lo : child.leaf_hi].max(axis=0)
            for d, bit in ((0, 4), (1, 2), (2, 1)):
                if code & bit:
                    if not c_min[d] > mid[d]:
                        return False
                elif not c_max[d] <= mid[d]:
                    return False
            child_lo = np.where([code & 4, code & 2, code & 1], mid, lo).astype(
                np.float64
            )
            child_hi = np.where([code & 4, code & 2, code & 1], hi, mid).astype(
                np.float64
            )
            if not self._check(child, child_lo, child_hi, mins, maxs):
                return False
        return True


class GridCertificate:
    """Uniform grid summary: the per-point cell ids and the resolution.

    A rebuild recomputes cell ids from the new bounding box; identical
    ids mean the identical stable grouping, hence an identical structure.
    """

    strategy = "uniform"

    def __init__(self, cell_ids: np.ndarray, resolution: int):
        self.cell_ids = np.asarray(cell_ids, dtype=np.int64)
        self.resolution = int(resolution)

    def verify(self, structure: BlockStructure, new_coords: np.ndarray) -> bool:
        n = len(new_coords)
        if n != structure.num_points or n != len(self.cell_ids):
            return False
        r = self.resolution
        lo = new_coords.min(axis=0)
        hi = new_coords.max(axis=0)
        extent = np.where(hi - lo > 0, hi - lo, 1.0)
        cell = np.clip(((new_coords - lo) / extent * r).astype(np.int64), 0, r - 1)
        cell_id = cell[:, 0] * r * r + cell[:, 1] * r + cell[:, 2]
        return bool(np.array_equal(cell_id, self.cell_ids))


class FractalCertificate:
    """Split summary of a fractal tree (paper Alg. 1).

    Internal nodes in preorder: split dimension, midpoint, depth, and
    leaf ranges in DFT leaf order; per-leaf forced flags.  Verification
    re-derives every decision from the new coordinates: the dimension
    choice (cycle probes or longest extent, tie-free), the recomputed
    midpoint separating left (``<= mid``) from right (``> mid``), and
    degeneracy of forced leaves.  The stored midpoints double as the
    routing planes for :func:`updater_from_certificate`.
    """

    strategy = "fractal"

    def __init__(self, config, dims, mids, depths, leaf_lo, leaf_split, leaf_hi, forced):
        self.config = config
        self.dims = np.asarray(dims, dtype=np.int64)
        self.mids = np.asarray(mids, dtype=np.float64)
        self.depths = np.asarray(depths, dtype=np.int64)
        self.leaf_lo = np.asarray(leaf_lo, dtype=np.int64)
        self.leaf_split = np.asarray(leaf_split, dtype=np.int64)
        self.leaf_hi = np.asarray(leaf_hi, dtype=np.int64)
        self.forced = np.asarray(forced, dtype=bool)

    @classmethod
    def from_tree(cls, tree, config: FractalConfig) -> "FractalCertificate":
        pos = _leaf_positions(tree.leaves)
        dims: list[int] = []
        mids: list[float] = []
        depths: list[int] = []
        lo: list[int] = []
        split: list[int] = []
        hi: list[int] = []

        def walk(node) -> tuple[int, int]:
            if node.is_leaf:
                p = pos[id(node)]
                return p, p + 1
            # Preorder: parent before children, matching the cursor walk
            # of updater_from_certificate.
            slot = len(dims)
            dims.append(node.split_dim)
            mids.append(node.split_mid)
            depths.append(node.depth)
            lo.append(0)
            split.append(0)
            hi.append(0)
            l_lo, _ = walk(node.left)
            r_lo, r_hi = walk(node.right)
            lo[slot], split[slot], hi[slot] = l_lo, r_lo, r_hi
            return l_lo, r_hi

        walk(tree.root)
        forced = [bool(leaf.forced_leaf) for leaf in tree.leaves]
        return cls(config, dims, mids, depths, lo, split, hi, forced)

    def _dim_choice_stable(self, ext: np.ndarray, depth: int, dim: int) -> bool:
        if ext[dim] <= _DEGENERATE_EXTENT:
            return False
        if self.config.split_rule == "longest":
            return int(np.argmax(ext)) == dim
        probes = (self.config.start_dim + depth + np.arange(3)) % 3
        for probe_dim in probes:
            if probe_dim == dim:
                return True
            if ext[probe_dim] > _DEGENERATE_EXTENT:
                return False
        return False

    def verify(self, structure: BlockStructure, new_coords: np.ndarray) -> bool:
        if len(new_coords) != structure.num_points:
            return False
        mins, maxs = _leaf_extrema(structure, new_coords)
        for i in np.nonzero(self.forced)[0]:
            if np.any(maxs[i] - mins[i] > _DEGENERATE_EXTENT):
                return False
        for dim, depth, lo, split, hi in zip(
            self.dims, self.depths, self.leaf_lo, self.leaf_split, self.leaf_hi
        ):
            node_min = mins[lo:hi].min(axis=0)
            node_max = maxs[lo:hi].max(axis=0)
            if not self._dim_choice_stable(node_max - node_min, int(depth), int(dim)):
                return False
            mid = (node_max[dim] + node_min[dim]) / 2.0
            if not maxs[lo:split, dim].max() <= mid:
                return False
            if not mins[split:hi, dim].min() > mid:
                return False
        return True


def updater_from_certificate(cert: FractalCertificate, structure, coords: np.ndarray):
    """Reconstruct a routed :class:`FractalUpdater` without re-partitioning.

    The certificate's preorder (dim, mid, leaf range) records are exactly
    the routing tree: leaves take their member sets from the structure's
    blocks, so the updater starts with point ids equal to the rows of
    ``coords`` and the cached partition as its live state.
    """
    from .update import FractalUpdater, UpdateStats, _Node

    coords = np.asarray(coords, dtype=np.float64)
    cursor = [0]

    def build(leaf_lo: int, leaf_hi: int, depth: int) -> _Node:
        k = cursor[0]
        if (
            k < len(cert.dims)
            and cert.leaf_lo[k] == leaf_lo
            and cert.leaf_hi[k] == leaf_hi
        ):
            cursor[0] += 1
            node = _Node(depth=depth, dim=int(cert.dims[k]), mid=float(cert.mids[k]))
            node.left = build(leaf_lo, int(cert.leaf_split[k]), depth + 1)
            node.right = build(int(cert.leaf_split[k]), leaf_hi, depth + 1)
            node.left.parent = node
            node.right.parent = node
            return node
        if leaf_hi != leaf_lo + 1:
            raise ValueError("certificate does not cover the structure's leaves")
        members = set(structure.blocks[leaf_lo].indices.tolist())
        return _Node(depth=depth, members=members)

    updater = FractalUpdater.__new__(FractalUpdater)
    updater.config = cert.config
    updater._coords = coords.copy()
    updater._alive = np.ones(len(coords), dtype=bool)
    updater.stats = UpdateStats()
    updater._root = build(0, structure.num_blocks, 0)
    return updater
