"""Training loops and evaluation metrics for the numpy PNNs.

Per-cloud SGD with gradient accumulation over minibatches (point
operations differ per cloud, so clouds are processed individually and the
dense math is vectorised within each cloud).  Clouds are consumed at
their construction dtype — float32 coordinates, the documented
:class:`~repro.geometry.PointCloud` contract — so the partition cache
sees one ``content_key`` per geometry; upcasting per call would hash the
same cloud to a second key and defeat deduplication.  Metrics match the paper:
overall accuracy (OA) for classification, mean intersection-over-union
(mIoU) for segmentation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..geometry import PointCloud
from .backends import PointOpsBackend
from .layers import Adam, softmax_cross_entropy
from .models import PNNClassifier, PNNSegmenter

__all__ = [
    "TrainResult",
    "train_classifier",
    "evaluate_classifier",
    "train_segmenter",
    "evaluate_segmenter",
    "mean_iou",
]


@dataclass
class TrainResult:
    """Loss trajectory + final train metric of one training run."""

    losses: list[float]
    final_metric: float


def train_classifier(
    model: PNNClassifier,
    clouds: list[PointCloud],
    backend: PointOpsBackend,
    *,
    epochs: int = 8,
    batch_size: int = 8,
    lr: float = 2e-3,
    seed: int = 0,
) -> TrainResult:
    """Train on labelled clouds (``class_id`` set); returns loss history."""
    if any(c.class_id is None for c in clouds):
        raise ValueError("all training clouds need class_id")
    optimizer = Adam(model.parameters(), lr=lr)
    rng = np.random.default_rng(seed)
    losses: list[float] = []
    for _ in range(epochs):
        order = rng.permutation(len(clouds))
        epoch_loss = 0.0
        for start in range(0, len(order), batch_size):
            batch = order[start : start + batch_size]
            optimizer.zero_grad()
            for ci in batch:
                cloud = clouds[ci]
                logits = model.forward(cloud.coords, backend)
                loss, grad, _ = softmax_cross_entropy(
                    logits[None, :], np.array([cloud.class_id])
                )
                model.backward(grad[0])
                epoch_loss += loss
            # Average accumulated gradients over the minibatch.
            for p in model.parameters():
                p.grad /= len(batch)
            optimizer.step()
        losses.append(epoch_loss / len(order))
    return TrainResult(losses=losses, final_metric=evaluate_classifier(model, clouds, backend))


def evaluate_classifier(
    model: PNNClassifier, clouds: list[PointCloud], backend: PointOpsBackend
) -> float:
    """Overall accuracy (OA) on labelled clouds."""
    correct = 0
    for cloud in clouds:
        logits = model.forward(cloud.coords, backend)
        correct += int(np.argmax(logits) == cloud.class_id)
    return correct / len(clouds)


def mean_iou(predictions: np.ndarray, labels: np.ndarray, num_classes: int) -> float:
    """Mean IoU over classes that appear in labels or predictions."""
    predictions = np.asarray(predictions)
    labels = np.asarray(labels)
    ious = []
    for cls in range(num_classes):
        pred_c = predictions == cls
        true_c = labels == cls
        union = np.logical_or(pred_c, true_c).sum()
        if union == 0:
            continue
        ious.append(np.logical_and(pred_c, true_c).sum() / union)
    return float(np.mean(ious)) if ious else 0.0


def train_segmenter(
    model: PNNSegmenter,
    clouds: list[PointCloud],
    backend: PointOpsBackend,
    *,
    epochs: int = 8,
    batch_size: int = 4,
    lr: float = 2e-3,
    seed: int = 0,
) -> TrainResult:
    """Train on per-point labelled clouds; returns loss history."""
    if any(c.labels is None for c in clouds):
        raise ValueError("all training clouds need per-point labels")
    optimizer = Adam(model.parameters(), lr=lr)
    rng = np.random.default_rng(seed)
    losses: list[float] = []
    for _ in range(epochs):
        order = rng.permutation(len(clouds))
        epoch_loss = 0.0
        for start in range(0, len(order), batch_size):
            batch = order[start : start + batch_size]
            optimizer.zero_grad()
            for ci in batch:
                cloud = clouds[ci]
                logits = model.forward(cloud.coords, backend)
                loss, grad, _ = softmax_cross_entropy(logits, cloud.labels)
                model.backward(grad)
                epoch_loss += loss
            for p in model.parameters():
                p.grad /= len(batch)
            optimizer.step()
        losses.append(epoch_loss / len(order))
    return TrainResult(losses=losses, final_metric=evaluate_segmenter(model, clouds, backend))


def evaluate_segmenter(
    model: PNNSegmenter, clouds: list[PointCloud], backend: PointOpsBackend
) -> float:
    """mIoU pooled over all points of all clouds."""
    preds, labels = [], []
    for cloud in clouds:
        logits = model.forward(cloud.coords, backend)
        preds.append(np.argmax(logits, axis=1))
        labels.append(cloud.labels)
    return mean_iou(np.concatenate(preds), np.concatenate(labels), model.num_classes)
