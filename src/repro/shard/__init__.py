"""Sharded multi-process serving: consistent-hash router over engine
shards with shared-memory array transport.

Layers:

- :mod:`~repro.shard.hashring` — consistent hashing with virtual nodes
  (stable placement, ~1/N remap on membership change);
- :mod:`~repro.shard.transport` — shm arena block pool + inline-pickle
  fallback (:class:`ArrayRef` framing, refcount-free reclamation);
- :mod:`~repro.shard.worker` — one engine shard: a serial
  ``BatchExecutor`` with private partition cache and dedup window;
- :mod:`~repro.shard.router` — the front-end: routing, ordering, flow
  control, drain/rebalance, fleet telemetry.
"""

from .hashring import HashRing
from .router import ShardResult, ShardRouter
from .transport import ArrayRef, PickleChannel, ShmArena, ShmPeer
from .worker import shard_main

__all__ = [
    "ArrayRef",
    "HashRing",
    "PickleChannel",
    "ShardResult",
    "ShardRouter",
    "ShmArena",
    "ShmPeer",
    "shard_main",
]
