"""Tests for the top-level accelerator simulator and Table II configs."""

import pytest

from repro.hw import (
    CRESCENT,
    FRACTALCLOUD,
    MESORASI,
    POINTACC,
    SOTA_CONFIGS,
    AcceleratorSim,
    ablation_ladder,
)
from repro.networks import get_workload


@pytest.fixture(scope="module")
def spec():
    return get_workload("PNXt(s)")


@pytest.fixture(scope="module")
def results(spec):
    """One simulation per accelerator at 33 K (the Fig. 15 setting)."""
    return {
        name: AcceleratorSim(cfg).run(spec, 33_000)
        for name, cfg in SOTA_CONFIGS.items()
    }


class TestConfigs:
    def test_table2_fields(self):
        assert POINTACC.sram_kb == 274.0
        assert CRESCENT.sram_kb == pytest.approx(1622.8)
        assert MESORASI.sram_kb == 1624.0
        assert FRACTALCLOUD.sram_kb == 274.0
        for cfg in SOTA_CONFIGS.values():
            assert cfg.pe_rows == cfg.pe_cols == 16
            assert cfg.frequency_hz == 1e9
            assert cfg.dram_gbps == 17.0

    def test_areas_match_table2(self):
        assert MESORASI.area_mm2 == 4.59
        assert POINTACC.area_mm2 == 1.91
        assert CRESCENT.area_mm2 == 4.75
        assert FRACTALCLOUD.area_mm2 == 1.5

    def test_feature_flags(self):
        assert not POINTACC.uses_partitioning
        assert CRESCENT.partitioner == "kdtree" and not CRESCENT.block_parallel
        assert not CRESCENT.block_sampling  # global FPS (PointAcc engine)
        assert FRACTALCLOUD.block_parallel and FRACTALCLOUD.window_check
        assert all([FRACTALCLOUD.block_sampling, FRACTALCLOUD.block_grouping,
                    FRACTALCLOUD.block_interpolation, FRACTALCLOUD.block_gathering])

    def test_ablation_ladder_order(self):
        ladder = ablation_ladder()
        names = [cfg.name for cfg in ladder]
        assert names == ["Baseline", "Baseline(Meso)", "+RSPU", "+BWS",
                         "+BWG", "+BWI", "+BWGa"]
        # Each rung only adds features.
        assert not ladder[0].delayed_aggregation
        assert ladder[1].delayed_aggregation
        assert ladder[2].window_check
        assert ladder[3].block_sampling and ladder[3].partitioner == "fractal"
        assert ladder[6].block_gathering


class TestSimulatorSanity:
    def test_positive_latency_energy(self, results):
        for name, r in results.items():
            assert r.latency_s > 0, name
            assert r.energy_j > 0, name
            assert r.dram_bytes > 0, name

    def test_phases_present(self, results):
        fract = results["FractalCloud"]
        for phase in ("partition", "sample", "neighbor", "interpolate",
                      "gather", "mlp", "pool", "io"):
            assert phase in fract.phases, phase
        assert "partition" not in results["PointAcc"].phases

    def test_breakdown_sums_to_total(self, results):
        for r in results.values():
            assert r.point_op_seconds + r.mlp_seconds + r.other_seconds == (
                pytest.approx(r.latency_s)
            )
            bd = r.energy_breakdown()
            assert sum(bd.values()) == pytest.approx(r.energy_j)

    def test_latency_monotone_in_scale(self, spec):
        sim = AcceleratorSim(FRACTALCLOUD)
        latencies = [sim.run(spec, n).latency_s for n in (8192, 33_000, 131_000)]
        assert latencies[0] < latencies[1] < latencies[2]

    def test_deterministic(self, spec):
        sim = AcceleratorSim(FRACTALCLOUD)
        a = sim.run(spec, 8192)
        b = sim.run(spec, 8192)
        assert a.latency_s == b.latency_s
        assert a.energy_j == b.energy_j


class TestPaperOrderings:
    """The qualitative results the paper's evaluation rests on."""

    def test_fractalcloud_fastest_at_33k(self, results):
        fract = results["FractalCloud"].latency_s
        for name in ("Mesorasi", "PointAcc", "Crescent"):
            assert results[name].latency_s > fract, name

    def test_fractalcloud_most_efficient(self, results):
        fract = results["FractalCloud"].energy_j
        for name in ("Mesorasi", "PointAcc", "Crescent"):
            assert results[name].energy_j > fract, name

    def test_pointacc_pointop_dominated_at_33k(self, results):
        """Fig. 15: point operations dominate PointAcc's latency."""
        r = results["PointAcc"]
        assert r.point_op_seconds > 0.5 * r.latency_s

    def test_fractalcloud_mlp_dominated(self, results):
        """After BPPO, point ops collapse and MLPs dominate."""
        r = results["FractalCloud"]
        assert r.mlp_seconds > r.point_op_seconds

    def test_fractal_partition_overhead_below_1pct(self, results):
        """Paper: Fractal adds <0.8% of end-to-end latency."""
        r = results["FractalCloud"]
        assert r.phases["partition"].seconds < 0.01 * r.latency_s

    def test_crescent_partition_overhead_significant(self, spec):
        """KD-tree partitioning is a visible share of Crescent latency."""
        r = AcceleratorSim(CRESCENT).run(spec, 33_000)
        assert r.phases["partition"].seconds > 0.01 * r.latency_s

    def test_crescent_sram_energy_exceeds_fractalclouds(self, results):
        """Fig. 15(b): the big buffer costs energy per access."""
        crescent = results["Crescent"].energy_breakdown()["sram"]
        fract = results["FractalCloud"].energy_breakdown()["sram"]
        assert crescent > fract

    def test_crescent_within_2x_of_fractalcloud_at_1k(self):
        """Paper: 'Crescent is only 20% slower than ours' at small scale."""
        spec_c = get_workload("PN++(c)")
        crescent = AcceleratorSim(CRESCENT).run(spec_c, 1024).latency_s
        fract = AcceleratorSim(FRACTALCLOUD).run(spec_c, 1024).latency_s
        assert crescent < 2.0 * fract

    def test_crescent_gap_explodes_at_large_scale(self, spec):
        """...but the gap grows to an order of magnitude at 289 K."""
        crescent = AcceleratorSim(CRESCENT).run(spec, 289_000).latency_s
        fract = AcceleratorSim(FRACTALCLOUD).run(spec, 289_000).latency_s
        assert crescent > 10 * fract

    def test_speedup_grows_with_scale(self, spec):
        """FractalCloud's advantage over PointAcc widens with n (Fig. 13)."""
        ratios = []
        for n in (8192, 131_000):
            pa = AcceleratorSim(POINTACC).run(spec, n).latency_s
            fc = AcceleratorSim(FRACTALCLOUD).run(spec, n).latency_s
            ratios.append(pa / fc)
        assert ratios[1] > 2 * ratios[0]

    def test_ablation_ladder_monotone(self, spec):
        """Fig. 18: every optimisation rung reduces latency."""
        latencies = [
            AcceleratorSim(cfg).run(spec, 33_000).latency_s
            for cfg in ablation_ladder()
        ]
        for prev, nxt in zip(latencies, latencies[1:]):
            assert nxt <= prev * 1.02  # allow sub-percent noise

    def test_ablation_total_gain_large(self, spec):
        """Fig. 18: baseline → full stack is orders of magnitude."""
        ladder = ablation_ladder()
        base = AcceleratorSim(ladder[0]).run(spec, 131_000).latency_s
        full = AcceleratorSim(ladder[-1]).run(spec, 131_000).latency_s
        assert base / full > 20
