"""Point-cloud corruption suite (ModelNet40-C style).

The paper benchmarks on ModelNet40 and cites ModelNet40-C, the
corruption-robustness variant.  This module implements the common
corruption families at five severity levels so robustness experiments
can measure how each partitioning strategy degrades under realistic
sensor pathologies:

- ``jitter`` — per-point Gaussian noise;
- ``dropout_global`` — uniform random point removal;
- ``dropout_local`` — remove points in a few random balls (self-occlusion
  holes);
- ``occlusion`` — remove everything behind a random half-space (single
  viewpoint);
- ``outliers`` — inject uniform background points;
- ``scale_anisotropic`` — squash/stretch along random axes.

All corruptions preserve per-point labels where points survive, and keep
the output size stable where possible (jitter/scale) or report the
survivor indices (removals).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..geometry import PointCloud

__all__ = ["CORRUPTIONS", "corrupt", "corruption_names"]

_MAX_SEVERITY = 5


def _jitter(cloud: PointCloud, severity: int, rng: np.random.Generator) -> PointCloud:
    sigma = [0.01, 0.02, 0.03, 0.05, 0.08][severity - 1]
    coords = cloud.coords + rng.normal(scale=sigma, size=cloud.coords.shape).astype(np.float32)
    return PointCloud(coords, cloud.features, cloud.labels, cloud.class_id)


def _dropout_global(cloud, severity, rng):
    keep_frac = [0.9, 0.75, 0.5, 0.3, 0.15][severity - 1]
    n_keep = max(int(len(cloud) * keep_frac), 8)
    keep = rng.choice(len(cloud), size=n_keep, replace=False)
    return cloud.select(np.sort(keep))

def _dropout_local(cloud, severity, rng):
    holes = [1, 2, 3, 5, 8][severity - 1]
    radius = 0.25
    alive = np.ones(len(cloud), dtype=bool)
    for _ in range(holes):
        center = cloud.coords[rng.integers(0, len(cloud))]
        dist = np.linalg.norm(cloud.coords - center, axis=1)
        alive &= dist > radius
    if alive.sum() < 8:  # pathological: keep the nearest 8 to the centroid
        alive[:] = False
        centroid = cloud.coords.mean(axis=0)
        dist = np.linalg.norm(cloud.coords - centroid, axis=1)
        alive[np.argsort(dist)[:8]] = True
    return cloud.select(np.nonzero(alive)[0])


def _occlusion(cloud, severity, rng):
    frac = [0.15, 0.25, 0.4, 0.5, 0.6][severity - 1]
    direction = rng.normal(size=3)
    direction /= np.linalg.norm(direction)
    projection = cloud.coords @ direction.astype(np.float32)
    cutoff = np.quantile(projection, frac)
    keep = np.nonzero(projection >= cutoff)[0]
    if len(keep) < 8:
        keep = np.argsort(-projection)[:8]
    return cloud.select(np.sort(keep))


def _outliers(cloud, severity, rng):
    frac = [0.01, 0.03, 0.05, 0.1, 0.2][severity - 1]
    n_out = max(int(len(cloud) * frac), 1)
    lo = cloud.coords.min(axis=0) - 0.2
    hi = cloud.coords.max(axis=0) + 0.2
    noise = rng.uniform(lo, hi, size=(n_out, 3)).astype(np.float32)
    coords = np.concatenate([cloud.coords, noise])
    labels = None
    if cloud.labels is not None:
        # Outliers inherit the most common label (they are unlabeled junk;
        # any constant works for robustness metrics).
        fill = np.bincount(cloud.labels).argmax()
        labels = np.concatenate([cloud.labels, np.full(n_out, fill, dtype=cloud.labels.dtype)])
    features = None
    if cloud.features is not None:
        features = np.concatenate(
            [cloud.features, np.zeros((n_out, cloud.num_features), dtype=np.float32)]
        )
    return PointCloud(coords, features, labels, cloud.class_id)


def _scale_anisotropic(cloud, severity, rng):
    spread = [0.1, 0.2, 0.3, 0.45, 0.6][severity - 1]
    scale = rng.uniform(1 - spread, 1 + spread, size=3).astype(np.float32)
    return PointCloud(cloud.coords * scale, cloud.features, cloud.labels, cloud.class_id)


CORRUPTIONS: dict[str, Callable] = {
    "jitter": _jitter,
    "dropout_global": _dropout_global,
    "dropout_local": _dropout_local,
    "occlusion": _occlusion,
    "outliers": _outliers,
    "scale_anisotropic": _scale_anisotropic,
}


def corruption_names() -> list[str]:
    """Available corruption families."""
    return list(CORRUPTIONS)


def corrupt(
    cloud: PointCloud,
    kind: str,
    severity: int = 3,
    seed: int = 0,
) -> PointCloud:
    """Apply one corruption at ``severity`` in 1..5.

    Args:
        cloud: input (unchanged; a new cloud is returned).
        kind: a key of :data:`CORRUPTIONS`.
        severity: 1 (mild) .. 5 (severe).
        seed: RNG seed for the corruption's randomness.
    """
    if kind not in CORRUPTIONS:
        raise ValueError(f"unknown corruption {kind!r}; expected one of {corruption_names()}")
    if not 1 <= severity <= _MAX_SEVERITY:
        raise ValueError(f"severity must be in 1..{_MAX_SEVERITY}, got {severity}")
    rng = np.random.default_rng(seed)
    return CORRUPTIONS[kind](cloud, severity, rng)
