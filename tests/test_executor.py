"""Tests for the batched multi-cloud execution engine."""

import numpy as np
import pytest

from repro.geometry import PointCloud
from repro.partition import get_partitioner
from repro.runtime import BatchExecutor, PartitionCache, PipelineSpec, content_key


def make_clouds(count, seed=0, max_n=400):
    rng = np.random.default_rng(seed)
    return [rng.normal(size=(int(rng.integers(1, max_n)), 3)) for _ in range(count)]


class TestPipelineSpec:
    def test_ratio_clamped_to_cloud(self):
        spec = PipelineSpec(sample_ratio=0.25)
        assert spec.samples_for(100) == 25
        assert spec.samples_for(1) == 1  # never zero

    def test_absolute_count_clamped(self):
        spec = PipelineSpec(num_samples=512)
        assert spec.samples_for(10_000) == 512
        assert spec.samples_for(50) == 50  # tiny cloud survives


class TestPartitionCache:
    def test_hit_on_identical_content(self):
        cache = PartitionCache(get_partitioner("kdtree", max_points_per_block=32))
        coords = np.random.default_rng(0).normal(size=(200, 3))
        _, hit0 = cache.get(coords)
        _, hit1 = cache.get(coords.copy())  # same content, new object
        assert (hit0, hit1) == (False, True)
        assert cache.hits == 1 and cache.misses == 1

    def test_lru_eviction(self):
        cache = PartitionCache(
            get_partitioner("kdtree", max_points_per_block=32), maxsize=2
        )
        clouds = make_clouds(3, seed=1)
        for c in clouds:
            cache.get(c)
        assert len(cache) == 2
        _, hit = cache.get(clouds[0])  # oldest was evicted
        assert not hit

    def test_content_key_distinguishes_shape(self):
        flat = np.zeros((6, 3))
        assert content_key(flat) != content_key(flat[:4])

    def test_content_key_distinguishes_dtype(self):
        """Regression: the digest hashed shape and raw bytes but not the
        dtype, so same-shape arrays with identical raw bytes under
        different input dtypes collided (all-zero int64 vs all-zero
        float64) at any single call site, as did digests produced at
        different renderings."""
        ints = np.zeros((4, 3), dtype=np.int64)
        floats = np.zeros((4, 3), dtype=np.float64)
        assert ints.tobytes() == floats.tobytes()  # the collision setup
        assert content_key(ints) != content_key(floats)  # input dtype hashed
        assert content_key(ints, dtype=np.int64) != content_key(
            floats, dtype=np.float64
        )  # rendering dtype hashed too
        # Value-equal inputs of one dtype still share a key (cache replay).
        assert content_key(floats) == content_key(floats.copy())

    def test_construction_dtype_is_the_dedup_contract(self):
        """Companion regression: datasets pin float32 at PointCloud
        construction, and dedup keys on the *source* dtype — so a call
        site that upcasts per call (``coords.astype(np.float64)``, as
        the training loop once did) forks the key and defeats every
        content-addressed reuse path behind it."""
        cloud = np.arange(12, dtype=np.float32).reshape(4, 3)
        assert content_key(cloud) == content_key(cloud.copy())
        assert content_key(cloud) != content_key(cloud.astype(np.float64))


class TestBatchExecutor:
    def test_results_in_submission_order(self):
        clouds = make_clouds(7, seed=2)
        report = BatchExecutor("kdtree", block_size=32, max_workers=3).run(clouds)
        assert [r.index for r in report.results] == list(range(7))
        assert [r.num_points for r in report.results] == [len(c) for c in clouds]

    def test_stats_accounting(self):
        clouds = make_clouds(5, seed=3)
        report = BatchExecutor("kdtree", block_size=32, max_workers=1).run(clouds)
        stats = report.stats
        assert stats.clouds == 5
        assert stats.points == sum(len(c) for c in clouds)
        assert stats.wall_seconds > 0 and stats.clouds_per_second > 0
        assert stats.cache_misses == 5 and stats.cache_hits == 0

    def test_dedup_replays_identical_clouds(self):
        clouds = make_clouds(4, seed=4)
        batch = clouds + [clouds[1], clouds[2]]
        report = BatchExecutor("kdtree", block_size=32, max_workers=2).run(batch)
        assert report.stats.reused == 2
        for orig, rep in ((1, 4), (2, 5)):
            assert report.results[rep].reused
            assert np.array_equal(
                report.results[orig].sampled, report.results[rep].sampled
            )

    def test_dedup_requires_exact_float64_content(self):
        """Regression: reuse keyed on a float32 hash once conflated
        distinct float64 clouds; results must only replay for bit-equal
        input."""
        rng = np.random.default_rng(12)
        a = rng.normal(size=(60, 3))
        b = a.copy()
        b[0, 0] = np.nextafter(a[0, 0], np.inf)  # one float64 ulp apart
        assert np.float32(a[0, 0]) == np.float32(b[0, 0])  # float32-equal
        report = BatchExecutor("kdtree", block_size=32, max_workers=1).run([a, b])
        assert report.stats.reused == 0
        assert not report.results[1].reused

    def test_dedup_disabled(self):
        clouds = make_clouds(2, seed=5)
        batch = clouds + [clouds[0]]
        engine = BatchExecutor(
            "kdtree", block_size=32, max_workers=1, reuse_results=False
        )
        report = engine.run(batch)
        assert report.stats.reused == 0
        assert report.stats.cache_hits == 1  # partition cache still works

    def test_features_flow_through(self):
        rng = np.random.default_rng(6)
        coords = rng.normal(size=(150, 3))
        feats = rng.normal(size=(150, 9))
        result = BatchExecutor("octree", block_size=16).run_cloud((coords, feats))
        assert result.grouped.shape[-1] == 9
        assert result.interpolated.shape == (150, 9)

    def test_point_cloud_objects_accepted(self):
        coords = np.random.default_rng(7).normal(size=(80, 3))
        result = BatchExecutor("kdtree", block_size=16).run_cloud(
            PointCloud(coords=coords)
        )
        assert result.num_points == 80

    def test_stream_is_lazy_and_ordered(self):
        pulled = []

        def source():
            for i, c in enumerate(make_clouds(6, seed=8)):
                pulled.append(i)
                yield c

        engine = BatchExecutor("kdtree", block_size=32, max_workers=2)
        stream = engine.stream(source())
        first = next(stream)
        assert first.index == 0
        assert len(pulled) < 6  # backpressure: source not fully drained
        rest = list(stream)
        assert [r.index for r in rest] == [1, 2, 3, 4, 5]

    def test_tiny_and_single_point_clouds(self):
        engine = BatchExecutor("uniform", block_size=16)
        result = engine.run_cloud(np.zeros((1, 3)))
        assert result.sampled.tolist() == [0]
        assert result.neighbors.shape == (1, 16)
        assert result.interpolated.shape == (1, 3)

    def test_fixed_num_samples_clamped_on_small_cloud(self):
        engine = BatchExecutor("kdtree", block_size=32)
        result = engine.run_cloud(
            np.random.default_rng(9).normal(size=(20, 3)),
            PipelineSpec(num_samples=500),
        )
        assert len(result.sampled) == 20

    def test_process_mode_requires_partitioner_name(self):
        with pytest.raises(ValueError, match="process mode"):
            BatchExecutor(
                get_partitioner("kdtree"), max_workers=2, mode="process"
            )

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError, match="mode"):
            BatchExecutor("kdtree", mode="fleet")

    def test_invalid_cloud_shapes_rejected(self):
        engine = BatchExecutor("kdtree")
        with pytest.raises(ValueError, match=r"\(n, 3\)"):
            engine.run_cloud(np.zeros((4, 2)))
        with pytest.raises(ValueError, match="at least one point"):
            engine.run_cloud(np.zeros((0, 3)))
        with pytest.raises(ValueError, match="features"):
            engine.run_cloud((np.zeros((4, 3)), np.zeros((3, 2))))

    def test_process_mode_matches_serial(self):
        clouds = make_clouds(4, seed=10, max_n=150)
        pipe = PipelineSpec(radius=0.5, group_size=4)
        serial = BatchExecutor("kdtree", block_size=32, max_workers=1).run(clouds, pipe)
        proc = BatchExecutor(
            "kdtree", block_size=32, max_workers=2, mode="process"
        ).run(clouds, pipe)
        for a, b in zip(serial.results, proc.results):
            assert np.array_equal(a.sampled, b.sampled)
            assert np.array_equal(a.interpolated, b.interpolated)

    def test_traces_cover_all_stages(self):
        result = BatchExecutor("kdtree", block_size=32).run_cloud(
            np.random.default_rng(11).normal(size=(120, 3))
        )
        assert set(result.traces) == {"fps", "ball_query", "gather", "interpolate"}
        assert result.traces["fps"].total_outputs == len(result.sampled)


def make_frame_stream(count, n=400, seed=0, churn=0, motion=1e-3):
    """A jittered (optionally churned) frame sequence from one sensor."""
    rng = np.random.default_rng(seed)
    frame = rng.normal(size=(n, 3))
    frames = [frame]
    for _ in range(count - 1):
        dirs = rng.normal(size=frame.shape)
        norms = np.linalg.norm(dirs, axis=1, keepdims=True)
        norms[norms == 0] = 1.0
        radii = motion * rng.random((len(frame), 1)) ** (1.0 / 3.0)
        frame = frame + dirs / norms * radii
        if churn:
            frame = np.concatenate(
                [frame[:-churn], rng.normal(size=(churn, 3))]
            )
        frames.append(frame)
    return frames


class TestDeltaEngine:
    def test_jitter_stream_bit_identical_to_rebuild_engine(self):
        # Pure jitter only ever takes the certificate path (proven
        # rebuild identity) or a cold build — so every result must match
        # an engine that rebuilds each frame from scratch.
        frames = make_frame_stream(6, seed=1)
        pipe = PipelineSpec(sample_ratio=0.25)
        ref = BatchExecutor(
            "fractal", mode="serial", reuse_results=False
        ).run(frames, pipe)
        dlt = BatchExecutor(
            "fractal", mode="serial", reuse_results=False, delta=True
        ).run(frames, pipe)
        for a, b in zip(ref.results, dlt.results):
            assert np.array_equal(a.sampled, b.sampled)
            assert np.array_equal(a.neighbors, b.neighbors)
            assert np.array_equal(a.grouped, b.grouped)
            assert np.array_equal(a.interpolated, b.interpolated)
        assert dlt.stats.patched >= 4
        assert dlt.stats.cold == 1

    def test_partition_source_and_counters(self):
        frames = make_frame_stream(5, seed=2, churn=10)
        report = BatchExecutor(
            "fractal", mode="serial", reuse_results=False, delta=True
        ).run(frames, PipelineSpec(sample_ratio=0.25))
        sources = [r.partition_source for r in report.results]
        assert sources[0] == "cold"
        assert all(s in ("cold", "reused", "patched", "warm") for s in sources)
        stats = report.stats
        assert stats.patched + stats.cold + stats.cache_hits == len(frames)
        # The delta path still counts as a cache miss (no exact hit).
        assert stats.cache_misses == stats.patched + stats.cold
        assert "patched" in stats.summary()

    def test_churned_frames_serve_valid_results(self):
        frames = make_frame_stream(5, seed=3, churn=15)
        pipe = PipelineSpec(sample_ratio=0.25)
        report = BatchExecutor(
            "fractal", mode="serial", reuse_results=False, delta=True
        ).run(frames, pipe)
        assert report.stats.patched >= 3
        for frame, result in zip(frames, report.results):
            n = len(frame)
            assert result.num_points == n
            assert len(result.sampled) == pipe.samples_for(n)
            assert len(np.unique(result.sampled)) == len(result.sampled)
            assert result.sampled.max() < n
            assert result.interpolated.shape == (n, 3)
            assert set(result.traces) == {
                "fps", "ball_query", "gather", "interpolate"
            }

    def test_corrupted_patch_rebuilds_with_correct_results(self, monkeypatch):
        class BrokenPatcher:
            def __init__(self, structure, coords):
                self._structure = structure
                self._coords = coords

            def remove(self, ids):
                pass

            def move(self, ids, new_coords):
                pass

            def insert(self, coords):
                return np.arange(len(coords), dtype=np.int64)

            def structure(self):
                return self._structure, np.arange(
                    self._structure.num_points, dtype=np.int64
                )

            def coords(self):
                return self._coords

        frames = make_frame_stream(4, seed=4, churn=10)
        pipe = PipelineSpec(sample_ratio=0.25)
        engine = BatchExecutor(
            "fractal", mode="serial", reuse_results=False, delta=True
        )
        first = engine.cache.partitioner(frames[0])
        monkeypatch.setattr(
            "repro.runtime.cache.updater_from_certificate",
            lambda cert, structure, coords: BrokenPatcher(first, frames[0]),
        )
        report = engine.run(frames, pipe)
        # Every patch attempt failed its sanity gate, so every frame
        # paid a cold build — and the results must equal the plain
        # engine's bit for bit.
        assert report.stats.patched == 0
        assert report.stats.cold == len(frames)
        ref = BatchExecutor(
            "fractal", mode="serial", reuse_results=False
        ).run(frames, pipe)
        for a, b in zip(ref.results, report.results):
            assert np.array_equal(a.sampled, b.sampled)
            assert np.array_equal(a.interpolated, b.interpolated)

    def test_delta_policy_implies_delta(self):
        from repro.core.delta import PatchPolicy

        engine = BatchExecutor(
            "fractal", delta_policy=PatchPolicy(motion_threshold=0.5)
        )
        assert engine.delta
        assert engine.cache.policy.motion_threshold == 0.5

    def test_non_delta_engine_reports_cold_sources(self):
        clouds = make_clouds(3, seed=5, max_n=150)
        report = BatchExecutor(
            "kdtree", mode="serial", reuse_results=False
        ).run(clouds, PipelineSpec())
        assert all(
            r.partition_source == "cold" for r in report.results
        )
        assert report.stats.patched == 0
