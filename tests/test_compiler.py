"""Tests for the workload compiler (runtime package)."""

import numpy as np
import pytest

from repro.runtime import compile_program
from repro.networks import get_workload


@pytest.fixture(scope="module")
def spec():
    return get_workload("PNXt(s)")


class TestProgramStructure:
    def test_stage_count(self, spec):
        program = compile_program(spec, 8192, "none")
        # 4 SA + 4 FP + head
        assert len(program.stages) == 9
        kinds = [p.stage.kind for p in program.stages]
        assert kinds == ["sa"] * 4 + ["fp"] * 4 + ["head"]

    def test_no_partition_stats_for_none(self, spec):
        program = compile_program(spec, 8192, "none")
        assert all(p.partition is None for p in program.stages)

    def test_partition_stats_for_fractal(self, spec):
        program = compile_program(spec, 8192, "fractal", block_size=256)
        sa_plans = [p for p in program.stages if p.stage.kind == "sa"]
        for plan in sa_plans:
            assert plan.partition is not None
            assert plan.partition.block_sizes.sum() == plan.stage.n_in

    def test_fp_partitions_dense_side(self, spec):
        program = compile_program(spec, 8192, "fractal", block_size=256)
        fp_plans = [p for p in program.stages if p.stage.kind == "fp"]
        for plan in fp_plans:
            assert plan.partition is not None
            assert plan.partition.block_sizes.sum() == plan.stage.n_out

    def test_small_stage_single_block(self, spec):
        program = compile_program(spec, 8192, "fractal", block_size=256)
        deepest_sa = [p for p in program.stages if p.stage.kind == "sa"][-1]
        if deepest_sa.stage.n_in <= 256:
            assert deepest_sa.partition.num_blocks == 1

    def test_block_sizes_respect_threshold(self, spec):
        program = compile_program(spec, 33_000, "fractal", block_size=256)
        for plan in program.stages:
            if plan.partition is not None and plan.partition.num_blocks > 1:
                assert plan.partition.block_sizes.max() <= 256

    def test_kdtree_stats_have_sorts(self, spec):
        program = compile_program(spec, 8192, "kdtree", block_size=256)
        first = program.stages[0].partition
        assert first.cost.num_sorts > 0
        assert first.cost.num_traversals == 0

    def test_weight_bytes_positive_and_plausible(self, spec):
        program = compile_program(spec, 8192, "none")
        # PNXt-S-like: hundreds of KB to a few MB of FP16 weights.
        assert 1e4 < program.weight_bytes < 1e8

    def test_scale_validation(self, spec):
        with pytest.raises(ValueError, match="at least"):
            compile_program(spec, 64)

    def test_caching_returns_consistent_stats(self, spec):
        a = compile_program(spec, 8192, "fractal")
        b = compile_program(spec, 8192, "fractal")
        sa_a = a.stages[0].partition
        sa_b = b.stages[0].partition
        assert np.array_equal(sa_a.block_sizes, sa_b.block_sizes)


class TestSubsampleApproximation:
    def test_subsample_balance_close_to_fps_balance(self):
        """Stage inputs are approximated by random subsampling; verify
        the block-size distribution is close to the true FPS subset's."""
        from repro.core import FractalConfig, fractal_partition
        from repro.datasets import load_cloud
        from repro.geometry import farthest_point_sample

        coords = load_cloud("s3dis", 8192, seed=0).coords.astype(np.float64)
        n_stage = 2048
        fps_idx = farthest_point_sample(coords, n_stage)
        rng = np.random.default_rng(0)
        rand_idx = rng.choice(len(coords), size=n_stage, replace=False)
        cfg = FractalConfig(threshold=256)
        fps_tree = fractal_partition(coords[fps_idx], cfg)
        rand_tree = fractal_partition(coords[rand_idx], cfg)
        fps_balance = fps_tree.block_sizes.max() / fps_tree.block_sizes.mean()
        rand_balance = rand_tree.block_sizes.max() / rand_tree.block_sizes.mean()
        assert abs(fps_balance - rand_balance) / fps_balance < 0.75
