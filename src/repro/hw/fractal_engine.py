"""Fractal-engine timing model (paper §V-B, Fig. 9).

The engine implements all mainstream partitioning methods with one
datapath: parallel comparators (partition unit), min/max averaging
(midpoint unit), counters, and a merge-sort unit for KD-tree medians.
The cost asymmetry the paper exploits is captured directly:

- **Fractal**: midpoint and partition units run pipelined, touching every
  point once per level — inclusive, lane-parallel traversals.
- **KD-tree**: each node needs an exclusive ``m log2 m`` merge sort, and
  sorts are *sequentially dependent* (a node's sort cannot start before
  its parent's finished), so no lane-parallelism across nodes helps the
  critical path.
- **Uniform**: a single streaming pass.
- **Octree**: streaming passes with three comparators per point plus
  per-level child-management control overhead.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..core.blocks import PartitionCost
from . import energy as E
from .cost import UnitCost

__all__ = ["FractalEngineModel"]


@dataclass(frozen=True)
class FractalEngineModel:
    """Timing model of the partition engine.

    Attributes:
        lanes: comparator/midpoint lanes (points processed per cycle).
        sorter_width: merge-sort elements consumed per cycle.
        level_overhead: control cycles to launch one tree level.
    """

    lanes: int = 16
    sorter_width: int = 16
    level_overhead: int = 64

    def fractal_cost(self, cost: PartitionCost) -> UnitCost:
        """Fractal partitioning: pipelined traverse+partition per level."""
        touched = float(cost.total_traversed_elements)
        passes = float(sum(cost.passes))
        # Midpoint traversal and partition pass overlap in the pipeline
        # (Fig. 9(c)); the longer stream bounds the level latency.
        cycles = max(touched, passes) / self.lanes + cost.levels * self.level_overhead
        # Each level streams coordinates in and writes them back
        # reorganised into the two sub-blocks.
        sram = 2.0 * (touched + passes) / 2.0 * E.COORD_BYTES
        return UnitCost(
            compute_cycles=cycles,
            cmp_ops=2.0 * touched,  # min+max per point, then one compare
            sram_stream_bytes=sram,
        )

    def kdtree_cost(self, cost: PartitionCost) -> UnitCost:
        """KD-tree: exclusive, sequentially dependent merge sorts."""
        cycles = 0.0
        cmp = 0.0
        sram = 0.0
        for m in cost.sorts:
            log_m = max(math.log2(max(m, 2)), 1.0)
            cycles += m * log_m / self.sorter_width
            cmp += m * log_m
            # Merge sort streams the node's keys+indices every pass.
            sram += m * log_m * (E.BYTES_PER_SCALAR + 4)
        cycles += cost.levels * self.level_overhead
        return UnitCost(
            compute_cycles=cycles, cmp_ops=cmp, sram_stream_bytes=sram, serial=True
        )

    def uniform_cost(self, cost: PartitionCost) -> UnitCost:
        """Uniform grid: one streaming bucketing pass.

        Bucketing needs a scaled multiply + clamp + scatter per point, so
        the pass runs at half the comparator-lane throughput.
        """
        n = float(sum(cost.passes))
        return UnitCost(
            compute_cycles=2.0 * n / self.lanes + self.level_overhead,
            cmp_ops=3.0 * n,
            sram_stream_bytes=2.0 * n * E.COORD_BYTES,
        )

    def octree_cost(self, cost: PartitionCost) -> UnitCost:
        """Octree: per-level passes + 8-way child management.

        Each level classifies points into eight children (three compares
        plus an 8-way scatter with per-child occupancy bookkeeping),
        which utilises the comparator lanes poorly — the "increased
        control complexity" the paper attributes to octrees (§VI-C).
        """
        touched = float(sum(cost.passes))
        cycles = 4.0 * touched / self.lanes + cost.levels * 4 * self.level_overhead
        return UnitCost(
            compute_cycles=cycles,
            cmp_ops=3.0 * touched,
            sram_stream_bytes=2.0 * touched * E.COORD_BYTES,
        )

    def cost_for(self, strategy: str, cost: PartitionCost) -> UnitCost:
        """Dispatch on partitioner name (``none`` is free)."""
        if strategy == "fractal":
            return self.fractal_cost(cost)
        if strategy == "kdtree":
            return self.kdtree_cost(cost)
        if strategy == "uniform":
            return self.uniform_cost(cost)
        if strategy == "octree":
            return self.octree_cost(cost)
        if strategy == "none":
            return UnitCost()
        raise ValueError(f"unknown partitioning strategy {strategy!r}")
