"""Extension bench — Fractal-accelerated DGCNN graph construction (§VI-D).

The paper's "Potential Adaptations": dynamic KNN-graph construction with
block-local search.  Measures, across scales, the distance-computation
reduction and the edge recall of the block-local graph against the exact
O(n^2) construction.
"""

import numpy as np

from repro.analysis import format_table
from repro.core import (
    FractalConfig,
    block_knn_graph,
    edge_recall,
    exact_knn_graph,
    fractal_partition,
)
from repro.datasets import load_cloud

from _common import emit

SCALES = [1024, 2048, 4096]
K = 8


def run_graph():
    rows = []
    recalls = []
    for n in SCALES:
        coords = load_cloud("modelnet40", n, seed=1).coords.astype(np.float64)
        tree = fractal_partition(coords, FractalConfig(threshold=128))
        structure = tree.block_structure()
        exact = exact_knn_graph(coords, K)
        approx, work = block_knn_graph(structure, coords, K)
        recall = edge_recall(approx, exact)
        recalls.append(recall)
        rows.append([
            n,
            f"{n * n:,}",
            f"{work:,}",
            f"{n * n / work:.1f}x",
            f"{recall:.3f}",
        ])
    table = format_table(
        ["points", "exact distances", "block distances", "work saving", "edge recall"],
        rows,
        title=f"DGCNN graph construction adaptation (k = {K}, th = 128)",
    )
    return table, recalls


def test_graph_adaptation(benchmark):
    table, recalls = benchmark.pedantic(run_graph, rounds=1, iterations=1)
    emit("graph_adaptation", table)
    assert min(recalls) > 0.75
