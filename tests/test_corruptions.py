"""Tests for the corruption suite."""

import numpy as np
import pytest

from repro.datasets import load_cloud
from repro.datasets.corruptions import CORRUPTIONS, corrupt, corruption_names


@pytest.fixture(scope="module")
def object_cloud():
    return load_cloud("shapenet", 1024, seed=5)  # has per-point labels


class TestInterface:
    def test_names(self):
        assert set(corruption_names()) == set(CORRUPTIONS)
        assert "jitter" in corruption_names()

    def test_unknown_kind(self, object_cloud):
        with pytest.raises(ValueError, match="unknown corruption"):
            corrupt(object_cloud, "blur")

    def test_bad_severity(self, object_cloud):
        with pytest.raises(ValueError, match="severity"):
            corrupt(object_cloud, "jitter", severity=0)
        with pytest.raises(ValueError, match="severity"):
            corrupt(object_cloud, "jitter", severity=6)

    def test_deterministic(self, object_cloud):
        a = corrupt(object_cloud, "dropout_global", 3, seed=9)
        b = corrupt(object_cloud, "dropout_global", 3, seed=9)
        assert np.allclose(a.coords, b.coords)

    def test_input_unchanged(self, object_cloud):
        before = object_cloud.coords.copy()
        corrupt(object_cloud, "jitter", 5)
        assert np.array_equal(object_cloud.coords, before)


class TestEachCorruption:
    @pytest.mark.parametrize("kind", sorted(CORRUPTIONS))
    def test_output_valid(self, object_cloud, kind):
        out = corrupt(object_cloud, kind, severity=3)
        assert len(out) >= 8
        assert np.isfinite(out.coords).all()
        if out.labels is not None:
            assert len(out.labels) == len(out)

    def test_jitter_preserves_count(self, object_cloud):
        out = corrupt(object_cloud, "jitter", 2)
        assert len(out) == len(object_cloud)

    def test_jitter_severity_monotone(self, object_cloud):
        deltas = []
        for severity in (1, 5):
            out = corrupt(object_cloud, "jitter", severity, seed=1)
            deltas.append(np.abs(out.coords - object_cloud.coords).mean())
        assert deltas[1] > deltas[0]

    def test_dropout_severity_monotone(self, object_cloud):
        sizes = [len(corrupt(object_cloud, "dropout_global", s)) for s in (1, 3, 5)]
        assert sizes[0] > sizes[1] > sizes[2]

    def test_occlusion_removes_halfspace(self, object_cloud):
        out = corrupt(object_cloud, "occlusion", 5, seed=2)
        assert len(out) < len(object_cloud)

    def test_outliers_add_points(self, object_cloud):
        out = corrupt(object_cloud, "outliers", 4)
        assert len(out) > len(object_cloud)
        assert out.labels is not None  # labels extended

    def test_local_dropout_creates_holes(self, object_cloud):
        out = corrupt(object_cloud, "dropout_local", 4, seed=3)
        assert len(out) < len(object_cloud)


class TestRobustnessOfFractal:
    @pytest.mark.parametrize("kind", sorted(CORRUPTIONS))
    def test_fractal_partitions_all_corrupted_clouds(self, object_cloud, kind):
        """Fractal must stay valid under every corruption at max severity."""
        from repro.core import FractalConfig, fractal_partition

        out = corrupt(object_cloud, kind, severity=5, seed=7)
        tree = fractal_partition(out.coords.astype(np.float64), FractalConfig(threshold=64))
        structure = tree.block_structure()
        structure.validate()
        assert structure.max_block_size <= 64 or any(
            leaf.forced_leaf for leaf in tree.leaves
        )
