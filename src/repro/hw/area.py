"""Area and power budget of FractalCloud (paper Fig. 12 / Table II).

Post-layout numbers reported by the paper, exposed as data so the
Fig. 12 bench can print the breakdown and tests can check consistency
with Table II.  The per-module split follows the layout figure: the PE
array and SRAM dominate, with the RSPUs, fractal engine, and gather units
adding the small incremental cost the paper quotes (~1 % area for the
fractal engine).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ModuleBudget", "FRACTALCLOUD_BUDGET", "total_area_mm2", "total_power_w"]


@dataclass(frozen=True)
class ModuleBudget:
    """Area/power of one on-chip module."""

    name: str
    area_mm2: float
    power_w: float


#: Core-area breakdown summing to the reported 1.5 mm^2 / 0.58 W.
FRACTALCLOUD_BUDGET: tuple[ModuleBudget, ...] = (
    ModuleBudget("PE array (16x16)", 0.48, 0.210),
    ModuleBudget("Global buffer (274 KB)", 0.52, 0.120),
    ModuleBudget("RSPUs (16x)", 0.26, 0.130),
    ModuleBudget("Gather + pooling units", 0.10, 0.050),
    ModuleBudget("Fractal engine", 0.015, 0.012),
    ModuleBudget("RISC-V + NoC + DMA", 0.125, 0.058),
)

#: Reported chip-level figures (Fig. 12).
DIE_AREA_MM2 = 3.0
CORE_AREA_MM2 = 1.5
AVG_POWER_W = 0.58
FREQUENCY_HZ = 1e9
SRAM_KB = 274.0
TECHNOLOGY_NM = 28


def total_area_mm2() -> float:
    """Sum of module areas (matches the reported core area)."""
    return sum(m.area_mm2 for m in FRACTALCLOUD_BUDGET)


def total_power_w() -> float:
    """Sum of module powers (matches the reported average power)."""
    return sum(m.power_w for m in FRACTALCLOUD_BUDGET)
