"""Point-operation backends: exact global search vs block-parallel.

The PNN backbones never call point operations directly; they go through a
backend, so the *same trained architecture* can run with the original
global-search operations (PointAcc baseline), or with block-wise
operations over any partitioning strategy (uniform / KD-tree / octree /
Fractal).  The accuracy experiments (Fig. 3, 14, 17) are exactly this
swap.

Both backends are thin views over shared machinery: :class:`ExactBackend`
wraps the reference ops of :mod:`repro.geometry.ops`, and
:class:`BlockBackend` resolves every call through the kernel registry of
:mod:`repro.core.dispatch` — the per-block loop, the padded stack, and
the fused ragged CSR kernels are interchangeable (bit-identical) there,
so the backend only carries *which* partition to use and *how* to pick a
kernel (``kernel="auto"`` cost-model dispatch by default).
"""

from __future__ import annotations

import abc
from collections import OrderedDict

import numpy as np

from ..core import blocks as core_blocks
from ..core import bppo, dispatch
from ..geometry import ops as exact_ops
from ..partition.base import Partitioner, get_partitioner
from ..runtime.cache import PartitionCache

__all__ = ["PointOpsBackend", "ExactBackend", "BlockBackend", "make_backend"]


class PointOpsBackend(abc.ABC):
    """Interface consumed by the network stages."""

    name: str = "abstract"

    @abc.abstractmethod
    def sample(self, coords: np.ndarray, num_samples: int) -> np.ndarray:
        """FPS-style sampling: ``(num_samples,)`` indices into ``coords``."""

    @abc.abstractmethod
    def group(
        self, coords: np.ndarray, center_indices: np.ndarray, radius: float, k: int
    ) -> np.ndarray:
        """Ball-query grouping: ``(m, k)`` indices into ``coords``."""

    @abc.abstractmethod
    def interpolate_indices(
        self,
        coords: np.ndarray,
        center_indices: np.ndarray,
        candidate_indices: np.ndarray,
        k: int = 3,
    ) -> tuple[np.ndarray, np.ndarray]:
        """KNN + inverse-distance weights for feature propagation.

        Returns ``(indices, weights)`` of shapes ``(m, k)``; indices are
        global point ids drawn from ``candidate_indices``; weight rows
        sum to one.
        """


class ExactBackend(PointOpsBackend):
    """Original global-search operations (accuracy-lossless anchor)."""

    name = "exact"

    def sample(self, coords: np.ndarray, num_samples: int) -> np.ndarray:
        return exact_ops.farthest_point_sample(coords, num_samples)

    def group(self, coords, center_indices, radius, k):
        return exact_ops.ball_query(coords[center_indices], coords, radius, k)

    def interpolate_indices(self, coords, center_indices, candidate_indices, k=3):
        candidate_indices = np.asarray(candidate_indices, dtype=np.int64)
        local = exact_ops.knn_search(
            coords[center_indices], coords[candidate_indices], k
        )
        idx = candidate_indices[local]
        coords = np.asarray(coords, dtype=np.float64)
        weights = exact_ops.idw_weights(coords[center_indices], coords[idx])
        return idx, weights


class BlockBackend(PointOpsBackend):
    """Block-parallel operations over a partitioning strategy.

    Partitions are cached per coordinate set through the runtime's
    shared :class:`~repro.runtime.cache.PartitionCache` (keyed by content
    hash), so a forward pass that calls sample/group/interpolate on the
    same level partitions once — matching the hardware, where Fractal
    runs once per stage input.  The cache also carries the ragged CSR
    layout of each partition, so repeated ragged-kernel calls never
    rebuild it.

    Every operation resolves through the kernel registry of
    :mod:`repro.core.dispatch`.  ``kernel`` picks the implementation:
    ``"auto"`` (default) lets the cost model choose per call — from
    *measured* per-block centre counts, since the backend always holds
    the concrete centre ids — while ``"loop" | "stacked" | "ragged"``
    pin one path.  The parity suite guarantees bit-identical results, so
    the choice only affects speed.

    ``batched`` is the legacy flag of the pre-dispatch API: ``False``
    pins the serial per-block loop, ``True`` (old default) means
    cost-model dispatch.  Use ``kernel`` in new code.

    ``cache`` lets a caller share an existing partition cache — the
    serving engine passes its own, so a model forward inside the engine
    reuses (and warms) the same content-addressed partitions as the raw
    BPPO traffic.
    """

    #: Distinct partitions whose per-op derived state (measured centre
    #: bincounts, float64-normalised coords) is memoised at a time.  A
    #: forward pass touches one partition per level; MSG touches the
    #: same one once per scale — the quadratic-ish recompute this bound
    #: exists to kill.
    _SESSION_BOUND = 8

    def __init__(
        self,
        partitioner: Partitioner,
        cache_size: int = 8,
        *,
        kernel: str = "auto",
        batched: bool | None = None,
        cache: PartitionCache | None = None,
    ):
        self.partitioner = partitioner
        self.name = partitioner.name
        # Legacy flag maps onto the dispatcher only when no explicit
        # kernel was chosen — same precedence as BatchExecutor's
        # use_batched_ops, so the two APIs never disagree.
        if batched is False and kernel == "auto":
            kernel = "loop"
        self.kernel = dispatch.validate_kernel(kernel)
        self._cache = (
            cache if cache is not None
            else PartitionCache(partitioner, maxsize=cache_size)
        )
        # id(structure) -> session memo; the session holds a strong ref
        # to its structure, so an id is never reused while mapped.
        self._sessions: "OrderedDict[int, _StructureSession]" = OrderedDict()

    def _session(self, coords: np.ndarray) -> "_StructureSession":
        structure, _ = self._cache.get(coords)
        key = id(structure)
        session = self._sessions.get(key)
        if session is None:
            session = _StructureSession(structure)
            self._sessions[key] = session
            while len(self._sessions) > self._SESSION_BOUND:
                self._sessions.popitem(last=False)
        else:
            self._sessions.move_to_end(key)
        return session

    def _structure(self, coords: np.ndarray) -> core_blocks.BlockStructure:
        return self._session(coords).structure

    def _measured_counts(
        self, session: "_StructureSession", center_indices
    ) -> np.ndarray | None:
        """Real per-block centre counts — the backend always holds the
        concrete centre ids, so the cost model never has to estimate.
        ``None`` when a pinned kernel would never consult the cost model.
        Memoised per (structure, centre-array) pair: every MSG scale
        groups the same centres over the same structure, and the
        bincount over the owner map is pure in both.
        """
        if self.kernel != "auto":
            return None
        return session.measured_counts(center_indices)

    def sample(self, coords: np.ndarray, num_samples: int) -> np.ndarray:
        structure = self._structure(coords)
        quotas = (
            bppo.allocate_samples(structure.block_sizes, num_samples, clamp=True)
            if self.kernel == "auto"
            else None
        )
        indices, _ = dispatch.run_op(
            "fps", structure, coords, num_samples,
            kernel=self.kernel, num_centers=num_samples, center_counts=quotas,
        )
        return indices

    def group(self, coords, center_indices, radius, k):
        session = self._session(coords)
        neighbors, _ = dispatch.run_op(
            "ball_query", session.structure, coords, center_indices, radius, k,
            kernel=self.kernel, num_centers=len(center_indices),
            center_counts=self._measured_counts(session, center_indices),
        )
        return neighbors

    def interpolate_indices(self, coords, center_indices, candidate_indices, k=3):
        session = self._session(coords)
        idx, _ = dispatch.run_op(
            "knn", session.structure, coords, center_indices,
            candidate_indices, k,
            kernel=self.kernel, num_centers=len(center_indices),
            center_counts=self._measured_counts(session, center_indices),
        )
        coords64 = session.coords64(coords)
        weights = exact_ops.idw_weights(coords64[center_indices], coords64[idx])
        return idx, weights


class _StructureSession:
    """Memoised per-partition derived state of :class:`BlockBackend`.

    Everything here is a pure function of ``(structure, input array)``
    and used to be recomputed on every op — once per MSG scale against
    the identical structure and centre set.  Entries key on array
    identity and hold strong references, so ids stay valid while mapped.
    """

    _COUNTS_BOUND = 8

    def __init__(self, structure: core_blocks.BlockStructure):
        self.structure = structure
        self._counts: OrderedDict[int, tuple[object, np.ndarray]] = OrderedDict()
        self._coords64: tuple[object, np.ndarray] | None = None

    def measured_counts(self, center_indices) -> np.ndarray:
        key = id(center_indices)
        hit = self._counts.get(key)
        if hit is not None and hit[0] is center_indices:
            self._counts.move_to_end(key)
            return hit[1]
        counts = np.bincount(
            self.structure.block_of_point()[
                np.asarray(center_indices, dtype=np.int64)
            ],
            minlength=self.structure.num_blocks,
        )
        self._counts[key] = (center_indices, counts)
        while len(self._counts) > self._COUNTS_BOUND:
            self._counts.popitem(last=False)
        return counts

    def coords64(self, coords: np.ndarray) -> np.ndarray:
        hit = self._coords64
        if hit is not None and hit[0] is coords:
            return hit[1]
        normalised = np.asarray(coords, dtype=np.float64)
        self._coords64 = (coords, normalised)
        return normalised


def make_backend(
    name: str,
    *,
    max_points_per_block: int = 64,
    kernel: str = "auto",
    batched: bool | None = None,
    cache: PartitionCache | None = None,
) -> PointOpsBackend:
    """Factory: ``exact`` or any partitioner name from :mod:`repro.partition`.

    ``kernel`` selects the block-op implementation (``auto`` cost-model
    dispatch by default); ``batched`` is the legacy boolean equivalent
    (``False`` → ``"loop"``); ``cache`` shares an existing partition
    cache (ignored by the exact backend, which partitions nothing).
    """
    if name == "exact":
        return ExactBackend()
    return BlockBackend(
        get_partitioner(name, max_points_per_block=max_points_per_block),
        kernel=kernel,
        batched=batched,
        cache=cache,
    )
