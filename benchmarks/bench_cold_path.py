"""Extension bench — the cold path and the streaming-frames delta path.

Two lanes around partition construction, the serving layer's cold cost:

- **cold build**: the fused build-and-sample kernel
  (:func:`repro.core.coldpath.fused_build_and_sample`, via
  :func:`repro.core.dispatch.run_build`) against separate
  build-then-sample.  Fusion folds the FPS seed scan into the partition
  sweep; in pure Python the win is bounded (the paper's gain needs the
  on-chip pipeline), so this lane asserts bit-parity, not speed.
- **frame sequence**: a streaming sensor (the loadgen ``frames``
  profile) served by the delta-enabled :class:`PartitionCache` against a
  full rebuild per frame.  Certificate verification is one vectorised
  pass and the incremental updater touches only churned points, so the
  acceptance bar is >= 1.3x on the jittered sequence — measured, not
  assumed.

The churned lane carries its own speed bar since the updater went
batch-vectorised: insert/remove/move land per leaf as bulk set updates
behind one grouped tree descent, and the ``structure()`` export is one
vectorised pass (Euler-tour parent slices + an id→row gather), so
incremental patching beats the full rebuild on wall-clock (>= 1.2x
asserted) as well as on points touched (see ``bench_dynamic_update``).
"""

import numpy as np
import pytest

from repro.analysis import format_table
from repro.core import PatchPolicy, run_build
from repro.partition import get_partitioner
from repro.runtime import PartitionCache
from repro.serve import LoadSpec, generate

from _common import best_time, emit

pytestmark = pytest.mark.slow

BLOCK_SIZE = 256
N_COLD = (4096, 16384)
N_FRAME = 16384
FRAMES = 8
SAMPLE_RATIO = 0.25

#: (label, frame_motion, frame_churn).  The churn lane keeps motion at
#: zero so it isolates insert/delete patching (nonzero jitter marks
#: every retained point as moved and routes through the certificate
#: path instead, which the jitter lane measures on its own).
SEQUENCES = (
    ("jitter", 1e-6, 0.0),
    ("5% churn", 0.0, 0.05),
)


def _frame_stream(motion, churn, seed=0):
    spec = LoadSpec(
        clouds=FRAMES, min_points=N_FRAME, max_points=N_FRAME,
        dup_rate=0.0, profile="frames", frame_motion=motion,
        frame_churn=churn, seed=seed,
    )
    return list(generate(spec))


def run_cold_lane(rows):
    partitioner = get_partitioner("fractal", max_points_per_block=BLOCK_SIZE)
    for n in N_COLD:
        rng = np.random.default_rng(n)
        coords = rng.normal(size=(n, 3))
        samples = max(1, round(SAMPLE_RATIO * n))
        times = {}
        results = {}
        for kernel in ("build_then_sample", "fused"):
            times[kernel], results[kernel] = best_time(
                lambda k=kernel: run_build(partitioner, coords, samples,
                                           kernel=k)
            )
        # Fusion must not change a bit: same blocks, same sample set.
        ref_s, ref_idx = results["build_then_sample"][:2]
        fused_s, fused_idx = results["fused"][:2]
        assert np.array_equal(fused_idx, ref_idx)
        assert fused_s.num_blocks == ref_s.num_blocks
        for a, b in zip(fused_s.blocks, ref_s.blocks):
            assert np.array_equal(a.indices, b.indices)
        base = times["build_then_sample"]
        for kernel in ("build_then_sample", "fused"):
            rows.append([
                "cold build", n, "-", kernel,
                f"{times[kernel] * 1e3:.0f}",
                f"{base / times[kernel]:.2f}x",
                "-",
            ])


def run_frame_lane(rows):
    partitioner = get_partitioner("fractal", max_points_per_block=BLOCK_SIZE)
    speedups = {}
    for label, motion, churn in SEQUENCES:
        frames = _frame_stream(motion, churn)
        cache = PartitionCache(
            partitioner, maxsize=4,
            policy=PatchPolicy(motion_threshold=0.05, max_churn=0.25),
        )

        def run_rebuild():
            return [partitioner(f) for f in frames]

        def run_delta():
            cache.clear()
            return [cache.acquire(f) for f in frames]

        t_rebuild, rebuilt = best_time(run_rebuild)
        t_delta, served = best_time(run_delta)

        outcomes = [outcome for _, outcome, _ in served]
        split = (f"{outcomes.count('cold')}/{outcomes.count('reused')}"
                 f"/{outcomes.count('patched')}")
        # Every served partition is a valid partition of its frame.
        for (structure, outcome, _), frame in zip(served, frames):
            structure.validate()
            assert structure.num_points == len(frame)
        if churn == 0.0:
            # Jitter-only: certificate reuse is proven rebuild-identical.
            assert set(outcomes) <= {"cold", "reused"}
            for (structure, _, _), ref in zip(served, rebuilt):
                for a, b in zip(structure.blocks, ref.blocks):
                    assert np.array_equal(a.indices, b.indices)
        else:
            assert outcomes.count("patched") > 0

        speedups[label] = t_rebuild / t_delta
        rows.append([
            f"frames ({label})", N_FRAME, FRAMES, "rebuild each frame",
            f"{t_rebuild * 1e3:.0f}", "1.00x", "-",
        ])
        rows.append([
            f"frames ({label})", N_FRAME, FRAMES, "delta cache",
            f"{t_delta * 1e3:.0f}", f"{t_rebuild / t_delta:.2f}x", split,
        ])
    return speedups


def run_bench():
    rows = []
    run_cold_lane(rows)
    speedups = run_frame_lane(rows)
    table = format_table(
        ["lane", "points", "frames", "path", "ms", "speedup",
         "cold/reused/patched"],
        rows,
        title="cold-path fusion + streaming-frames delta protocol "
              f"(fractal, threshold {BLOCK_SIZE})",
    )
    return table, speedups


def test_cold_path(benchmark):
    table, speedups = benchmark.pedantic(run_bench, rounds=1, iterations=1)
    emit("cold_path", table)
    # Acceptance: the delta protocol beats per-frame rebuilds by >= 1.3x
    # on the jittered sensor sequence, and the batch-vectorised updater
    # makes the churned-patch lane beat the rebuild outright too.
    assert speedups["jitter"] >= 1.3, speedups
    assert speedups["5% churn"] >= 1.2, speedups
