"""Extension bench — observability overhead on the serving hot path.

``repro.obs`` is always compiled in (PR 9): every dispatch, cache
acquire, window execution, and shard hop carries an instrumentation
site.  This bench holds the layer to the ISSUE's overhead budget:

- **disabled** (the default): the per-site cost is one attribute read
  and a no-op context manager; across the ~dozen sites a cloud crosses
  it must stay under **2%** of per-cloud service time;
- **sampled** (``--trace`` with ``--trace-sample 8``): recording every
  eighth request trace end to end must stay under **5%** wall-clock
  against the same warm serving run with tracing off.

The disabled bound is measured analytically — per-call cost of the
guarded site pattern times the spans-per-cloud observed on a fully
sampled run — because the end-to-end delta of a <2% effect drowns in
scheduler noise.  The sampled bound is end-to-end best-of-N with the
two configurations *interleaved* round-robin: back-to-back blocks
drift apart (thermal, allocator state) by more than the effect under
measurement.

Marked ``slow``: serving benches time wall-clock over hundreds of
clouds.  Run with ``pytest -m slow benchmarks/bench_obs_overhead.py``.
"""

import pytest

from repro import obs
from repro.analysis import format_table
from repro.runtime import BatchExecutor, PipelineSpec
from repro.serve import LoadSpec, WindowConfig, WindowedServer, generate

from _common import best_time, emit

pytestmark = pytest.mark.slow

PIPELINE = PipelineSpec(sample_ratio=0.25, radius=0.25, group_size=16)
SPEC = LoadSpec(clouds=96, min_points=96, max_points=256, dup_rate=0.15,
                dup_window=12, seed=0)
WINDOW = WindowConfig(max_clouds=16, max_wait=0.25)

DISABLED_BUDGET_PCT = 2.0
SAMPLED_BUDGET_PCT = 5.0

#: Site-pattern calls timed for the disabled per-call cost.
CALLS = 200_000


def _disabled_site_cost() -> float:
    """Seconds per instrumentation site with tracing + metrics off."""
    obs.configure(trace=False, metrics=False)

    def loop():
        for _ in range(CALLS):
            if obs.enabled():
                with obs.span("op.bench", kernel="ragged"):
                    pass
            obs.inc("repro_bench_calls")

    seconds, _ = best_time(loop)
    return seconds / CALLS


def run_bench():
    clouds = list(generate(SPEC))
    engine = BatchExecutor("kdtree", block_size=32, max_workers=4)

    def serve_once():
        server = WindowedServer(engine, WINDOW)
        return list(server.serve(iter(clouds), PIPELINE))

    off = dict(trace=False, metrics=False)
    sampled = dict(trace=True, sample=8, metrics=True)

    def timed(config):
        obs.configure(**config)
        seconds, _ = best_time(serve_once, repeats=1)
        obs.drain()
        return seconds

    with engine:
        # Two warmups prime the partition caches so both timed
        # configurations serve the same warm state.
        obs.configure(trace=False, metrics=False)
        serve_once()
        serve_once()

        # Spans per cloud, observed at full sampling.
        obs.configure(trace=True, sample=1, metrics=True)
        serve_once()
        spans_per_cloud = len(obs.drain()) / len(clouds)

        # Interleaved best-of-N for the end-to-end comparison.
        t_off, t_sampled = float("inf"), float("inf")
        for _ in range(8):
            t_off = min(t_off, timed(off))
            t_sampled = min(t_sampled, timed(sampled))
        obs.configure(trace=False, metrics=False)

    site_cost = _disabled_site_cost()
    per_cloud = t_off / len(clouds)
    disabled_pct = 100.0 * site_cost * spans_per_cloud / per_cloud
    sampled_pct = 100.0 * max(0.0, t_sampled - t_off) / t_off

    table = format_table(
        ["configuration", "per cloud", "overhead", "budget"],
        [
            ["tracing off (site cost x "
             f"{spans_per_cloud:.1f} sites)",
             f"{site_cost * spans_per_cloud * 1e6:.2f} us",
             f"{disabled_pct:.3f}%", f"<{DISABLED_BUDGET_PCT:.0f}%"],
            ["--trace --trace-sample 8",
             f"{t_sampled / len(clouds) * 1e3:.3f} ms",
             f"{sampled_pct:.2f}%", f"<{SAMPLED_BUDGET_PCT:.0f}%"],
        ],
        title=f"observability overhead ({len(clouds)} clouds, warm caches, "
              f"site cost {site_cost * 1e9:.0f} ns)",
    )
    return table, disabled_pct, sampled_pct


def test_obs_overhead(benchmark):
    table, disabled_pct, sampled_pct = benchmark.pedantic(
        run_bench, rounds=1, iterations=1
    )
    emit("obs_overhead", table)
    assert disabled_pct < DISABLED_BUDGET_PCT, disabled_pct
    assert sampled_pct < SAMPLED_BUDGET_PCT, sampled_pct
