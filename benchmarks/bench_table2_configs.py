"""Table II — evaluated hardware accelerators.

Prints the four accelerator configurations and benchmarks the simulator's
compile+run path (one PointAcc simulation) as the timing subject.
"""

from repro.analysis import format_table
from repro.hw import AcceleratorSim, POINTACC, SOTA_CONFIGS
from repro.networks import get_workload

from _common import emit


def run_table2():
    rows = []
    for name, cfg in SOTA_CONFIGS.items():
        rows.append([
            name,
            f"{cfg.pe_rows}x{cfg.pe_cols}",
            f"{cfg.sram_kb:g}",
            f"{cfg.frequency_hz / 1e9:g} GHz",
            f"{cfg.area_mm2:g}",
            f"DDR4 {cfg.dram_gbps:g} GB/s",
            "28nm",
            "512 GOPS",
            cfg.partitioner,
        ])
    return format_table(
        ["Accelerator", "Cores", "SRAM (KB)", "Freq", "Area (mm2)",
         "DRAM", "Tech", "Peak", "Partitioner"],
        rows,
        title="Table II — evaluated hardware accelerators",
    )


def test_table2_configs(benchmark):
    table = run_table2()
    emit("table2_configs", table)
    spec = get_workload("PN++(c)")
    result = benchmark(AcceleratorSim(POINTACC).run, spec, 1024)
    assert result.latency_s > 0
    assert "FractalCloud" in table and "1.5" in table
