"""Binary fractal tree produced by the Fractal partitioner.

The tree is both the *partition* (its leaves are the blocks) and the
*memory layout* (leaves in depth-first order are stored contiguously —
paper §IV-A).  Internal nodes keep their full index sets because BPPO
neighbour searching uses a leaf's immediate parent as its search space.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional

import numpy as np

from .blocks import Block, BlockStructure, PartitionCost

__all__ = ["FractalNode", "FractalTree"]


@dataclass
class FractalNode:
    """One node of the fractal binary tree.

    Attributes:
        node_id: DFT-order id (root = 0), assigned at construction.
        indices: global point indices under this node.
        depth: 0 for the root.
        split_dim: dimension this node was *split on* (None for leaves).
        split_mid: midpoint value used for the split (None for leaves).
        left/right: children (None for leaves).
        parent: parent node (None for the root).
        forced_leaf: True when the node exceeds the threshold but could
            not be split (fully degenerate extent — e.g. all points
            coincident); tracked because the paper's imbalance discussion
            (§VI-D) bounds block size by ``th`` only for splittable data.
    """

    node_id: int
    indices: np.ndarray
    depth: int
    split_dim: Optional[int] = None
    split_mid: Optional[float] = None
    left: Optional["FractalNode"] = None
    right: Optional["FractalNode"] = None
    parent: Optional["FractalNode"] = field(default=None, repr=False)
    forced_leaf: bool = False

    @property
    def is_leaf(self) -> bool:
        return self.left is None and self.right is None

    @property
    def num_points(self) -> int:
        return len(self.indices)

    @property
    def sibling(self) -> Optional["FractalNode"]:
        """The other child of this node's parent (None for the root)."""
        if self.parent is None:
            return None
        return self.parent.right if self.parent.left is self else self.parent.left


@dataclass
class FractalTree:
    """The result of Fractal partitioning (paper Alg. 1 + Fig. 6).

    Attributes:
        root: tree root (covers every point).
        leaves: leaf nodes in depth-first (DFT) order; these are the
            final blocks, and their concatenated index arrays define the
            post-Fractal memory order.
        threshold: the ``th`` used (maximum points per block, barring
            degenerate forced leaves).
        num_levels: number of sequential partitioning iterations
            (equals the maximum leaf depth; Fig. 5's "traversing" count).
        cost: preprocessing cost counters for the hardware model.
    """

    root: FractalNode
    leaves: list[FractalNode]
    threshold: int
    num_levels: int
    cost: PartitionCost

    @property
    def num_points(self) -> int:
        return self.root.num_points

    @property
    def num_blocks(self) -> int:
        return len(self.leaves)

    @property
    def block_sizes(self) -> np.ndarray:
        return np.array([leaf.num_points for leaf in self.leaves], dtype=np.int64)

    def nodes(self) -> Iterator[FractalNode]:
        """All nodes in DFT (pre-order) order."""
        stack = [self.root]
        while stack:
            node = stack.pop()
            yield node
            if not node.is_leaf:
                stack.append(node.right)
                stack.append(node.left)

    @property
    def num_internal_nodes(self) -> int:
        return sum(1 for node in self.nodes() if not node.is_leaf)

    @property
    def max_depth(self) -> int:
        return max(leaf.depth for leaf in self.leaves)

    def search_space(self, leaf: FractalNode) -> np.ndarray:
        """BPPO search space for ``leaf`` (paper §IV-B).

        Depth-0/1 leaves search themselves; deeper leaves search their
        immediate parent (which contains the leaf and its sibling
        subtree), giving a broader scope that is "sufficient for
        maintaining network accuracy" (Fig. 14).
        """
        if leaf.depth <= 1 or leaf.parent is None:
            return leaf.indices
        return leaf.parent.indices

    def dft_permutation(self) -> np.ndarray:
        """Original-index permutation putting leaves contiguously in DFT order."""
        return np.concatenate([leaf.indices for leaf in self.leaves])

    def block_structure(self) -> BlockStructure:
        """Export as the generic :class:`BlockStructure` interface."""
        blocks = [Block(leaf.indices, depth=leaf.depth) for leaf in self.leaves]
        spaces = [self.search_space(leaf) for leaf in self.leaves]
        return BlockStructure(
            num_points=self.num_points,
            blocks=blocks,
            search_spaces=spaces,
            cost=self.cost,
            strategy="fractal",
        )

    def leaf_of_point(self) -> np.ndarray:
        """``(num_points,)`` map from point index to leaf position in DFT order."""
        owner = np.full(self.num_points, -1, dtype=np.int64)
        for leaf_pos, leaf in enumerate(self.leaves):
            owner[leaf.indices] = leaf_pos
        return owner
