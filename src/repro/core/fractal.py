"""Fractal: shape-aware, threshold-controlled point-cloud partitioning.

This is the paper's Algorithm 1, implemented level-synchronously to mirror
the fractal engine's iterative hardware schedule (Fig. 9): every iteration
processes *all* oversized blocks of the current tree level at once — a
single inclusive traversal computes per-block min/max extrema, and a
single streaming pass partitions points against the resulting midpoints.

Key properties (tested in ``tests/test_fractal.py``):

- Leaves partition the input (disjoint, covering).
- Every leaf holds at most ``th`` points unless the block was fully
  degenerate (all remaining extents zero), which is flagged.
- Split dimensions cycle x→y→z with depth (default), so coplanar scenes
  cannot pin the recursion to a non-splittable axis (§VI-D).
- Leaves in DFT order are spatially coherent: consecutive leaves share an
  ancestor at distance ≤ their depth difference + 1.
- The level count matches Fig. 5: ~ceil(log2(n / th)) for balanced data
  (4 levels for 1 K points at th=64; 11 for 289 K at th=256).
"""

from __future__ import annotations

import numpy as np

from .config import FractalConfig
from .blocks import PartitionCost
from .tree import FractalNode, FractalTree

__all__ = ["fractal_partition"]

# Extents at or below this are treated as zero (non-splittable axis).
_DEGENERATE_EXTENT = 1e-12


def _choose_dim(coords_block: np.ndarray, depth: int, config: FractalConfig) -> int | None:
    """Pick the split dimension for a block, or None when fully degenerate.

    The cycle rule starts from ``(start_dim + depth) mod 3`` and advances
    until it finds an axis with non-zero extent (at most 3 probes); the
    longest rule picks the largest extent directly.
    """
    extents = coords_block.max(axis=0) - coords_block.min(axis=0)
    if config.split_rule == "longest":
        dim = int(np.argmax(extents))
        return dim if extents[dim] > _DEGENERATE_EXTENT else None
    for probe in range(3):
        dim = (config.start_dim + depth + probe) % 3
        if extents[dim] > _DEGENERATE_EXTENT:
            return dim
    return None


def fractal_partition(
    coords: np.ndarray,
    config: FractalConfig | None = None,
    on_leaf=None,
) -> FractalTree:
    """Partition ``coords`` into a fractal binary tree (paper Alg. 1).

    Args:
        coords: ``(n, 3)`` point coordinates, n >= 1.
        config: Fractal parameters; defaults to the paper's large-scale
            configuration (``th`` = 256, dimension cycling).
        on_leaf: optional hook called the moment a node is finalized as
            a leaf, with the node's index array in the order the block
            will carry — the fused build-and-sample kernel
            (:mod:`repro.core.coldpath`) starts FPS there while the rest
            of the tree is still splitting.

    Returns:
        A :class:`FractalTree` whose leaves (in DFT order) are the blocks.
    """
    config = config or FractalConfig()
    coords = np.asarray(coords, dtype=np.float64)
    if coords.ndim != 2 or coords.shape[1] != 3:
        raise ValueError(f"coords must be (n, 3), got {coords.shape}")
    n = len(coords)
    if n == 0:
        raise ValueError("cannot partition an empty point cloud")

    cost = PartitionCost()
    next_id = 0
    root = FractalNode(node_id=next_id, indices=np.arange(n, dtype=np.int64), depth=0)
    next_id += 1

    # Level-synchronous expansion: `frontier` holds the oversized nodes of
    # the current level, matching one hardware iteration of Fig. 9(c).
    frontier = [root] if n > config.threshold else []
    if not frontier and on_leaf is not None:
        on_leaf(root.indices)
    num_levels = 0
    while frontier:
        num_levels += 1
        # One inclusive traversal per level: min/max over every frontier
        # block (they all stream through the midpoint unit concurrently).
        cost.traversals.append(int(sum(node.num_points for node in frontier)))
        # One streaming partition pass classifies the same points.
        cost.passes.append(int(sum(node.num_points for node in frontier)))

        next_frontier: list[FractalNode] = []
        for node in frontier:
            block = coords[node.indices]
            dim = _choose_dim(block, node.depth, config)
            if dim is None:
                # All remaining extents are zero: coincident points.
                node.forced_leaf = True
                if on_leaf is not None:
                    on_leaf(node.indices)
                continue
            mid = (float(block[:, dim].max()) + float(block[:, dim].min())) / 2.0
            go_left = block[:, dim] <= mid
            # With a positive extent both sides are non-empty: the min
            # point satisfies <= mid and the max point violates it.
            left_idx = node.indices[go_left]
            right_idx = node.indices[~go_left]
            if len(left_idx) == 0 or len(right_idx) == 0:
                # Float pathologies only (e.g. extent below precision at
                # this magnitude); treat as degenerate.
                node.forced_leaf = True
                if on_leaf is not None:
                    on_leaf(node.indices)
                continue

            node.split_dim = dim
            node.split_mid = mid
            left = FractalNode(next_id, left_idx, node.depth + 1, parent=node)
            right = FractalNode(next_id + 1, right_idx, node.depth + 1, parent=node)
            next_id += 2
            node.left, node.right = left, right
            for child in (left, right):
                if child.num_points > config.threshold:
                    next_frontier.append(child)
                elif on_leaf is not None:
                    on_leaf(child.indices)
        frontier = next_frontier

    cost.levels = num_levels

    leaves = _collect_leaves_dft(root)
    return FractalTree(
        root=root,
        leaves=leaves,
        threshold=config.threshold,
        num_levels=num_levels,
        cost=cost,
    )


def _collect_leaves_dft(root: FractalNode) -> list[FractalNode]:
    """Leaves in depth-first (left-first) order — the memory layout order."""
    leaves: list[FractalNode] = []
    stack = [root]
    while stack:
        node = stack.pop()
        if node.is_leaf:
            leaves.append(node)
        else:
            stack.append(node.right)
            stack.append(node.left)
    return leaves
