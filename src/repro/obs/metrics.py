"""Metrics registry: counters, gauges, fixed-bucket histograms.

Everything here is lock-guarded and safe to call from serving threads;
the module-level convenience helpers in :mod:`repro.obs` check the
registry's ``enabled`` flag first so a disabled build pays one
attribute read per site.

Exposition is Prometheus text format (``render()``) plus a compact
one-line snapshot (``snapshot_line()``) suitable for interleaving with
the serving telemetry's periodic stats lines.

This module also owns the project's latency-percentile primitives:
:class:`LatencyRing` (a preallocated rolling window — O(rolling) numpy
work per tick, no Python-level copies) and :func:`latency_percentiles`,
which :mod:`repro.serve.telemetry` and the executor re-use so the
percentile code path exists exactly once.
"""

from __future__ import annotations

import threading
from bisect import bisect_right
from typing import Iterable, Sequence

import numpy as np

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "PERCENTILES",
    "Counter",
    "Gauge",
    "Histogram",
    "LatencyRing",
    "MetricsRegistry",
    "latency_percentiles",
]

#: The serving layer's reported percentiles (p50/p95/p99).
PERCENTILES: tuple[float, ...] = (50.0, 95.0, 99.0)

#: Seconds-scale latency buckets: 0.5 ms .. 2.5 s, roughly log-spaced.
DEFAULT_LATENCY_BUCKETS: tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5,
)


class Counter:
    """Monotonically increasing counter."""

    __slots__ = ("name", "help", "_lock", "_value")
    kind = "counter"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def render(self) -> list[str]:
        return [f"{self.name}_total {_fmt(self._value)}"]


class Gauge:
    """A value that can go up and down (queue depth, occupancy)."""

    __slots__ = ("name", "help", "_lock", "_value")
    kind = "gauge"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def render(self) -> list[str]:
        return [f"{self.name} {_fmt(self._value)}"]


class Histogram:
    """Fixed-upper-bound bucket histogram (Prometheus ``le`` semantics)."""

    __slots__ = ("name", "help", "bounds", "_lock", "_counts", "_sum", "_count")
    kind = "histogram"

    def __init__(
        self,
        name: str,
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
        help: str = "",
    ) -> None:
        self.name = name
        self.help = help
        self.bounds = tuple(sorted(float(b) for b in buckets))
        if not self.bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self._lock = threading.Lock()
        self._counts = [0] * (len(self.bounds) + 1)
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        index = bisect_right(self.bounds, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    def render(self) -> list[str]:
        lines = []
        cumulative = 0
        with self._lock:
            counts = list(self._counts)
            total, total_sum = self._count, self._sum
        for bound, n in zip(self.bounds, counts):
            cumulative += n
            lines.append(f'{self.name}_bucket{{le="{_fmt(bound)}"}} {cumulative}')
        lines.append(f'{self.name}_bucket{{le="+Inf"}} {total}')
        lines.append(f"{self.name}_sum {_fmt(total_sum)}")
        lines.append(f"{self.name}_count {total}")
        return lines


def _fmt(value: float) -> str:
    return repr(int(value)) if float(value).is_integer() else repr(float(value))


class MetricsRegistry:
    """Named metric store with get-or-create accessors.

    Metric names follow the project convention (CONTRIBUTING):
    ``repro_<layer>_<what>`` with the unit as the final component for
    histograms (``repro_serve_window_seconds``).
    """

    def __init__(self, *, enabled: bool = False) -> None:
        self.enabled = bool(enabled)
        self._lock = threading.Lock()
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}

    def _get_or_create(self, name: str, factory):
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = self._metrics[name] = factory()
            return metric

    def counter(self, name: str, help: str = "") -> Counter:
        metric = self._get_or_create(name, lambda: Counter(name, help))
        if not isinstance(metric, Counter):
            raise TypeError(f"metric {name!r} already registered as {metric.kind}")
        return metric

    def gauge(self, name: str, help: str = "") -> Gauge:
        metric = self._get_or_create(name, lambda: Gauge(name, help))
        if not isinstance(metric, Gauge):
            raise TypeError(f"metric {name!r} already registered as {metric.kind}")
        return metric

    def histogram(
        self,
        name: str,
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
        help: str = "",
    ) -> Histogram:
        metric = self._get_or_create(name, lambda: Histogram(name, buckets, help))
        if not isinstance(metric, Histogram):
            raise TypeError(f"metric {name!r} already registered as {metric.kind}")
        return metric

    def render(self) -> str:
        """Prometheus text exposition of every registered metric."""
        lines: list[str] = []
        with self._lock:
            metrics = sorted(self._metrics.values(), key=lambda m: m.name)
        for metric in metrics:
            if metric.help:
                lines.append(f"# HELP {metric.name} {metric.help}")
            lines.append(f"# TYPE {metric.name} {metric.kind}")
            lines.extend(metric.render())
        return "\n".join(lines) + ("\n" if lines else "")

    def snapshot_line(self) -> str:
        """One compact line of counter/gauge values for periodic logs."""
        with self._lock:
            metrics = sorted(self._metrics.values(), key=lambda m: m.name)
        parts = [
            f"{m.name.removeprefix('repro_')}={_fmt(m.value)}"
            for m in metrics
            if isinstance(m, (Counter, Gauge))
        ]
        return "metrics: " + " ".join(parts) if parts else ""


# -- rolling percentiles ----------------------------------------------------


class LatencyRing:
    """Preallocated rolling window of float samples.

    Replaces the serving telemetry's ``deque(maxlen=rolling)``: appends
    are one numpy store, and :meth:`view` exposes the live samples with
    no copy (sample *order* inside the window is irrelevant for
    percentiles, so the ring is never unrolled).
    """

    __slots__ = ("_buffer", "_count")

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("ring capacity must be >= 1")
        self._buffer = np.zeros(int(capacity), dtype=np.float64)
        self._count = 0

    @property
    def capacity(self) -> int:
        return len(self._buffer)

    def __len__(self) -> int:
        return min(self._count, len(self._buffer))

    def append(self, value: float) -> None:
        buffer = self._buffer
        buffer[self._count % len(buffer)] = value
        self._count += 1

    def view(self) -> np.ndarray:
        """The live samples, unordered, as a zero-copy array view."""
        if self._count < len(self._buffer):
            return self._buffer[: self._count]
        return self._buffer

    def percentiles(
        self, percentiles: Sequence[float] = PERCENTILES
    ) -> tuple[float, ...]:
        return latency_percentiles(self, percentiles)


def latency_percentiles(
    values: "LatencyRing | Iterable[float]",
    percentiles: Sequence[float] = PERCENTILES,
) -> tuple[float, ...]:
    """Percentiles of a sample set; zeros when empty.

    Accepts a :class:`LatencyRing` (zero-copy fast path), any array-like
    of floats, or a generic iterable (materialized once).
    """
    if isinstance(values, LatencyRing):
        array = values.view()
    elif isinstance(values, np.ndarray):
        array = values
    elif isinstance(values, (list, tuple)):
        array = np.asarray(values, dtype=np.float64)
    else:
        array = np.asarray(list(values), dtype=np.float64)
    if array.size == 0:
        return tuple(0.0 for _ in percentiles)
    result = np.percentile(array, percentiles)
    return tuple(float(v) for v in np.atleast_1d(result))
