"""Fig. 16 — partitioning ablation across datasets.

Regenerates the two series of the figure on FractalCloud hardware with
only the partitioner swapped (uniform / octree / KD-tree / Fractal):

- bars: end-to-end point-operation speedup, normalised to uniform;
- dots: preprocessing (partitioning) speedup, normalised to KD-tree.

Expected shape (paper): Fractal partitions ~133x faster than KD-tree and
~14.9x faster than octree, and improves point operations by ~4.4x over
uniform and ~2.1x over octree.
"""

from dataclasses import replace

from repro.analysis import format_table
from repro.hw import AcceleratorSim, FRACTALCLOUD
from repro.networks import get_workload

from _common import emit

DATASETS = [("modelnet40", "PN++(c)", 4096, 64),
            ("shapenet", "PN++(ps)", 4096, 64),
            ("s3dis", "PNXt(s)", 33_000, 256)]
STRATEGIES = ["uniform", "octree", "kdtree", "fractal"]


def run_fig16():
    rows = []
    ratios = {}
    for dataset, workload, n, bs in DATASETS:
        spec = get_workload(workload)
        point_ops = {}
        partition = {}
        for strategy in STRATEGIES:
            cfg = replace(FRACTALCLOUD, name=strategy, partitioner=strategy,
                          block_size=bs)
            r = AcceleratorSim(cfg).run(spec, n)
            partition[strategy] = max(r.phases["partition"].seconds, 1e-12)
            # Search operations (sampling + neighbour search +
            # interpolation): the phases whose work depends on block
            # balance and search-space size.  Gathering is excluded —
            # block-wise gathering touches identical bytes under every
            # partitioned strategy in this model.
            point_ops[strategy] = sum(
                r.phases[phase].seconds
                for phase in ("sample", "neighbor", "interpolate")
                if phase in r.phases
            )
        for strategy in STRATEGIES:
            rows.append([
                dataset, strategy,
                f"{point_ops['uniform'] / point_ops[strategy]:.2f}",
                f"{partition['kdtree'] / partition[strategy]:.1f}",
            ])
        ratios[dataset] = (point_ops, partition)
    table = format_table(
        ["dataset", "strategy", "point-op speedup (vs uniform)",
         "partition speedup (vs KD-tree)"],
        rows,
        title="Fig. 16 — partitioning ablation "
              "(paper: Fractal 133x faster than KD-tree, 14.9x than octree; "
              "point ops 4.4x over uniform, 2.1x over octree)",
    )
    return table, ratios


def test_fig16_partition_ablation(benchmark):
    table, ratios = benchmark.pedantic(run_fig16, rounds=1, iterations=1)
    emit("fig16_partition_ablation", table)
    point_ops, partition = ratios["s3dis"]
    # Fractal partitioning is far cheaper than KD-tree and cheaper than octree.
    assert partition["kdtree"] / partition["fractal"] > 20
    assert partition["octree"] / partition["fractal"] > 1.0
    # Fractal point ops beat uniform partitioning's (paper: 4.4x).
    assert point_ops["uniform"] / point_ops["fractal"] > 2.0
