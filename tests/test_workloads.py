"""Tests for the Table I workload registry."""

import pytest

from repro.networks import WORKLOADS, get_workload


class TestRegistry:
    def test_all_seven_table1_rows_present(self):
        assert set(WORKLOADS) == {
            "PN++(c)", "PNXt(c)", "PN++(ps)", "PNXt(ps)",
            "PN++(s)", "PNXt(s)", "PVr(s)",
        }

    def test_lookup(self):
        assert get_workload("PVr(s)").model == "pointvector"
        with pytest.raises(ValueError, match="unknown workload"):
            get_workload("PN++(x)")

    def test_task_dataset_pairing_matches_table1(self):
        assert get_workload("PN++(c)").dataset == "modelnet40"
        assert get_workload("PNXt(ps)").dataset == "shapenet"
        for key in ("PN++(s)", "PNXt(s)", "PVr(s)"):
            spec = get_workload(key)
            assert spec.dataset == "s3dis"
            assert spec.task == "seg"
            assert spec.num_classes == 13

    def test_classification_has_global_and_head(self):
        for key in ("PN++(c)", "PNXt(c)"):
            spec = get_workload(key)
            assert spec.task == "cls"
            assert spec.global_mlp
            assert spec.head[-1] == 40
            assert not spec.fp_stages

    def test_segmentation_fp_mirrors_sa(self):
        for key in ("PN++(s)", "PNXt(s)", "PVr(s)", "PN++(ps)", "PNXt(ps)"):
            spec = get_workload(key)
            assert len(spec.fp_stages) == len(spec.sa_stages)


class TestConcreteChains:
    @pytest.mark.parametrize("key", sorted(WORKLOADS))
    def test_chain_sizes_consistent(self, key):
        spec = get_workload(key)
        n = max(spec.min_points() * 4, 4096)
        stages = spec.concrete(n)
        assert stages[0].n_in == n
        for stage in stages:
            assert stage.n_in >= 1 and stage.n_out >= 1
            if stage.kind == "sa":
                assert stage.n_out < stage.n_in
            if stage.kind == "fp":
                assert stage.n_out > stage.n_in  # upsampling

    def test_seg_head_covers_all_points(self):
        spec = get_workload("PNXt(s)")
        stages = spec.concrete(8192)
        head = stages[-1]
        assert head.kind == "head"
        assert head.n_in == 8192

    def test_fp_chain_returns_to_input_size(self):
        spec = get_workload("PN++(s)")
        stages = spec.concrete(16384)
        last_fp = [s for s in stages if s.kind == "fp"][-1]
        assert last_fp.n_out == 16384

    def test_fp_in_channels_include_skip(self):
        spec = get_workload("PNXt(s)")
        stages = spec.concrete(8192)
        first_fp = [s for s in stages if s.kind == "fp"][0]
        deepest_sa = [s for s in stages if s.kind == "sa"][-1]
        # First FP consumes deepest SA output ++ skip from the level below.
        assert first_fp.in_channels > deepest_sa.mlp[-1]

    def test_min_points(self):
        spec = get_workload("PNXt(s)")
        assert spec.min_points() == 4 ** 4
        with pytest.raises(ValueError, match="at least"):
            from repro.runtime import compile_program

            compile_program(spec, 16)
