"""Block-Parallel Point Operations (BPPO, paper §IV-B).

Decomposes every point operation — sampling, grouping, interpolation,
gathering — from a global search over the whole cloud into independent
block-local searches over a :class:`~repro.core.blocks.BlockStructure`.
All blocks are mutually independent, so a parallel machine executes them
concurrently; the functional results here are exactly what such a machine
would produce, and every operation additionally returns an
:class:`OpTrace` describing the per-block work for the hardware model.

Semantics mirrored from the paper:

- **Block-wise sampling** runs FPS independently inside each block with a
  *fixed sampling rate* across blocks (no per-block hyper-parameters);
  quotas use largest-remainder rounding so totals match the requested
  sample count exactly.
- **Block-wise neighbour search** (ball query for grouping, KNN for
  interpolation) restricts each centre's candidates to its block's search
  space — the block itself at depth ≤ 1, the immediate parent below that.
- **Block-wise gathering** is functionally identical to global gathering
  (it never changes feature values — paper §VI-B), but its trace records
  the block-local access pattern that eliminates DRAM lookups.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..geometry import ops as exact_ops
from .blocks import BlockStructure

__all__ = [
    "BlockWork",
    "OpTrace",
    "allocate_samples",
    "block_fps",
    "block_fps_batched",
    "block_ball_query",
    "block_ball_query_batched",
    "block_knn",
    "block_knn_batched",
    "block_interpolate",
    "block_interpolate_batched",
    "block_gather",
    "block_gather_batched",
]

#: Element budget (centres × candidates × blocks) for one stacked batch;
#: bounds the padded distance stack (and its 3-vector broadcast
#: intermediate) of the batched fast paths to tens of megabytes.
_STACK_BUDGET = 1 << 21

#: A block whose centres × search-space product is at or below this runs
#: through the stacked path; bigger blocks are already dominated by their
#: own GEMM/sort and only pay the padding + copy tax of stacking, so they
#: take the per-block path.  Must not exceed
#: ``repro.geometry.ops._DIRECT_FORM_MAX`` — that keeps every stacked
#: slice on the elementwise distance form, whose bits are independent of
#: stacking.  Either plan returns bit-identical results — this constant
#: tunes speed, never semantics.
_STACK_SMALL = 128


@dataclass
class BlockWork:
    """Per-block work record consumed by the hardware timing model.

    Attributes:
        block_id: index into ``structure.blocks``.
        n_points: points in the block.
        n_search: size of the search space consulted.
        n_centers: query centres processed in this block.
        n_outputs: results produced (samples selected / neighbour rows).
        widened: True when the search space had to grow beyond the
            block's normal scope (rare candidate-starved KNN case).
    """

    block_id: int
    n_points: int
    n_search: int
    n_centers: int
    n_outputs: int
    widened: bool = False


@dataclass
class OpTrace:
    """Work summary of one block-parallel operation."""

    kind: str
    blocks: list[BlockWork] = field(default_factory=list)

    @property
    def num_blocks(self) -> int:
        return len(self.blocks)

    @property
    def total_outputs(self) -> int:
        return sum(w.n_outputs for w in self.blocks)

    @property
    def total_search_elements(self) -> int:
        """Sum over blocks of centres × search size (distance computations)."""
        return sum(w.n_centers * w.n_search for w in self.blocks)

    @property
    def max_block_work(self) -> int:
        """Largest single-block workload — the parallel critical path."""
        if not self.blocks:
            return 0
        return max(w.n_centers * max(w.n_search, 1) for w in self.blocks)

    @property
    def num_widened(self) -> int:
        return sum(1 for w in self.blocks if w.widened)


def allocate_samples(
    block_sizes: np.ndarray, num_samples: int, *, clamp: bool = False
) -> np.ndarray:
    """Largest-remainder allocation of a global sample budget to blocks.

    Every block receives ``num_samples * size / total`` samples, rounded
    so the total is exact and no block exceeds its population.  This is
    the "fixed sampling rate across all blocks" rule of §IV-B, with one
    robustness guarantee: when the budget allows (``num_samples >=
    num_blocks``), every block keeps at least one representative — a
    sparse far-away block must not vanish from the sampled set, or its
    whole region loses coverage (the outlier discussion of §VI-D).

    Args:
        block_sizes: ``(num_blocks,)`` positive block populations.
        num_samples: total samples, ``1 <= num_samples <= sum(sizes)``.
        clamp: when True, an over-budget request (``num_samples >
            sum(sizes)``) is clamped to ``sum(sizes)`` instead of raising
            — the behaviour streaming callers want when a fixed sample
            count meets an unexpectedly tiny cloud or block.  Without the
            clamp, the rounding overflow used to surface much later as a
            confusing ``ValueError`` inside ``farthest_point_sample``.

    Returns:
        ``(num_blocks,)`` int64 quotas summing to ``min(num_samples,
        sum(sizes))`` (with ``clamp``) or exactly ``num_samples``.
    """
    sizes = np.asarray(block_sizes, dtype=np.int64)
    total = int(sizes.sum())
    if np.any(sizes <= 0):
        raise ValueError("block sizes must be positive")
    if clamp:
        num_samples = min(int(num_samples), total)
    if not 1 <= num_samples <= total:
        raise ValueError(f"num_samples must be in [1, {total}], got {num_samples}")

    if num_samples >= len(sizes):
        base = np.ones(len(sizes), dtype=np.int64)
        weights = (sizes - 1).astype(np.float64)
        room = sizes - 1
    else:
        base = np.zeros(len(sizes), dtype=np.int64)
        weights = sizes.astype(np.float64)
        room = sizes
    spare = num_samples - int(base.sum())
    if weights.sum() > 0 and spare > 0:
        exact = spare * weights / weights.sum()
    else:
        exact = np.zeros(len(sizes))
    extra = np.minimum(np.floor(exact).astype(np.int64), room)
    quotas = base + extra
    remainder = num_samples - int(quotas.sum())
    if remainder > 0:
        # Leftover slots go to the largest fractional parts with room,
        # then (degenerate skew) to whichever blocks still have capacity.
        frac = exact - np.floor(exact)
        for block_id in np.argsort(-frac, kind="stable"):
            if remainder == 0:
                break
            if quotas[block_id] < sizes[block_id]:
                quotas[block_id] += 1
                remainder -= 1
        if remainder > 0:
            for block_id in np.argsort(-(sizes - quotas), kind="stable"):
                take = min(remainder, int(sizes[block_id] - quotas[block_id]))
                quotas[block_id] += take
                remainder -= take
                if remainder == 0:
                    break
    assert int(quotas.sum()) == num_samples
    return quotas


def block_fps(
    structure: BlockStructure,
    coords: np.ndarray,
    num_samples: int,
) -> tuple[np.ndarray, OpTrace]:
    """Block-wise farthest point sampling (paper Fig. 7, "Block-Wise Sample").

    FPS runs independently inside every block (search space = the block
    itself); the final sample set is the aggregation over blocks.  An
    over-budget request (``num_samples > structure.num_points``) is
    clamped to the cloud size, so tiny streamed clouds degrade to "take
    every point" instead of raising.

    Returns:
        ``(indices, trace)`` — global point indices of the sampled set
        (grouped by DFT block order) and the per-block work trace.
    """
    coords = np.asarray(coords, dtype=np.float64)
    quotas = allocate_samples(structure.block_sizes, num_samples, clamp=True)
    trace = OpTrace(kind="fps")
    chunks: list[np.ndarray] = []
    for block_id, (block, quota) in enumerate(zip(structure.blocks, quotas)):
        trace.blocks.append(
            BlockWork(
                block_id=block_id,
                n_points=len(block),
                n_search=len(block),
                n_centers=int(quota),
                n_outputs=int(quota),
            )
        )
        if quota == 0:
            continue
        local = exact_ops.farthest_point_sample(coords[block.indices], int(quota))
        chunks.append(block.indices[local])
    indices = np.concatenate(chunks) if chunks else np.empty(0, dtype=np.int64)
    return indices, trace


def _group_centers_by_block(
    structure: BlockStructure, center_indices: np.ndarray
) -> list[np.ndarray]:
    """Positions (into ``center_indices``) of each block's centres.

    One stable argsort over the owner array replaces the per-block
    ``nonzero`` scan (O(m log m + blocks) instead of O(m · blocks));
    stability keeps each group in ascending position order, exactly what
    the scan produced.
    """
    owner = structure.block_of_point()
    center_owner = owner[np.asarray(center_indices, dtype=np.int64)]
    order = np.argsort(center_owner, kind="stable")
    counts = np.bincount(center_owner, minlength=structure.num_blocks)
    return np.split(order, np.cumsum(counts)[:-1])


def block_ball_query(
    structure: BlockStructure,
    coords: np.ndarray,
    center_indices: np.ndarray,
    radius: float,
    num: int,
) -> tuple[np.ndarray, OpTrace]:
    """Block-wise ball query for grouping (paper Fig. 7).

    Each centre searches only its block's search space (leaf, or
    leaf + parent for deep leaves).  Results are *global* point indices
    aligned row-for-row with ``center_indices``.

    Returns:
        ``(neighbors, trace)`` — ``(m, num)`` global indices and the trace.
    """
    coords = np.asarray(coords, dtype=np.float64)
    center_indices = np.asarray(center_indices, dtype=np.int64)
    neighbors = np.empty((len(center_indices), num), dtype=np.int64)
    trace = OpTrace(kind="ball_query")

    for block_id, rows in enumerate(_group_centers_by_block(structure, center_indices)):
        block = structure.blocks[block_id]
        space = structure.search_spaces[block_id]
        trace.blocks.append(
            BlockWork(
                block_id=block_id,
                n_points=len(block),
                n_search=len(space),
                n_centers=len(rows),
                n_outputs=len(rows) * num,
            )
        )
        if len(rows) == 0:
            continue
        local = exact_ops.ball_query(
            coords[center_indices[rows]], coords[space], radius, num
        )
        neighbors[rows] = space[local]
    return neighbors, trace


def block_knn(
    structure: BlockStructure,
    coords: np.ndarray,
    center_indices: np.ndarray,
    candidate_indices: np.ndarray,
    k: int,
) -> tuple[np.ndarray, OpTrace]:
    """Block-wise KNN over a candidate subset (used by interpolation).

    For each block, the usable candidates are the members of
    ``candidate_indices`` that fall inside the block's search space.  A
    block whose search space holds fewer than ``k`` candidates widens to
    the full candidate set (counted in the trace; rare for sane
    thresholds — tested in ``tests/test_bppo.py``).

    Returns:
        ``(neighbors, trace)`` — ``(m, k)`` indices *into coords* (global
        point ids drawn from ``candidate_indices``), rows aligned with
        ``center_indices``.
    """
    coords = np.asarray(coords, dtype=np.float64)
    center_indices = np.asarray(center_indices, dtype=np.int64)
    candidate_indices = np.asarray(candidate_indices, dtype=np.int64)
    if len(candidate_indices) < k:
        raise ValueError(f"need at least k={k} candidates, got {len(candidate_indices)}")

    in_candidates = np.zeros(structure.num_points, dtype=bool)
    in_candidates[candidate_indices] = True

    neighbors = np.empty((len(center_indices), k), dtype=np.int64)
    trace = OpTrace(kind="knn")
    for block_id, rows in enumerate(_group_centers_by_block(structure, center_indices)):
        block = structure.blocks[block_id]
        space = structure.search_spaces[block_id]
        local_candidates = space[in_candidates[space]]
        widened = len(local_candidates) < k
        if widened:
            local_candidates = candidate_indices
        trace.blocks.append(
            BlockWork(
                block_id=block_id,
                n_points=len(block),
                n_search=len(local_candidates),
                n_centers=len(rows),
                n_outputs=len(rows) * k,
                widened=widened,
            )
        )
        if len(rows) == 0:
            continue
        local = exact_ops.knn_search(
            coords[center_indices[rows]], coords[local_candidates], k
        )
        neighbors[rows] = local_candidates[local]
    return neighbors, trace


def block_interpolate(
    structure: BlockStructure,
    coords: np.ndarray,
    center_indices: np.ndarray,
    candidate_indices: np.ndarray,
    candidate_features: np.ndarray,
    k: int = 3,
) -> tuple[np.ndarray, OpTrace]:
    """Block-wise feature interpolation (propagation stages, Fig. 2(c)).

    Finds each centre's K nearest candidates *within its block's search
    space* and blends their features with inverse-distance weights.

    Args:
        structure: partition of the dense cloud the centres live in.
        coords: ``(n, 3)`` coordinates of the dense cloud.
        center_indices: global indices of points to restore features for.
        candidate_indices: global indices of the sampled points carrying
            features.
        candidate_features: features aligned with ``candidate_indices``
            (row i belongs to candidate i).

    Returns:
        ``(features, trace)`` — ``(m, c)`` interpolated features.
    """
    candidate_features = np.asarray(candidate_features, dtype=np.float64)
    if len(candidate_features) != len(candidate_indices):
        raise ValueError("candidate_features rows must align with candidate_indices")

    neighbors, trace = block_knn(structure, coords, center_indices, candidate_indices, k)
    trace.kind = "interpolate"
    features = _interpolate_from_neighbors(
        structure.num_points, coords, center_indices, candidate_indices,
        candidate_features, neighbors,
    )
    return features, trace


def _interpolate_from_neighbors(
    num_points: int,
    coords: np.ndarray,
    center_indices: np.ndarray,
    candidate_indices: np.ndarray,
    candidate_features: np.ndarray,
    neighbors: np.ndarray,
) -> np.ndarray:
    """Inverse-distance blend of neighbour features (shared by the serial,
    batched, ragged, and fused interpolation paths, so identical
    neighbours give bit-identical features)."""
    # Map global candidate ids back to feature rows.
    feature_row = np.full(num_points, -1, dtype=np.int64)
    feature_row[np.asarray(candidate_indices, dtype=np.int64)] = np.arange(
        len(candidate_indices)
    )
    coords = np.asarray(coords, dtype=np.float64)
    centers = coords[np.asarray(center_indices, dtype=np.int64)]
    weights = exact_ops.idw_weights(centers, coords[neighbors])
    gathered = candidate_features[feature_row[neighbors]]
    return np.einsum("mk,mkc->mc", weights, gathered)


def block_gather(
    structure: BlockStructure,
    features: np.ndarray,
    neighbor_indices: np.ndarray,
    center_indices: np.ndarray,
) -> tuple[np.ndarray, OpTrace]:
    """Block-wise gathering (paper Fig. 10).

    Functionally identical to :func:`repro.geometry.ops.gather_features`
    (feature values are never altered); the trace records that every
    access stays within the owning block's search space, which is what
    lets the hardware keep gathers fully on-chip.

    Args:
        structure: the partition.
        features: ``(n, c)`` global feature table.
        neighbor_indices: ``(m, k)`` global indices to gather.
        center_indices: ``(m,)`` global centre ids (locate each row's block).

    Returns:
        ``(gathered, trace)`` — ``(m, k, c)`` features and the trace.
    """
    neighbor_indices = np.asarray(neighbor_indices, dtype=np.int64)
    gathered = exact_ops.gather_features(features, neighbor_indices)

    trace = OpTrace(kind="gather")
    for block_id, rows in enumerate(
        _group_centers_by_block(structure, np.asarray(center_indices, dtype=np.int64))
    ):
        block = structure.blocks[block_id]
        space = structure.search_spaces[block_id]
        trace.blocks.append(
            BlockWork(
                block_id=block_id,
                n_points=len(block),
                n_search=len(space),
                n_centers=len(rows),
                n_outputs=int(len(rows) * neighbor_indices.shape[1]),
            )
        )
    return gathered, trace


# ---------------------------------------------------------------------------
# Batched fast paths
#
# Functionally identical to the serial operations above (the parity suite
# in tests/test_batch_parity.py asserts bit-level agreement), but instead
# of visiting blocks one at a time they stack compatible blocks into
# (B, n, 3) arrays and run each search once per stack — the software
# analogue of the paper's "all blocks execute concurrently" claim, and the
# per-cloud fast path of repro.runtime.executor.BatchExecutor.
# ---------------------------------------------------------------------------


def _stack_coords(coords: np.ndarray, index_sets: list[np.ndarray]) -> tuple[np.ndarray, np.ndarray]:
    """Pad a list of index arrays into a ``(B, n_max, 3)`` stack.

    Returns ``(stacked, sizes)``; padding rows are zero and are masked out
    by the batched reference ops (``num_valid`` / zeroed min-distance), so
    their value never matters.
    """
    sizes = np.array([len(ix) for ix in index_sets], dtype=np.int64)
    stacked = np.zeros((len(index_sets), int(sizes.max()), 3))
    for g, ix in enumerate(index_sets):
        stacked[g, : len(ix)] = coords[ix]
    return stacked, sizes


def _stack_buckets(
    block_ids: list[int],
    center_counts: list[int] | np.ndarray,
    search_counts: list[int] | np.ndarray,
    budget: int = _STACK_BUDGET,
) -> list[list[int]]:
    """Chunk blocks into stacks whose padded size fits the element budget.

    Blocks are ordered by (search size, centre count) so stack-mates have
    similar shapes and padding waste stays low; bucket composition only
    affects speed, never results (every row is computed independently).
    """
    order = sorted(block_ids, key=lambda b: (search_counts[b], center_counts[b]))
    buckets: list[list[int]] = []
    current: list[int] = []
    m_max = n_max = 0
    for b in order:
        m_new = max(m_max, int(center_counts[b]) or 1)
        n_new = max(n_max, int(search_counts[b]) or 1)
        if current and (len(current) + 1) * m_new * n_new > budget:
            buckets.append(current)
            current, m_max, n_max = [], 0, 0
            m_new = max(1, int(center_counts[b]))
            n_new = max(1, int(search_counts[b]))
        current.append(b)
        m_max, n_max = m_new, n_new
    if current:
        buckets.append(current)
    return buckets


def block_fps_batched(
    structure: BlockStructure,
    coords: np.ndarray,
    num_samples: int,
) -> tuple[np.ndarray, OpTrace]:
    """Batched :func:`block_fps`: same indices, same trace, fewer passes.

    Blocks that received the same quota are stacked into one
    ``(B, n_max, 3)`` array and sampled by a single vectorized greedy
    recurrence (:func:`repro.geometry.ops.batched_farthest_point_sample`),
    so the Python-level iteration count drops from
    ``sum(quota_b)`` to ``max(quota) × num_quota_groups``.
    """
    coords = np.asarray(coords, dtype=np.float64)
    quotas = allocate_samples(structure.block_sizes, num_samples, clamp=True)
    trace = OpTrace(kind="fps")
    groups: dict[int, list[int]] = {}
    for block_id, (block, quota) in enumerate(zip(structure.blocks, quotas)):
        trace.blocks.append(
            BlockWork(
                block_id=block_id,
                n_points=len(block),
                n_search=len(block),
                n_centers=int(quota),
                n_outputs=int(quota),
            )
        )
        if quota > 0:
            groups.setdefault(int(quota), []).append(block_id)

    per_block: list[np.ndarray | None] = [None] * structure.num_blocks
    for quota, ids in groups.items():
        if len(ids) == 1:
            block = structure.blocks[ids[0]]
            local = exact_ops.farthest_point_sample(coords[block.indices], quota)
            per_block[ids[0]] = block.indices[local]
            continue
        stacked, sizes = _stack_coords(
            coords, [structure.blocks[b].indices for b in ids]
        )
        local = exact_ops.batched_farthest_point_sample(
            stacked, quota, num_valid=sizes
        )
        for g, b in enumerate(ids):
            per_block[b] = structure.blocks[b].indices[local[g]]
    chunks = [c for c in per_block if c is not None]
    indices = np.concatenate(chunks) if chunks else np.empty(0, dtype=np.int64)
    return indices, trace


def block_ball_query_batched(
    structure: BlockStructure,
    coords: np.ndarray,
    center_indices: np.ndarray,
    radius: float,
    num: int,
) -> tuple[np.ndarray, OpTrace]:
    """Batched :func:`block_ball_query`: identical neighbours and trace.

    Small blocks (where per-block numpy dispatch overhead dominates the
    actual distance math) are padded into one stacked problem per memory
    bucket and selected in a single pass; blocks above
    :data:`_STACK_SMALL` run the per-block reference directly — for them
    stacking only adds padding and copy traffic.
    """
    coords = np.asarray(coords, dtype=np.float64)
    center_indices = np.asarray(center_indices, dtype=np.int64)
    neighbors = np.empty((len(center_indices), num), dtype=np.int64)
    trace = OpTrace(kind="ball_query")

    rows_per_block = _group_centers_by_block(structure, center_indices)
    small: list[int] = []
    for block_id, rows in enumerate(rows_per_block):
        block = structure.blocks[block_id]
        space = structure.search_spaces[block_id]
        trace.blocks.append(
            BlockWork(
                block_id=block_id,
                n_points=len(block),
                n_search=len(space),
                n_centers=len(rows),
                n_outputs=len(rows) * num,
            )
        )
        if not len(rows):
            continue
        if len(rows) * len(space) <= _STACK_SMALL:
            small.append(block_id)
        else:
            local = exact_ops.ball_query(
                coords[center_indices[rows]], coords[space], radius, num
            )
            neighbors[rows] = space[local]

    center_counts = [len(r) for r in rows_per_block]
    search_counts = structure.search_sizes
    for bucket in _stack_buckets(small, center_counts, search_counts):
        stacked_centers, m_sizes = _stack_coords(
            coords, [center_indices[rows_per_block[b]] for b in bucket]
        )
        stacked_spaces, n_sizes = _stack_coords(
            coords, [structure.search_spaces[b] for b in bucket]
        )
        local = exact_ops.batched_ball_query(
            stacked_centers, stacked_spaces, radius, num,
            num_centers=m_sizes, num_valid=n_sizes,
        )
        for g, b in enumerate(bucket):
            rows = rows_per_block[b]
            neighbors[rows] = structure.search_spaces[b][local[g, : len(rows)]]
    return neighbors, trace


def block_knn_batched(
    structure: BlockStructure,
    coords: np.ndarray,
    center_indices: np.ndarray,
    candidate_indices: np.ndarray,
    k: int,
) -> tuple[np.ndarray, OpTrace]:
    """Batched :func:`block_knn`: identical neighbours, widening, and trace.

    Per-block candidate subsets (with the same widening rule as the serial
    path) are padded into stacked problems; padded candidates sort after
    every real one under the stable distance-then-index order, so results
    match the per-block reference bit-for-bit.  Like the batched ball
    query, blocks above :data:`_STACK_SMALL` take the per-block path
    directly.
    """
    coords = np.asarray(coords, dtype=np.float64)
    center_indices = np.asarray(center_indices, dtype=np.int64)
    candidate_indices = np.asarray(candidate_indices, dtype=np.int64)
    if len(candidate_indices) < k:
        raise ValueError(f"need at least k={k} candidates, got {len(candidate_indices)}")

    in_candidates = np.zeros(structure.num_points, dtype=bool)
    in_candidates[candidate_indices] = True

    neighbors = np.empty((len(center_indices), k), dtype=np.int64)
    trace = OpTrace(kind="knn")
    rows_per_block = _group_centers_by_block(structure, center_indices)
    local_candidates: list[np.ndarray] = []
    small: list[int] = []
    for block_id, rows in enumerate(rows_per_block):
        block = structure.blocks[block_id]
        space = structure.search_spaces[block_id]
        cands = space[in_candidates[space]]
        widened = len(cands) < k
        if widened:
            cands = candidate_indices
        local_candidates.append(cands)
        trace.blocks.append(
            BlockWork(
                block_id=block_id,
                n_points=len(block),
                n_search=len(cands),
                n_centers=len(rows),
                n_outputs=len(rows) * k,
                widened=widened,
            )
        )
        if not len(rows):
            continue
        if len(rows) * len(cands) <= _STACK_SMALL:
            small.append(block_id)
        else:
            local = exact_ops.knn_search(
                coords[center_indices[rows]], coords[cands], k
            )
            neighbors[rows] = cands[local]

    center_counts = [len(r) for r in rows_per_block]
    cand_counts = [len(c) for c in local_candidates]
    for bucket in _stack_buckets(small, center_counts, cand_counts):
        stacked_centers, m_sizes = _stack_coords(
            coords, [center_indices[rows_per_block[b]] for b in bucket]
        )
        stacked_cands, n_sizes = _stack_coords(
            coords, [local_candidates[b] for b in bucket]
        )
        local = exact_ops.batched_knn_search(
            stacked_centers, stacked_cands, k,
            num_centers=m_sizes, num_valid=n_sizes,
        )
        for g, b in enumerate(bucket):
            rows = rows_per_block[b]
            neighbors[rows] = local_candidates[b][local[g, : len(rows)]]
    return neighbors, trace


def block_interpolate_batched(
    structure: BlockStructure,
    coords: np.ndarray,
    center_indices: np.ndarray,
    candidate_indices: np.ndarray,
    candidate_features: np.ndarray,
    k: int = 3,
) -> tuple[np.ndarray, OpTrace]:
    """Batched :func:`block_interpolate`: bit-identical features.

    The KNN goes through :func:`block_knn_batched`; the inverse-distance
    blend is the exact code path the serial operation uses, so equal
    neighbours guarantee equal weights and features.
    """
    candidate_features = np.asarray(candidate_features, dtype=np.float64)
    if len(candidate_features) != len(candidate_indices):
        raise ValueError("candidate_features rows must align with candidate_indices")

    neighbors, trace = block_knn_batched(
        structure, coords, center_indices, candidate_indices, k
    )
    trace.kind = "interpolate"
    features = _interpolate_from_neighbors(
        structure.num_points, coords, center_indices, candidate_indices,
        candidate_features, neighbors,
    )
    return features, trace


def block_gather_batched(
    structure: BlockStructure,
    features: np.ndarray,
    neighbor_indices: np.ndarray,
    center_indices: np.ndarray,
) -> tuple[np.ndarray, OpTrace]:
    """Batched :func:`block_gather` — gathering is already one vectorized
    fancy-indexing pass, so this is the same computation; the alias keeps
    the batched API complete for schedulers that select ops by name."""
    return block_gather(structure, features, neighbor_indices, center_indices)
