"""Tests for the exact (global-search) point operations."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from scipy.spatial import cKDTree

from repro.geometry import (
    ball_query,
    farthest_point_sample,
    gather_features,
    interpolate_features,
    interpolation_weights,
    knn_search,
    pairwise_sq_dists,
)


class TestPairwiseDists:
    def test_matches_naive(self, rng):
        a = rng.normal(size=(7, 3))
        b = rng.normal(size=(9, 3))
        d2 = pairwise_sq_dists(a, b)
        naive = ((a[:, None, :] - b[None, :, :]) ** 2).sum(axis=2)
        assert np.allclose(d2, naive)

    def test_never_negative(self, rng):
        a = rng.normal(size=(50, 3)) * 1e-4
        assert (pairwise_sq_dists(a, a) >= 0).all()

    def test_self_diagonal_zero(self, rng):
        a = rng.normal(size=(20, 3))
        assert np.allclose(np.diag(pairwise_sq_dists(a, a)), 0.0, atol=1e-9)


class TestFPS:
    def test_first_is_start_index(self, gaussian_cloud):
        idx = farthest_point_sample(gaussian_cloud, 10, start_index=42)
        assert idx[0] == 42

    def test_indices_unique(self, gaussian_cloud):
        idx = farthest_point_sample(gaussian_cloud, 200)
        assert len(set(idx.tolist())) == 200

    def test_matches_naive_greedy(self, rng):
        pts = rng.normal(size=(60, 3))
        idx = farthest_point_sample(pts, 12)
        # Naive reference: recompute greedily from scratch.
        chosen = [0]
        for _ in range(11):
            d2 = pairwise_sq_dists(pts, pts[chosen]).min(axis=1)
            chosen.append(int(np.argmax(d2)))
        assert idx.tolist() == chosen

    def test_greedy_selection_maximises_min_distance(self, rng):
        pts = rng.normal(size=(100, 3))
        idx = farthest_point_sample(pts, 20)
        # Each newly selected point is at least as far from the previous
        # selection as any other candidate was.
        for i in range(1, 20):
            sampled = pts[idx[:i]]
            d2_all = pairwise_sq_dists(pts, sampled).min(axis=1)
            assert d2_all[idx[i]] == pytest.approx(d2_all.max())

    def test_full_sample_covers_everything(self, rng):
        pts = rng.normal(size=(16, 3))
        idx = farthest_point_sample(pts, 16)
        assert sorted(idx.tolist()) == list(range(16))

    def test_bounds_checked(self, gaussian_cloud):
        with pytest.raises(ValueError, match="num_samples"):
            farthest_point_sample(gaussian_cloud, 0)
        with pytest.raises(ValueError, match="num_samples"):
            farthest_point_sample(gaussian_cloud, len(gaussian_cloud) + 1)
        with pytest.raises(ValueError, match="start_index"):
            farthest_point_sample(gaussian_cloud, 5, start_index=-1)


class TestBallQuery:
    def test_all_within_radius_or_fallback(self, rng):
        centers = rng.normal(size=(20, 3))
        cands = rng.normal(size=(200, 3))
        r = 0.8
        out = ball_query(centers, cands, r, 8)
        d2 = pairwise_sq_dists(centers, cands)
        for i in range(20):
            hits = np.nonzero(d2[i] <= r * r)[0]
            if len(hits):
                assert set(out[i]) <= set(hits.tolist())
            else:
                assert (out[i] == np.argmin(d2[i])).all()

    def test_padding_repeats_first_hit(self, rng):
        centers = np.zeros((1, 3))
        cands = np.array([[0.1, 0, 0], [5, 5, 5], [6, 6, 6]])
        out = ball_query(centers, cands, 0.5, 4)
        assert (out[0] == 0).all()

    def test_exact_shape(self, rng):
        out = ball_query(rng.normal(size=(5, 3)), rng.normal(size=(50, 3)), 1.0, 16)
        assert out.shape == (5, 16)

    def test_candidate_order_respected(self):
        centers = np.zeros((1, 3))
        cands = np.array([[0.3, 0, 0], [0.1, 0, 0], [0.2, 0, 0]])
        out = ball_query(centers, cands, 1.0, 2)
        assert out[0].tolist() == [0, 1]  # candidate order, not distance order

    def test_invalid_args(self, rng):
        pts = rng.normal(size=(4, 3))
        with pytest.raises(ValueError, match="radius"):
            ball_query(pts, pts, -1.0, 4)
        with pytest.raises(ValueError, match="num"):
            ball_query(pts, pts, 1.0, 0)


class TestKNN:
    def test_matches_scipy(self, rng):
        centers = rng.normal(size=(30, 3))
        cands = rng.normal(size=(300, 3))
        ours = knn_search(centers, cands, 5)
        _, scipy_idx = cKDTree(cands).query(centers, k=5)
        d2 = pairwise_sq_dists(centers, cands)
        ours_d = np.take_along_axis(d2, ours, axis=1)
        scipy_d = np.take_along_axis(d2, scipy_idx, axis=1)
        assert np.allclose(ours_d, scipy_d)

    def test_sorted_nearest_first(self, rng):
        centers = rng.normal(size=(10, 3))
        cands = rng.normal(size=(100, 3))
        idx = knn_search(centers, cands, 7)
        d2 = pairwise_sq_dists(centers, cands)
        picked = np.take_along_axis(d2, idx, axis=1)
        assert (np.diff(picked, axis=1) >= -1e-12).all()

    def test_self_query_returns_self_first(self, rng):
        pts = rng.normal(size=(50, 3))
        idx = knn_search(pts, pts, 3)
        assert (idx[:, 0] == np.arange(50)).all()

    def test_needs_enough_candidates(self, rng):
        with pytest.raises(ValueError, match="candidates"):
            knn_search(rng.normal(size=(2, 3)), rng.normal(size=(2, 3)), 3)

    def test_boundary_ties_break_by_index(self, rng):
        """Equidistant candidates at the k-th position: the lower index
        wins, matching a stable (distance, index) sort — on both the
        small-row argsort path and the large-row partition path."""
        for n in (40, 400):  # straddles the argsort/partition crossover
            base = rng.normal(size=(n, 3))
            cands = base[rng.integers(0, n // 4, size=n)]  # heavy duplicates
            centers = rng.normal(size=(6, 3))
            from repro.geometry.ops import pairwise_sq_dists as psd
            d2 = psd(centers, cands)
            reference = np.argsort(d2, axis=1, kind="stable")[:, :5]
            assert np.array_equal(knn_search(centers, cands, 5), reference)


class TestInterpolation:
    def test_weights_are_simplex(self, rng):
        idx, w = interpolation_weights(rng.normal(size=(40, 3)), rng.normal(size=(20, 3)))
        assert idx.shape == w.shape == (40, 3)
        assert np.allclose(w.sum(axis=1), 1.0)
        assert (w >= 0).all()

    def test_exact_at_candidate_positions(self, rng):
        cands = rng.normal(size=(30, 3))
        feats = rng.normal(size=(30, 8))
        out = interpolate_features(cands[:5], cands, feats)
        assert np.allclose(out, feats[:5], atol=1e-4)

    def test_interpolation_within_convex_hull_of_neighbors(self, rng):
        centers = rng.normal(size=(25, 3))
        cands = rng.normal(size=(40, 3))
        feats = rng.normal(size=(40, 4))
        out = interpolate_features(centers, cands, feats)
        idx, w = interpolation_weights(centers, cands)
        lo = feats[idx].min(axis=1)
        hi = feats[idx].max(axis=1)
        assert (out >= lo - 1e-9).all() and (out <= hi + 1e-9).all()

    def test_feature_row_alignment_checked(self, rng):
        with pytest.raises(ValueError, match="candidate_features"):
            interpolate_features(
                rng.normal(size=(5, 3)), rng.normal(size=(10, 3)), rng.normal(size=(9, 4))
            )


class TestGather:
    def test_matches_fancy_indexing(self, rng):
        feats = rng.normal(size=(50, 6))
        idx = rng.integers(0, 50, size=(7, 4))
        assert np.array_equal(gather_features(feats, idx), feats[idx])

    def test_rejects_non_integer(self, rng):
        with pytest.raises(ValueError, match="integers"):
            gather_features(rng.normal(size=(5, 2)), np.zeros((2, 2)))

    def test_rejects_out_of_range(self, rng):
        feats = rng.normal(size=(5, 2))
        with pytest.raises(IndexError):
            gather_features(feats, np.array([[0, 5]]))


class TestOpsProperties:
    @settings(max_examples=25, deadline=None)
    @given(st.integers(10, 80), st.integers(1, 10), st.integers(0, 1000))
    def test_fps_coverage_decreases_with_more_samples(self, n, s, seed):
        pts = np.random.default_rng(seed).normal(size=(n, 3))
        idx_small = farthest_point_sample(pts, s)
        idx_big = farthest_point_sample(pts, min(2 * s, n))
        def coverage(sel):
            return pairwise_sq_dists(pts, pts[sel]).min(axis=1).max()
        assert coverage(idx_big) <= coverage(idx_small) + 1e-12

    @settings(max_examples=25, deadline=None)
    @given(st.integers(5, 40), st.integers(1, 5), st.integers(0, 1000))
    def test_knn_picks_globally_nearest(self, n, k, seed):
        rng = np.random.default_rng(seed)
        centers = rng.normal(size=(4, 3))
        cands = rng.normal(size=(n + k, 3))
        idx = knn_search(centers, cands, k)
        d2 = pairwise_sq_dists(centers, cands)
        for i in range(4):
            kth = np.sort(d2[i])[k - 1]
            assert (d2[i][idx[i]] <= kth + 1e-12).all()
