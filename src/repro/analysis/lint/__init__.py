"""Project-invariant static analysis: ``repro lint``.

An AST-based linter whose rules are the repo's own correctness
contracts, not style: kernel calls must route through the dispatcher
(REP001), ``REPRO_*`` env overrides are read in exactly one place
(REP002), shared memory is constructed only in the transport (REP003),
every thread/pool/arena acquisition has a reachable release (REP004),
parity-tested modules stay deterministic (REP005), locks never wrap
blocking pipe writes and always nest in one order (REP006), only
allowlisted control tuples cross shard pipes (REP007), and monotonic
clocks are read only through :mod:`repro.obs` (REP008).

Usage::

    repro lint src                      # whole tree, exit 1 on findings
    repro lint src --select REP004      # one rule
    repro lint --list-rules             # rule table

Per-line suppression names the rule: ``# repro: ignore[REP004]``.
The rule registry is pluggable — see :mod:`.registry`.
"""

from __future__ import annotations

import argparse
from collections import Counter

from .engine import (
    Finding,
    ModuleContext,
    lint_paths,
    lint_source,
)
from .registry import RULES, Rule, register, rule

# Importing the rule modules populates the registry (id order).
from . import kernels as _kernels          # noqa: F401  (REP001, REP002)
from . import resources as _resources      # noqa: F401  (REP003, REP004)
from . import determinism as _determinism  # noqa: F401  (REP005)
from . import concurrency as _concurrency  # noqa: F401  (REP006, REP007)
from . import timing as _timing            # noqa: F401  (REP008)

__all__ = [
    "Finding",
    "ModuleContext",
    "RULES",
    "Rule",
    "lint_paths",
    "lint_source",
    "main",
    "register",
    "rule",
]


def main(argv: list[str] | None = None) -> int:
    """``repro lint`` entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="project-invariant linter (REP001-REP008)",
    )
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to lint (default: src)")
    parser.add_argument("--select",
                        help="comma list of rule ids to run (default: all)")
    parser.add_argument("--statistics", action="store_true",
                        help="append a per-rule finding count")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule table and exit")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule_id, entry in sorted(RULES.items()):
            print(f"{rule_id}  {entry.name}")
            print(f"        {entry.summary}")
        return 0

    select = (
        [r.strip() for r in args.select.split(",") if r.strip()]
        if args.select
        else None
    )
    try:
        findings = lint_paths(args.paths or ["src"], select=select)
    except (FileNotFoundError, ValueError) as exc:
        print(f"repro lint: {exc}")
        return 2
    for finding in findings:
        print(finding.format())
    if args.statistics and findings:
        print()
        for rule_id, count in sorted(Counter(f.rule for f in findings).items()):
            print(f"{count:5d}  {rule_id}  {RULES[rule_id].name}"
                  if rule_id in RULES else f"{count:5d}  {rule_id}")
    if findings:
        print(f"\nfound {len(findings)} violation(s) in "
              f"{len({f.path for f in findings})} file(s)")
        return 1
    return 0
