"""Extension bench — sharded serving: aggregate cache capacity + transport.

Two lanes around the :mod:`repro.shard` front-end:

- **hot-asset capacity**: a ``hotset`` catalog bigger than one server's
  dedup window but smaller than a 4-shard fleet's aggregate.  The
  single-process server keeps evicting hot assets and recomputes them;
  content-affine sharding tiles the catalog across shards (~K/N assets
  each, all resident), so repeats replay instead of recompute.  On one
  core the speedup is pure cache economics — no parallelism is assumed
  or needed — and the acceptance bar is >= 2.5x for router + 4 shards
  over one process.
- **transport**: one hot 64k-point cloud served repeatedly through a
  1-shard router under both transports.  The compute cost is identical
  (one cold build, the rest dedup replays), so the wall-clock difference
  is the array transport itself: shared-memory arenas move each ~10 MB
  result with two memcpys, the pickle baseline serialises it through a
  queue pipe.  Acceptance: shm strictly beats pickle at this size.
"""

import numpy as np
import pytest

from repro.analysis import format_table
from repro.datasets import load_cloud
from repro.runtime import BatchExecutor
from repro.serve import LoadSpec, WindowConfig, WindowedServer, generate
from repro.shard import ShardRouter

from _common import best_time, emit

pytestmark = pytest.mark.slow

# Hot-asset lane: catalog K > one dedup window W, but every shard's
# slice of the (content-hashed) catalog fits its window — for this seed
# the 32 asset keys land [4, 8, 9, 11] across 4 shards, all <= 12 — so
# only the fleet can hold the whole catalog hot.
HOT_ASSETS = 32
HOT_REQUESTS = 320
HOT_POINTS = 1536
HOT_WINDOW = 12          # reuse_window == cache_size on both sides
HOT_SHARDS = 4

# Transport lane: one giant hot cloud, replay-dominated traffic.
BIG_POINTS = 65_536
BIG_REQUESTS = 12

ENGINE = dict(partitioner="fractal", block_size=256, kernel="auto")


def hot_stream():
    return list(generate(LoadSpec(
        clouds=HOT_REQUESTS, min_points=HOT_POINTS, max_points=HOT_POINTS,
        dup_rate=0.0, profile="hotset", hot_assets=HOT_ASSETS, hot_rate=1.0,
        dataset="modelnet40", seed=7,
    )))


def run_hot_lane(rows):
    stream = hot_stream()
    engine_kwargs = dict(
        ENGINE, reuse_window=HOT_WINDOW, cache_size=HOT_WINDOW
    )

    def run_single():
        engine = BatchExecutor(mode="serial", max_workers=1, **engine_kwargs)
        with WindowedServer(engine, WindowConfig(max_clouds=16,
                                                 max_wait=0.005)) as server:
            return list(server.serve(iter(stream)))

    def run_sharded(shards):
        def run():
            with ShardRouter(shards, engine=engine_kwargs, transport="shm",
                             affinity="content", max_in_flight=32) as router:
                return list(router.serve(stream))
        return run

    t_single, single = best_time(run_single, repeats=2)
    reused_single = sum(r.reused for r in single)
    rows.append([
        "hot assets", f"{HOT_REQUESTS} reqs / {HOT_ASSETS} assets",
        "1 process", f"{t_single * 1e3:.0f}", "1.00x",
        f"{reused_single}/{HOT_REQUESTS} reused",
    ])
    speedups = {}
    for shards in (1, HOT_SHARDS):
        t, served = best_time(run_sharded(shards), repeats=2)
        reused = sum(s.result.reused for s in served)
        # Sharding must not change a bit of any result: check against
        # the single-process reference, index by index.
        for ref, got in zip(single, served):
            assert np.array_equal(ref.sampled, got.result.sampled)
            assert np.array_equal(ref.interpolated, got.result.interpolated)
        speedups[shards] = t_single / t
        rows.append([
            "hot assets", f"{HOT_REQUESTS} reqs / {HOT_ASSETS} assets",
            f"router + {shards} shard{'s' if shards > 1 else ''}",
            f"{t * 1e3:.0f}", f"{t_single / t:.2f}x",
            f"{reused}/{HOT_REQUESTS} reused",
        ])
    return speedups


def run_transport_lane(rows):
    cloud = load_cloud("modelnet40", BIG_POINTS, seed=11).coords
    stream = [cloud] * BIG_REQUESTS  # 1 cold build + N-1 dedup replays
    times = {}
    for transport in ("pickle", "shm"):
        def run(transport=transport):
            with ShardRouter(1, engine=ENGINE, transport=transport,
                             arena_bytes=256 << 20,
                             max_in_flight=4) as router:
                return list(router.serve(stream))
        times[transport], served = best_time(run, repeats=2)
        assert sum(s.result.reused for s in served) == BIG_REQUESTS - 1
    for transport in ("pickle", "shm"):
        rows.append([
            "transport", f"{BIG_REQUESTS} reqs @ {BIG_POINTS:,} pts",
            f"1 shard, {transport}", f"{times[transport] * 1e3:.0f}",
            f"{times['pickle'] / times[transport]:.2f}x", "-",
        ])
    return times["pickle"] / times["shm"]


def run_bench():
    rows = []
    hot_speedups = run_hot_lane(rows)
    shm_speedup = run_transport_lane(rows)
    table = format_table(
        ["lane", "traffic", "configuration", "ms", "speedup", "dedup"],
        rows,
        title=(
            "sharded serving: content-affine hot capacity + shm transport "
            f"(fractal, block {ENGINE['block_size']}, window {HOT_WINDOW})"
        ),
    )
    return table, hot_speedups, shm_speedup


def test_shard(benchmark):
    table, hot_speedups, shm_speedup = benchmark.pedantic(
        run_bench, rounds=1, iterations=1
    )
    emit("shard", table)
    # Acceptance: a 4-shard fleet beats one process >= 2.5x on the
    # hot-asset mix (aggregate dedup capacity, not parallelism — the
    # host has one core), and the shm transport beats pickling at
    # 64k-point clouds.
    assert hot_speedups[HOT_SHARDS] >= 2.5, hot_speedups
    assert shm_speedup > 1.0, shm_speedup
