"""28 nm energy/latency constants and calibration factors.

Absolute constants are drawn from published 28 nm characterisations
(pJ/MAC, pJ/byte for SRAM by macro size, DDR4 interface energy); the
*relative* behaviour the paper's evaluation depends on — DRAM streamed vs
random gap, SRAM energy growing with macro capacity, compute energy per
FP16 MAC — is what matters for reproducing result shapes.  The calibration
factors below are documented knobs, fixed once against the paper's
reported ratios (see EXPERIMENTS.md) and never varied per experiment.
"""

from __future__ import annotations

__all__ = [
    "PJ_PER_MAC_FP16",
    "PJ_PER_CMP",
    "SRAM_BASE_PJ_PER_BYTE",
    "DRAM_STREAM_PJ_PER_BYTE",
    "DRAM_RANDOM_PJ_PER_BYTE",
    "BYTES_PER_SCALAR",
    "COORD_BYTES",
    "STATIC_POWER_W",
    "sram_pj_per_byte",
    "FPS_SPILL_FACTOR",
    "RANDOM_DRAM_EFFICIENCY",
    "STREAM_DRAM_EFFICIENCY",
]

# --- arithmetic -------------------------------------------------------------
#: Energy of one FP16 multiply-accumulate at 28 nm (pJ).
PJ_PER_MAC_FP16 = 1.0
#: Energy of one 16-bit compare/select (distance update, pooling) (pJ).
PJ_PER_CMP = 0.15

# --- storage ---------------------------------------------------------------
#: All on-chip data is FP16 (paper: 16-bit half precision throughout).
BYTES_PER_SCALAR = 2
#: One point's coordinates: 3 x FP16.
COORD_BYTES = 3 * BYTES_PER_SCALAR

#: SRAM read/write energy for a 64 KB macro (pJ/byte); larger buffers pay
#: more per access (longer lines / deeper decode), scaling ~sqrt(capacity).
SRAM_BASE_PJ_PER_BYTE = 0.40
_SRAM_REF_KB = 64.0


def sram_pj_per_byte(capacity_kb: float) -> float:
    """Capacity-dependent SRAM access energy (pJ/byte).

    The sqrt scaling is what makes Crescent's 1622.8 KB buffer cost ~2.4x
    more per access than the 274 KB buffers of PointAcc/FractalCloud —
    the mechanism behind the paper's observation that Crescent's SRAM
    energy can exceed PointAcc's DRAM savings (Fig. 15(b)).
    """
    if capacity_kb <= 0:
        raise ValueError(f"capacity_kb must be positive, got {capacity_kb}")
    return SRAM_BASE_PJ_PER_BYTE * (capacity_kb / _SRAM_REF_KB) ** 0.5


# --- DRAM (DDR4-2133, 17 GB/s per Table II) ---------------------------------
#: Interface + array energy for streamed (row-buffer friendly) access.
DRAM_STREAM_PJ_PER_BYTE = 120.0
#: Random access pays extra row activations.
DRAM_RANDOM_PJ_PER_BYTE = 300.0
#: Achievable fraction of peak bandwidth.
STREAM_DRAM_EFFICIENCY = 0.85
RANDOM_DRAM_EFFICIENCY = 0.22

# --- static ----------------------------------------------------------------
#: Accelerator static/leakage power (W); charged over total latency.
STATIC_POWER_W = 0.08

# --- calibration ------------------------------------------------------------
#: Fraction of an oversized FPS working set refetched from DRAM per
#: iteration.  Global FPS re-reads candidate coordinates every iteration;
#: row-buffer locality and partial caching capture most rereads, so only
#: this fraction of the spilled bytes actually hits DRAM.  Fixed at the
#: value that reproduces PointAcc's reported ~41% off-chip fraction at
#: 33 K points (Fig. 15 discussion).
FPS_SPILL_FACTOR = 0.35
