"""The paper's headline claims, checked as one test each."""

import pytest

from repro.analysis.validation import HEADLINE_CLAIMS, validate_headlines


@pytest.mark.parametrize("claim", HEADLINE_CLAIMS, ids=lambda c: c.name)
def test_headline_claim(claim):
    value, ok = claim.check()
    assert ok, (
        f"{claim.name}: paper {claim.paper_value}, measured {value:.2f}, "
        f"band x{claim.band}"
    )


def test_validate_headlines_reports_all():
    rows = validate_headlines()
    assert len(rows) == len(HEADLINE_CLAIMS)
    assert all(ok for _, _, _, ok in rows)
