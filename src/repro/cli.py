"""Command-line interface: ``python -m repro <command>``.

Six subcommands cover the common workflows without writing any code:

- ``partition`` — partition a generated (or .npy) cloud with any
  strategy and print the block statistics.
- ``simulate`` — run a Table I workload at a scale on any accelerator
  (or the GPU model) and print latency/energy/breakdown.
- ``compare`` — the Fig. 13-style table for one workload across scales.
- ``batch-run`` — push a batch of clouds through the
  :class:`~repro.runtime.executor.BatchExecutor` engine and print
  per-cloud results plus aggregate throughput.
- ``loadgen`` — emit a seeded serving-shaped cloud stream (ragged sizes,
  duplicate frames, bursts; uniform / diurnal / adversarial profiles;
  ``--tenants N`` for a tagged multi-tenant mix) as concatenated
  ``.npy`` records.
- ``serve`` — consume a cloud stream (``loadgen`` output, a file, or
  built-in traffic) through the windowed micro-batching server with
  live latency telemetry: ``repro loadgen | repro serve``.
  ``--tenants N`` serves N sessions through one shared engine with
  deficit-round-robin fairness and cross-tenant fusion; ``--adaptive``
  resizes the window online from arrival rate + rolling p95;
  ``--shards N`` replaces the in-process server with the sharded
  front-end (:mod:`repro.shard`): a consistent-hash router over N
  engine worker processes with shared-memory array transport
  (``--transport shm|pickle``, ``--affinity content|stream``).
  ``--trace out.json`` records an end-to-end span tree (router →
  worker → engine → kernels) as Chrome ``trace_event`` JSON;
  ``--metrics`` dumps the Prometheus exposition at exit.
  ``--model <name>`` serves full network inference through the fused
  engine (``--agg delayed|eager`` picks the set-abstraction
  aggregation order; outputs are bit-identical either way).
- ``trace`` — offline trace tooling: ``repro trace summarize out.json``
  prints the per-stage self-time breakdown (build/patch vs. per-op
  kernels vs. transport vs. queueing) and gates on stage-total
  coverage of the traced wall time.
- ``lint`` — the project-invariant static analyzer
  (:mod:`repro.analysis.lint`): AST rules REP001-REP008 over files or
  trees, exit 1 on findings.  CI gates on ``repro lint src`` staying
  clean.
"""

from __future__ import annotations

import argparse
import dataclasses
import sys

import numpy as np

from . import obs

from .analysis import format_table
from .core.delta import PatchPolicy
from .datasets import DATASET_NAMES, load_cloud, scale_points
from .hw import AcceleratorSim, GPUModel, SOTA_CONFIGS
from .infer import MODEL_NAMES, model_spec
from .networks import WORKLOADS, get_workload
from .partition import PARTITIONER_NAMES, get_partitioner, summarize
from .runtime import BatchExecutor, PipelineSpec
from .serve import (
    AdaptiveWindow,
    ControllerConfig,
    LoadSpec,
    MultiTenantServer,
    ServeReport,
    ServeTelemetry,
    TenantSpec,
    WindowConfig,
    WindowedServer,
    generate,
    generate_tenants,
    read_stream,
    read_tenant_stream,
    tenant_specs,
    write_stream,
    write_tenant_stream,
)

__all__ = ["main"]


def _cmd_partition(args: argparse.Namespace) -> int:
    if args.input:
        coords = np.load(args.input)
    else:
        coords = load_cloud(args.dataset, args.points, args.seed).coords
    coords = np.asarray(coords, dtype=np.float64)
    rows = []
    strategies = args.strategy.split(",") if args.strategy else list(PARTITIONER_NAMES)
    for name in strategies:
        structure = get_partitioner(name, max_points_per_block=args.block_size)(coords)
        rows.append(summarize(structure).row())
    print(format_table(
        ["strategy", "blocks", "max", "mean", "balance", "underfilled",
         "sorts", "traversals", "levels"],
        rows,
        title=f"partitioning {len(coords):,} points (BS = {args.block_size})",
    ))
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    spec = get_workload(args.workload)
    n = scale_points(args.points)
    if args.accelerator == "GPU":
        result = GPUModel().run(spec, n)
    else:
        result = AcceleratorSim(SOTA_CONFIGS[args.accelerator]).run(spec, n)
    print(f"{result.platform}: {spec.key} @ {n:,} points")
    print(f"  latency {result.latency_s * 1e3:.3f} ms   "
          f"energy {result.energy_j * 1e3:.3f} mJ   "
          f"DRAM {result.dram_bytes / 1e6:.1f} MB")
    rows = [
        [phase, f"{stats.seconds * 1e3:.4f}", f"{stats.energy_j * 1e3:.4f}"]
        for phase, stats in sorted(
            result.phases.items(), key=lambda kv: -kv[1].seconds
        )
    ]
    print(format_table(["phase", "ms", "mJ"], rows))
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    spec = get_workload(args.workload)
    scales = [scale_points(s) for s in args.scales.split(",")]
    gpu = GPUModel()
    sims = {name: AcceleratorSim(cfg) for name, cfg in SOTA_CONFIGS.items()}
    rows = []
    for n in scales:
        g = gpu.run(spec, n)
        row = [n, f"{g.latency_s * 1e3:.1f}"]
        for name, sim in sims.items():
            r = sim.run(spec, n)
            row.append(f"{g.latency_s / r.latency_s:.1f}x")
        rows.append(row)
    print(format_table(
        ["points", "GPU ms"] + list(sims), rows,
        title=f"speedup over GPU — {spec.key}",
    ))
    return 0


def _cmd_batch_run(args: argparse.Namespace) -> int:
    if args.size_spread > 0:
        rng = np.random.default_rng(args.seed)
        sizes = rng.integers(
            max(1, args.points - args.size_spread),
            args.points + args.size_spread + 1,
            size=args.clouds,
        )
    else:
        sizes = [args.points] * args.clouds
    clouds = [
        load_cloud(args.dataset, int(n), args.seed + i).coords
        for i, n in enumerate(sizes)
    ]
    kernel = "loop" if args.no_batched_ops else args.kernel
    engine = BatchExecutor(
        args.partitioner,
        block_size=args.block_size,
        max_workers=args.workers,
        mode=args.mode,
        kernel=kernel,
        fuse=args.fuse,
        fuse_max_points=args.fuse_max_points if args.fuse_max_points > 0 else None,
        fuse_max_spread=args.fuse_max_spread if args.fuse_max_spread > 0 else None,
    )
    pipeline = PipelineSpec(
        sample_ratio=args.sample_ratio,
        radius=args.radius,
        group_size=args.group_size,
    )
    report = engine.run(clouds, pipeline)
    rows = [
        [r.index, f"{r.num_points:,}", r.num_blocks, len(r.sampled),
         "reuse" if r.reused else ("hit" if r.cache_hit else "miss"),
         f"{r.seconds * 1e3:.2f}"]
        for r in report.results
    ]
    stats = report.stats
    print(format_table(
        ["cloud", "points", "blocks", "samples", "cache", "ms"],
        rows,
        title=f"batch-run: {stats.clouds} clouds on {args.partitioner} "
              f"({engine.mode}, {engine.max_workers} workers, "
              f"kernel={engine.kernel}"
              f"{', fused' if args.fuse else ''})",
    ))
    print(f"  {stats.summary()}")
    return 0


def _cmd_loadgen(args: argparse.Namespace) -> int:
    spec = LoadSpec(
        clouds=args.clouds,
        min_points=args.min_points,
        max_points=args.max_points,
        dup_rate=args.dup_rate,
        dup_window=args.dup_window,
        burst=args.burst,
        interval=args.interval,
        dataset=args.dataset,
        seed=args.seed,
        profile=args.profile,
        drift_period=args.drift_period,
        drift_amplitude=args.drift_amplitude,
        frame_motion=args.frame_motion,
        frame_churn=args.frame_churn,
        hot_assets=args.hot_assets,
        hot_rate=args.hot_rate,
        corrupt_rate=args.corrupt_rate,
        corrupt_severity=args.corrupt_severity,
    )
    if args.tenants > 0:
        specs = tenant_specs(args.tenants, spec)
        pairs = generate_tenants(specs, pace=spec.interval > 0)

        def write(fh):
            return write_tenant_stream(fh, pairs)
    else:
        def write(fh):
            return write_stream(fh, generate(spec))

    if args.out == "-":
        count = write(sys.stdout.buffer)
    else:
        with open(args.out, "wb") as fh:
            count = write(fh)
    # stdout may be the wire; human chatter goes to stderr.
    tenants = f", {args.tenants} tenants" if args.tenants > 0 else ""
    print(
        f"loadgen: wrote {count} clouds "
        f"({spec.min_points}-{spec.max_points} points, "
        f"{spec.profile} profile, dup rate {spec.dup_rate}, "
        f"seed {spec.seed}{tenants})",
        file=sys.stderr,
    )
    return 0


def _obs_configure(args: argparse.Namespace) -> None:
    """Arm the process-global tracer/registry from the serve flags.

    Must run before the engine or router is built: the router captures
    ``obs.enabled()`` when it forks its shard workers.
    """
    obs.configure(
        trace=bool(args.trace),
        sample=max(1, args.trace_sample),
        metrics=args.metrics,
    )


def _obs_dump(args: argparse.Namespace) -> None:
    """Write the trace file / print the metrics exposition after serving."""
    if args.trace:
        from .obs import export

        spans = obs.drain()
        export.write_trace(spans, args.trace)
        print(f"trace: wrote {len(spans)} spans to {args.trace}",
              file=sys.stderr)
    if args.metrics:
        print(obs.metrics().render(), end="")


def _serve_sharded(args: argparse.Namespace, source, tenants: int) -> int:
    """``repro serve --shards N``: the consistent-hash router front-end.

    Tagged (multi-tenant) streams route by their stream tag under
    ``--affinity stream``; untagged traffic defaults to content affinity
    so hot assets pin to shards.  Results stay bit-identical to the
    single-process server over the same stream.
    """
    from .shard import ShardRouter

    engine_kwargs = dict(
        partitioner=args.partitioner,
        block_size=args.block_size,
        kernel=args.kernel,
        fuse_max_points=args.fuse_max_points if args.fuse_max_points > 0 else None,
        fuse_max_spread=args.fuse_max_spread if args.fuse_max_spread > 0 else None,
        delta=args.delta,
        delta_policy=(
            PatchPolicy(motion_threshold=args.motion_threshold)
            if args.delta
            else None
        ),
        build_kernel=args.build,
    )
    pipeline = PipelineSpec(
        sample_ratio=args.sample_ratio,
        radius=args.radius,
        group_size=args.group_size,
        model=args.model or None,
        agg=args.agg,
    )
    router = ShardRouter(
        args.shards,
        engine=engine_kwargs,
        pipeline=pipeline,
        transport=args.transport,
        affinity=args.affinity,
        arena_bytes=args.arena_mb << 20,
        max_clouds=args.window,
        max_in_flight=args.in_flight if args.in_flight > 0 else 4 * args.shards,
        telemetry=ServeTelemetry(
            window_capacity=args.window, every=args.stats_every
        ),
    )
    print(
        f"serve: {args.shards} shards over {args.transport} transport "
        f"({router.affinity} affinity) on {args.partitioner} "
        f"(window {args.window}, in-flight {router.max_in_flight}"
        + (", delta" if args.delta else "")
        + (f", {tenants} tenants" if tenants else "")
        + (f", model {args.model} [{args.agg}]" if args.model else "")
        + ")"
    )
    start = obs.now()
    served = 0
    points = 0
    with router:
        for result in router.serve(source):
            served += 1
            points += result.result.num_points
        wall = obs.now() - start
        print(router.report(wall).format())
        shares = ", ".join(
            f"{name} {stats['served']}"
            for name, stats in router.shard_stats.items()
        )
        print(f"  shard share: {shares}")
    print(f"served {served} clouds total | {points / wall / 1e3:.0f}K points/s")
    _obs_dump(args)
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    tenants = max(0, args.tenants)
    # Validate model names before any stream is consumed: a typo must
    # fail fast, not after the loadgen pipe starts flowing.
    models = [name for name in (args.model or "").split(",") if name]
    try:
        for name in models:
            model_spec(name)
    except ValueError as err:
        print(f"serve: {err}", file=sys.stderr)
        return 2
    if len(models) > 1 and tenants == 0:
        print(
            "serve: a comma list of models needs --tenants (models are "
            "assigned one per tenant, round-robin)",
            file=sys.stderr,
        )
        return 2
    if len(models) > 1 and args.shards > 0:
        print(
            "serve: --shards serves one pipeline; pass a single --model",
            file=sys.stderr,
        )
        return 2
    _obs_configure(args)
    close = None
    if args.input is None:
        # Built-in traffic only: the loadgen knobs are ignored (and not
        # validated) when a stream is piped or read from a file.
        load = LoadSpec(
            clouds=args.clouds,
            min_points=args.min_points,
            max_points=args.max_points,
            dup_rate=args.dup_rate,
            interval=args.interval,
            dataset=args.dataset,
            seed=args.seed,
        )
        if tenants:
            source = generate_tenants(
                tenant_specs(tenants, load), pace=load.interval > 0
            )
        else:
            source = generate(load)
    elif args.input == "-":
        source = (
            read_tenant_stream(sys.stdin.buffer)
            if tenants
            else read_stream(sys.stdin.buffer)
        )
    else:
        close = open(args.input, "rb")
        source = read_tenant_stream(close) if tenants else read_stream(close)
    if args.shards > 0:
        try:
            return _serve_sharded(args, source, tenants)
        finally:
            if close is not None:
                close.close()
    engine = BatchExecutor(
        args.partitioner,
        block_size=args.block_size,
        max_workers=args.workers,
        in_flight=args.in_flight if args.in_flight != 0 else None,
        kernel=args.kernel,
        fuse_max_points=args.fuse_max_points if args.fuse_max_points > 0 else None,
        fuse_max_spread=args.fuse_max_spread if args.fuse_max_spread > 0 else None,
        delta=args.delta,
        delta_policy=(
            PatchPolicy(motion_threshold=args.motion_threshold)
            if args.delta
            else None
        ),
        build_kernel=args.build,
    )
    pipeline = PipelineSpec(
        sample_ratio=args.sample_ratio,
        radius=args.radius,
        group_size=args.group_size,
        model=models[0] if models else None,
        agg=args.agg,
    )
    window = WindowConfig(
        max_clouds=args.window, max_wait=args.max_wait_ms / 1e3
    )
    # Adaptive-only knobs are validated only when --adaptive asks for
    # them; a static serve must not trip over e.g. --min-wait-ms 0.
    bounds = (
        ControllerConfig(
            max_clouds=args.window,
            max_wait=args.max_wait_ms / 1e3,
            min_wait=min(args.min_wait_ms / 1e3, args.max_wait_ms / 1e3),
        )
        if args.adaptive
        else None
    )
    mode = "adaptive" if args.adaptive else "static"
    print(
        f"serve: window {args.window} clouds / {args.max_wait_ms:.0f} ms "
        f"({mode}) on {args.partitioner} ({engine.mode}, "
        f"{engine.max_workers} workers, kernel={engine.kernel}, "
        f"in-flight {engine.in_flight}"
        + (", delta" if args.delta else "")
        + (f", {tenants} tenants" if tenants else "")
        + (f", model {','.join(models)} [{args.agg}]" if models else "")
        + ")"
    )
    start = obs.now()
    served = 0
    points = 0
    try:
        if tenants:
            # With several models, tenants round-robin over the list;
            # tenants sharing a model share one PipelineSpec and still
            # fuse into the same window groups.
            server = MultiTenantServer(
                engine,
                [
                    TenantSpec(
                        f"t{i}",
                        dataclasses.replace(
                            pipeline, model=models[i % len(models)]
                        )
                        if models
                        else pipeline,
                    )
                    for i in range(tenants)
                ],
                window=window,
                controller=bounds,
                quantum_points=args.quantum_points,
                telemetry_every=args.stats_every,
            )
            with server:
                for served_result in server.serve(source, on_stats=print):
                    served += 1
                    points += served_result.result.num_points
            wall = obs.now() - start
            reports = server.reports(wall)
            for name, report in reports.items():
                print(report.format())
            if len(reports) > 1:
                print(ServeReport.merge(reports.values()).format())
        else:
            telemetry = ServeTelemetry(
                window_capacity=args.window, every=args.stats_every
            )
            server = WindowedServer(
                engine,
                window,
                controller=AdaptiveWindow(bounds) if bounds else None,
                telemetry=telemetry,
            )
            with server:
                for result in server.serve(source, pipeline, on_stats=print):
                    served += 1
                    points += result.num_points
            wall = obs.now() - start
            print(telemetry.report(wall).format())
    finally:
        if close is not None:
            close.close()
    print(f"served {served} clouds total | {points / wall / 1e3:.0f}K points/s")
    _obs_dump(args)
    return 0


def _cmd_trace_summarize(args: argparse.Namespace) -> int:
    """Per-stage breakdown of a ``--trace`` file, with a coverage gate.

    The summarizer charges each span its self time, so the stage total
    equals the traced wall time when the tree is well formed; coverage
    drifting outside ``1 ± --tolerance`` means dropped or orphaned
    spans and exits 1.
    """
    from .obs import export

    spans = export.load_trace(args.path)
    if not spans:
        print(f"trace: no spans in {args.path}", file=sys.stderr)
        return 1
    summary = export.summarize(spans)
    rows = [
        [row.stage, row.spans, f"{row.seconds * 1e3:.2f}", f"{row.share:.1%}"]
        for row in summary.rows
    ]
    print(format_table(
        ["stage", "spans", "ms", "share"], rows,
        title=f"trace summary — {len(spans)} spans, "
              f"{summary.traces} traces",
    ))
    print(
        f"  stage total {summary.stage_seconds * 1e3:.2f} ms | "
        f"traced wall {summary.wall_seconds * 1e3:.2f} ms | "
        f"coverage {summary.coverage:.3f}"
    )
    if abs(summary.coverage - 1.0) > args.tolerance:
        print(
            f"trace: coverage {summary.coverage:.3f} outside "
            f"1 ± {args.tolerance} — spans were dropped or orphaned",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    # Imported lazily: the linter pulls in nothing heavy, but keeping it
    # out of module scope means `repro serve` never pays for it either.
    from .analysis.lint import main as lint_main

    argv = list(args.paths)
    if args.select:
        argv += ["--select", args.select]
    if args.statistics:
        argv.append("--statistics")
    if args.list_rules:
        argv.append("--list-rules")
    return lint_main(argv)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="FractalCloud reproduction toolkit"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("partition", help="partition a cloud, print block stats")
    p.add_argument("--dataset", choices=DATASET_NAMES, default="s3dis")
    p.add_argument("--points", type=int, default=33_000)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--block-size", type=int, default=256)
    p.add_argument("--strategy", help="comma list (default: all)")
    p.add_argument("--input", help=".npy file of (n, 3) coordinates")
    p.set_defaults(func=_cmd_partition)

    p = sub.add_parser("simulate", help="simulate one workload on one platform")
    p.add_argument("--workload", choices=sorted(WORKLOADS), default="PNXt(s)")
    p.add_argument("--points", default="33K", help="count or scale label (33K)")
    p.add_argument("--accelerator", choices=list(SOTA_CONFIGS) + ["GPU"],
                   default="FractalCloud")
    p.set_defaults(func=_cmd_simulate)

    p = sub.add_parser("compare", help="speedup-vs-GPU table across scales")
    p.add_argument("--workload", choices=sorted(WORKLOADS), default="PNXt(s)")
    p.add_argument("--scales", default="8K,33K,131K,289K")
    p.set_defaults(func=_cmd_compare)

    p = sub.add_parser("batch-run", help="run the batched executor over many clouds")
    p.add_argument("--dataset", choices=DATASET_NAMES, default="s3dis")
    p.add_argument("--clouds", type=int, default=16)
    p.add_argument("--points", type=int, default=4096)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--partitioner", choices=PARTITIONER_NAMES, default="fractal")
    p.add_argument("--block-size", type=int, default=256)
    p.add_argument("--workers", type=int, default=4)
    p.add_argument("--mode", choices=["thread", "process", "serial"], default="thread")
    p.add_argument("--sample-ratio", type=float, default=0.25)
    p.add_argument("--radius", type=float, default=0.2)
    p.add_argument("--group-size", type=int, default=16)
    p.add_argument("--kernel", choices=["auto", "loop", "stacked", "ragged"],
                   default="auto",
                   help="block-op implementation: 'loop' = per-block serial "
                        "reference, 'stacked' = padded (B, n, 3) fast path "
                        "(small blocks), 'ragged' = fused CSR segment "
                        "kernels (mid-size blocks), 'auto' = cost-model "
                        "dispatch per call from block statistics; all four "
                        "are bit-identical (an explicit choice here beats "
                        "REPRO_KERNEL, which only fills in for 'auto')")
    p.add_argument("--fuse", action="store_true",
                   help="size-bucket the batch and fuse each bucket into one "
                        "ragged problem per pipeline stage (mixed sizes "
                        "welcome; bit-identical to the unfused path)")
    p.add_argument("--fuse-max-points", type=int, default=262_144,
                   help="fuse-group budget: max total points per fused "
                        "bucket (0 = unbounded)")
    p.add_argument("--fuse-max-spread", type=float, default=4.0,
                   help="max largest/smallest cloud-size ratio inside one "
                        "fused bucket (0 = unbounded)")
    p.add_argument("--size-spread", type=int, default=0,
                   help="draw cloud sizes uniformly from points±spread "
                        "instead of a fixed size (ragged serving streams)")
    p.add_argument("--no-batched-ops", action="store_true",
                   help="legacy alias for --kernel loop")
    p.set_defaults(func=_cmd_batch_run)

    p = sub.add_parser(
        "loadgen",
        help="emit a seeded serving-shaped cloud stream as .npy records",
    )
    p.add_argument("--clouds", type=int, default=64)
    p.add_argument("--min-points", type=int, default=64)
    p.add_argument("--max-points", type=int, default=256)
    p.add_argument("--dup-rate", type=float, default=0.2,
                   help="probability a frame exactly repeats a recent one")
    p.add_argument("--dup-window", type=int, default=8,
                   help="repeats are drawn from the last N distinct frames")
    p.add_argument("--burst", type=int, default=1,
                   help="frames per arrival burst")
    p.add_argument("--interval", type=float, default=0.0,
                   help="seconds between bursts (0 = firehose)")
    p.add_argument("--dataset", choices=DATASET_NAMES, default="modelnet40")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--profile",
                   choices=["uniform", "diurnal", "adversarial", "frames",
                            "hotset", "inference"],
                   default="uniform",
                   help="traffic shape: 'diurnal' drifts sizes/pacing "
                        "sinusoidally, 'adversarial' emits spread mixes "
                        "that defeat best-fit-decreasing packing, 'frames' "
                        "evolves one sensor cloud per frame (bounded "
                        "motion + tail churn — the delta-protocol stream), "
                        "'hotset' draws a --hot-rate fraction of requests "
                        "from a fixed catalog of --hot-assets clouds (the "
                        "content-affine sharding workload), 'inference' "
                        "emits classification-style clouds, a --corrupt-"
                        "rate fraction perturbed by a random corruption "
                        "(the 'repro serve --model' workload)")
    p.add_argument("--drift-period", type=int, default=64,
                   help="diurnal cycle length in clouds")
    p.add_argument("--drift-amplitude", type=float, default=0.5,
                   help="diurnal swing fraction in [0, 1]")
    p.add_argument("--frame-motion", type=float, default=0.02,
                   help="frames profile: per-point displacement bound per "
                        "frame (uniform in a ball of this radius)")
    p.add_argument("--frame-churn", type=float, default=0.1,
                   help="frames profile: fraction of the tail replaced by "
                        "fresh returns each frame, in [0, 1)")
    p.add_argument("--hot-assets", type=int, default=16,
                   help="hotset profile: size of the fixed asset catalog")
    p.add_argument("--hot-rate", type=float, default=0.8,
                   help="hotset profile: fraction of requests drawn from "
                        "the catalog (the rest are one-off cold clouds)")
    p.add_argument("--corrupt-rate", type=float, default=0.25,
                   help="inference profile: probability each fresh cloud "
                        "is perturbed by a dataset corruption")
    p.add_argument("--corrupt-severity", type=int, default=3,
                   help="inference profile: corruptions draw a severity "
                        "uniformly from [1, this] (max 5)")
    p.add_argument("--tenants", type=int, default=0,
                   help="emit a tagged multi-tenant stream: N per-tenant "
                        "rate/size mixes derived from the options above, "
                        "each tenant emitting --clouds clouds "
                        "(pipe into 'repro serve --tenants N')")
    p.add_argument("--out", default="-",
                   help="output file ('-' = stdout, pipe into 'repro serve')")
    p.set_defaults(func=_cmd_loadgen)

    p = sub.add_parser(
        "serve",
        help="windowed micro-batching server over a cloud stream",
    )
    p.add_argument("--input",
                   help="cloud stream to serve: a loadgen file or '-' for "
                        "stdin; omit to generate built-in traffic from the "
                        "loadgen options below")
    p.add_argument("--window", type=int, default=16,
                   help="micro-batch budget W: clouds per window (the "
                        "upper bound under --adaptive)")
    p.add_argument("--max-wait-ms", type=float, default=50.0,
                   help="window timeout T: max ms the first cloud of a "
                        "window waits before execution starts (the upper "
                        "bound under --adaptive)")
    p.add_argument("--adaptive", action="store_true",
                   help="resize W/T online from arrival rate + rolling "
                        "p95, within [1, --window] x [--min-wait-ms, "
                        "--max-wait-ms]")
    p.add_argument("--min-wait-ms", type=float, default=2.0,
                   help="adaptive controller's lower bound on T")
    p.add_argument("--tenants", type=int, default=0,
                   help="serve N tenant sessions sharing this engine "
                        "(deficit-round-robin fairness, cross-tenant "
                        "fusion); reads the tagged wire format of "
                        "'repro loadgen --tenants N'")
    p.add_argument("--quantum-points", type=float, default=8192.0,
                   help="multi-tenant DRR quantum: points of admission "
                        "credit per tenant per round")
    p.add_argument("--shards", type=int, default=0,
                   help="serve through N engine worker processes behind a "
                        "consistent-hash router (0 = in-process server); "
                        "each shard runs a private partition cache and "
                        "dedup window, so the fleet's hot capacity is N x "
                        "one process")
    p.add_argument("--transport", choices=["shm", "pickle"], default="shm",
                   help="sharded array transport: 'shm' moves clouds and "
                        "results through shared-memory arenas (two copies "
                        "end to end), 'pickle' ships them inline through "
                        "the queues (the baseline)")
    p.add_argument("--affinity", choices=["auto", "content", "stream"],
                   default="auto",
                   help="sharded routing key: 'content' pins repeated "
                        "clouds to one shard (hot-asset caching), 'stream' "
                        "pins each tenant/sensor stream (keeps --delta "
                        "patching shard-local); 'auto' = stream when "
                        "--delta else content")
    p.add_argument("--arena-mb", type=int, default=64,
                   help="sharded shm transport: arena size in MiB (one "
                        "request arena per shard + one response arena per "
                        "worker; overflow degrades to inline transport)")
    p.add_argument("--in-flight", type=int, default=0,
                   help="backpressure bound on pulled-but-unserved clouds "
                        "(0 = engine default, 2 x workers; with --shards, "
                        "4 x shards)")
    p.add_argument("--stats-every", type=int, default=10,
                   help="print a telemetry line every N windows (0 = off)")
    p.add_argument("--trace",
                   help="record an end-to-end span trace to this file: "
                        ".json = Chrome trace_event (Perfetto-loadable), "
                        ".jsonl = one span per line (feed either to "
                        "'repro trace summarize')")
    p.add_argument("--trace-sample", type=int, default=1,
                   help="head-based sampling: record every Nth request/"
                        "window trace (1 = all)")
    p.add_argument("--metrics", action="store_true",
                   help="print the Prometheus text exposition of the "
                        "serving counters/gauges/histograms at exit")
    p.add_argument("--partitioner", choices=PARTITIONER_NAMES, default="fractal")
    p.add_argument("--block-size", type=int, default=256)
    p.add_argument("--workers", type=int, default=4)
    p.add_argument("--kernel", choices=["auto", "loop", "stacked", "ragged"],
                   default="auto")
    p.add_argument("--delta", action="store_true",
                   help="streaming-frames delta protocol: serve near-miss "
                        "frames by certificate-verified reuse or "
                        "incremental patching of a cached partition "
                        "(bit-identical to a rebuild)")
    p.add_argument("--motion-threshold", type=float, default=0.1,
                   help="delta protocol: max per-point drift a frame may "
                        "show and still qualify for reuse/patching")
    p.add_argument("--build", choices=["auto", "build_then_sample", "fused"],
                   default="auto",
                   help="cold-build strategy on cache misses: 'fused' "
                        "interleaves FPS with partition construction "
                        "(bit-identical; REPRO_BUILD fills in for 'auto')")
    p.add_argument("--fuse-max-points", type=int, default=262_144,
                   help="fused-bucket point budget (0 = unbounded)")
    p.add_argument("--fuse-max-spread", type=float, default=4.0,
                   help="max size ratio inside one fused bucket "
                        "(0 = unbounded)")
    p.add_argument("--model", default=None,
                   help="serve full network inference instead of the raw "
                        "BPPO pipeline: a model registry name "
                        f"({', '.join(MODEL_NAMES)}); with --tenants, a "
                        "comma list assigns models to tenants round-robin")
    p.add_argument("--agg", choices=["auto", "eager", "delayed"],
                   default="auto",
                   help="model pipelines: set-abstraction aggregation "
                        "order — 'delayed' runs the shared MLP per point "
                        "and gathers afterwards (Mesorasi-style), 'eager' "
                        "gathers then applies the MLP; bit-identical "
                        "either way, 'auto' = cost model (REPRO_AGG "
                        "fills in)")
    p.add_argument("--sample-ratio", type=float, default=0.25)
    p.add_argument("--radius", type=float, default=0.2)
    p.add_argument("--group-size", type=int, default=16)
    p.add_argument("--clouds", type=int, default=64,
                   help="built-in traffic: cloud count (no --input)")
    p.add_argument("--min-points", type=int, default=64)
    p.add_argument("--max-points", type=int, default=256)
    p.add_argument("--dup-rate", type=float, default=0.2)
    p.add_argument("--interval", type=float, default=0.0,
                   help="built-in traffic: seconds between arrivals")
    p.add_argument("--dataset", choices=DATASET_NAMES, default="modelnet40")
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser(
        "trace",
        help="offline tooling over 'serve --trace' span files",
    )
    trace_sub = p.add_subparsers(dest="trace_command", required=True)
    ps = trace_sub.add_parser(
        "summarize",
        help="per-stage self-time breakdown + coverage gate",
    )
    ps.add_argument("path", help="a --trace output file (.json or .jsonl)")
    ps.add_argument("--tolerance", type=float, default=0.1,
                    help="allowed |coverage - 1| before exiting 1 "
                         "(coverage = stage total / traced wall time)")
    ps.set_defaults(func=_cmd_trace_summarize)

    p = sub.add_parser(
        "lint",
        help="project-invariant static analysis (REP001-REP008)",
    )
    p.add_argument("paths", nargs="*", default=["src"],
                   help="files or directories to lint (default: src)")
    p.add_argument("--select",
                   help="comma list of rule ids to run (default: all)")
    p.add_argument("--statistics", action="store_true",
                   help="append a per-rule finding count")
    p.add_argument("--list-rules", action="store_true",
                   help="print the rule table and exit")
    p.set_defaults(func=_cmd_lint)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via tests on main()
    sys.exit(main())
