"""Fig. 17 — threshold (th) selection: speedup vs accuracy trade-off.

Sweeps the Fractal block threshold on PointNeXt segmentation over an
S3DIS-like scene: hardware speedup vs the no-Fractal baseline, and the
block-FPS coverage ratio as the geometric accuracy proxy.

Expected shape (paper): speedup grows as th shrinks (4.6x at th=4K up to
~21x at th=8) while accuracy collapses below th≈64 (>8% loss at th=8);
th=256 is the paper's large-scale sweet spot.
"""

from repro.analysis import format_table, threshold_sweep
from repro.networks import get_workload

from _common import emit

THRESHOLDS = [None, 4096, 1024, 512, 256, 64, 8]
N_POINTS = 33_000


def run_fig17():
    spec = get_workload("PNXt(s)")
    points = threshold_sweep(spec, N_POINTS, THRESHOLDS)
    rows = []
    for p in points:
        rows.append([
            "no-fractal" if p.threshold is None else p.threshold,
            f"{p.latency_s * 1e3:.2f}",
            f"{p.speedup_vs_no_fractal:.1f}x",
            f"{p.coverage_ratio:.2f}",
        ])
    table = format_table(
        ["threshold", "latency ms", "speedup", "FPS coverage ratio"],
        rows,
        title=f"Fig. 17 — threshold sweep @ {N_POINTS} pts "
              "(paper: th=256 optimal for large-scale; th=8 fast but >8% loss)",
    )
    return table, points


def test_fig17_threshold(benchmark):
    table, points = benchmark.pedantic(run_fig17, rounds=1, iterations=1)
    emit("fig17_threshold", table)
    by_th = {p.threshold: p for p in points}
    # Speedup is monotone as the threshold shrinks.
    assert by_th[8].speedup_vs_no_fractal > by_th[256].speedup_vs_no_fractal
    assert by_th[256].speedup_vs_no_fractal > by_th[4096].speedup_vs_no_fractal
    assert by_th[4096].speedup_vs_no_fractal > 1.0
    # Quality degrades for tiny blocks (the accuracy cliff).
    assert by_th[8].coverage_ratio > by_th[256].coverage_ratio
    # The paper's chosen operating point keeps quality near-exact.
    assert by_th[256].coverage_ratio < 2.0
