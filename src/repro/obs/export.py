"""Trace exporters and the per-stage time summarizer.

Two on-disk forms of a drained span list:

- **Chrome ``trace_event`` JSON** (``.json``): complete-duration
  (``"ph": "X"``) events, microsecond timestamps rebased to the
  earliest span, loadable in Perfetto / ``chrome://tracing``.  Span
  lineage rides in ``args`` (``trace``/``span``/``parent`` ids) so the
  file round-trips through :func:`load_trace`.
- **JSONL span log** (``.jsonl``): one span dict per line, append-
  friendly and trivially greppable.

:func:`summarize` turns either file back into a per-stage breakdown:
each span is charged its *self time* (duration minus the sum of its
children's durations, clamped at zero), so the self times of one trace
tree sum to exactly the root span's duration and the stage total over
a file matches the traced wall time — the property ``repro trace
summarize`` asserts as its coverage check.
"""

from __future__ import annotations

import json
from collections import defaultdict
from dataclasses import dataclass
from typing import Iterable, Sequence

from .trace import Span

__all__ = [
    "StageRow",
    "TraceSummary",
    "chrome_events",
    "load_trace",
    "stage_of",
    "summarize",
    "write_chrome_trace",
    "write_jsonl",
    "write_trace",
]


def stage_of(name: str) -> str:
    """Map a span name onto a reporting stage.

    Per-op spans keep their own row (``op.fps`` vs ``op.knn`` is the
    interesting split); build/patch/transport/queueing aggregate.  A
    request span's *self* time — pipe latency plus the worker's queue —
    is queueing by definition: nothing else was running on its behalf.
    """
    if name.startswith("op."):
        return name
    if name.startswith("model."):
        # Network-pipeline spans keep their own rows too: model.sa1 vs
        # model.fp1 is the split an inference trace is read for.
        return name
    if name.startswith("build.") or name == "partition.build":
        return "build"
    if name == "partition.patch":
        return "patch"
    if name == "shard.serialize" or name.startswith("transport."):
        return "transport"
    if name in ("serve.wait", "serve.request"):
        return "queueing"
    if name.startswith(("engine.", "serve.", "shard.")):
        return "engine"
    return "other"


# -- writers ----------------------------------------------------------------


def chrome_events(spans: Sequence[Span]) -> list[dict]:
    """Spans as Chrome ``trace_event`` dicts (ts/dur in microseconds)."""
    if not spans:
        return []
    epoch = min(s.start for s in spans)
    events: list[dict] = []
    for pid in sorted({s.pid for s in spans}):
        events.append(
            {
                "ph": "M",
                "name": "process_name",
                "pid": pid,
                "tid": 0,
                "args": {"name": f"repro pid {pid}"},
            }
        )
    for s in spans:
        events.append(
            {
                "name": s.name,
                "cat": stage_of(s.name),
                "ph": "X",
                "ts": (s.start - epoch) * 1e6,
                "dur": s.duration * 1e6,
                "pid": s.pid,
                "tid": s.tid,
                "args": {
                    "trace": s.trace_id,
                    "span": s.span_id,
                    "parent": s.parent_id,
                    **s.attrs,
                },
            }
        )
    return events


def write_chrome_trace(spans: Sequence[Span], path: str) -> int:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(
            {"traceEvents": chrome_events(spans), "displayTimeUnit": "ms"},
            fh,
        )
        fh.write("\n")
    return len(spans)

def write_jsonl(spans: Sequence[Span], path: str) -> int:
    with open(path, "w", encoding="utf-8") as fh:
        for s in spans:
            fh.write(
                json.dumps(
                    {
                        "name": s.name,
                        "trace": s.trace_id,
                        "span": s.span_id,
                        "parent": s.parent_id,
                        "start": s.start,
                        "end": s.end,
                        "pid": s.pid,
                        "tid": s.tid,
                        "attrs": s.attrs,
                    }
                )
            )
            fh.write("\n")
    return len(spans)


def write_trace(spans: Sequence[Span], path: str) -> int:
    """Write spans in the format implied by the file extension."""
    if path.endswith(".jsonl"):
        return write_jsonl(spans, path)
    return write_chrome_trace(spans, path)


# -- loader -----------------------------------------------------------------


def load_trace(path: str) -> list[Span]:
    """Read spans back from either exporter's output."""
    with open(path, "r", encoding="utf-8") as fh:
        text = fh.read()
    stripped = text.lstrip()
    if not stripped:
        return []
    # Both formats start with "{": a Chrome file is one JSON document
    # with a traceEvents key, a span log is one document per line.
    try:
        doc = json.loads(stripped)
    except json.JSONDecodeError:
        doc = None
    if isinstance(doc, dict) and "traceEvents" in doc:
        return _from_chrome(doc)
    spans = []
    for line in stripped.splitlines():
        line = line.strip()
        if not line:
            continue
        d = json.loads(line)
        spans.append(
            Span(
                d["name"], d["trace"], d["span"], d["parent"],
                d["start"], d["end"], d["pid"], d["tid"], d.get("attrs", {}),
            )
        )
    return spans


def _from_chrome(doc: dict) -> list[Span]:
    spans = []
    for event in doc.get("traceEvents", []):
        if event.get("ph") != "X":
            continue
        args = dict(event.get("args", {}))
        trace_id = args.pop("trace", 0)
        span_id = args.pop("span", 0)
        parent_id = args.pop("parent", 0)
        start = event["ts"] / 1e6
        spans.append(
            Span(
                event["name"], trace_id, span_id, parent_id,
                start, start + event["dur"] / 1e6,
                event.get("pid", 0), event.get("tid", 0), args,
            )
        )
    return spans


# -- summarizer -------------------------------------------------------------


@dataclass(frozen=True)
class StageRow:
    stage: str
    spans: int
    seconds: float
    share: float  # of the stage total


@dataclass(frozen=True)
class TraceSummary:
    rows: tuple[StageRow, ...]
    stage_seconds: float  # sum of per-span self times
    wall_seconds: float  # sum of root-span durations
    traces: int

    @property
    def coverage(self) -> float:
        """Stage total as a fraction of traced wall time (≈1.0)."""
        if self.wall_seconds <= 0.0:
            return 0.0
        return self.stage_seconds / self.wall_seconds


def summarize(spans: Iterable[Span]) -> TraceSummary:
    """Per-stage self-time breakdown of a span set.

    Spans whose parent is absent from the set count as roots (their
    whole subtree's time re-aggregates under them, so totals stay
    consistent even for partially sampled files).
    """
    spans = list(spans)
    by_id = {s.span_id: s for s in spans}
    child_seconds: dict[int, float] = defaultdict(float)
    for s in spans:
        if s.parent_id and s.parent_id in by_id:
            child_seconds[s.parent_id] += s.duration
    stage_seconds: dict[str, float] = defaultdict(float)
    stage_spans: dict[str, int] = defaultdict(int)
    wall = 0.0
    traces = 0
    for s in spans:
        self_seconds = max(0.0, s.duration - child_seconds.get(s.span_id, 0.0))
        stage = stage_of(s.name)
        stage_seconds[stage] += self_seconds
        stage_spans[stage] += 1
        if not (s.parent_id and s.parent_id in by_id):
            wall += s.duration
            traces += 1
    total = sum(stage_seconds.values())
    rows = tuple(
        StageRow(
            stage,
            stage_spans[stage],
            seconds,
            seconds / total if total > 0.0 else 0.0,
        )
        for stage, seconds in sorted(
            stage_seconds.items(), key=lambda kv: kv[1], reverse=True
        )
    )
    return TraceSummary(rows, total, wall, traces)
