"""The project-invariant lint engine: parse, run rules, filter suppressions.

The linter is AST-based and file-local: every rule receives one parsed
:class:`ModuleContext` and yields ``(line, col, message)`` findings.  No
rule imports the code under analysis — everything is decided from the
syntax tree plus the module's dotted name, so linting is safe on broken
or heavyweight modules and identical across interpreter state.

Suppression is per line and per rule::

    done = set(digests)
    for key in done:  # repro: ignore[REP005] -- order-insensitive sum

A ``# repro: ignore[REP001, REP004]`` comma list silences several rules
on one line.  Suppressions must name rule ids; there is deliberately no
blanket ``ignore-everything`` form.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator

from .registry import RULES, Rule

__all__ = [
    "Finding",
    "ModuleContext",
    "call_name",
    "dotted_name",
    "iter_python_files",
    "lint_paths",
    "lint_source",
    "module_name_for",
]

#: ``# repro: ignore[REP001]`` / ``# repro: ignore[REP001, REP004]``.
_SUPPRESS_RE = re.compile(r"#\s*repro:\s*ignore\[([A-Z0-9_,\s]+)\]")

#: Rule id for files the parser rejects (always reported, never suppressible).
PARSE_ERROR = "REP000"


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


@dataclass
class ModuleContext:
    """Everything a rule may look at for one file."""

    path: str  #: display path (as passed on the command line)
    module: str  #: best-effort dotted module name ("repro.serve.window")
    tree: ast.Module
    source: str
    lines: list[str]
    parents: dict[ast.AST, ast.AST]  #: child node -> parent node

    def in_module(self, *prefixes: str) -> bool:
        """True when the module is one of ``prefixes`` or below one."""
        return any(
            self.module == p or self.module.startswith(p + ".")
            for p in prefixes
        )

    def parent(self, node: ast.AST) -> ast.AST | None:
        return self.parents.get(node)


def module_name_for(path: str) -> str:
    """Dotted module name of ``path``, anchored at the ``repro`` package.

    Files outside the package (examples, benchmarks, fixture corpora)
    resolve to their bare stem, so package-scoped rules simply never
    match them.
    """
    parts = list(Path(path).with_suffix("").parts)
    if "repro" in parts:
        parts = parts[parts.index("repro"):]
    else:
        parts = parts[-1:]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def call_name(func: ast.AST) -> str:
    """Rightmost identifier of a call target (``''`` when unnamed)."""
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return ""


def dotted_name(node: ast.AST) -> str:
    """``a.b.c`` for a Name/Attribute chain, ``''`` for anything else."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return ""
    parts.append(node.id)
    return ".".join(reversed(parts))


def _suppressions(lines: list[str]) -> dict[int, set[str]]:
    """1-based line number -> rule ids suppressed on that line."""
    out: dict[int, set[str]] = {}
    for i, line in enumerate(lines, start=1):
        match = _SUPPRESS_RE.search(line)
        if match:
            out[i] = {r.strip() for r in match.group(1).split(",") if r.strip()}
    return out


def _build_parents(tree: ast.Module) -> dict[ast.AST, ast.AST]:
    parents: dict[ast.AST, ast.AST] = {}
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            parents[child] = node
    return parents


def _select_rules(select: Iterable[str] | None) -> list[Rule]:
    if select is None:
        return list(RULES.values())
    chosen = set(select)
    unknown = chosen - set(RULES)
    if unknown:
        raise ValueError(
            f"unknown rule ids {sorted(unknown)}; known: {sorted(RULES)}"
        )
    return [rule for rid, rule in RULES.items() if rid in chosen]


def lint_source(
    source: str,
    path: str = "<string>",
    *,
    select: Iterable[str] | None = None,
    module: str | None = None,
) -> list[Finding]:
    """Lint one source text; returns unsuppressed findings, sorted."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            Finding(
                path, exc.lineno or 1, (exc.offset or 1) - 1, PARSE_ERROR,
                f"file does not parse: {exc.msg}",
            )
        ]
    lines = source.splitlines()
    ctx = ModuleContext(
        path=path,
        module=module if module is not None else module_name_for(path),
        tree=tree,
        source=source,
        lines=lines,
        parents=_build_parents(tree),
    )
    suppressed = _suppressions(lines)
    findings: list[Finding] = []
    for rule in _select_rules(select):
        for line, col, message in rule.check(ctx):
            if rule.id in suppressed.get(line, ()):
                continue
            findings.append(Finding(path, line, col, rule.id, message))
    return sorted(findings)


def iter_python_files(paths: Iterable[str]) -> Iterator[Path]:
    """Expand files/directories into a sorted, de-duplicated .py list."""
    seen: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            candidates = sorted(path.rglob("*.py"))
        elif path.suffix == ".py":
            candidates = [path]
        else:
            raise FileNotFoundError(f"not a Python file or directory: {raw}")
        for candidate in candidates:
            if candidate not in seen:
                seen.add(candidate)
                yield candidate


def lint_paths(
    paths: Iterable[str], *, select: Iterable[str] | None = None
) -> list[Finding]:
    """Lint files and directory trees; returns all findings, sorted."""
    findings: list[Finding] = []
    for path in iter_python_files(paths):
        findings.extend(
            lint_source(
                path.read_text(encoding="utf-8"), str(path), select=select
            )
        )
    return sorted(findings)
