"""Incremental Fractal updates for dynamic point clouds (paper §VI-D).

The paper's adaptation discussion points at dynamic data ("exploit
spatial locality in dynamic graphs to accelerate their construction and
updates").  Streaming sensors (LiDAR at 10-20 Hz) change only part of the
scene between frames, so rebuilding the fractal tree from scratch wastes
the partitioning work the previous frame already paid for.

:class:`FractalUpdater` maintains a fractal partition under insertions
and removals:

- **insert** routes each new point down the existing split planes
  (O(depth) comparisons — exactly what the partition-unit comparators do)
  and splits any leaf that overflows the threshold *locally*;
- **remove** deletes points from their leaves and merges sibling leaves
  whose combined population falls under a hysteresis bound (th/2),
  keeping the tree from accumulating fragmentation;
- cost counters compare the points touched against a full rebuild, which
  is the quantity the hardware saves.

The resulting partition satisfies the same invariants as a fresh
:func:`~repro.core.fractal.fractal_partition` (disjoint cover, leaf
bound, parent search spaces) — tested in ``tests/test_update.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from .blocks import Block, BlockStructure, PartitionCost
from .config import FractalConfig
from .fractal import fractal_partition

__all__ = ["FractalUpdater", "UpdateStats"]


@dataclass
class _Node:
    """Routing node: split plane for internal nodes, members for leaves."""

    depth: int
    dim: int = -1
    mid: float = 0.0
    left: Optional["_Node"] = None
    right: Optional["_Node"] = None
    members: Optional[set[int]] = None  # leaves only
    parent: Optional["_Node"] = field(default=None, repr=False)

    @property
    def is_leaf(self) -> bool:
        return self.members is not None


@dataclass
class UpdateStats:
    """Work counters for the rebuild-vs-update comparison."""

    points_routed: int = 0
    comparisons: int = 0
    leaf_splits: int = 0
    leaf_merges: int = 0
    points_resplit: int = 0

    @property
    def update_work(self) -> int:
        """Points touched by incremental maintenance."""
        return self.points_routed + self.points_resplit


class FractalUpdater:
    """A fractal partition that tracks a mutable point set.

    Args:
        coords: initial ``(n, 3)`` coordinates.
        config: Fractal parameters (threshold, split rule).

    Point identity: every point ever inserted has a stable integer id;
    removed ids are never reused.  :meth:`structure` exports the live
    partition over the live ids, plus an id→row map for user arrays.
    """

    def __init__(self, coords: np.ndarray, config: FractalConfig | None = None):
        self.config = config or FractalConfig()
        coords = np.asarray(coords, dtype=np.float64)
        if coords.ndim != 2 or coords.shape[1] != 3:
            raise ValueError(f"coords must be (n, 3), got {coords.shape}")
        self._coords = coords.copy()
        self._alive = np.ones(len(coords), dtype=bool)
        self.stats = UpdateStats()
        self._root = self._build(np.arange(len(coords), dtype=np.int64))

    # ------------------------------------------------------------- building
    def _build(self, indices: np.ndarray, depth: int = 0) -> _Node:
        """Build a routing subtree over ``indices`` with a fresh Fractal run."""
        if len(indices) == 0:
            return _Node(depth=depth, members=set())
        tree = fractal_partition(self._coords[indices], self.config)
        return self._convert(tree.root, indices, depth)

    def _convert(self, node, indices: np.ndarray, depth: int) -> _Node:
        if node.is_leaf:
            return _Node(depth=depth, members=set(indices[node.indices].tolist()))
        out = _Node(depth=depth, dim=node.split_dim, mid=node.split_mid)
        out.left = self._convert(node.left, indices, depth + 1)
        out.right = self._convert(node.right, indices, depth + 1)
        out.left.parent = out
        out.right.parent = out
        return out

    # ------------------------------------------------------------ mutation
    @property
    def num_points(self) -> int:
        return int(self._alive.sum())

    def insert(self, new_coords: np.ndarray) -> np.ndarray:
        """Insert points; returns their stable ids."""
        new_coords = np.asarray(new_coords, dtype=np.float64).reshape(-1, 3)
        start = len(self._coords)
        ids = np.arange(start, start + len(new_coords), dtype=np.int64)
        self._coords = np.concatenate([self._coords, new_coords])
        self._alive = np.concatenate([self._alive, np.ones(len(new_coords), dtype=bool)])
        for pid in ids:
            leaf = self._route(self._coords[pid])
            leaf.members.add(int(pid))
            self.stats.points_routed += 1
            if len(leaf.members) > self.config.threshold:
                self._split_leaf(leaf)
        return ids

    def remove(self, ids: np.ndarray) -> None:
        """Remove points by id; merges underfilled sibling leaves."""
        for pid in np.asarray(ids, dtype=np.int64):
            if pid < 0 or pid >= len(self._alive) or not self._alive[pid]:
                raise KeyError(f"point id {int(pid)} is not alive")
            leaf = self._route(self._coords[pid])
            leaf.members.discard(int(pid))
            self._alive[pid] = False
            self._maybe_merge(leaf)

    def move(self, ids: np.ndarray, new_coords: np.ndarray) -> int:
        """Move live points to new coordinates; returns the re-home count.

        The common streaming case — sensor jitter — leaves most points
        inside their leaf's half-spaces, so the routing is done for the
        whole batch at once (one vectorized descent with the old and the
        new coordinates) and only the *crossers* pay the per-point
        discard/insert bookkeeping, with the usual split/merge
        maintenance at their source and destination leaves.
        """
        ids = np.asarray(ids, dtype=np.int64)
        new_coords = np.asarray(new_coords, dtype=np.float64).reshape(-1, 3)
        if len(ids) != len(new_coords):
            raise ValueError("ids and new_coords must have equal length")
        if len(ids) == 0:
            return 0
        if np.any(ids < 0) or np.any(ids >= len(self._alive)) or not np.all(
            self._alive[ids]
        ):
            raise KeyError("move() requires live point ids")
        sources = self._route_many(self._coords[ids])
        self._coords[ids] = new_coords
        dests = self._route_many(new_coords)
        self.stats.points_routed += len(ids)
        crossed = 0
        touched_dest: list[_Node] = []
        touched_src: list[_Node] = []
        for pid, src, dst in zip(ids.tolist(), sources, dests):
            if src is dst:
                continue
            crossed += 1
            src.members.discard(pid)
            dst.members.add(pid)
            touched_src.append(src)
            touched_dest.append(dst)
        for leaf in touched_dest:
            if leaf.is_leaf and len(leaf.members) > self.config.threshold:
                self._split_leaf(leaf)
        for leaf in touched_src:
            if leaf.is_leaf:
                self._maybe_merge(leaf)
        return crossed

    def _route(self, point: np.ndarray) -> _Node:
        node = self._root
        while not node.is_leaf:
            self.stats.comparisons += 1
            node = node.left if point[node.dim] <= node.mid else node.right
        return node

    def _route_many(self, pts: np.ndarray) -> list[_Node]:
        """Leaf of each row of ``pts`` via a vectorized tree descent."""
        out: list[Optional[_Node]] = [None] * len(pts)
        stack: list[tuple[_Node, np.ndarray]] = [
            (self._root, np.arange(len(pts), dtype=np.int64))
        ]
        while stack:
            node, rows = stack.pop()
            if node.is_leaf:
                for r in rows.tolist():
                    out[r] = node
                continue
            self.stats.comparisons += len(rows)
            go_left = pts[rows, node.dim] <= node.mid
            left_rows = rows[go_left]
            right_rows = rows[~go_left]
            if len(left_rows):
                stack.append((node.left, left_rows))
            if len(right_rows):
                stack.append((node.right, right_rows))
        return out

    def _split_leaf(self, leaf: _Node) -> None:
        members = np.array(sorted(leaf.members), dtype=np.int64)
        subtree = self._build(members, depth=leaf.depth)
        self.stats.leaf_splits += 1
        self.stats.points_resplit += len(members)
        if subtree.is_leaf:
            # Degenerate (coincident points): keep as an oversized leaf.
            leaf.members = subtree.members
            return
        leaf.members = None
        leaf.dim, leaf.mid = subtree.dim, subtree.mid
        leaf.left, leaf.right = subtree.left, subtree.right
        leaf.left.parent = leaf
        leaf.right.parent = leaf

    def _maybe_merge(self, leaf: _Node) -> None:
        parent = leaf.parent
        if parent is None:
            return
        sibling = parent.right if parent.left is leaf else parent.left
        if not sibling.is_leaf:
            return
        combined = len(leaf.members) + len(sibling.members)
        if combined > self.config.threshold // 2:
            return
        parent.members = leaf.members | sibling.members
        parent.dim, parent.mid = -1, 0.0
        parent.left = parent.right = None
        self.stats.leaf_merges += 1
        self._maybe_merge(parent)  # cascades up while underfilled

    # -------------------------------------------------------------- export
    def _collect(self, node: _Node, leaves: list[_Node]) -> set[int]:
        if node.is_leaf:
            if node.members:
                leaves.append(node)
            return set(node.members)
        left = self._collect(node.left, leaves)
        right = self._collect(node.right, leaves)
        node_members = left | right
        node._cached_members = node_members  # type: ignore[attr-defined]
        return node_members

    def structure(self) -> tuple[BlockStructure, np.ndarray]:
        """Export the live partition.

        Returns:
            ``(structure, live_ids)`` — a :class:`BlockStructure` whose
            indices are *rows into* ``coords()`` (0..n_live-1), and the
            stable ids of those rows in order.
        """
        leaves: list[_Node] = []
        self._collect(self._root, leaves)
        member_arrays = [
            np.sort(np.fromiter(leaf.members, dtype=np.int64,
                                count=len(leaf.members)))
            for leaf in leaves
        ]
        live_ids = (
            np.sort(np.concatenate(member_arrays))
            if member_arrays else np.empty(0, dtype=np.int64)
        )
        # Leaves partition the live ids, so row lookup is a searchsorted
        # into the sorted id vector (a sorted subset maps to sorted rows).
        blocks, spaces = [], []
        for leaf, members in zip(leaves, member_arrays):
            rows = np.searchsorted(live_ids, members)
            blocks.append(Block(rows, depth=leaf.depth))
            if leaf.depth <= 1 or leaf.parent is None:
                spaces.append(rows)
            else:
                parent_members = getattr(leaf.parent, "_cached_members")
                parent_ids = np.sort(
                    np.fromiter(parent_members, dtype=np.int64,
                                count=len(parent_members))
                )
                spaces.append(np.searchsorted(live_ids, parent_ids))
        structure = BlockStructure(
            num_points=len(live_ids),
            blocks=blocks,
            search_spaces=spaces,
            cost=PartitionCost(),
            strategy="fractal",
        )
        return structure, live_ids

    def coords(self) -> np.ndarray:
        """Coordinates of live points, aligned with ``structure()`` rows."""
        return self._coords[self._alive]

    def rebuild_work(self) -> int:
        """Points a from-scratch Fractal rebuild would traverse."""
        tree = fractal_partition(self.coords(), self.config)
        return tree.cost.total_traversed_elements
