"""Tests for the adaptive window controller: bounds are inviolable,
``W``/``T`` converge under steady load, the policy reacts to idle and
busy streams in the right direction, and the p95 brake engages.

The controller consumes only timestamps handed to it, so every test
drives it with a synthetic clock — no sleeping, no real time.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from test_batch_parity import TestExecutorParity, make_cloud

from repro.runtime import BatchExecutor, PipelineSpec
from repro.serve import AdaptiveWindow, ControllerConfig, WindowConfig
from repro.serve.window import WindowedServer


def feed_steady(controller, gap, count, start=0.0):
    now = start
    for _ in range(count):
        controller.observe_arrival(now)
        now += gap
    return now


class TestConfigValidation:
    def test_bounds(self):
        with pytest.raises(ValueError, match="min_clouds"):
            ControllerConfig(min_clouds=0)
        with pytest.raises(ValueError, match="min_clouds"):
            ControllerConfig(min_clouds=8, max_clouds=4)
        with pytest.raises(ValueError, match="min_wait"):
            ControllerConfig(min_wait=0.0)
        with pytest.raises(ValueError, match="min_wait"):
            ControllerConfig(min_wait=0.2, max_wait=0.1)

    def test_gains(self):
        with pytest.raises(ValueError, match="alpha"):
            ControllerConfig(alpha=0.0)
        with pytest.raises(ValueError, match="headroom"):
            ControllerConfig(headroom=0.5)
        with pytest.raises(ValueError, match="fuse_target"):
            ControllerConfig(fuse_target=1)
        with pytest.raises(ValueError, match="gather_min"):
            ControllerConfig(gather_min=0.5)
        with pytest.raises(ValueError, match="target_p95"):
            ControllerConfig(target_p95=0.0)
        with pytest.raises(ValueError, match="rolling"):
            ControllerConfig(rolling=0)

    def test_defaults_are_static_until_evidence(self):
        config = ControllerConfig(max_clouds=24, max_wait=0.04)
        controller = AdaptiveWindow(config)
        assert controller.limits() == (24, 0.04)
        controller.update()  # no arrivals observed yet
        assert controller.limits() == (24, 0.04)


class TestBoundsNeverViolated:
    @settings(deadline=None, max_examples=100)
    @given(
        gaps=st.lists(
            st.floats(0.0, 2.0, allow_nan=False), min_size=0, max_size=40
        ),
        latencies=st.lists(
            st.floats(0.0, 5.0, allow_nan=False), min_size=0, max_size=40
        ),
        min_clouds=st.integers(1, 4),
        max_clouds=st.integers(4, 64),
        target=st.one_of(st.none(), st.floats(0.001, 1.0)),
    )
    def test_any_observation_sequence(
        self, gaps, latencies, min_clouds, max_clouds, target
    ):
        """The ISSUE's bound obligation: whatever arrives — zero gaps,
        huge gaps, wild latencies, brake engaged or not — every update
        lands strictly inside the configured box."""
        config = ControllerConfig(
            min_clouds=min_clouds,
            max_clouds=max(min_clouds, max_clouds),
            min_wait=0.001,
            max_wait=0.050,
            target_p95=target,
        )
        controller = AdaptiveWindow(config)
        now = 0.0
        for i, gap in enumerate(gaps):
            now += gap
            controller.observe_arrival(now)
            if i < len(latencies):
                controller.observe_latency(latencies[i])
            clouds, wait = controller.update()
            assert config.min_clouds <= clouds <= config.max_clouds
            assert config.min_wait <= wait <= config.max_wait
            assert controller.limits() == (clouds, wait)


class TestConvergence:
    def test_steady_load_converges(self):
        """Constant inter-arrival gaps: after a short warmup the policy
        stops moving — the convergence obligation of the ISSUE."""
        config = ControllerConfig(max_clouds=64, max_wait=0.05)
        controller = AdaptiveWindow(config)
        gap = 0.005  # 200 clouds/s
        now = 0.0
        history = []
        for _ in range(30):
            now = feed_steady(controller, gap, 8, start=now)
            history.append(controller.update())
        assert len(set(history[-10:])) == 1  # settled, not oscillating
        clouds, wait = history[-1]
        # 200/s supports batching: T targets the fusion sweet spot
        # ((fuse_target-1)/rate = 75 ms, clamped to max_wait) and W is
        # what that wait gathers plus headroom.
        assert wait == pytest.approx(config.max_wait)
        assert clouds == int(np.ceil((1 + 200 * wait) * config.headroom))

    def test_idle_stream_drops_to_floor(self):
        """A sparse stream (nothing to batch within max_wait) stops
        paying the batching latency: both knobs hit their floor."""
        config = ControllerConfig(max_clouds=16, max_wait=0.05)
        controller = AdaptiveWindow(config)
        feed_steady(controller, gap=0.5, count=10)  # 2 clouds/s
        clouds, wait = controller.update()
        assert clouds == config.min_clouds
        assert wait == config.min_wait

    def test_busy_stream_rides_the_ceiling(self):
        config = ControllerConfig(max_clouds=16, max_wait=0.05)
        controller = AdaptiveWindow(config)
        feed_steady(controller, gap=0.0001, count=50)  # 10K clouds/s
        clouds, wait = controller.update()
        assert clouds == config.max_clouds
        # the sweet-spot wait: tiny, but above the floor
        assert config.min_wait <= wait < config.max_wait

    def test_spare_capacity_dispatches_immediately(self):
        """Moderate rate but a fast engine (utilisation far below
        util_low): waiting buys no throughput, T collapses to the floor
        — the idle-stream latency win of the A/B bench."""
        config = ControllerConfig(max_clouds=16, max_wait=0.05)
        controller = AdaptiveWindow(config)
        feed_steady(controller, gap=0.012, count=20)  # ~83 clouds/s
        controller.observe_service(0.004, clouds=4)  # 1 ms/cloud: rho ~0.08
        clouds, wait = controller.update()
        assert wait == config.min_wait
        assert clouds < config.max_clouds

    def test_loaded_engine_batches_at_full_strength(self):
        config = ControllerConfig(max_clouds=16, max_wait=0.05)
        fast = AdaptiveWindow(config)
        loaded = AdaptiveWindow(config)
        for controller in (fast, loaded):
            feed_steady(controller, gap=0.012, count=20)
        fast.observe_service(0.004, clouds=4)      # rho ~0.08
        loaded.observe_service(0.048, clouds=4)    # rho ~1.0
        assert loaded.update()[1] > fast.update()[1]
        # full utilisation: the sweet-spot wait, same as no-signal mode
        no_signal = AdaptiveWindow(config)
        feed_steady(no_signal, gap=0.012, count=20)
        assert loaded.update()[1] == pytest.approx(no_signal.update()[1])

    def test_util_band_validation(self):
        with pytest.raises(ValueError, match="util_low"):
            ControllerConfig(util_low=0.9, util_high=0.5)
        controller = AdaptiveWindow()
        controller.observe_service(-1.0)  # ignored, not poisoned
        controller.observe_service(0.01, clouds=0)
        assert controller.service is None

    def test_regime_change_tracks(self):
        """Idle -> burst -> idle: the policy follows within a few
        windows in each direction."""
        config = ControllerConfig(max_clouds=32, max_wait=0.05, alpha=0.5)
        controller = AdaptiveWindow(config)
        now = feed_steady(controller, gap=0.5, count=8)
        assert controller.update()[0] == config.min_clouds
        now = feed_steady(controller, gap=0.0005, count=40, start=now)
        assert controller.update()[0] > config.min_clouds
        feed_steady(controller, gap=0.5, count=40, start=now)
        assert controller.update()[0] == config.min_clouds


class TestP95Brake:
    def test_overshoot_shrinks_wait(self):
        config = ControllerConfig(
            max_clouds=16, max_wait=0.05, target_p95=0.010
        )
        braked = AdaptiveWindow(config)
        free = AdaptiveWindow(
            ControllerConfig(max_clouds=16, max_wait=0.05, target_p95=None)
        )
        for controller in (braked, free):
            feed_steady(controller, gap=0.005, count=20)
        for _ in range(4):
            braked.observe_latency(0.050)  # 5x over budget
            braked.update()
            free.observe_latency(0.050)
            free.update()
        assert braked.max_wait < free.max_wait
        assert braked.max_wait >= config.min_wait

    def test_brake_releases_when_tail_recovers(self):
        config = ControllerConfig(
            max_clouds=16, max_wait=0.05, target_p95=0.010, rolling=8
        )
        controller = AdaptiveWindow(config)
        feed_steady(controller, gap=0.005, count=20)
        for _ in range(4):
            controller.observe_latency(0.050)
            controller.update()
        braked_wait = controller.max_wait
        for _ in range(16):
            controller.observe_latency(0.001)  # healthy tail
            controller.update()
        assert controller.max_wait > braked_wait


class TestWindowedServerAdaptive:
    """The controller in situ: the single-stream server stays
    bit-identical to the serial reference while resizing its windows."""

    PIPELINE = PipelineSpec(radius=0.4, group_size=8)

    def test_parity_and_bounds_with_controller(self):
        clouds = [make_cloud(n, seed=4000 + n) for n in (40, 44, 48, 52, 60, 64, 70, 80)]
        config = ControllerConfig(
            min_clouds=1, max_clouds=4, min_wait=0.001, max_wait=0.02
        )
        controller = AdaptiveWindow(config)
        engine = BatchExecutor("kdtree", block_size=16, max_workers=1)
        with WindowedServer(engine, controller=controller) as server:
            served = list(server.serve(iter(clouds), self.PIPELINE))
        assert [r.index for r in served] == list(range(len(clouds)))
        for coords, result in zip(clouds, served):
            ref = TestExecutorParity.reference_pipeline(
                np.asarray(coords, dtype=np.float64), "kdtree", 16,
                self.PIPELINE,
            )
            assert np.array_equal(ref[0], result.sampled)
            assert np.array_equal(ref[1], result.neighbors)
            assert np.array_equal(ref[2], result.grouped)
            assert np.array_equal(ref[3], result.interpolated)
        assert controller.updates == server.telemetry.windows
        assert config.min_clouds <= controller.max_clouds <= config.max_clouds
        assert config.min_wait <= controller.max_wait <= config.max_wait

    def test_static_server_has_no_controller(self):
        engine = BatchExecutor("kdtree", block_size=16, max_workers=1)
        server = WindowedServer(engine, WindowConfig(max_clouds=4))
        assert server.controller is None
        assert server._limits() == (4, server.window.max_wait)
