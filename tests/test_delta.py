"""Tests for the streaming-frames delta protocol: frame alignment,
rebuild-certificate soundness, updater reconstruction, and the partition
cache's reuse/patch/rebuild decisions.

The load-bearing guarantee is *soundness*: whenever the cache serves a
near-miss without a cold build, the served structure is either proven
bit-identical to a from-scratch rebuild (certificate reuse) or is the
deterministic product of the incremental updater — a valid partition of
exactly the new frame's points, validated before it leaves the cache.
Anything the protocol cannot prove falls back to a full rebuild, never
to a wrong structure.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import dispatch
from repro.core.config import FractalConfig
from repro.core.delta import (
    FrameDelta,
    PatchPolicy,
    attach_certificate,
    certificate_of,
    updater_from_certificate,
)
from repro.core.ragged import ragged_of
from repro.core.update import FractalUpdater
from repro.partition import get_partitioner
from repro.runtime import PartitionCache

STRATEGIES = ("fractal", "kdtree", "octree", "uniform")


def _cloud(n, seed):
    return np.random.default_rng(seed).normal(size=(n, 3))


def _jitter(coords, radius, seed):
    """Displace every point uniformly inside a ball of ``radius``."""
    rng = np.random.default_rng(seed)
    dirs = rng.normal(size=coords.shape)
    norms = np.linalg.norm(dirs, axis=1, keepdims=True)
    norms[norms == 0] = 1.0
    radii = radius * rng.random((len(coords), 1)) ** (1.0 / 3.0)
    return coords + dirs / norms * radii


def _assert_structures_equal(a, b):
    assert a.num_points == b.num_points
    assert a.num_blocks == b.num_blocks
    assert a.strategy == b.strategy
    for ba, bb in zip(a.blocks, b.blocks):
        assert np.array_equal(ba.indices, bb.indices)
    for sa, sb in zip(a.search_spaces, b.search_spaces):
        assert np.array_equal(sa, sb)


class TestFrameDelta:
    def test_pure_jitter(self):
        old = _cloud(50, 0)
        new = _jitter(old, 0.01, 1)
        delta = FrameDelta.between(old, new, motion_threshold=0.05)
        assert delta.pure_jitter
        assert delta.retained == 50
        assert delta.n_inserted == delta.n_deleted == 0
        assert 0.0 < delta.max_motion <= 0.01
        assert delta.churn == 0.0

    def test_tail_churn_is_trimmed_not_motion(self):
        old = _cloud(60, 0)
        new = _jitter(old, 0.001, 1)
        new[-8:] = _cloud(8, 2) + 50.0  # fresh returns, far from old tail
        delta = FrameDelta.between(old, new, motion_threshold=0.05)
        assert delta.retained == 52
        assert delta.n_deleted == 8 and delta.n_inserted == 8
        assert delta.max_motion <= 0.001  # churn rows excluded from motion
        assert delta.churn == pytest.approx(16 / 60)

    def test_unequal_sizes(self):
        old = _cloud(40, 0)
        new = np.concatenate([_jitter(old, 0.001, 1), _cloud(6, 2)])
        delta = FrameDelta.between(old, new, motion_threshold=0.05)
        assert (delta.retained, delta.n_inserted, delta.n_deleted) == (40, 6, 0)
        shrunk = FrameDelta.between(old, old[:30].copy(), 0.05)
        assert (shrunk.retained, shrunk.n_inserted, shrunk.n_deleted) == (30, 0, 10)

    def test_mid_frame_teleport_forces_rebuild_signal(self):
        old = _cloud(60, 0)
        new = old.copy()
        new[10] += 5.0  # teleport followed by retained rows: a real move
        delta = FrameDelta.between(old, new, motion_threshold=0.05)
        assert delta.retained == 60
        assert delta.max_motion > 0.05

    def test_exact_threshold_is_not_trimmed(self):
        old = _cloud(20, 0)
        old[-1] = 0.0  # pin so the displacement is exactly the literal
        new = old.copy()
        new[-1, 0] = 0.05  # displacement exactly == threshold
        delta = FrameDelta.between(old, new, motion_threshold=0.05)
        assert delta.retained == 20
        assert delta.max_motion == 0.05


class TestPatchPolicy:
    def test_validation(self):
        with pytest.raises(ValueError, match="motion_threshold"):
            PatchPolicy(motion_threshold=-1.0)
        with pytest.raises(ValueError, match="max_churn"):
            PatchPolicy(max_churn=1.5)
        with pytest.raises(ValueError, match="candidates"):
            PatchPolicy(candidates=0)


class TestCertificates:
    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_attached_at_build_time(self, strategy):
        partitioner = get_partitioner(strategy, max_points_per_block=64)
        structure = partitioner(_cloud(300, 0))
        cert = certificate_of(structure)
        assert cert is not None
        assert cert.strategy == strategy

    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_verifies_unchanged_coords(self, strategy):
        partitioner = get_partitioner(strategy, max_points_per_block=64)
        coords = _cloud(300, 3)
        structure = partitioner(coords)
        assert certificate_of(structure).verify(structure, coords.copy())

    @settings(max_examples=60, deadline=None)
    @given(
        strategy=st.sampled_from(STRATEGIES),
        n=st.integers(10, 500),
        seed=st.integers(0, 10_000),
        scale=st.sampled_from((1e-9, 1e-6, 1e-3, 1e-2, 1e-1)),
    )
    def test_soundness_verified_implies_rebuild_identity(
        self, strategy, n, seed, scale
    ):
        """The one property everything rests on: verify() == True must
        imply a from-scratch rebuild reproduces the structure bit for
        bit, at every jitter scale (False is always allowed)."""
        partitioner = get_partitioner(strategy, max_points_per_block=64)
        old = _cloud(n, seed)
        structure = partitioner(old)
        new = _jitter(old, scale, seed + 1)
        if certificate_of(structure).verify(structure, new):
            _assert_structures_equal(structure, partitioner(new))

    def test_crossed_split_plane_fails(self):
        partitioner = get_partitioner("kdtree", max_points_per_block=64)
        coords = _cloud(200, 5)
        structure = partitioner(coords)
        cert = certificate_of(structure)
        moved = coords.copy()
        # Teleport the x-minimum to the x-maximum: every x-split that
        # separated it is now crossed.
        moved[int(np.argmin(coords[:, 0]))] = coords[
            int(np.argmax(coords[:, 0]))
        ]
        assert not cert.verify(structure, moved)

    def test_attach_roundtrip(self):
        partitioner = get_partitioner("uniform", max_points_per_block=64)
        structure = partitioner(_cloud(50, 0))
        marker = object()
        attach_certificate(structure, marker)
        assert certificate_of(structure) is marker


class TestUpdaterReconstruction:
    @pytest.mark.parametrize("seed", (0, 1, 2))
    def test_reconstructed_updater_matches_fresh(self, seed):
        config = FractalConfig(threshold=64)
        partitioner = get_partitioner("fractal", max_points_per_block=64)
        coords = _cloud(500, seed)
        structure = partitioner(coords)
        rebuilt = updater_from_certificate(
            certificate_of(structure), structure, coords
        )
        fresh = FractalUpdater(coords, config)

        rng = np.random.default_rng(seed + 100)
        ops = [
            ("insert", _cloud(20, seed + 1) * 0.5),
            ("remove", rng.choice(500, size=15, replace=False).astype(np.int64)),
            ("move", rng.choice(np.arange(500, 520), size=10, replace=False)),
        ]
        for kind, arg in ops:
            if kind == "insert":
                assert np.array_equal(rebuilt.insert(arg), fresh.insert(arg))
            elif kind == "remove":
                rebuilt.remove(arg)
                fresh.remove(arg)
            else:
                targets = _cloud(len(arg), seed + 2) * 0.3
                rebuilt.move(arg, targets)
                fresh.move(arg, targets)
        s_a, live_a = rebuilt.structure()
        s_b, live_b = fresh.structure()
        _assert_structures_equal(s_a, s_b)
        assert np.array_equal(live_a, live_b)
        assert np.array_equal(rebuilt.coords(), fresh.coords())


class _StubPatcher:
    """A corrupted patcher: accepts every op, changes nothing."""

    def __init__(self, structure, coords, n):
        self._structure = structure
        self._coords = coords
        self._n = n

    def remove(self, ids):
        pass

    def move(self, ids, new_coords):
        pass

    def insert(self, coords):
        return np.arange(len(coords), dtype=np.int64)

    def structure(self):
        return self._structure, np.arange(self._n, dtype=np.int64)

    def coords(self):
        return self._coords


class TestCacheDeltaProtocol:
    def test_jitter_reuses_certified_structure(self):
        partitioner = get_partitioner("kdtree", max_points_per_block=64)
        cache = PartitionCache(partitioner, policy=PatchPolicy())
        old = _cloud(400, 0)
        s0, outcome0, _ = cache.acquire(old)
        new = _jitter(old, 1e-6, 1)
        s1, outcome1, _ = cache.acquire(new)
        assert (outcome0, outcome1) == ("cold", "reused")
        assert s1 is s0  # shared object, zero rebuild work
        _assert_structures_equal(s1, partitioner(new))  # and provably right
        assert cache.delta_reuses == 1 and cache.cold_builds == 1

    def test_warm_hit_still_warm(self):
        partitioner = get_partitioner("kdtree", max_points_per_block=64)
        cache = PartitionCache(partitioner, policy=PatchPolicy())
        coords = _cloud(100, 0)
        cache.acquire(coords)
        structure, outcome, _ = cache.acquire(coords.copy())
        assert outcome == "warm"
        assert cache.hits == 1
        # The bool-returning compatibility surface agrees.
        _, was_cached = cache.get(coords)
        assert was_cached

    def test_churn_patches_fractal_incrementally(self):
        partitioner = get_partitioner("fractal", max_points_per_block=64)
        cache = PartitionCache(partitioner, policy=PatchPolicy())
        old = _cloud(500, 2)
        cache.acquire(old)
        new = _jitter(old, 1e-3, 3)
        new = np.concatenate([new[:-20], _cloud(20, 4) * 0.5])
        structure, outcome, _ = cache.acquire(new)
        assert outcome == "patched"
        structure.validate()
        assert structure.num_points == len(new)

        # The patch is the deterministic product of the incremental
        # updater: replaying the same delta on a fresh updater built
        # from the original frame reproduces it bit for bit.
        reference = FractalUpdater(old, FractalConfig(threshold=64))
        reference.remove(np.arange(480, 500, dtype=np.int64))
        delta = FrameDelta.between(old, new, 0.1)
        reference.move(delta.moved, new[delta.moved])
        reference.insert(new[480:])
        ref_structure, _ = reference.structure()
        _assert_structures_equal(structure, ref_structure)
        assert cache.patches == 1

    def test_patched_structure_kernel_parity(self):
        partitioner = get_partitioner("fractal", max_points_per_block=64)
        cache = PartitionCache(partitioner, policy=PatchPolicy())
        old = _cloud(600, 5)
        cache.acquire(old)
        new = np.concatenate(
            [_jitter(old, 1e-3, 6)[:-30], _cloud(30, 7) * 0.5]
        )
        structure, outcome, _ = cache.acquire(new)
        assert outcome == "patched"
        ragged_of(structure, new)  # build the CSR layout once
        outs = {
            kernel: dispatch.run_op(
                "fps", structure, new, 150, kernel=kernel
            )[0]
            for kernel in ("loop", "stacked", "ragged")
        }
        assert np.array_equal(outs["loop"], outs["stacked"])
        assert np.array_equal(outs["loop"], outs["ragged"])

    def test_chained_patches(self):
        partitioner = get_partitioner("fractal", max_points_per_block=64)
        cache = PartitionCache(partitioner, policy=PatchPolicy())
        frame = _cloud(400, 8)
        cache.acquire(frame)
        outcomes = []
        rng = np.random.default_rng(9)
        for step in range(4):
            frame = np.concatenate(
                [_jitter(frame, 1e-3, 10 + step)[:-10],
                 rng.normal(size=(10, 3)) * 0.5]
            )
            structure, outcome, _ = cache.acquire(frame)
            outcomes.append(outcome)
            structure.validate()
            assert structure.num_points == len(frame)
        assert all(o == "patched" for o in outcomes)

    def test_drift_threshold_boundary(self):
        policy = PatchPolicy(motion_threshold=0.05)
        partitioner = get_partitioner("fractal", max_points_per_block=64)

        # Exactly at the threshold: still qualifies for the delta path.
        cache = PartitionCache(partitioner, policy=policy)
        old = _cloud(300, 10)
        old[0] = 0.0  # pin so the displacement is exactly the literal
        cache.acquire(old)
        at = old.copy()
        at[0, 0] = 0.05
        _, outcome, _ = cache.acquire(at)
        assert outcome in ("reused", "patched")

        # Just above (mid-frame, so it cannot be trimmed as churn): the
        # drift exceeds what the policy trusts — full rebuild.
        cache = PartitionCache(partitioner, policy=policy)
        cache.acquire(old)
        over = old.copy()
        over[0, 0] = 0.0501
        _, outcome, _ = cache.acquire(over)
        assert outcome == "cold"
        assert cache.cold_builds == 2

    def test_excess_churn_rebuilds(self):
        policy = PatchPolicy(max_churn=0.1)
        partitioner = get_partitioner("fractal", max_points_per_block=64)
        cache = PartitionCache(partitioner, policy=policy)
        old = _cloud(200, 11)
        cache.acquire(old)
        new = np.concatenate([old[:-50], _cloud(50, 12)])  # 50% churn
        _, outcome, _ = cache.acquire(new)
        assert outcome == "cold"

    def test_non_fractal_churn_rebuilds(self):
        # Only fractal structures have an incremental updater; churn on
        # kdtree must rebuild (jitter-only can still certificate-reuse).
        partitioner = get_partitioner("kdtree", max_points_per_block=64)
        cache = PartitionCache(partitioner, policy=PatchPolicy())
        old = _cloud(300, 13)
        cache.acquire(old)
        new = np.concatenate([old[:-10], _cloud(10, 14) + 30.0])
        _, outcome, _ = cache.acquire(new)
        assert outcome == "cold"

    def test_corrupted_patch_falls_back_to_rebuild(self, monkeypatch):
        partitioner = get_partitioner("fractal", max_points_per_block=64)
        cache = PartitionCache(partitioner, policy=PatchPolicy())
        old = _cloud(300, 15)
        s0, _, _ = cache.acquire(old)

        monkeypatch.setattr(
            "repro.runtime.cache.updater_from_certificate",
            lambda cert, structure, coords: _StubPatcher(
                s0, old, len(old)
            ),
        )
        new = np.concatenate([_jitter(old, 1e-3, 16)[:-10], _cloud(10, 17)])
        structure, outcome, _ = cache.acquire(new)
        # The stub's output fails the sanity gate (stale coordinates),
        # so the cache rebuilds instead of serving it.
        assert outcome == "cold"
        _assert_structures_equal(structure, partitioner(new))

    def test_no_policy_means_no_delta_path(self):
        partitioner = get_partitioner("kdtree", max_points_per_block=64)
        cache = PartitionCache(partitioner)
        old = _cloud(200, 18)
        cache.acquire(old)
        _, outcome, _ = cache.acquire(_jitter(old, 1e-9, 19))
        assert outcome == "cold"
        assert cache.patches == 0 and cache.delta_reuses == 0

    def test_clear_resets_delta_counters(self):
        partitioner = get_partitioner("kdtree", max_points_per_block=64)
        cache = PartitionCache(partitioner, policy=PatchPolicy())
        old = _cloud(200, 20)
        cache.acquire(old)
        cache.acquire(_jitter(old, 1e-6, 21))
        assert cache.delta_reuses == 1
        cache.clear()
        assert cache.delta_reuses == 0 and cache.patches == 0
        assert cache.hits == 0 and cache.misses == 0

    @settings(max_examples=25, deadline=None)
    @given(
        n=st.integers(80, 400),
        seed=st.integers(0, 5_000),
        steps=st.integers(1, 4),
        churn=st.integers(0, 12),
        scale=st.sampled_from((1e-6, 1e-4, 1e-3)),
    )
    def test_frame_sequences_always_serve_valid_structures(
        self, n, seed, steps, churn, scale
    ):
        """Whatever mix of jitter/insert/delete arrives, every served
        structure is a validated partition of exactly the new frame, and
        cold + reused + patched accounts for every miss."""
        partitioner = get_partitioner("fractal", max_points_per_block=64)
        cache = PartitionCache(partitioner, policy=PatchPolicy())
        rng = np.random.default_rng(seed)
        frame = _cloud(n, seed)
        cache.acquire(frame)
        for step in range(steps):
            frame = _jitter(frame, scale, seed + step + 1)
            k = min(churn, len(frame) - 1)
            if k:
                frame = np.concatenate(
                    [frame[:-k], rng.normal(size=(k, 3))]
                )
            structure, outcome, _ = cache.acquire(frame)
            assert outcome in ("warm", "reused", "patched", "cold")
            structure.validate()
            assert structure.num_points == len(frame)
        assert cache.misses == cache.cold_builds + cache.patches + cache.delta_reuses
