"""Content-addressed partition cache shared by the execution engine and
the network backends.

Partitioning is the preprocessing cost the paper works so hard to bound
(Fig. 5); in a serving loop the same cloud frequently recurs — repeated
frames of a slow-moving sensor, retries, popular assets — so the runtime
keys finished :class:`~repro.core.blocks.BlockStructure` objects by a
content hash of the coordinates and replays them instead of re-sorting.
The cache is a thread-safe LRU: the batched executor shares one instance
across its worker threads.

With a :class:`~repro.core.delta.PatchPolicy` attached, the cache also
serves *near* misses — the streaming-frames case where every frame of a
moving sensor hashes differently but barely moved.  :meth:`acquire`
then scans the most recent entries for a frame-delta match and either

- **reuses** the cached structure outright when its rebuild certificate
  proves a from-scratch build of the new coordinates would reproduce it
  bit for bit (jitter under the motion threshold), or
- **patches** it through the incremental fractal updater
  (:mod:`repro.core.update`) for insert/delete/move churn, or
- falls back to a full **cold** build when drift exceeds the policy
  bounds, the certificate fails, or a patch does not survive its own
  sanity checks — never to a wrong structure.
"""

from __future__ import annotations

import hashlib
import threading
import weakref
from collections import OrderedDict
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Optional

import numpy as np

from .. import obs
from ..core.delta import (
    FractalCertificate,
    FrameDelta,
    PatchPolicy,
    certificate_of,
    updater_from_certificate,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.blocks import BlockStructure
    from ..core.ragged import RaggedBlocks
    from ..core.update import FractalUpdater

__all__ = ["content_key", "result_key", "PartitionCache",
           "clear_all_partition_caches"]

#: Every live cache instance, so test harnesses can flush partition state
#: globally (``repro.runtime.compiler.clear_caches``) without threading a
#: reference to each backend's private cache.  Weak references: caches
#: die with their owners.
_ALL_CACHES: "weakref.WeakSet[PartitionCache]" = weakref.WeakSet()


def clear_all_partition_caches() -> int:
    """Clear every live :class:`PartitionCache`; returns how many.

    Dropping a cached :class:`BlockStructure` also drops the ragged CSR
    layout riding on it, so this resets *all* derived partition state.
    """
    caches = list(_ALL_CACHES)
    for cache in caches:
        cache.clear()
    return len(caches)


def content_key(coords: np.ndarray, *, dtype=np.float32) -> bytes:
    """Digest identifying an array by content.

    The default float32 rendering suits the *partition* cache: partition
    decisions are far coarser than float32 resolution, and any partition
    of the right index set is valid.  Callers that replay full results
    (request deduplication) must pass ``dtype=np.float64`` — at float32
    two distinct float64 clouds could collide and the second would
    silently receive the first one's results.  The shape is hashed too,
    so arrays differing only in length never collide with a prefix, and
    so are the input and rendered dtypes: same-shape arrays whose raw
    bytes happen to agree under different dtypes (all-zero int64 vs
    all-zero float64) must never share a key, and digests produced at
    different renderings must never collide in a shared map.
    """
    coords = np.asarray(coords)
    source_dtype = coords.dtype.str
    coords = np.ascontiguousarray(coords, dtype=dtype)
    digest = hashlib.blake2b(digest_size=16)
    digest.update(source_dtype.encode())
    digest.update(coords.dtype.str.encode())
    digest.update(str(coords.shape).encode())
    digest.update(coords.tobytes())
    return digest.digest()


def result_key(coords: np.ndarray, features: np.ndarray | None) -> bytes:
    """The request-deduplication identity of one cloud.

    Exact float64 content of coords + features — replaying a *result*
    for a merely float32-equal cloud would be wrong (the pipeline
    computes in float64).  Every dedup surface (``stream()``,
    ``run(fuse=True)``, the windowed server) must key through here so
    their replay decisions can never diverge.
    """
    key = content_key(coords, dtype=np.float64)
    if features is not None:
        key += content_key(features, dtype=np.float64)
    return key


@dataclass
class _Entry:
    """One cached partition plus the state the delta protocol needs.

    ``coords``/``patcher``/``live_ids`` stay ``None`` unless a patch
    policy is attached — the exact-hit path never pays for them.  The
    patcher is *consumed* by the patch that uses it (ownership moves to
    the patched entry); a later near-match of the same entry rebuilds
    one from the certificate instead, so a mutated updater can never be
    applied twice.
    """

    structure: "BlockStructure"
    coords: Optional[np.ndarray] = None
    patcher: Optional["FractalUpdater"] = None
    live_ids: Optional[np.ndarray] = None


class PartitionCache:
    """Thread-safe LRU of partition results keyed by cloud content.

    Args:
        partitioner: any callable mapping ``(n, 3)`` coordinates to a
            :class:`BlockStructure` (every :class:`repro.partition.base.
            Partitioner` qualifies).
        maxsize: retained structures; least-recently-used entries are
            evicted first.
        policy: a :class:`~repro.core.delta.PatchPolicy` enabling the
            near-miss delta protocol (off by default: ``None``).
    """

    def __init__(
        self,
        partitioner: Callable[[np.ndarray], "BlockStructure"],
        maxsize: int = 64,
        *,
        policy: PatchPolicy | None = None,
    ):
        if maxsize < 1:
            raise ValueError(f"maxsize must be >= 1, got {maxsize}")
        self.partitioner = partitioner
        self.maxsize = maxsize
        self.policy = policy
        self.hits = 0
        self.misses = 0
        self.patches = 0
        self.delta_reuses = 0
        self._entries: OrderedDict[bytes, _Entry] = OrderedDict()
        self._lock = threading.Lock()
        _ALL_CACHES.add(self)

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def cold_builds(self) -> int:
        """Misses that paid a full build (miss minus patched/reused)."""
        return self.misses - self.patches - self.delta_reuses

    def get(self, coords: np.ndarray) -> tuple["BlockStructure", bool]:
        """Return ``(structure, was_cached)`` for ``coords``.

        ``was_cached`` reports exact (warm) hits only; with a patch
        policy attached a near-miss may still be served delta-patched —
        callers that care about the full outcome use :meth:`acquire`.
        """
        structure, outcome, _ = self.acquire(coords)
        return structure, outcome == "warm"

    def acquire(
        self,
        coords: np.ndarray,
        *,
        builder: Callable[[np.ndarray], tuple["BlockStructure", object]] | None = None,
    ) -> tuple["BlockStructure", str, object]:
        """Serve ``coords``, reporting how: ``(structure, outcome, payload)``.

        ``outcome`` is ``"warm"`` (exact hit), ``"reused"``
        (certificate-verified reuse of a near-match — bit-identical to a
        rebuild), ``"patched"`` (incremental updater absorbed the frame
        delta), or ``"cold"`` (full build).  ``payload`` is whatever the
        ``builder`` returned alongside the structure (the fused
        build-and-sample kernel hands back its sample set this way) and
        is ``None`` on every non-cold outcome.

        The partitioner runs outside the lock, so concurrent misses on
        the same new cloud may both partition it (identical results, one
        wasted computation) — cheaper than serialising every worker
        behind the partitioner.
        """
        key = content_key(coords)
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                self.hits += 1
                obs.inc("repro_partitions_warm")
                return entry.structure, "warm", None
            self.misses += 1
            candidates = (
                list(reversed(self._entries.values()))[: self.policy.candidates]
                if self.policy is not None
                else []
            )
        if candidates:
            new64 = np.ascontiguousarray(np.asarray(coords, dtype=np.float64))
            with (
                obs.span("partition.patch", candidates=len(candidates))
                if obs.enabled()
                else obs.NULL_SPAN
            ) as patch_span:
                for entry in candidates:
                    patched = self._try_patch(entry, new64)
                    if patched is None:
                        continue
                    structure, outcome, new_entry = patched
                    patch_span.annotate(outcome=outcome)
                    with self._lock:
                        if outcome == "reused":
                            self.delta_reuses += 1
                        else:
                            self.patches += 1
                        self._store(key, new_entry)
                    obs.inc(f"repro_partitions_{outcome}")
                    return structure, outcome, None
        with (
            obs.span("partition.build", points=len(coords))
            if obs.enabled()
            else obs.NULL_SPAN
        ):
            if builder is not None:
                structure, payload = builder(coords)
            else:
                structure, payload = self.partitioner(coords), None
        entry_coords = (
            np.ascontiguousarray(np.asarray(coords, dtype=np.float64))
            if self.policy is not None
            else None
        )
        with self._lock:
            self._store(key, _Entry(structure, entry_coords))
        obs.inc("repro_partitions_cold")
        return structure, "cold", payload

    def get_ragged(
        self, coords: np.ndarray
    ) -> tuple["BlockStructure", "RaggedBlocks", bool]:
        """Return ``(structure, ragged_layout, was_cached)`` for ``coords``.

        The ragged CSR layout is built lazily on first request and memoized
        on the structure itself (guarded by a full-precision coordinate
        digest), so it lives and dies with the cached partition — one
        layout build per distinct cloud, shared by every consumer.
        """
        structure, layout, outcome = self.acquire_ragged(coords)
        return structure, layout, outcome == "warm"

    def acquire_ragged(
        self, coords: np.ndarray
    ) -> tuple["BlockStructure", "RaggedBlocks", str]:
        """:meth:`acquire` plus the memoized ragged layout and the full
        outcome string (the fused window path feeds it to telemetry)."""
        from ..core.ragged import ragged_of

        structure, outcome, _ = self.acquire(coords)
        return structure, ragged_of(structure, coords), outcome

    def clear(self) -> None:
        """Drop all entries and reset the hit/miss counters."""
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0
            self.patches = 0
            self.delta_reuses = 0

    # -- delta protocol ------------------------------------------------------

    def _store(self, key: bytes, entry: _Entry) -> None:
        """Insert under the lock, evicting LRU overflow."""
        self._entries[key] = entry
        self._entries.move_to_end(key)
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)

    def _take_patcher(self, entry: _Entry) -> Optional["FractalUpdater"]:
        with self._lock:
            patcher, entry.patcher = entry.patcher, None
            return patcher

    def _try_patch(
        self, entry: _Entry, new64: np.ndarray
    ) -> tuple["BlockStructure", str, _Entry] | None:
        """Serve ``new64`` from ``entry`` if the policy allows; else None."""
        policy = self.policy
        old = entry.coords
        if old is None:
            return None
        n_old, n_new = len(old), len(new64)
        if abs(n_new - n_old) > policy.max_churn * max(1, n_old):
            return None  # cheap reject before the O(n) delta
        delta = FrameDelta.between(old, new64, policy.motion_threshold)
        if delta.max_motion > policy.motion_threshold:
            return None  # drift exceeds block bounds: rebuild
        if delta.churn > policy.max_churn:
            return None
        structure = entry.structure
        if delta.pure_jitter:
            cert = certificate_of(structure)
            if cert is not None and cert.verify(structure, new64):
                # A rebuild is proven to reproduce this structure: share it.
                return structure, "reused", _Entry(structure, new64)
        if structure.strategy != "fractal":
            return None
        patcher = self._take_patcher(entry)
        if patcher is None:
            cert = certificate_of(structure)
            if not isinstance(cert, FractalCertificate):
                return None
            patcher = updater_from_certificate(cert, structure, old)
        try:
            live = entry.live_ids
            if live is None:
                live = np.arange(n_old, dtype=np.int64)
            if delta.n_deleted:
                patcher.remove(live[delta.retained:])
            if len(delta.moved):
                patcher.move(live[delta.moved], new64[delta.moved])
            if delta.n_inserted:
                patcher.insert(new64[delta.retained:])
            patched, new_live = patcher.structure()
            # Sanity gate: a corrupted patch must rebuild, never serve.
            if patched.num_points != n_new:
                raise ValueError("patched structure lost points")
            if not np.array_equal(patcher.coords(), new64):
                raise ValueError("patched coordinates misaligned with frame")
            patched.validate()
        except Exception:
            return None
        return patched, "patched", _Entry(patched, new64, patcher, new_live)
