"""Fig. 3 — partitioning strategies: latency, balance, and quality trade-off.

Regenerates the four-way comparison (none / uniform / KD-tree / Fractal)
on an S3DIS-like scene: measured partitioning latency on the fractal
engine, block balance, and the two quality proxies that drive network
accuracy (block-FPS coverage distortion and neighbour recall).  Expected
shape (paper values: 62.59% / 53.79% / 62.30% / 62.03% mIoU and - /
0.03 ms / 4.03 ms / 0.04 ms latency): uniform is fast but low quality,
KD-tree is high quality but ~100x slower to build, Fractal matches
KD-tree quality at uniform-like cost.
"""

import numpy as np

from repro.analysis import format_table
from repro.core import dispatch
from repro.datasets import load_cloud
from repro.geometry import (
    ball_query,
    coverage_radius,
    farthest_point_sample,
    neighbor_recall,
)
from repro.hw import FractalEngineModel
from repro.partition import get_partitioner, summarize

from _common import emit

N_POINTS = 33_000
PAPER_MIOU = {"none": 62.59, "uniform": 53.79, "kdtree": 62.30, "fractal": 62.03}


def run_fig03():
    coords = load_cloud("s3dis", N_POINTS, seed=0).coords.astype(np.float64)
    engine = FractalEngineModel(lanes=16, sorter_width=1)
    n_samples = N_POINTS // 4
    exact_fps = farthest_point_sample(coords, n_samples)
    exact_cov = coverage_radius(coords, exact_fps)

    rows = []
    for name in ["none", "uniform", "kdtree", "fractal"]:
        structure = get_partitioner(name, max_points_per_block=256)(coords)
        summary = summarize(structure)
        cost = engine.cost_for(name, structure.cost)
        latency_ms = cost.compute_cycles / 1e9 * 1e3

        sampled, _ = dispatch.run_op(
            "fps", structure, coords, n_samples, num_centers=n_samples
        )
        cov_ratio = coverage_radius(coords, sampled) / exact_cov
        centers = sampled[:512]
        approx_nb, _ = dispatch.run_op(
            "ball_query", structure, coords, centers, 0.2, 16,
            num_centers=len(centers),
        )
        exact_nb = ball_query(coords[centers], coords, 0.2, 16)
        recall = neighbor_recall(approx_nb, exact_nb)

        rows.append([
            name,
            summary.num_blocks,
            f"{summary.balance_factor:.2f}",
            f"{latency_ms:.4f}",
            f"{cov_ratio:.2f}",
            f"{recall:.3f}",
            f"{PAPER_MIOU[name]:.2f}",
        ])
    return format_table(
        ["strategy", "blocks", "balance", "partition ms",
         "FPS cov ratio", "NS recall", "paper mIoU %"],
        rows,
        title=f"Fig. 3 — partitioning trade-off on S3DIS-like scene ({N_POINTS} pts, BS=256)",
    )


def test_fig03_partition_tradeoff(benchmark):
    table = benchmark.pedantic(run_fig03, rounds=1, iterations=1)
    emit("fig03_partition_tradeoff", table)
    lines = {l.split()[0]: l.split() for l in table.splitlines()[3:]}
    # KD-tree is orders of magnitude slower to build than Fractal.
    assert float(lines["kdtree"][3]) > 20 * float(lines["fractal"][3])
    # Fractal's quality proxies beat uniform's.
    assert float(lines["fractal"][4]) < float(lines["uniform"][4])
