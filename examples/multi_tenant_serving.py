"""Multi-tenant serving: N client sessions sharing one fused engine.

Three tenants with different traffic shapes — a bursty LiDAR client, a
steady asset-preview client, and a latency-sensitive trickle client —
share a single :class:`~repro.runtime.executor.BatchExecutor` through
the :class:`~repro.serve.tenancy.MultiTenantServer`:

- admission is **deficit round robin** in points, so the bursty tenant
  cannot queue the trickle tenant into the ground;
- compatible clouds from different tenants fuse into the **same ragged
  kernel invocation** (cross-tenant windows);
- each tenant keeps its own pipeline config, dedup window, telemetry,
  and an **adaptive controller** that resizes its window online from
  arrival rate, utilisation, and rolling p95;
- the engine's worker pool is **persistent** — created once, shared by
  every window, joined by ``close()``.

Every tenant's results are bit-identical to running its stream alone,
in its own submission order.

Run:  python examples/multi_tenant_serving.py
"""

import time

from repro.runtime import BatchExecutor, PipelineSpec
from repro.serve import (
    LoadSpec,
    MultiTenantServer,
    TenantSpec,
    WindowConfig,
    generate_tenants,
)


def main() -> None:
    # Three tenants, three traffic shapes, one seed.
    traffic = {
        "lidar": LoadSpec(clouds=60, min_points=128, max_points=384,
                          dup_rate=0.1, burst=6, seed=1),
        "assets": LoadSpec(clouds=60, min_points=96, max_points=256,
                           dup_rate=0.3, dup_window=6, seed=2),
        "trickle": LoadSpec(clouds=20, min_points=64, max_points=128,
                            dup_rate=0.0, seed=3),
    }
    tenants = [
        TenantSpec("lidar", PipelineSpec(radius=0.3, group_size=16)),
        TenantSpec("assets", PipelineSpec(radius=0.25, group_size=8)),
        TenantSpec("trickle", PipelineSpec(radius=0.25, group_size=8),
                   weight=2.0),  # latency-sensitive: double DRR credit
    ]

    engine = BatchExecutor("fractal", block_size=64, max_workers=4,
                           fuse_max_spread=4.0)
    server = MultiTenantServer(
        engine, tenants,
        window=WindowConfig(max_clouds=24, max_wait=0.02),
        adaptive=True,           # per-tenant W/T resize online
        quantum_points=4096,
        telemetry_every=4,
    )

    total = sum(spec.clouds for spec in traffic.values())
    print(f"serving {total} clouds from {len(tenants)} tenants through one "
          f"shared engine (adaptive windows, DRR fairness)\n")
    start = time.perf_counter()
    served = 0
    with server:
        for result in server.serve(generate_tenants(traffic), on_stats=print):
            served += 1  # per-tenant submission order, bit-identical
    wall = time.perf_counter() - start

    print()
    for name, report in server.reports(wall).items():
        print(report.format())
        controller = server.session(name).controller
        print(f"  adaptive window settled at W={controller.max_clouds}, "
              f"T={controller.max_wait * 1e3:.1f} ms\n")
    print(f"{served} clouds served in {wall * 1e3:.0f} ms "
          f"({served / wall:.0f} clouds/s aggregate)")


if __name__ == "__main__":
    main()
