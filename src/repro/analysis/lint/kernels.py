"""Kernel-routing invariants: REP001 (dispatch) and REP002 (env reads).

The repo's headline guarantee — every kernel (`loop`/`stacked`/`ragged`,
and the fused cold builds) is bit-identical — only holds because every
call site routes through :mod:`repro.core.dispatch`, where the
precedence contract (explicit argument > ``REPRO_*`` environment > cost
model) lives in exactly one place.  PR 3 fixed a real bug of this class:
an explicit ``kernel=`` argument was beaten by ``REPRO_KERNEL`` because
a second call site re-implemented the env lookup with the order
inverted.  These two rules keep the contract single-homed.
"""

from __future__ import annotations

import ast

from .engine import ModuleContext, call_name, dotted_name
from .registry import rule

__all__ = ["DIRECT_KERNELS", "KERNEL_HOME"]

_OPS = ("fps", "ball_query", "knn", "interpolate", "gather")

#: Implementation entry points that bypass the dispatcher when called
#: directly: the per-block loop kernels, the padded stacked fast paths,
#: and the fused ragged CSR kernels.
DIRECT_KERNELS = frozenset(
    {f"block_{op}" for op in _OPS}
    | {f"block_{op}_batched" for op in _OPS}
    | {f"ragged_{op}" for op in _OPS}
)

#: Modules allowed to touch kernel implementations: where they are
#: defined (bppo, ragged), the dispatcher itself, and the fused cold
#: path (which interleaves FPS with construction below the dispatcher).
KERNEL_HOME = (
    "repro.core.dispatch",
    "repro.core.ragged",
    "repro.core.bppo",
    "repro.core.coldpath",
)


@rule(
    "REP001",
    "kernel-outside-dispatch",
    "kernel ops must route through dispatch.run_op/run_build, never call "
    "block_*/ragged_* implementations directly",
)
def check_direct_kernel_calls(ctx: ModuleContext):
    if ctx.in_module(*KERNEL_HOME):
        return
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Call):
            name = call_name(node.func)
            if name in DIRECT_KERNELS:
                yield (
                    node.lineno, node.col_offset,
                    f"kernel implementation {name!r} called directly; route "
                    "through repro.core.dispatch.run_op (or run_build) so "
                    "explicit-kernel > REPRO_* > cost-model precedence holds",
                )


#: The one module allowed to read dispatch environment overrides.
_ENV_HOME = ("repro.core.dispatch",)

_ENV_READERS = frozenset(
    {"os.environ.get", "environ.get", "os.getenv", "getenv",
     "os.environ.setdefault", "environ.setdefault",
     "os.environ.pop", "environ.pop"}
)


def _is_repro_env_key(node: ast.AST) -> bool:
    """A ``REPRO_*`` literal, or a ``*_ENV`` constant from dispatch."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value.startswith("REPRO_")
    name = dotted_name(node)
    return bool(name) and name.rsplit(".", 1)[-1].endswith("_ENV")


@rule(
    "REP002",
    "env-read-outside-dispatch",
    "REPRO_* environment overrides may be read only via the dispatch "
    "accessors (resolve_kernel/resolve_build_kernel)",
)
def check_env_reads(ctx: ModuleContext):
    if ctx.in_module(*_ENV_HOME):
        return
    message = (
        "reads a REPRO_* override outside repro.core.dispatch; ad-hoc env "
        "lookups re-risk the PR 3 precedence bug — call "
        "dispatch.resolve_kernel/resolve_build_kernel instead"
    )
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Call):
            if dotted_name(node.func) in _ENV_READERS and node.args:
                if _is_repro_env_key(node.args[0]):
                    yield (node.lineno, node.col_offset, message)
        elif isinstance(node, ast.Subscript):
            if dotted_name(node.value) in ("os.environ", "environ"):
                if _is_repro_env_key(node.slice):
                    yield (node.lineno, node.col_offset, message)
