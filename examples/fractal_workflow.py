"""The paper's Fig. 6 worked example: 80 points, threshold 24.

Reproduces the workflow walkthrough: a two-lobe 80-point cloud fractures
level by level (x-split, then y-splits, ...) until every block holds at
most 24 points, and the leaves land contiguously in DFT memory order.
Prints the tree, the per-iteration splits, and the memory layout.

Run:  python examples/fractal_workflow.py
"""

import numpy as np

from repro import FractalConfig, fractal_partition
from repro.core import BlockLayout


def two_lobe_cloud() -> np.ndarray:
    """An 80-point cloud with two dense lobes, like the paper's figure."""
    rng = np.random.default_rng(6)
    return np.concatenate([
        rng.normal(loc=(-0.5, 0.3, 0.0), scale=0.15, size=(43, 3)),
        rng.normal(loc=(0.6, -0.2, 0.0), scale=0.18, size=(37, 3)),
    ])


def render_tree(node, depth=0, label="B0"):
    kind = "leaf" if node.is_leaf else f"split dim={'xyz'[node.split_dim]} @ {node.split_mid:+.3f}"
    print(f"{'  ' * depth}{label}: {node.num_points} pts ({kind})")
    if not node.is_leaf:
        render_tree(node.left, depth + 1, label=f"{label}L")
        render_tree(node.right, depth + 1, label=f"{label}R")


def main() -> None:
    coords = two_lobe_cloud()
    th = 24
    tree = fractal_partition(coords, FractalConfig(threshold=th))

    print(f"Fig. 6 workflow: {len(coords)} points, th = {th}")
    print(f"result: {tree.num_blocks} blocks after {tree.num_levels} iterations\n")

    print("binary tree (DFT order = memory order):")
    render_tree(tree.root)

    print("\nper-iteration traversal/partition work (points touched):")
    for level, (traversed, passed) in enumerate(
        zip(tree.cost.traversals, tree.cost.passes), start=1
    ):
        print(f"  iteration {level}: traverse {traversed} points for midpoints, "
              f"partition {passed} points")

    layout = BlockLayout.from_tree(tree)
    print("\nDFT memory layout (leaf -> stored range):")
    for b in range(layout.num_blocks):
        start, end = layout.block_range(b)
        leaf = tree.leaves[b]
        space = tree.search_space(leaf)
        print(f"  block {b}: [{start:3d}, {end:3d})  "
              f"{leaf.num_points:2d} pts at depth {leaf.depth}, "
              f"search space {len(space):2d} pts")

    assert tree.block_sizes.max() <= th
    print(f"\nall blocks within threshold: max = {tree.block_sizes.max()} <= {th}")


if __name__ == "__main__":
    main()
