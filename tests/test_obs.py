"""Tests for :mod:`repro.obs`: tracer, metrics, exporters, stitching.

The layer's obligations:

- span trees are well formed under any nesting (stack discipline, no
  orphans, child intervals contained in their parents) — including
  unsampled traces, mis-nested exits, and concurrent threads;
- head-based sampling is deterministic (counter, not clock or rng);
- spans stitch across the shard pipes into one tree per request, over
  both transports, and the summarizer's coverage identity holds on the
  stitched file;
- the exporters round-trip and the Chrome JSON obeys the trace_event
  schema Perfetto expects;
- the metrics registry renders valid Prometheus text exposition;
- :class:`LatencyRing` matches the numpy percentile reference, before
  and after wraparound;
- :meth:`ServeReport.merge` aggregates under its declared policies and
  refuses fields no policy covers.
"""

import json
import os
import threading

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import obs
from repro.datasets import load_cloud
from repro.obs import (
    NULL_SPAN,
    LatencyRing,
    MetricsRegistry,
    Span,
    Tracer,
    export,
    latency_percentiles,
)
from repro.serve import telemetry as telemetry_mod
from repro.serve.telemetry import ServeReport
from repro.shard import ShardRouter

ENGINE = dict(partitioner="kdtree", block_size=32, kernel="auto")


@pytest.fixture(autouse=True)
def _reset_obs():
    """Leave the process-global tracer/registry disabled after each test."""
    yield
    obs.configure(trace=False, sample=1, metrics=False)


def clouds_for(count, *, base=160, step=16, seed=0):
    return [
        load_cloud("modelnet40", base + step * i, seed=seed + i).coords
        for i in range(count)
    ]


class TestTracer:
    def test_disabled_span_is_free_singleton(self):
        t = Tracer()
        assert t.span("x") is NULL_SPAN
        with t.span("x") as s:
            s.annotate(ignored=1)
        assert t.drain() == []

    def test_nesting_records_parentage(self):
        t = Tracer(enabled=True)
        with t.span("root", tenant="a"):
            with t.span("child"):
                pass
        spans = {s.name: s for s in t.drain()}
        root, child = spans["root"], spans["child"]
        assert root.parent_id == 0
        assert child.parent_id == root.span_id
        assert child.trace_id == root.trace_id == root.span_id
        assert root.start <= child.start <= child.end <= root.end
        assert root.attrs == {"tenant": "a"}

    def test_sampling_is_counter_deterministic(self):
        t = Tracer(enabled=True, sample=3)
        for i in range(7):
            with t.span(f"r{i}"):
                with t.span(f"c{i}"):
                    pass
        names = {s.name for s in t.drain()}
        # Roots 0, 3, 6 sampled — each with its child, nothing else.
        assert names == {"r0", "c0", "r3", "c3", "r6", "c6"}

    def test_sample_zero_is_worker_mode(self):
        t = Tracer(enabled=True, sample=0)
        with t.span("local-root"):
            pass
        assert t.drain() == []
        with t.span_remote((77, 42), "shard.window"):
            with t.span("op.fps"):
                pass
        spans = {s.name: s for s in t.drain()}
        assert spans["shard.window"].trace_id == 77
        assert spans["shard.window"].parent_id == 42
        assert spans["op.fps"].parent_id == spans["shard.window"].span_id

    def test_remote_none_context_suppresses_subtree(self):
        t = Tracer(enabled=True, sample=0)
        with t.span_remote(None, "shard.window"):
            with t.span("op.fps"):
                pass
        assert t.drain() == []

    def test_unsampled_trace_suppresses_descendants(self):
        t = Tracer(enabled=True, sample=2)
        for i in range(2):
            with t.span(f"r{i}"):
                with t.span(f"c{i}"):
                    pass
        assert {s.name for s in t.drain()} == {"r0", "c0"}

    def test_backdated_start(self):
        t = Tracer(enabled=True)
        early = obs.now() - 5.0
        with t.span("serve.window", start=early):
            pass
        (span,) = t.drain()
        assert span.start == early
        assert span.duration >= 5.0

    def test_record_attaches_to_innermost_open_span(self):
        t = Tracer(enabled=True)
        with t.span("root") as root:
            t.record("serve.wait", 1.0, 2.0, clouds=3)
            root_id = root.span_id
        t.record("orphan", 1.0, 2.0)  # no open span: dropped
        spans = {s.name: s for s in t.drain()}
        assert "orphan" not in spans
        wait = spans["serve.wait"]
        assert wait.parent_id == root_id
        assert wait.duration == pytest.approx(1.0)
        assert wait.attrs == {"clouds": 3}

    def test_record_with_explicit_parent(self):
        t = Tracer(enabled=True)
        t.record("transport.unpack", 1.0, 1.5, parent=(9, 4))
        (span,) = t.drain()
        assert (span.trace_id, span.parent_id) == (9, 4)

    def test_open_span_crosses_threads(self):
        t = Tracer(enabled=True)
        handle = t.open_span("serve.request", stream="s0")
        finisher = threading.Thread(target=handle.finish)
        finisher.start()
        finisher.join()
        (span,) = t.drain()
        assert span.name == "serve.request"
        assert span.span_id == handle.ctx[1]
        assert t.open_span("x") is not None
        assert Tracer(enabled=True, sample=0).open_span("x") is None

    def test_exception_annotates_and_unwinds(self):
        t = Tracer(enabled=True)
        with pytest.raises(ValueError):
            with t.span("root"):
                raise ValueError("boom")
        (span,) = t.drain()
        assert span.attrs["error"] == "ValueError"
        with t.span("next-root") as nxt:
            assert nxt.parent_id == 0  # stack fully unwound

    def test_mis_nested_exit_tolerated(self):
        t = Tracer(enabled=True)
        outer = t.span("outer")
        outer.__enter__()
        inner = t.span("inner")
        inner.__enter__()
        outer.__exit__(None, None, None)  # wrong order: drops descendants
        inner.__exit__(None, None, None)
        assert len(t.drain()) == 2
        with t.span("fresh") as fresh:
            assert fresh.parent_id == 0

    def test_wire_round_trip_and_adopt(self):
        t = Tracer(enabled=True)
        with t.span("shard.window", shard="shard-1"):
            pass
        (span,) = t.drain()
        router = Tracer(enabled=True)
        assert router.adopt([span.to_wire()]) == 1
        (adopted,) = router.drain()
        assert adopted == span

    def test_finished_buffer_is_bounded(self, monkeypatch):
        monkeypatch.setattr("repro.obs.trace.MAX_FINISHED", 3)
        t = Tracer(enabled=True)
        for i in range(5):
            with t.span(f"r{i}"):
                pass
        assert len(t.drain()) == 3
        assert t.dropped == 2

    def test_span_ids_are_pid_salted(self):
        t = Tracer(enabled=True)
        with t.span("x"):
            pass
        (span,) = t.drain()
        assert span.pid == os.getpid()
        assert span.span_id >> 40 == os.getpid() & 0x3FFFFF

    @settings(deadline=None, max_examples=60)
    @given(
        script=st.lists(st.sampled_from(["push", "pop"]), max_size=40),
        sample=st.integers(1, 4),
    )
    def test_stack_discipline_no_orphans(self, script, sample):
        """Any push/pop sequence yields a well-formed forest: every
        recorded parent exists, shares the trace id, and contains its
        child's interval."""
        t = Tracer(enabled=True, sample=sample)
        stack = []
        for op in script:
            if op == "push":
                cm = t.span(f"d{len(stack)}")
                cm.__enter__()
                stack.append(cm)
            elif stack:
                stack.pop().__exit__(None, None, None)
        while stack:
            stack.pop().__exit__(None, None, None)
        assert t._state().stack == [] and t._state().skip == 0
        spans = t.drain()
        by_id = {s.span_id: s for s in spans}
        for s in spans:
            if s.parent_id:
                parent = by_id[s.parent_id]  # KeyError = orphan
                assert parent.trace_id == s.trace_id
                assert parent.start <= s.start and s.end <= parent.end

    def test_threads_keep_private_stacks(self):
        t = Tracer(enabled=True)
        barrier = threading.Barrier(4)

        def work(tag):
            with t.span(f"root.{tag}"):
                barrier.wait()
                with t.span(f"child.{tag}"):
                    pass

        threads = [
            threading.Thread(target=work, args=(i,)) for i in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        spans = t.drain()
        roots = {
            s.name.split(".")[1]: s for s in spans if s.name.startswith("root")
        }
        children = [s for s in spans if s.name.startswith("child")]
        assert len(roots) == len(children) == 4
        for child in children:
            assert child.parent_id == roots[child.name.split(".")[1]].span_id


class TestConfigure:
    def test_configure_swaps_tracer_and_registry(self):
        obs.configure(trace=True, sample=2, metrics=True)
        assert obs.enabled()
        assert obs.tracer().sample == 2
        assert obs.metrics().enabled
        with obs.span("root"):
            pass
        obs.configure(trace=False)
        assert not obs.enabled()
        assert obs.drain() == []  # replacement dropped buffered spans

    def test_metric_helpers_gate_on_enabled(self):
        obs.configure(metrics=False)
        obs.inc("repro_test_total")
        obs.observe("repro_test_seconds", 0.1)
        obs.set_gauge("repro_test_depth", 3)
        assert obs.metrics().render() == ""
        obs.configure(metrics=True)
        obs.inc("repro_test_events", 2)
        obs.set_gauge("repro_test_depth", 3)
        line = obs.metrics().snapshot_line()
        assert "test_events=2" in line and "test_depth=3" in line


class TestMetricsRegistry:
    def test_prometheus_exposition(self):
        registry = MetricsRegistry(enabled=True)
        registry.counter("repro_clouds", help="served clouds").inc(3)
        registry.gauge("repro_depth").set(1.5)
        h = registry.histogram("repro_lat_seconds", buckets=(0.1, 1.0))
        for v in (0.05, 0.5, 2.0):
            h.observe(v)
        text = registry.render()
        assert "# HELP repro_clouds served clouds" in text
        assert "# TYPE repro_clouds counter" in text
        assert "repro_clouds_total 3" in text
        assert "repro_depth 1.5" in text
        assert 'repro_lat_seconds_bucket{le="0.1"} 1' in text
        assert 'repro_lat_seconds_bucket{le="1"} 2' in text
        assert 'repro_lat_seconds_bucket{le="+Inf"} 3' in text
        assert "repro_lat_seconds_count 3" in text
        assert "repro_lat_seconds_sum 2.55" in text

    def test_get_or_create_rejects_kind_mismatch(self):
        registry = MetricsRegistry(enabled=True)
        registry.counter("repro_x")
        assert registry.counter("repro_x") is registry.counter("repro_x")
        with pytest.raises(TypeError, match="already registered"):
            registry.gauge("repro_x")

    def test_histogram_validates_buckets(self):
        with pytest.raises(ValueError, match="bucket"):
            MetricsRegistry(enabled=True).histogram("repro_x", buckets=())


class TestLatencyRing:
    def test_matches_numpy_before_and_after_wraparound(self):
        rng = np.random.default_rng(0)
        ring = LatencyRing(64)
        samples = rng.exponential(0.01, size=200)
        for i, value in enumerate(samples):
            ring.append(value)
            tail = samples[max(0, i - 63): i + 1]
            expected = np.percentile(tail, (50.0, 95.0, 99.0))
            assert ring.percentiles() == pytest.approx(tuple(expected))
        assert len(ring) == 64

    def test_view_is_zero_copy(self):
        ring = LatencyRing(8)
        ring.append(1.0)
        view = ring.view()
        assert view.base is not None and len(view) == 1

    def test_latency_percentiles_inputs(self):
        assert latency_percentiles([]) == (0.0, 0.0, 0.0)
        assert latency_percentiles([0.2]) == (0.2, 0.2, 0.2)
        from_gen = latency_percentiles(float(v) for v in range(100))
        assert from_gen == pytest.approx((49.5, 94.05, 98.01))
        assert latency_percentiles([1.0, 2.0], (100.0,)) == (2.0,)

    def test_capacity_validated(self):
        with pytest.raises(ValueError, match=">= 1"):
            LatencyRing(0)


def _report(**kw):
    base = dict(
        clouds=4, windows=2, buckets=2, fused_clouds=2, singleton_clouds=1,
        reused_clouds=1, wall_seconds=1.0, latency_p50=0.01,
        latency_p95=0.02, latency_p99=0.03, mean_occupancy=0.5,
        max_queue_depth=3, timeout_windows=1, label="a", cold_clouds=1,
        patched_clouds=1, warm_clouds=1,
    )
    base.update(kw)
    return ServeReport(**base)


class TestServeReportMerge:
    def test_merge_policies(self):
        a = _report()
        b = _report(
            clouds=8, windows=6, wall_seconds=0.5, latency_p95=0.08,
            mean_occupancy=0.25, max_queue_depth=9, label="b",
            warm_clouds=4,
        )
        merged = ServeReport.merge([a, b])
        assert merged.clouds == 12
        assert merged.windows == 8
        assert merged.warm_clouds == 5
        assert merged.wall_seconds == 1.0  # max: shared wall clock
        assert merged.latency_p95 == 0.08
        assert merged.max_queue_depth == 9
        # Windows-weighted: (0.5 * 2 + 0.25 * 6) / 8.
        assert merged.mean_occupancy == pytest.approx(0.3125)
        assert merged.label == "a+b"

    def test_add_operator_and_duplicate_labels(self):
        total = _report() + _report()
        assert total.clouds == 8
        assert total.label == "a"

    def test_merge_rejects_zero_reports(self):
        with pytest.raises(ValueError, match="zero reports"):
            ServeReport.merge([])

    def test_unpoliced_field_raises(self, monkeypatch):
        """A new ServeReport field without a merge policy must fail loud —
        the silent-default bug this API replaced."""
        reduced = telemetry_mod._MERGE_SUM - {"clouds"}
        monkeypatch.setattr(telemetry_mod, "_MERGE_SUM", reduced)
        with pytest.raises(RuntimeError, match="clouds"):
            ServeReport.merge([_report(), _report()])


def _make_tree():
    """One two-process request tree with known self times."""
    return [
        Span("serve.request", 1, 1, 0, 0.0, 1.0, 100, 1, {}),
        Span("shard.window", 1, 2, 1, 0.2, 0.8, 200, 1, {"shard": "s0"}),
        Span("op.fps", 1, 3, 2, 0.3, 0.5, 200, 1, {}),
        Span("transport.pack", 1, 4, 2, 0.6, 0.7, 200, 1, {}),
    ]


class TestExport:
    def test_chrome_schema(self, tmp_path):
        path = str(tmp_path / "trace.json")
        export.write_chrome_trace(_make_tree(), path)
        with open(path, encoding="utf-8") as fh:
            doc = json.load(fh)
        assert doc["displayTimeUnit"] == "ms"
        events = doc["traceEvents"]
        meta = [e for e in events if e["ph"] == "M"]
        assert {e["pid"] for e in meta} == {100, 200}
        assert all(e["name"] == "process_name" for e in meta)
        complete = [e for e in events if e["ph"] == "X"]
        assert len(complete) == 4
        for event in complete:
            assert {"name", "cat", "ts", "dur", "pid", "tid", "args"} <= set(event)
            assert event["ts"] >= 0 and event["dur"] >= 0
            assert {"trace", "span", "parent"} <= set(event["args"])

    def test_chrome_round_trip_preserves_tree(self, tmp_path):
        path = str(tmp_path / "trace.json")
        spans = _make_tree()
        export.write_trace(spans, path)
        loaded = export.load_trace(path)
        assert [(s.name, s.trace_id, s.span_id, s.parent_id) for s in loaded] \
            == [(s.name, s.trace_id, s.span_id, s.parent_id) for s in spans]
        for original, back in zip(spans, loaded):
            assert back.duration == pytest.approx(original.duration)
            assert back.attrs == original.attrs

    def test_jsonl_round_trip_is_exact(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        spans = _make_tree()
        assert export.write_trace(spans, path) == len(spans)
        assert export.load_trace(path) == spans

    def test_load_empty_file(self, tmp_path):
        path = tmp_path / "empty.json"
        path.write_text("", encoding="utf-8")
        assert export.load_trace(str(path)) == []

    def test_stage_mapping(self):
        assert export.stage_of("op.fps") == "op.fps"
        assert export.stage_of("build.fused") == "build"
        assert export.stage_of("partition.build") == "build"
        assert export.stage_of("partition.patch") == "patch"
        assert export.stage_of("shard.serialize") == "transport"
        assert export.stage_of("transport.unpack") == "transport"
        assert export.stage_of("serve.wait") == "queueing"
        assert export.stage_of("serve.request") == "queueing"
        assert export.stage_of("serve.window") == "engine"
        assert export.stage_of("engine.fused") == "engine"
        assert export.stage_of("mystery") == "other"

    def test_summarize_self_time_identity(self):
        summary = export.summarize(_make_tree())
        assert summary.traces == 1
        assert summary.wall_seconds == pytest.approx(1.0)
        assert summary.coverage == pytest.approx(1.0)
        seconds = {row.stage: row.seconds for row in summary.rows}
        # Request self time: 1.0 - 0.6 (its one child) = 0.4.
        assert seconds["queueing"] == pytest.approx(0.4)
        # Window self time: 0.6 - 0.2 - 0.1 = 0.3.
        assert seconds["engine"] == pytest.approx(0.3)
        assert seconds["op.fps"] == pytest.approx(0.2)
        assert seconds["transport"] == pytest.approx(0.1)

    def test_summarize_absent_parent_counts_as_root(self):
        orphan = Span("engine.cloud", 5, 9, 7, 0.0, 0.5, 1, 1, {})
        summary = export.summarize([orphan])
        assert summary.traces == 1
        assert summary.wall_seconds == pytest.approx(0.5)
        assert summary.coverage == pytest.approx(1.0)


class TestCrossProcessStitching:
    @pytest.mark.parametrize("transport", ["shm", "pickle"])
    def test_router_worker_spans_form_one_tree(self, transport):
        obs.configure(trace=True, sample=1, metrics=True)
        clouds = clouds_for(6)
        with ShardRouter(
            2, engine=ENGINE, transport=transport, max_clouds=3
        ) as router:
            served = list(router.serve(clouds))
        assert len(served) == len(clouds)
        spans = obs.drain()
        by_id = {s.span_id: s for s in spans}
        requests = [s for s in spans if s.name == "serve.request"]
        windows = [s for s in spans if s.name == "shard.window"]
        ops = [s for s in spans if s.name.startswith("op.")]
        assert len(requests) == len(clouds)
        assert windows and ops
        router_pid = requests[0].pid
        for window in windows:
            parent = by_id[window.parent_id]
            assert parent.name == "serve.request"
            assert window.pid != router_pid  # crossed the pipe
        request_traces = {s.trace_id for s in requests}
        for op in ops:
            assert op.trace_id in request_traces
        # The stitched file satisfies the summarizer's coverage identity.
        summary = export.summarize(spans)
        assert summary.traces == len(clouds)
        assert 0.9 <= summary.coverage <= 1.1

    def test_sampling_thins_request_traces(self):
        obs.configure(trace=True, sample=3, metrics=False)
        clouds = clouds_for(6)
        with ShardRouter(1, engine=ENGINE, max_clouds=2) as router:
            list(router.serve(clouds))
        spans = obs.drain()
        requests = [s for s in spans if s.name == "serve.request"]
        assert len(requests) == 2  # roots 0 and 3 of 6
        request_traces = {s.trace_id for s in requests}
        for span in spans:
            assert span.trace_id in request_traces


class TestTraceCli:
    def test_serve_trace_and_summarize(self, tmp_path, capsys):
        from repro.cli import main

        path = str(tmp_path / "trace.json")
        rc = main([
            "serve", "--clouds", "12", "--window", "4", "--workers", "2",
            "--stats-every", "0", "--max-points", "128",
            "--trace", path, "--metrics",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "repro_serve_clouds_total 12" in out
        rc = main(["trace", "summarize", path])
        out = capsys.readouterr().out
        assert rc == 0
        assert "coverage" in out
        assert "op.fps" in out

    def test_summarize_empty_trace_fails(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "empty.json"
        path.write_text("", encoding="utf-8")
        assert main(["trace", "summarize", str(path)]) == 1
        assert "no spans" in capsys.readouterr().err
