"""ASCII bar charts for benchmark outputs (no plotting dependency).

The benches print tables; for the figure-shaped results (Fig. 13's grouped
bars, Fig. 17's trade-off curve) a quick visual in the terminal makes the
shape reviewable at a glance.
"""

from __future__ import annotations

import math
from typing import Sequence

__all__ = ["bar_chart", "log_bar_chart"]


def bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    *,
    width: int = 50,
    title: str | None = None,
    unit: str = "",
) -> str:
    """Horizontal bar chart with linear scaling."""
    if len(labels) != len(values):
        raise ValueError(f"{len(labels)} labels but {len(values)} values")
    if not values:
        raise ValueError("nothing to chart")
    if any(v < 0 for v in values):
        raise ValueError("bar_chart values must be non-negative")
    peak = max(values) or 1.0
    label_w = max(len(l) for l in labels)
    lines = [title] if title else []
    for label, value in zip(labels, values):
        bar = "#" * max(int(round(value / peak * width)), 1 if value > 0 else 0)
        lines.append(f"{label.ljust(label_w)} |{bar} {value:g}{unit}")
    return "\n".join(lines)


def log_bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    *,
    width: int = 50,
    title: str | None = None,
    unit: str = "",
) -> str:
    """Horizontal bar chart with log10 scaling (for 1x..1000x ranges)."""
    if len(labels) != len(values):
        raise ValueError(f"{len(labels)} labels but {len(values)} values")
    if any(v <= 0 for v in values):
        raise ValueError("log_bar_chart values must be positive")
    logs = [math.log10(v) for v in values]
    lo = min(min(logs), 0.0)
    hi = max(max(logs), lo + 1e-9)
    label_w = max(len(l) for l in labels)
    lines = [title] if title else []
    for label, value, lv in zip(labels, values, logs):
        frac = (lv - lo) / (hi - lo)
        bar = "#" * max(int(round(frac * width)), 1)
        lines.append(f"{label.ljust(label_w)} |{bar} {value:g}{unit}")
    return "\n".join(lines)
