"""Fig. 1 — memory access and latency vs input scale, baseline vs FractalCloud.

Regenerates the teaser figure: DRAM traffic (MB) and end-to-end latency
(ms) of the original global-search execution (PointAcc-style baseline)
against FractalCloud, for 1 K → 289 K points on the PointNeXt
segmentation workload.  Expected shape: the baseline's traffic/latency
grow superlinearly (O(n^2) global search), FractalCloud's stay near-linear,
with orders of magnitude between them at 289 K.
"""

from repro.analysis import format_table
from repro.hw import AcceleratorSim, FRACTALCLOUD, POINTACC
from repro.networks import get_workload

from _common import emit

SCALES = [1024, 4096, 16384, 66_000, 289_000]


def run_fig01():
    spec = get_workload("PNXt(s)")
    base_sim = AcceleratorSim(POINTACC)
    fract_sim = AcceleratorSim(FRACTALCLOUD)
    rows = []
    for n in SCALES:
        base = base_sim.run(spec, n)
        fract = fract_sim.run(spec, n)
        rows.append([
            n,
            f"{base.dram_bytes / 1e6:.1f}",
            f"{fract.dram_bytes / 1e6:.1f}",
            f"{base.dram_bytes / fract.dram_bytes:.1f}x",
            f"{base.latency_s * 1e3:.2f}",
            f"{fract.latency_s * 1e3:.2f}",
            f"{base.latency_s / fract.latency_s:.1f}x",
        ])
    return format_table(
        ["points", "base MB", "fractal MB", "mem gain",
         "base ms", "fractal ms", "speedup"],
        rows,
        title="Fig. 1 — memory access (MB) and latency (ms), baseline vs FractalCloud",
    )


def test_fig01_scaling(benchmark):
    table = benchmark.pedantic(run_fig01, rounds=1, iterations=1)
    emit("fig01_scaling", table)
    # Shape assertions: the gap must widen with scale.
    lines = [l.split() for l in table.splitlines()[3:]]
    first_gain = float(lines[0][3].rstrip("x"))
    last_gain = float(lines[-1][3].rstrip("x"))
    assert last_gain > first_gain
