"""Spinning-LiDAR scan simulator (KITTI-style automotive clouds).

Modern LiDAR sensors produce 30 K–300 K points per frame (paper §I).  This
simulator spins a multi-ring sensor through a synthetic street scene
(ground plane, building/vehicle boxes, pole cylinders) with vectorised
ray casting, producing the ring-structured, range-dependent density that
real automotive clouds exhibit — another distribution family for the
partitioning experiments.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..geometry import PointCloud

__all__ = ["LidarConfig", "lidar_scan"]


@dataclass(frozen=True)
class LidarConfig:
    """Sensor and scene parameters.

    Attributes:
        num_rings: vertical channels (HDL-64-like default).
        max_range: maximum return distance in metres.
        sensor_height: sensor origin above ground.
        num_buildings / num_vehicles / num_poles: scene population.
        range_noise: per-return Gaussian range noise (metres).
    """

    num_rings: int = 64
    max_range: float = 80.0
    sensor_height: float = 1.73
    num_buildings: int = 8
    num_vehicles: int = 12
    num_poles: int = 10
    range_noise: float = 0.02


def _ray_aabb(origins: np.ndarray, dirs: np.ndarray, lo: np.ndarray, hi: np.ndarray) -> np.ndarray:
    """Slab-test distances of rays against one AABB (inf when missed)."""
    with np.errstate(divide="ignore", invalid="ignore"):
        inv = 1.0 / dirs
        t1 = (lo - origins) * inv
        t2 = (hi - origins) * inv
    tmin = np.minimum(t1, t2).max(axis=1)
    tmax = np.maximum(t1, t2).min(axis=1)
    hit = (tmax >= np.maximum(tmin, 0.0)) & (tmin > 1e-6)
    return np.where(hit, tmin, np.inf)


def lidar_scan(
    num_points: int,
    seed: int = 0,
    config: LidarConfig | None = None,
) -> PointCloud:
    """Simulate one LiDAR frame with approximately ``num_points`` returns.

    The azimuth resolution is chosen (and over-provisioned) so that after
    dropping misses the frame can be subsampled to exactly ``num_points``.

    Labels: 0 = ground, 1 = building, 2 = vehicle, 3 = pole.
    """
    if num_points < 64:
        raise ValueError(f"num_points must be >= 64, got {num_points}")
    config = config or LidarConfig()
    rng = np.random.default_rng(seed)

    # Scene: boxes and poles scattered around the sensor.
    boxes: list[tuple[np.ndarray, np.ndarray, int]] = []
    for _ in range(config.num_buildings):
        cx, cy = rng.uniform(-60, 60, size=2)
        if np.hypot(cx, cy) < 10:
            continue
        w, d, h = rng.uniform(8, 20), rng.uniform(8, 20), rng.uniform(6, 15)
        boxes.append((np.array([cx - w / 2, cy - d / 2, 0.0]),
                      np.array([cx + w / 2, cy + d / 2, h]), 1))
    for _ in range(config.num_vehicles):
        cx, cy = rng.uniform(-30, 30, size=2)
        if np.hypot(cx, cy) < 4:
            continue
        boxes.append((np.array([cx - 2.2, cy - 0.9, 0.0]),
                      np.array([cx + 2.2, cy + 0.9, 1.6]), 2))
    for _ in range(config.num_poles):
        cx, cy = rng.uniform(-40, 40, size=2)
        if np.hypot(cx, cy) < 3:
            continue
        boxes.append((np.array([cx - 0.15, cy - 0.15, 0.0]),
                      np.array([cx + 0.15, cy + 0.15, rng.uniform(4, 8)]), 3))

    # Rays: rings x azimuth steps; ~35% of rays typically miss, so
    # over-provision then trim.
    azimuth_steps = max(16, int(np.ceil(num_points * 1.6 / config.num_rings)))
    elev = np.deg2rad(np.linspace(-24.8, 2.0, config.num_rings))
    azim = np.linspace(0, 2 * np.pi, azimuth_steps, endpoint=False)
    ee, aa = np.meshgrid(elev, azim, indexing="ij")
    dirs = np.stack(
        [np.cos(ee) * np.cos(aa), np.cos(ee) * np.sin(aa), np.sin(ee)], axis=-1
    ).reshape(-1, 3)
    origin = np.array([0.0, 0.0, config.sensor_height])
    origins = np.broadcast_to(origin, dirs.shape)

    best_t = np.full(len(dirs), np.inf)
    best_label = np.zeros(len(dirs), dtype=np.int64)
    # Ground plane z = 0.
    down = dirs[:, 2] < -1e-6
    t_ground = np.where(down, -config.sensor_height / np.where(down, dirs[:, 2], -1.0), np.inf)
    best_t = np.minimum(best_t, t_ground)
    for lo, hi, label in boxes:
        t = _ray_aabb(origins, dirs, lo, hi)
        closer = t < best_t
        best_t = np.where(closer, t, best_t)
        best_label = np.where(closer, label, best_label)

    hit = best_t < config.max_range
    t = best_t[hit] + rng.normal(scale=config.range_noise, size=int(hit.sum()))
    points = origin + dirs[hit] * t[:, None]
    labels = best_label[hit]

    if len(points) < num_points:
        # Extremely sparse scenes: pad by jittered duplication.
        extra = rng.integers(0, len(points), size=num_points - len(points))
        points = np.concatenate([points, points[extra] + rng.normal(scale=0.01, size=(len(extra), 3))])
        labels = np.concatenate([labels, labels[extra]])
    keep = rng.choice(len(points), size=num_points, replace=False)
    return PointCloud(points[keep].astype(np.float32), labels=labels[keep])
