"""Voxel-grid downsampling (standard point-cloud preprocessing).

Large-scale pipelines typically voxel-downsample raw scans before the
network (the S3DIS protocols the paper's workloads follow do exactly
this).  One representative point survives per occupied voxel — either
the centroid of the voxel's points or the point nearest that centroid
(which preserves original coordinates and label alignment).
"""

from __future__ import annotations

import numpy as np

from .pointcloud import PointCloud

__all__ = ["voxel_downsample", "voxel_downsample_indices"]


def voxel_downsample_indices(coords: np.ndarray, voxel_size: float) -> np.ndarray:
    """Indices of one representative point per occupied voxel.

    The representative is the point nearest its voxel's centroid, so the
    result is a subset of the input (labels/features stay valid).

    Args:
        coords: ``(n, 3)`` coordinates.
        voxel_size: cubic voxel edge length (> 0).

    Returns:
        Sorted int64 indices into ``coords``.
    """
    if voxel_size <= 0:
        raise ValueError(f"voxel_size must be positive, got {voxel_size}")
    coords = np.asarray(coords, dtype=np.float64)
    if coords.ndim != 2 or coords.shape[1] != 3:
        raise ValueError(f"coords must be (n, 3), got {coords.shape}")

    keys = np.floor((coords - coords.min(axis=0)) / voxel_size).astype(np.int64)
    # Order points by voxel, then pick per-voxel representative.
    _, inverse, counts = np.unique(
        keys, axis=0, return_inverse=True, return_counts=True
    )
    order = np.argsort(inverse, kind="stable")
    boundaries = np.concatenate([[0], np.cumsum(counts)])
    representatives = np.empty(len(counts), dtype=np.int64)
    for v in range(len(counts)):
        members = order[boundaries[v]: boundaries[v + 1]]
        centroid = coords[members].mean(axis=0)
        nearest = np.argmin(np.sum((coords[members] - centroid) ** 2, axis=1))
        representatives[v] = members[nearest]
    return np.sort(representatives)


def voxel_downsample(cloud: PointCloud, voxel_size: float) -> PointCloud:
    """Voxel-downsample a :class:`PointCloud` (subset selection)."""
    indices = voxel_downsample_indices(cloud.coords, voxel_size)
    return cloud.select(indices)
