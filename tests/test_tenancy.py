"""Tests for multi-tenant serving: deficit-round-robin fairness,
cross-tenant fused windows, per-session isolation, and ordering.

The proof obligations extend the serving suite's: fairness decisions,
window composition, and cross-tenant bucket mates may change *when* a
tenant's work happens, never *what* comes out — every tenant's results
are index-level bit-identical to that tenant running alone through the
serial reference path, and always in the tenant's own submission order.
On top of that the scheduler carries a starvation bound: a backlogged
tenant is never passed over in two consecutive admission rounds.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from test_batch_parity import TestExecutorParity, make_cloud

from repro.runtime import BatchExecutor, PipelineSpec
from repro.serve import (
    ControllerConfig,
    DeficitRoundRobin,
    MultiTenantServer,
    TenantSpec,
    WindowConfig,
)

PIPELINE = PipelineSpec(radius=0.4, group_size=8)


def serial_reference(clouds, pipeline, partitioner="kdtree", block_size=16):
    return [
        TestExecutorParity.reference_pipeline(
            np.asarray(c, dtype=np.float64), partitioner, block_size, pipeline
        )
        for c in clouds
    ]


def drain_all(server, *, now=0.0):
    """Drain the full backlog; returns emissions in drain order."""
    out = []
    while server.backlog:
        out.append(server.drain(now=now))
    return [r for round_ in out for r in round_]


class TestTenantSpec:
    def test_validation(self):
        with pytest.raises(ValueError, match="name"):
            TenantSpec("")
        with pytest.raises(ValueError, match="weight"):
            TenantSpec("a", weight=0.0)
        with pytest.raises(ValueError, match="reuse_window"):
            TenantSpec("a", reuse_window=0)

    def test_server_rejects_bad_rosters(self):
        engine = BatchExecutor("kdtree", max_workers=1)
        with pytest.raises(ValueError, match="at least one"):
            MultiTenantServer(engine, [])
        with pytest.raises(ValueError, match="duplicate"):
            MultiTenantServer(engine, ["a", "a"])
        server = MultiTenantServer(engine, ["a"])
        with pytest.raises(ValueError, match="unknown tenant"):
            server.submit("nope", make_cloud(10, seed=0))


class TestDeficitRoundRobin:
    def test_quantum_validation(self):
        with pytest.raises(ValueError, match="quantum"):
            DeficitRoundRobin(0)
        drr = DeficitRoundRobin(100)
        with pytest.raises(ValueError, match="capacity"):
            drr.admit({"a": [10]}, 0)

    def test_equal_tenants_share_equally(self):
        drr = DeficitRoundRobin(quantum=100)
        queues = {"a": [50] * 10, "b": [50] * 10}
        totals = {"a": 0, "b": 0}
        for _ in range(5):
            admitted = drr.admit(
                {t: q[totals[t]:] for t, q in queues.items()}, 4
            )
            for t, n in admitted.items():
                totals[t] += n
        assert totals["a"] == totals["b"] == 10

    def test_weights_skew_admission(self):
        drr = DeficitRoundRobin(quantum=50, weights={"a": 1.0, "b": 3.0})
        taken = {"a": 0, "b": 0}
        for _ in range(8):
            admitted = drr.admit(
                {"a": [50] * 100, "b": [50] * 100}, 100
            )
            for t, n in admitted.items():
                taken[t] += n
        # b earns 3x the credit, so (starvation guard aside) it admits
        # about 3x the work.
        assert taken["b"] > 2 * taken["a"]

    def test_burst_cannot_crowd_out_trickle(self):
        """The fairness scenario of the ISSUE in scheduler-only form: a
        deep bursty queue and a single-cloud trickle queue — the trickle
        tenant is admitted every round it is ready."""
        drr = DeficitRoundRobin(quantum=200)
        for round_ in range(20):
            admitted = drr.admit(
                {"bursty": [100] * 500, "trickle": [100]}, 4
            )
            assert admitted.get("trickle", 0) >= 1 or round_ == 0
            # bursty still gets the lion's share of the window
            assert admitted.get("bursty", 0) >= 1

    def test_oversized_head_rides_the_guard(self):
        """A cloud costing more than any credit balance cannot starve its
        tenant: the skip guard force-admits it on the second round."""
        drr = DeficitRoundRobin(quantum=10)
        first = drr.admit({"big": [10_000], "small": [5] * 50}, 4)
        second = drr.admit({"big": [10_000], "small": [5] * 50}, 4)
        assert first.get("big", 0) + second.get("big", 0) >= 1

    def test_empty_queues_no_admission(self):
        drr = DeficitRoundRobin()
        assert drr.admit({}, 4) == {}
        assert drr.admit({"a": []}, 4) == {}

    def test_drained_queue_resets_deficit(self):
        drr = DeficitRoundRobin(quantum=1000)
        drr.admit({"a": [10]}, 4)
        assert drr.deficits["a"] == 0.0

    @settings(deadline=None, max_examples=120)
    @given(
        arrivals=st.lists(
            st.lists(
                st.tuples(
                    st.integers(0, 3),  # tenant index
                    st.integers(1, 400),  # cost
                ),
                max_size=8,
            ),
            min_size=2,
            max_size=14,
        ),
        capacity=st.integers(1, 6),
        quantum=st.integers(1, 500),
    )
    def test_never_skips_ready_tenant_twice(self, arrivals, capacity, quantum):
        """The ISSUE's hypothesis property: a tenant with queued work is
        never passed over in two consecutive admission rounds, whatever
        the traffic, the quantum, or the window budget."""
        drr = DeficitRoundRobin(quantum=quantum)
        queues = {f"t{i}": [] for i in range(4)}
        skipped_last = set()
        for round_arrivals in arrivals:
            for tenant_index, cost in round_arrivals:
                queues[f"t{tenant_index}"].append(cost)
            ready = {t for t, q in queues.items() if q}
            admitted = drr.admit(
                {t: list(q) for t, q in queues.items() if q}, capacity
            )
            for tenant, count in admitted.items():
                del queues[tenant][:count]
            skipped = {t for t in ready if admitted.get(t, 0) == 0}
            assert not (skipped & skipped_last), (
                f"tenants {skipped & skipped_last} were ready and skipped "
                f"in two consecutive rounds"
            )
            skipped_last = skipped


class TestCrossTenantParity:
    """Cross-tenant fused windows ≡ each tenant's serial reference."""

    def assert_tenant_parity(self, per_tenant_clouds, results,
                             pipelines=None, partitioner="kdtree"):
        per_tenant = {name: [] for name in per_tenant_clouds}
        for served in results:
            per_tenant[served.tenant].append(served)
        for name, clouds in per_tenant_clouds.items():
            served = per_tenant[name]
            assert [r.seq for r in served] == list(range(len(clouds)))
            pipeline = (pipelines or {}).get(name, PIPELINE)
            refs = serial_reference(clouds, pipeline, partitioner)
            for ref, tenant_result in zip(refs, served):
                result = tenant_result.result
                assert np.array_equal(ref[0], result.sampled)
                assert np.array_equal(ref[1], result.neighbors)
                assert np.array_equal(ref[2], result.grouped)
                assert np.array_equal(ref[3], result.interpolated)

    @pytest.mark.parametrize("partitioner", ("kdtree", "fractal"))
    def test_fused_window_spanning_tenants(self, partitioner):
        """Same-pipeline tenants share ragged kernel invocations; the
        results must match each tenant running alone, bit for bit."""
        clouds = {
            "a": [make_cloud(n, seed=3000 + n) for n in (40, 44, 64, 181)],
            "b": [make_cloud(n, seed=3100 + n) for n in (42, 48, 60, 200)],
        }
        engine = BatchExecutor(
            partitioner, block_size=16, max_workers=1, fuse_max_spread=None
        )
        server = MultiTenantServer(
            engine,
            [TenantSpec("a", PIPELINE), TenantSpec("b", PIPELINE)],
            window=WindowConfig(max_clouds=8),
        )
        for name, tenant_clouds in clouds.items():
            for cloud in tenant_clouds:
                server.submit(name, cloud, arrived=0.0)
        results = drain_all(server)
        # One shared window: both tenants' clouds fused together.
        telemetry = server.session("a").telemetry
        assert telemetry.fused_clouds > 0
        self.assert_tenant_parity(clouds, results, partitioner=partitioner)

    def test_per_tenant_pipelines_stay_separate(self):
        """Tenants with different pipeline configs never share a kernel
        invocation but still serve from the same window round."""
        pipelines = {
            "wide": PipelineSpec(radius=0.6, group_size=8),
            "narrow": PipelineSpec(radius=0.2, group_size=4,
                                   with_interpolation=False),
        }
        clouds = {
            "wide": [make_cloud(n, seed=3200 + n) for n in (40, 50, 60)],
            "narrow": [make_cloud(n, seed=3300 + n) for n in (45, 55)],
        }
        engine = BatchExecutor("kdtree", block_size=16, max_workers=1)
        server = MultiTenantServer(
            engine,
            [TenantSpec(name, pipeline) for name, pipeline in pipelines.items()],
        )
        for name, tenant_clouds in clouds.items():
            for cloud in tenant_clouds:
                server.submit(name, cloud, arrived=0.0)
        results = drain_all(server)
        per_tenant = {name: [] for name in clouds}
        for served in results:
            per_tenant[served.tenant].append(served)
        for name, tenant_clouds in clouds.items():
            refs = serial_reference(tenant_clouds, pipelines[name])
            for ref, tenant_result in zip(refs, per_tenant[name]):
                assert np.array_equal(ref[0], tenant_result.result.sampled)
                assert np.array_equal(ref[1], tenant_result.result.neighbors)
                assert np.array_equal(ref[2], tenant_result.result.grouped)
        assert per_tenant["narrow"][0].result.interpolated is None

    def test_threaded_serve_matches_serial_reference(self):
        clouds = {
            "a": [make_cloud(n, seed=3400 + n) for n in (40, 52, 64)],
            "b": [make_cloud(n, seed=3500 + n) for n in (44, 56)],
        }
        pairs = []
        for name, tenant_clouds in clouds.items():
            pairs.extend((name, cloud) for cloud in tenant_clouds)
        engine = BatchExecutor("kdtree", block_size=16, max_workers=2)
        with MultiTenantServer(
            engine,
            [TenantSpec("a", PIPELINE), TenantSpec("b", PIPELINE)],
            window=WindowConfig(max_clouds=3),
        ) as server:
            results = list(server.serve(iter(pairs)))
        assert len(results) == 5
        self.assert_tenant_parity(clouds, results)


class TestSessionIsolation:
    def test_dedup_is_per_tenant(self):
        """The same cloud sent by two tenants is computed for each —
        sessions never observe each other's results — while a repeat
        within one tenant replays from its own dedup window."""
        shared = make_cloud(50, seed=42)
        engine = BatchExecutor("kdtree", block_size=16, max_workers=1)
        server = MultiTenantServer(engine, ["a", "b"])
        server.submit("a", shared, arrived=0.0)
        server.submit("b", shared, arrived=0.0)
        server.submit("a", shared, arrived=0.0)  # repeat, same tenant
        results = {(r.tenant, r.seq): r for r in drain_all(server)}
        assert not results[("a", 0)].result.reused
        assert not results[("b", 0)].result.reused  # no cross-tenant replay
        assert results[("a", 1)].result.reused  # within-tenant replay
        assert np.array_equal(
            results[("a", 0)].result.sampled, results[("b", 0)].result.sampled
        )

    def test_replay_across_rounds_from_session_window(self):
        cloud = make_cloud(60, seed=43)
        other = make_cloud(70, seed=44)
        engine = BatchExecutor("kdtree", block_size=16, max_workers=1)
        server = MultiTenantServer(engine, ["a"])
        server.submit("a", cloud, arrived=0.0)
        first = drain_all(server)
        server.submit("a", other, arrived=1.0)
        server.submit("a", cloud, arrived=1.0)  # repeat in a later round
        second = drain_all(server, now=1.0)
        assert not first[0].result.reused
        assert [r.result.reused for r in second] == [False, True]
        assert server.session("a").telemetry.reused_clouds == 1

    def test_share_results_opt_in_replays_across_tenants(self):
        """With share_results on, bit-identical content computed for one
        tenant replays for another (hot assets are hot for everyone) —
        and the replay is still index-correct for the receiving tenant."""
        shared = make_cloud(50, seed=47)
        engine = BatchExecutor("kdtree", block_size=16, max_workers=1)
        server = MultiTenantServer(engine, ["a", "b"], share_results=True)
        server.submit("a", shared, arrived=0.0)
        drain_all(server)
        server.submit("b", shared, arrived=1.0)
        (b_result,) = drain_all(server, now=1.0)
        assert b_result.tenant == "b" and b_result.seq == 0
        assert b_result.result.reused
        assert server.session("b").telemetry.reused_clouds == 1
        ref = serial_reference([shared], TenantSpec("x").pipeline)[0]
        assert np.array_equal(ref[0], b_result.result.sampled)
        assert np.array_equal(ref[3], b_result.result.interpolated)

    def test_tenant_reuse_window_override(self):
        engine = BatchExecutor("kdtree", block_size=16, max_workers=1)
        server = MultiTenantServer(
            engine, [TenantSpec("tiny", reuse_window=1)]
        )
        a, b = make_cloud(40, seed=45), make_cloud(44, seed=46)
        for cloud in (a, b, a):  # a evicted by b under reuse_window=1
            server.submit("tiny", cloud, arrived=0.0)
            drain_all(server)
        assert server.session("tiny").telemetry.reused_clouds == 0


class TestOrdering:
    def test_submission_order_survives_fair_scheduling(self):
        """Tiny windows + deep unequal backlogs: every tenant still sees
        strictly increasing seq numbers on its own stream."""
        engine = BatchExecutor(
            "kdtree", block_size=16, max_workers=1, reuse_results=False
        )
        server = MultiTenantServer(
            engine, ["x", "y", "z"], window=WindowConfig(max_clouds=2),
            quantum_points=64,
        )
        rng = np.random.default_rng(9)
        for i in range(12):
            server.submit("x", rng.normal(size=(30 + i, 3)), arrived=float(i))
            if i % 3 == 0:
                server.submit("y", rng.normal(size=(80 + i, 3)), arrived=float(i))
            if i % 5 == 0:
                server.submit("z", rng.normal(size=(20 + i, 3)), arrived=float(i))
        seen = {"x": -1, "y": -1, "z": -1}
        emissions = []
        while server.backlog:
            emissions.extend(server.drain(now=20.0))
        for served in emissions:
            assert served.seq == seen[served.tenant] + 1
            seen[served.tenant] = served.seq
        assert seen == {"x": 11, "y": 3, "z": 2}


class TestFairnessScenario:
    """The ISSUE's deterministic scenario: bursty + trickle tenant on a
    synthetic clock — the trickle tenant's p95 queueing latency stays
    bounded (and far below the bursty tenant's self-inflicted backlog)."""

    def run_scenario(self, quantum, rounds=30, burst=6):
        engine = BatchExecutor(
            "kdtree", block_size=16, max_workers=1, reuse_results=False
        )
        server = MultiTenantServer(
            engine, ["bursty", "trickle"],
            window=WindowConfig(max_clouds=4, max_wait=0.01),
            quantum_points=quantum,
        )
        rng = np.random.default_rng(11)
        for r in range(rounds):
            now = float(r)
            for _ in range(burst):
                server.submit(
                    "bursty", rng.normal(size=(40, 3)), arrived=now
                )
            server.submit("trickle", rng.normal(size=(36, 3)), arrived=now)
            server.drain(now=now + 0.5)  # one window per time unit
        # flush the leftover backlog
        final = float(rounds)
        while server.backlog:
            server.drain(now=final)
            final += 1.0
        return server

    def test_trickle_p95_bounded_under_burst(self):
        server = self.run_scenario(quantum=2048)
        trickle_p95 = server.session("trickle").telemetry.percentiles()[1]
        bursty_p95 = server.session("bursty").telemetry.percentiles()[1]
        # The trickle tenant is served in its arrival round: queueing
        # latency 0.5 time units, never inflated by the other tenant's
        # backlog...
        assert trickle_p95 <= 1.5
        # ...while the bursty tenant queues behind its own excess
        # arrivals (6 per round into a fair share of ~3).
        assert bursty_p95 > 5 * trickle_p95

    def test_both_tenants_keep_emitting(self):
        server = self.run_scenario(quantum=2048, rounds=20)
        assert server.session("trickle").telemetry.clouds == 20
        assert server.session("bursty").telemetry.clouds == 120


class TestAdaptiveTenancy:
    def test_limits_aggregate_controllers(self):
        engine = BatchExecutor("kdtree", block_size=16, max_workers=1)
        server = MultiTenantServer(
            engine, ["a", "b"],
            controller=ControllerConfig(
                min_clouds=1, max_clouds=8, min_wait=0.001, max_wait=0.05
            ),
        )
        assert server.adaptive
        clouds, wait = server.limits()
        assert clouds == 16  # sum of per-tenant budgets
        assert wait == pytest.approx(0.05)  # min of per-tenant timeouts

    def test_adaptive_drain_respects_bounds(self):
        config = ControllerConfig(
            min_clouds=1, max_clouds=6, min_wait=0.001, max_wait=0.02
        )
        engine = BatchExecutor(
            "kdtree", block_size=16, max_workers=1, reuse_results=False
        )
        server = MultiTenantServer(engine, ["a", "b"], controller=config)
        rng = np.random.default_rng(13)
        for i in range(30):
            server.submit("a", rng.normal(size=(30, 3)), arrived=i * 0.001)
            if i % 4 == 0:
                server.submit("b", rng.normal(size=(34, 3)), arrived=i * 0.01)
            if i % 3 == 2:
                server.drain(now=i * 0.01 + 0.005)
        while server.backlog:
            server.drain(now=1.0)
        for name in ("a", "b"):
            controller = server.session(name).controller
            assert config.min_clouds <= controller.max_clouds <= config.max_clouds
            assert config.min_wait <= controller.max_wait <= config.max_wait


class TestPersistentPoolSharing:
    def test_one_pool_across_rounds_and_tenants(self):
        """The shared engine's pool is created once and reused by every
        window round of every tenant (the ROADMAP churn fix, seen from
        the tenancy layer)."""
        engine = BatchExecutor(
            "kdtree", block_size=16, max_workers=2, reuse_results=False,
            fuse_max_spread=1.01,  # nothing fuses -> singleton pool path
        )
        server = MultiTenantServer(engine, ["a", "b"])
        rng = np.random.default_rng(17)
        pools = []
        for r in range(3):
            server.submit("a", rng.normal(size=(30, 3)), arrived=float(r))
            server.submit("a", rng.normal(size=(60, 3)), arrived=float(r))
            server.submit("b", rng.normal(size=(90, 3)), arrived=float(r))
            server.drain(now=r + 0.5)
            pools.append(engine.pool)
        assert pools[0] is not None
        assert all(pool is pools[0] for pool in pools)
        server.close()
        assert engine.pool is None
