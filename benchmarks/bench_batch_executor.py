"""Extension bench — batched multi-cloud executor vs the serial seed path.

The acceptance bar for the execution engine: a 16-cloud batch through
:class:`repro.runtime.executor.BatchExecutor` with 4 workers must beat the
seed's serial loop (per-cloud partition + serial per-block BPPO ops) by at
least 2x wall-clock throughput.  Measured, not asserted from theory.

Two batches are measured so the win decomposes honestly:

- ``16 distinct clouds`` — worst case for the engine (every request is
  new); the gain is the stacked block ops alone.  On a multi-core host
  the worker pool adds real overlap on top; this container exposes a
  single core, so no parallel speedup is available to any configuration.
- ``16 requests, 6 unique scenes`` — serving-shaped traffic (repeated
  frames, retries, popular assets).  Request deduplication and the
  content-hash partition cache let the engine skip repeated work
  entirely; the serial seed loop recomputes every request from scratch.
"""

import numpy as np

from repro.analysis import format_table
from repro.core import bppo
from repro.datasets import load_cloud
from repro.partition import get_partitioner
from repro.runtime import BatchExecutor, PipelineSpec

from _common import best_time, emit

N_CLOUDS = 16
N_UNIQUE = 6
N_POINTS = 4096
BLOCK_SIZE = 128
WORKERS = 4
PIPELINE = PipelineSpec(sample_ratio=0.25, radius=0.2, group_size=16)


def _unique_clouds(count):
    return [
        load_cloud("s3dis", N_POINTS, seed=i).coords.astype(np.float64)
        for i in range(count)
    ]


def _serial_seed_loop(clouds):
    """The pre-engine execution model: one cloud at a time, serial
    per-block ops, fresh partition for every request.

    This baseline *is* the historical per-block loop, so it pins the
    loop kernels directly instead of going through the dispatcher
    (suppressed REP001 below).
    """
    partitioner = get_partitioner("fractal", max_points_per_block=BLOCK_SIZE)
    outputs = []
    for coords in clouds:
        structure = partitioner(coords)
        sampled, _ = bppo.block_fps(structure, coords, PIPELINE.samples_for(len(coords)))  # repro: ignore[REP001]
        neighbors, _ = bppo.block_ball_query(  # repro: ignore[REP001]
            structure, coords, sampled, PIPELINE.radius, PIPELINE.group_size
        )
        grouped, _ = bppo.block_gather(structure, coords, neighbors, sampled)  # repro: ignore[REP001]
        interpolated, _ = bppo.block_interpolate(  # repro: ignore[REP001]
            structure, coords, np.arange(len(coords)), sampled,
            coords[sampled], PIPELINE.interpolate_k,
        )
        outputs.append((sampled, neighbors, interpolated))
    return outputs


def _engine():
    return BatchExecutor(
        "fractal",
        block_size=BLOCK_SIZE,
        max_workers=WORKERS,
        mode="thread",
        use_batched_ops=True,
    )


def run_bench():
    distinct = _unique_clouds(N_CLOUDS)
    scenes = _unique_clouds(N_UNIQUE)
    serving = [scenes[i % N_UNIQUE] for i in range(N_CLOUDS)]

    # A fresh engine per timed call keeps every run cold (no cross-run
    # result cache); the `with` joins its pool instead of leaking it.
    def engine_run(batch):
        with _engine() as engine:
            return engine.run(batch, PIPELINE)

    t_cold_ref, ref_cold = best_time(lambda: _serial_seed_loop(distinct))
    t_cold_eng, rep_cold = best_time(lambda: engine_run(distinct))
    t_serv_ref, ref_serv = best_time(lambda: _serial_seed_loop(serving))
    t_serv_eng, rep_serv = best_time(lambda: engine_run(serving))

    # The engine must agree with the seed path bit-for-bit on every request.
    for ref, rep in ((ref_cold, rep_cold), (ref_serv, rep_serv)):
        for (sampled, neighbors, interpolated), result in zip(ref, rep.results):
            assert np.array_equal(sampled, result.sampled)
            assert np.array_equal(neighbors, result.neighbors)
            assert np.array_equal(interpolated, result.interpolated)
    assert rep_serv.stats.reused == N_CLOUDS - N_UNIQUE

    rows = [
        ["16 distinct clouds", "serial seed loop",
         f"{t_cold_ref * 1e3:.0f}", f"{N_CLOUDS / t_cold_ref:.1f}", "1.00x"],
        ["16 distinct clouds", f"engine ({WORKERS} workers)",
         f"{t_cold_eng * 1e3:.0f}", f"{N_CLOUDS / t_cold_eng:.1f}",
         f"{t_cold_ref / t_cold_eng:.2f}x"],
        ["16 reqs / 6 scenes", "serial seed loop",
         f"{t_serv_ref * 1e3:.0f}", f"{N_CLOUDS / t_serv_ref:.1f}", "1.00x"],
        ["16 reqs / 6 scenes", f"engine ({WORKERS} workers)",
         f"{t_serv_eng * 1e3:.0f}", f"{N_CLOUDS / t_serv_eng:.1f}",
         f"{t_serv_ref / t_serv_eng:.2f}x"],
    ]
    table = format_table(
        ["batch", "configuration", "ms / batch", "clouds / s", "speedup"],
        rows,
        title=f"batched executor: {N_CLOUDS} clouds x {N_POINTS} pts "
              f"(fractal, BS={BLOCK_SIZE}, {WORKERS} workers)",
    )
    return table, t_cold_ref / t_cold_eng, t_serv_ref / t_serv_eng


def test_batch_executor(benchmark):
    table, cold_speedup, serving_speedup = benchmark.pedantic(
        run_bench, rounds=1, iterations=1
    )
    emit("batch_executor", table)
    # Acceptance: >= 2x over the serial seed loop for a 16-cloud batch
    # with 4 workers; the engine may never lose on all-distinct traffic.
    assert serving_speedup >= 2.0
    assert cold_speedup >= 0.95
