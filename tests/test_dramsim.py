"""Tests for the row-buffer DRAM state machine and its calibration role."""

import numpy as np
import pytest

from repro.hw import energy as E
from repro.hw.dramsim import DDR4Timing, DRAMSimLite


@pytest.fixture(scope="module")
def sim():
    return DRAMSimLite()


class TestTiming:
    def test_peak_bandwidth_is_ddr4_2133(self):
        t = DDR4Timing()
        assert t.peak_gbps == pytest.approx(17.056, rel=0.01)


class TestReplay:
    def test_streamed_trace_mostly_hits(self, sim):
        result = sim.replay(sim.streamed_trace(1 << 20))
        assert result.hit_rate > 0.9
        assert result.efficiency > 0.7

    def test_random_trace_mostly_misses(self, sim):
        result = sim.replay(sim.random_trace(1 << 20, 1 << 28))
        assert result.hit_rate < 0.1
        assert result.efficiency < 0.35

    def test_bytes_accounted(self, sim):
        trace = sim.streamed_trace(1 << 16)
        result = sim.replay(trace)
        assert result.bytes_moved == len(trace) * 64

    def test_single_burst(self, sim):
        result = sim.replay(np.array([0]))
        assert result.row_misses == 1
        assert result.cycles > 0

    def test_repeated_row_is_free_after_open(self, sim):
        addrs = np.zeros(100, dtype=np.int64)
        result = sim.replay(addrs)
        assert result.row_hits == 99

    def test_small_span_random_hits_more(self, sim):
        wide = sim.replay(sim.random_trace(1 << 19, 1 << 28, seed=1))
        narrow = sim.replay(sim.random_trace(1 << 19, 1 << 16, seed=1))
        assert narrow.hit_rate > wide.hit_rate


class TestBankParallelReplay:
    def test_parallel_beats_serial_on_random(self, sim):
        trace = sim.random_trace(1 << 19, 1 << 28)
        serial = sim.replay(trace)
        parallel = sim.replay_bank_parallel(trace)
        assert parallel.efficiency > 1.5 * serial.efficiency
        assert parallel.row_misses == serial.row_misses

    def test_parallel_streamed_near_peak(self, sim):
        result = sim.replay_bank_parallel(sim.streamed_trace(1 << 19))
        assert result.efficiency > 0.8


class TestCalibration:
    def test_aggregate_efficiencies_bracketed_by_state_machine(self, sim):
        """The aggregate DRAM constants must be justified by the detailed
        model: each fixed efficiency lies between the serialised
        (pessimistic) and bank-parallel (optimistic) measurements, within
        a small tolerance."""
        stream_trace = sim.streamed_trace(1 << 20)
        random_trace = sim.random_trace(1 << 20, 1 << 28)
        stream_hi = sim.replay_bank_parallel(stream_trace).efficiency
        stream_lo = sim.replay(stream_trace).efficiency
        rand_hi = sim.replay_bank_parallel(random_trace).efficiency
        rand_lo = sim.replay(random_trace).efficiency
        assert stream_lo - 0.05 <= E.STREAM_DRAM_EFFICIENCY <= stream_hi + 0.05
        assert rand_lo - 0.05 <= E.RANDOM_DRAM_EFFICIENCY <= rand_hi + 0.05
