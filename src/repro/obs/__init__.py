"""`repro.obs`: always-compiled-in tracing + metrics for the whole stack.

A *leaf* package — stdlib + numpy only, imported by every layer (core
dispatch, runtime engine, serve, shard, cli) without creating cycles.
One process-global :class:`~repro.obs.trace.Tracer` and one
:class:`~repro.obs.metrics.MetricsRegistry`, both disabled by default;
:func:`configure` swaps in fresh instances (which is also how forked
shard workers shed state inherited from the router).

Usage at an instrumentation site::

    from .. import obs

    if obs.enabled():                       # disabled-path fast exit
        with obs.span("op.fps", kernel=name):
            return kernel_fn(...)
    return kernel_fn(...)

Span naming convention (see CONTRIBUTING): ``<layer>.<what>`` —
``serve.request``, ``serve.window``, ``serve.wait``, ``shard.window``,
``shard.serialize``, ``transport.pack`` / ``transport.unpack``,
``engine.window`` / ``engine.fused`` / ``engine.cloud``,
``partition.build`` / ``partition.patch``, ``build.<kernel>``,
``op.<op>``.  Metric names: ``repro_<layer>_<what>[_<unit>]``.
"""

from __future__ import annotations

from .metrics import (
    DEFAULT_LATENCY_BUCKETS,
    PERCENTILES,
    Counter,
    Gauge,
    Histogram,
    LatencyRing,
    MetricsRegistry,
    latency_percentiles,
)
from .trace import NULL_SPAN, OpenSpan, Span, Tracer, now

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "NULL_SPAN",
    "PERCENTILES",
    "Counter",
    "Gauge",
    "Histogram",
    "LatencyRing",
    "MetricsRegistry",
    "OpenSpan",
    "Span",
    "Tracer",
    "adopt",
    "configure",
    "drain",
    "enabled",
    "inc",
    "latency_percentiles",
    "metrics",
    "now",
    "observe",
    "open_span",
    "record",
    "set_gauge",
    "span",
    "span_remote",
    "tracer",
]

_TRACER = Tracer()
_METRICS = MetricsRegistry()


def configure(
    *,
    trace: bool | None = None,
    sample: int | None = None,
    metrics: bool | None = None,
) -> None:
    """(Re)configure the process-global tracer and registry.

    ``None`` leaves a setting as it is; changing ``trace``/``sample``
    replaces the tracer wholesale (dropping any undrained spans), which
    is deliberate: forked workers call this to get a pid-correct tracer
    that has not inherited the parent's buffered spans.
    """
    global _TRACER, _METRICS
    if trace is not None or sample is not None:
        enabled = _TRACER.enabled if trace is None else bool(trace)
        n = _TRACER.sample if sample is None else int(sample)
        _TRACER = Tracer(enabled=enabled, sample=n)
    if metrics is not None:
        _METRICS = MetricsRegistry(enabled=bool(metrics))


def tracer() -> Tracer:
    return _TRACER


def metrics() -> MetricsRegistry:
    return _METRICS


def enabled() -> bool:
    """True when spans record — the guard for attr-building call sites."""
    return _TRACER.enabled


# -- span conveniences (delegate to the current global tracer) --------------


def span(name, attrs=None, *, start=None, **extra):
    return _TRACER.span(name, attrs, start=start, **extra)


def span_remote(ctx, name, attrs=None, **extra):
    return _TRACER.span_remote(ctx, name, attrs, **extra)


def record(name, start, end, *, parent=None, **attrs):
    return _TRACER.record(name, start, end, parent=parent, **attrs)


def open_span(name, attrs=None, **extra):
    return _TRACER.open_span(name, attrs, **extra)


def drain():
    return _TRACER.drain()


def adopt(wires):
    return _TRACER.adopt(wires)


# -- metric conveniences ----------------------------------------------------


def inc(name: str, amount: float = 1.0) -> None:
    registry = _METRICS
    if registry.enabled:
        registry.counter(name).inc(amount)


def observe(name: str, value: float) -> None:
    registry = _METRICS
    if registry.enabled:
        registry.histogram(name).observe(value)


def set_gauge(name: str, value: float) -> None:
    registry = _METRICS
    if registry.enabled:
        registry.gauge(name).set(value)
