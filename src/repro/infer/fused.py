"""Fused multi-cloud model forward passes.

One serving window holds many clouds with the same model pipeline; this
module runs the whole window as one forward pass per *stage* instead of
one forward pass per *cloud*.  The structure work (per-level partitions,
FPS, ball query, KNN) fuses exactly like the engine's BPPO path — each
cloud keeps its own cached partition and sample quota, the per-cloud
ragged CSR layouts concatenate into one problem, and every point
operation runs as a single layout-kernel invocation.  The network math
(shared MLPs, pooling, interpolation) is row-wise by construction —
delayed aggregation makes the MLP per-point, and the Dense
row-stability contract makes each row independent of its batch — so
running it over the concatenated rows is bit-identical to running each
cloud alone.

Every stage executes under a ``model.*`` span, so ``repro trace
summarize`` shows the network pipeline next to the point-op kernels.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from .. import obs
from ..core.bppo import allocate_samples
from ..core.ragged import (
    RaggedBlocks,
    ball_query_on_layout,
    fps_on_layout,
    knn_on_layout,
)
from ..geometry import ops as exact_ops
from ..networks.models import PNNClassifier, PNNClassifierMSG, PNNSegmenter
from ..networks.modules import FPStage, SAStage
from ..networks.msg import SAStageMSG
from .registry import get_model

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..runtime.cache import PartitionCache

__all__ = ["run_fused"]


def _span(name: str, **attrs):
    return obs.span(name, **attrs) if obs.enabled() else obs.NULL_SPAN


class _Level:
    """One fused pyramid level: per-cloud partitions concatenated.

    ``offsets[g] : offsets[g + 1]`` is cloud ``g``'s row range in every
    per-point array of this level (``coords``, features, logits).
    """

    def __init__(self, cache: "PartitionCache", coords_list: list[np.ndarray]):
        structures, layouts, sources = [], [], []
        for coords in coords_list:
            structure, layout, source = cache.acquire_ragged(coords)
            structures.append(structure)
            layouts.append(layout)
            sources.append(source)
        self.structures = structures
        self.sources = sources
        self.fused = RaggedBlocks.concatenate(layouts)
        self.coords = np.concatenate(coords_list)
        self.sizes = [len(c) for c in coords_list]
        self.offsets = np.zeros(len(coords_list) + 1, dtype=np.int64)
        np.cumsum(self.sizes, out=self.offsets[1:])

    def slices(self):
        for g in range(len(self.sizes)):
            yield int(self.offsets[g]), int(self.offsets[g + 1])

    def sample(self, n_outs: list[int]) -> tuple[np.ndarray, list[int]]:
        """Fused block-FPS with per-cloud quotas.

        Returns global sampled indices (per-cloud contiguous, block-major
        within a cloud — the exact layout of the per-cloud kernels) and
        the per-cloud sample counts.
        """
        quotas = [
            allocate_samples(s.block_sizes, n, clamp=True)
            for s, n in zip(self.structures, n_outs)
        ]
        sampled = fps_on_layout(self.fused, np.concatenate(quotas))
        return sampled, [int(q.sum()) for q in quotas]


def _next_level(
    cache: "PartitionCache", level: _Level, sampled: np.ndarray, counts: list[int]
) -> _Level:
    """Build the next pyramid level from fused sampled indices."""
    offsets = np.zeros(len(counts) + 1, dtype=np.int64)
    np.cumsum(counts, out=offsets[1:])
    return _Level(
        cache,
        [
            level.coords[sampled[int(offsets[g]): int(offsets[g + 1])]]
            for g in range(len(counts))
        ],
    )


def _sa(
    stage: SAStage,
    level: _Level,
    feats: np.ndarray | None,
    agg: str,
    label: str,
) -> tuple[np.ndarray, list[int], np.ndarray]:
    """One fused set-abstraction stage: sample + group + compute."""
    with _span(label, points=level.fused.num_points):
        n_outs = [min(stage.n_out, n) for n in level.sizes]
        sampled, counts = level.sample(n_outs)
        neighbors, _ = ball_query_on_layout(
            level.fused, level.coords, sampled, stage.radius, stage.k
        )
        out = stage.compute(level.coords, feats, neighbors, agg=agg)
    return sampled, counts, out


def _sa_msg(
    stage: SAStageMSG,
    level: _Level,
    feats: np.ndarray | None,
    agg: str,
    label: str,
) -> tuple[np.ndarray, list[int], np.ndarray]:
    """Fused MSG stage: one shared FPS, one grouping pass per scale."""
    with _span(label, points=level.fused.num_points, scales=len(stage.scales)):
        n_outs = [min(stage.n_out, n) for n in level.sizes]
        sampled, counts = level.sample(n_outs)
        outputs = []
        for (radius, k), sub in zip(stage.scales, stage.stages):
            neighbors, _ = ball_query_on_layout(
                level.fused, level.coords, sampled, radius, k
            )
            outputs.append(sub.compute(level.coords, feats, neighbors, agg=agg))
        out = np.concatenate(outputs, axis=1)
    return sampled, counts, out


def _fp(
    fp: FPStage,
    dense: _Level,
    sparse_indices: np.ndarray,
    sparse_feats: np.ndarray,
    skip_feats: np.ndarray | None,
    label: str,
) -> np.ndarray:
    """Fused feature propagation onto every point of ``dense``."""
    with _span(label, points=dense.fused.num_points):
        centers = np.arange(dense.fused.num_points, dtype=np.int64)
        idx, _, _, _ = knn_on_layout(
            dense.fused, dense.coords, centers, sparse_indices, fp.k
        )
        weights = exact_ops.idw_weights(dense.coords, dense.coords[idx])
        row_of = np.full(dense.fused.num_points, -1, dtype=np.int64)
        row_of[sparse_indices] = np.arange(len(sparse_indices), dtype=np.int64)
        interp = np.einsum("mk,mkc->mc", weights, sparse_feats[row_of[idx]])
        if skip_feats is not None:
            x = np.concatenate([interp, skip_feats], axis=1)
        else:
            x = interp
        return fp.mlp.forward(x)


def _global_and_head(model, level: _Level, feats: np.ndarray) -> list[np.ndarray]:
    """Fused GlobalSA + classification head: per-cloud logit rows."""
    x = np.concatenate([level.coords, feats], axis=1)
    with _span("model.global_sa", points=len(x)):
        h = model.global_sa.mlp.forward(x)
        pooled = np.stack([h[lo:hi].max(axis=0) for lo, hi in level.slices()])
    with _span("model.head", clouds=len(pooled)):
        logits = model.head.forward(pooled)
    return [logits[g] for g in range(len(logits))]


def run_fused(
    name: str,
    items: list[tuple[int, np.ndarray, np.ndarray | None]],
    cache: "PartitionCache",
    agg: str = "auto",
) -> tuple[list[np.ndarray], list[str], list[int]]:
    """Run one model over a fused group of clouds.

    ``items`` are the engine's pre-normalised ``(index, coords,
    features)`` tuples (features, if any, are ignored — the serving
    backbones derive features from geometry).  Returns per-cloud
    ``(outputs, partition_sources, num_blocks)`` aligned with ``items``,
    where each output is bit-identical to ``model.forward`` on that
    cloud alone with the same partitioner.
    """
    model = get_model(name)
    level0 = _Level(
        cache,
        [np.ascontiguousarray(coords, dtype=np.float64) for _, coords, _ in items],
    )
    sources = list(level0.sources)
    num_blocks = [s.num_blocks for s in level0.structures]

    if isinstance(model, PNNClassifierMSG):
        s1, c1, f1 = _sa_msg(model.sa1, level0, None, agg, "model.sa1")
        level1 = _next_level(cache, level0, s1, c1)
        s2, c2, f2 = _sa_msg(model.sa2, level1, f1, agg, "model.sa2")
        level2 = _next_level(cache, level1, s2, c2)
        return _global_and_head(model, level2, f2), sources, num_blocks

    if isinstance(model, PNNClassifier):
        if model.stem is not None:
            with _span("model.stem", points=len(level0.coords)):
                feats0 = model.stem.forward(level0.coords)
        else:
            feats0 = None
        s1, c1, f1 = _sa(model.sa1, level0, feats0, agg, "model.sa1")
        level1 = _next_level(cache, level0, s1, c1)
        s2, c2, f2 = _sa(model.sa2, level1, f1, agg, "model.sa2")
        level2 = _next_level(cache, level1, s2, c2)
        return _global_and_head(model, level2, f2), sources, num_blocks

    if isinstance(model, PNNSegmenter):
        if model.stem is not None:
            with _span("model.stem", points=len(level0.coords)):
                feats0 = model.stem.forward(level0.coords)
        else:
            feats0 = None
        s1, c1, f1 = _sa(model.sa1, level0, feats0, agg, "model.sa1")
        level1 = _next_level(cache, level0, s1, c1)
        s2, c2, f2 = _sa(model.sa2, level1, f1, agg, "model.sa2")
        p1 = _fp(model.fp2, level1, s2, f2, f1, "model.fp2")
        p0 = _fp(model.fp1, level0, s1, p1, feats0, "model.fp1")
        with _span("model.head", points=len(p0)):
            logits = model.head.forward(p0)
        return (
            [logits[lo:hi] for lo, hi in level0.slices()],
            sources,
            num_blocks,
        )

    raise TypeError(
        f"model {name!r} has unsupported type {type(model).__name__} "
        "for fused execution"
    )
