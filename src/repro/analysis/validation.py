"""Headline-claim validation: the paper's numbers as machine-checkable bands.

Encodes the reproduction targets from EXPERIMENTS.md as
:class:`HeadlineClaim` records with acceptance bands, and
:func:`validate_headlines` measures them all with the simulator.  The
bands are deliberately wide (shape-level reproduction, see DESIGN.md §1):
a claim passes when the measured ratio lands within ``band`` multiplicative
factors of the paper's value, or beats it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..hw import AcceleratorSim, GPUModel, SOTA_CONFIGS
from ..networks import get_workload

__all__ = ["HeadlineClaim", "HEADLINE_CLAIMS", "validate_headlines"]


@dataclass(frozen=True)
class HeadlineClaim:
    """One quantitative claim from the paper.

    Attributes:
        name: short identifier.
        paper_value: the number the paper reports.
        band: acceptance factor — measured must lie within
            ``[paper/band, paper*band]`` (or exceed paper for
            higher-is-better claims when ``one_sided``).
        measure: zero-arg callable returning the measured value.
        one_sided: accept anything >= paper/band (the claim is a floor).
    """

    name: str
    paper_value: float
    band: float
    measure: Callable[[], float]
    one_sided: bool = False

    def check(self) -> tuple[float, bool]:
        value = self.measure()
        if self.one_sided:
            ok = value >= self.paper_value / self.band
        else:
            ok = self.paper_value / self.band <= value <= self.paper_value * self.band
        return value, ok


def _speedup(config_name: str, workload: str, n: int) -> float:
    spec = get_workload(workload)
    gpu = GPUModel().run(spec, n)
    acc = AcceleratorSim(SOTA_CONFIGS[config_name]).run(spec, n)
    return gpu.latency_s / acc.latency_s


def _accel_ratio(a: str, b: str, workload: str, n: int) -> float:
    spec = get_workload(workload)
    ra = AcceleratorSim(SOTA_CONFIGS[a]).run(spec, n)
    rb = AcceleratorSim(SOTA_CONFIGS[b]).run(spec, n)
    return ra.latency_s / rb.latency_s


def _energy_saving(workload: str, n: int) -> float:
    spec = get_workload(workload)
    gpu = GPUModel().run(spec, n)
    acc = AcceleratorSim(SOTA_CONFIGS["FractalCloud"]).run(spec, n)
    return gpu.energy_j / acc.energy_j


HEADLINE_CLAIMS: tuple[HeadlineClaim, ...] = (
    HeadlineClaim(
        name="speedup_vs_gpu_289k",
        paper_value=40.0, band=3.0,
        measure=lambda: _speedup("FractalCloud", "PNXt(s)", 289_000),
        one_sided=True,
    ),
    HeadlineClaim(
        name="pointacc_below_gpu_289k",
        paper_value=0.4, band=2.5,
        measure=lambda: _speedup("PointAcc", "PNXt(s)", 289_000),
    ),
    HeadlineClaim(
        name="crescent_near_gpu_289k",
        paper_value=0.8, band=2.5,
        measure=lambda: _speedup("Crescent", "PNXt(s)", 289_000),
    ),
    HeadlineClaim(
        name="fract_vs_pointacc_289k",
        paper_value=100.0, band=3.0,
        measure=lambda: _accel_ratio("PointAcc", "FractalCloud", "PNXt(s)", 289_000),
        one_sided=True,
    ),
    HeadlineClaim(
        name="crescent_within_2x_at_1k",
        paper_value=1.2, band=1.8,
        measure=lambda: _accel_ratio("Crescent", "FractalCloud", "PN++(c)", 1024),
    ),
    HeadlineClaim(
        name="energy_saving_vs_gpu_289k",
        paper_value=1920.0, band=3.0,
        measure=lambda: _energy_saving("PNXt(s)", 289_000),
        one_sided=True,
    ),
)


def validate_headlines() -> list[tuple[str, float, float, bool]]:
    """Measure every claim; returns (name, paper, measured, ok) rows."""
    rows = []
    for claim in HEADLINE_CLAIMS:
        value, ok = claim.check()
        rows.append((claim.name, claim.paper_value, value, ok))
    return rows
