"""Point-based neural networks: trainable numpy backbones + workload specs.

- :mod:`layers` / :mod:`modules` / :mod:`models` — small trainable
  PointNet++ / PointNeXt / PointVector variants with manual backprop.
- :mod:`backends` — exact vs block-parallel point-operation backends.
- :mod:`train` — training loops and OA / mIoU metrics.
- :mod:`workloads` — Table I registry driving the hardware simulator.
"""

from .augment import AugmentConfig, augment_cloud
from .backends import BlockBackend, ExactBackend, PointOpsBackend, make_backend
from .layers import Adam, Dense, Module, Parameter, ReLU, SharedMLP, softmax_cross_entropy
from .models import ARCHS, ArchSpec, PNNClassifier, PNNClassifierMSG, PNNSegmenter
from .modules import FPStage, GlobalSA, InvResBlock, SAStage
from .msg import SAStageMSG
from .train import (
    TrainResult,
    evaluate_classifier,
    evaluate_segmenter,
    mean_iou,
    train_classifier,
    train_segmenter,
)
from .workloads import WORKLOADS, ConcreteStage, FPConfig, SAConfig, WorkloadSpec, get_workload

__all__ = [
    "ARCHS",
    "AugmentConfig",
    "Adam",
    "ArchSpec",
    "BlockBackend",
    "ConcreteStage",
    "Dense",
    "ExactBackend",
    "FPConfig",
    "FPStage",
    "GlobalSA",
    "InvResBlock",
    "Module",
    "PNNClassifier",
    "PNNClassifierMSG",
    "PNNSegmenter",
    "Parameter",
    "PointOpsBackend",
    "ReLU",
    "SAConfig",
    "SAStage",
    "SAStageMSG",
    "SharedMLP",
    "TrainResult",
    "WORKLOADS",
    "WorkloadSpec",
    "augment_cloud",
    "evaluate_classifier",
    "evaluate_segmenter",
    "get_workload",
    "make_backend",
    "mean_iou",
    "softmax_cross_entropy",
    "train_classifier",
    "train_segmenter",
]
