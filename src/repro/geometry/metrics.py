"""Quality metrics for approximate point operations.

The accuracy experiments (paper Fig. 3, Fig. 14, Fig. 17) hinge on how much
a partition-restricted point operation deviates from its global-search
reference.  These metrics quantify that deviation directly:

- :func:`neighbor_recall` — fraction of true neighbours a block-wise search
  recovers (drives grouping-quality degradation).
- :func:`coverage_radius` — how well a sampled subset covers the cloud
  (drives sampling-quality degradation; exact FPS minimises this greedily).
- :func:`sampling_distortion` — ratio of block-wise to exact coverage.
- :func:`chamfer_distance` — symmetric set-to-set distance.
"""

from __future__ import annotations

import numpy as np

from .ops import knn_search, pairwise_sq_dists

__all__ = [
    "neighbor_recall",
    "coverage_radius",
    "sampling_distortion",
    "chamfer_distance",
    "block_balance_factor",
]


def neighbor_recall(approx_indices: np.ndarray, exact_indices: np.ndarray) -> float:
    """Mean per-centre overlap between approximate and exact neighbour sets.

    Both arguments are ``(m, k)`` index arrays *into the same candidate
    set*.  Padding duplicates (ball-query semantics) are collapsed before
    comparison, so recall is measured over distinct neighbours.
    """
    approx_indices = np.asarray(approx_indices)
    exact_indices = np.asarray(exact_indices)
    if approx_indices.shape[0] != exact_indices.shape[0]:
        raise ValueError(
            f"row counts differ: {approx_indices.shape[0]} vs {exact_indices.shape[0]}"
        )
    if approx_indices.shape[0] == 0:
        return 1.0
    recalls = np.empty(approx_indices.shape[0])
    for i in range(approx_indices.shape[0]):
        exact = set(exact_indices[i].tolist())
        approx = set(approx_indices[i].tolist())
        recalls[i] = len(exact & approx) / max(len(exact), 1)
    return float(recalls.mean())


def coverage_radius(coords: np.ndarray, sampled_indices: np.ndarray) -> float:
    """Max distance from any point to its nearest sampled point.

    Exact FPS greedily minimises this quantity; a good approximate sampler
    should stay close to the exact value (ratio near 1).
    """
    coords = np.asarray(coords, dtype=np.float64)
    sampled = coords[np.asarray(sampled_indices)]
    d2 = pairwise_sq_dists(coords, sampled)
    return float(np.sqrt(d2.min(axis=1).max()))


def sampling_distortion(
    coords: np.ndarray,
    approx_indices: np.ndarray,
    exact_indices: np.ndarray,
) -> float:
    """Coverage ratio of an approximate sampler vs exact FPS (>= ~1.0).

    1.0 means the approximate sample covers the cloud exactly as well as
    the reference; 1.3 means its worst-covered point is 30 % farther from
    the sample.
    """
    exact = coverage_radius(coords, exact_indices)
    approx = coverage_radius(coords, approx_indices)
    if exact == 0.0:
        return 1.0
    return float(approx / exact)


def chamfer_distance(a: np.ndarray, b: np.ndarray) -> float:
    """Symmetric Chamfer distance between point sets ``a`` (m,3), ``b`` (n,3)."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    d2 = pairwise_sq_dists(a, b)
    return float(np.sqrt(d2.min(axis=1)).mean() + np.sqrt(d2.min(axis=0)).mean())


def block_balance_factor(block_sizes: np.ndarray) -> float:
    """Max block size over mean block size (1.0 = strictly balanced).

    The paper's latency model is dominated by the largest block (§VI-D
    "Imbalance effect"), so this is the figure of merit for partition
    balance.
    """
    sizes = np.asarray(block_sizes, dtype=np.float64)
    if len(sizes) == 0:
        raise ValueError("no blocks")
    if np.any(sizes <= 0):
        raise ValueError("block sizes must be positive")
    return float(sizes.max() / sizes.mean())


def knn_recall_for_point_sets(
    centers: np.ndarray,
    candidates: np.ndarray,
    approx_indices: np.ndarray,
    k: int,
) -> float:
    """Convenience: recall of ``approx_indices`` against exact KNN."""
    exact = knn_search(centers, candidates, k)
    return neighbor_recall(approx_indices, exact)
