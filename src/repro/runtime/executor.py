"""Batched multi-cloud execution engine.

The functional layers below this one process exactly one cloud at a time;
this module is the throughput story on top of them: it takes a sequence
(or generator) of point clouds, partitions each with any registered
strategy (content-hash cached), runs the block-parallel point-operation
pipeline — block FPS → ball-query grouping → gathering → KNN
interpolation — per cloud with the stacked fast paths of
:mod:`repro.core.bppo`, and schedules clouds across a configurable
``concurrent.futures`` worker pool (threads, processes, or a serial
fallback).  Results stream back in submission order together with
aggregate throughput statistics.

Scheduling granularity is the *cloud*: blocks inside a cloud are already
executed "in parallel" by the stacked ops (one vectorized pass over many
blocks), so the pool only needs to overlap independent clouds — the
delayed-batching lesson of Mesorasi applied at the request level.

Everything the engine computes is bit-identical to the serial reference
path; ``tests/test_batch_parity.py`` holds the proof obligations.
"""

from __future__ import annotations

import dataclasses
import os
import time
from collections import OrderedDict, deque
from collections.abc import Iterable, Iterator
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field

import numpy as np

from ..core import bppo
from ..core.bppo import OpTrace
from ..partition.base import Partitioner, get_partitioner
from .cache import PartitionCache, content_key

__all__ = [
    "PipelineSpec",
    "CloudResult",
    "ExecutorStats",
    "BatchReport",
    "BatchExecutor",
]


@dataclass(frozen=True)
class PipelineSpec:
    """The BPPO stage chain applied to every cloud of a batch.

    Mirrors one set-abstraction + feature-propagation round of the
    PointNet++ family: sample centres, group neighbours within a radius,
    gather their features, then interpolate features back onto the dense
    cloud through block-wise KNN.

    Attributes:
        sample_ratio: fraction of points kept by block FPS (used when
            ``num_samples`` is None; always at least one sample).
        num_samples: absolute sample count; clamped to the cloud size so
            a fixed setting survives tiny streamed clouds.
        radius: ball-query grouping radius.
        group_size: neighbours per centre in the grouping stage.
        interpolate_k: K for the interpolation KNN (clamped to the
            number of sampled centres).
        with_interpolation: skip the interpolation stage when False
            (classification-style pipelines stop after grouping).
    """

    sample_ratio: float = 0.25
    num_samples: int | None = None
    radius: float = 0.2
    group_size: int = 16
    interpolate_k: int = 3
    with_interpolation: bool = True

    def samples_for(self, num_points: int) -> int:
        """Sample count for a cloud of ``num_points`` (clamped to [1, n])."""
        if self.num_samples is not None:
            return max(1, min(int(self.num_samples), num_points))
        return max(1, min(num_points, round(self.sample_ratio * num_points)))


@dataclass
class CloudResult:
    """Per-cloud output of the engine, in submission order.

    ``reused`` marks a result replayed from an identical earlier cloud of
    the same batch (request deduplication); its arrays are shared with the
    original result, so treat them as read-only.
    """

    index: int
    num_points: int
    num_blocks: int
    cache_hit: bool
    seconds: float
    sampled: np.ndarray
    neighbors: np.ndarray
    grouped: np.ndarray
    interpolated: np.ndarray | None
    traces: dict[str, OpTrace] = field(default_factory=dict)
    reused: bool = False


@dataclass
class ExecutorStats:
    """Aggregate throughput statistics of one :meth:`BatchExecutor.run`."""

    clouds: int = 0
    points: int = 0
    wall_seconds: float = 0.0
    busy_seconds: float = 0.0
    cache_hits: int = 0
    cache_misses: int = 0
    reused: int = 0

    @property
    def clouds_per_second(self) -> float:
        return self.clouds / self.wall_seconds if self.wall_seconds > 0 else 0.0

    @property
    def points_per_second(self) -> float:
        return self.points / self.wall_seconds if self.wall_seconds > 0 else 0.0

    @property
    def speedup_over_busy(self) -> float:
        """Overlap achieved by the pool: per-cloud work time / wall time."""
        return self.busy_seconds / self.wall_seconds if self.wall_seconds > 0 else 0.0


@dataclass
class BatchReport:
    """Everything :meth:`BatchExecutor.run` produces."""

    results: list[CloudResult]
    stats: ExecutorStats


def _as_cloud(item: object) -> tuple[np.ndarray, np.ndarray | None]:
    """Normalise one batch item to ``(coords, features-or-None)``.

    Accepts an ``(n, 3)`` array, a ``(coords, features)`` pair, or any
    object with a ``coords`` attribute (e.g. :class:`repro.geometry.
    pointcloud.PointCloud`).
    """
    features = None
    if isinstance(item, (tuple, list)) and len(item) == 2:
        item, features = item
    if hasattr(item, "coords"):
        item = item.coords
    coords = np.asarray(item, dtype=np.float64)
    if coords.ndim != 2 or coords.shape[1] != 3:
        raise ValueError(f"each cloud must be (n, 3), got shape {coords.shape}")
    if len(coords) == 0:
        raise ValueError("clouds must contain at least one point")
    if features is not None:
        features = np.asarray(features, dtype=np.float64)
        if features.ndim != 2 or len(features) != len(coords):
            raise ValueError(
                f"features must be (n, c) aligned with coords, got "
                f"{features.shape} for {len(coords)} points"
            )
    return coords, features


# -- process-mode plumbing ---------------------------------------------------
# Each worker process builds its own serial engine once (fork inherits the
# parent's modules, so this is cheap) and reuses it for every task; the
# parent only ships (index, coords, features, pipeline) per cloud.

_PROCESS_ENGINE: "BatchExecutor | None" = None


def _process_init(partitioner_name: str, block_size: int, use_batched_ops: bool,
                  cache_size: int) -> None:
    global _PROCESS_ENGINE
    _PROCESS_ENGINE = BatchExecutor(
        partitioner_name,
        block_size=block_size,
        max_workers=1,
        use_batched_ops=use_batched_ops,
        cache_size=cache_size,
    )


def _process_run(args: tuple) -> CloudResult:
    index, coords, features, pipeline = args
    assert _PROCESS_ENGINE is not None
    return _PROCESS_ENGINE._execute(index, coords, features, pipeline)


class BatchExecutor:
    """Batched multi-cloud BPPO engine with partition caching.

    Usage::

        from repro.runtime import BatchExecutor, PipelineSpec

        engine = BatchExecutor("fractal", block_size=128, max_workers=4)
        report = engine.run(clouds, PipelineSpec(radius=0.3, group_size=16))
        for result in report.results:          # submission order
            use(result.sampled, result.neighbors, result.interpolated)
        print(f"{report.stats.clouds_per_second:.1f} clouds/s, "
              f"{report.stats.cache_hits} cache hits")

        for result in engine.stream(sensor_frames()):   # generator in,
            consume(result)                             # results stream out

    Args:
        partitioner: strategy name from :mod:`repro.partition` or a
            ready :class:`Partitioner` instance.
        block_size: partition threshold (``th`` / BS) when constructing
            from a name.
        max_workers: worker count; ``1`` (or ``mode="serial"``) runs the
            serial fallback with no pool.  Defaults to ``min(4, cpus)``.
        mode: ``"thread"`` (shared partition cache, numpy releases the
            GIL in the heavy kernels), ``"process"`` (independent caches,
            full parallelism; requires a partitioner *name*), or
            ``"serial"``.
        use_batched_ops: run the stacked block fast paths
            (``block_*_batched``); disable to schedule the serial
            reference ops instead — results are identical either way.
        cache_size: LRU capacity of the partition cache.
        reuse_results: deduplicate identical clouds within a stream —
            compute once, replay the result (``CloudResult.reused``).
            Identity is the exact float64 content of coords + features.
        reuse_window: distinct recent clouds eligible for reuse.  The
            engine retains the full result arrays of that many recent
            clouds even when nothing repeats, so the window bounds
            steady-state memory on unbounded unique streams (at the
            default 32 and 8 K-point clouds, a few tens of MB).
    """

    def __init__(
        self,
        partitioner: str | Partitioner = "fractal",
        *,
        block_size: int = 256,
        max_workers: int | None = None,
        mode: str = "thread",
        use_batched_ops: bool = True,
        cache_size: int = 64,
        reuse_results: bool = True,
        reuse_window: int = 32,
    ):
        if mode not in ("thread", "process", "serial"):
            raise ValueError(f"mode must be thread|process|serial, got {mode!r}")
        if isinstance(partitioner, Partitioner):
            self.partitioner = partitioner
            self.partitioner_name = partitioner.name
            self._from_name = False
        else:
            self.partitioner = get_partitioner(
                partitioner, max_points_per_block=block_size
            )
            self.partitioner_name = partitioner
            self._from_name = True
        if mode == "process" and not self._from_name:
            raise ValueError(
                "process mode needs a partitioner name (instances do not "
                "cross process boundaries); pass e.g. partitioner='kdtree'"
            )
        self.block_size = block_size
        self.max_workers = max_workers if max_workers else min(4, os.cpu_count() or 1)
        self.mode = "serial" if self.max_workers <= 1 else mode
        self.use_batched_ops = use_batched_ops
        self.cache_size = cache_size
        self.reuse_results = reuse_results
        self.reuse_window = reuse_window
        self.cache = PartitionCache(self.partitioner, maxsize=cache_size)

    # -- single-cloud pipeline ----------------------------------------------

    def _execute(
        self,
        index: int,
        coords: np.ndarray,
        features: np.ndarray | None,
        pipeline: PipelineSpec,
    ) -> CloudResult:
        """Run the full BPPO pipeline on one cloud."""
        start = time.perf_counter()
        structure, cache_hit = self.cache.get(coords)
        if self.use_batched_ops:
            fps, ball, interp = (
                bppo.block_fps_batched,
                bppo.block_ball_query_batched,
                bppo.block_interpolate_batched,
            )
        else:
            fps, ball, interp = (
                bppo.block_fps,
                bppo.block_ball_query,
                bppo.block_interpolate,
            )

        n = len(coords)
        feats = coords if features is None else features
        traces: dict[str, OpTrace] = {}

        sampled, traces["fps"] = fps(structure, coords, pipeline.samples_for(n))
        neighbors, traces["ball_query"] = ball(
            structure, coords, sampled, pipeline.radius, pipeline.group_size
        )
        grouped, traces["gather"] = bppo.block_gather(
            structure, feats, neighbors, sampled
        )
        interpolated = None
        if pipeline.with_interpolation:
            k = min(pipeline.interpolate_k, len(sampled))
            interpolated, traces["interpolate"] = interp(
                structure, coords, np.arange(n, dtype=np.int64),
                sampled, feats[sampled], k,
            )
        return CloudResult(
            index=index,
            num_points=n,
            num_blocks=structure.num_blocks,
            cache_hit=cache_hit,
            seconds=time.perf_counter() - start,
            sampled=sampled,
            neighbors=neighbors,
            grouped=grouped,
            interpolated=interpolated,
            traces=traces,
        )

    def run_cloud(
        self,
        cloud: object,
        pipeline: PipelineSpec | None = None,
        *,
        index: int = 0,
    ) -> CloudResult:
        """Run the pipeline on a single cloud in the calling thread."""
        coords, features = _as_cloud(cloud)
        return self._execute(index, coords, features, pipeline or PipelineSpec())

    # -- batched execution ---------------------------------------------------

    def stream(
        self,
        clouds: Iterable[object],
        pipeline: PipelineSpec | None = None,
    ) -> Iterator[CloudResult]:
        """Yield one :class:`CloudResult` per cloud, in submission order.

        ``clouds`` may be any iterable — including an unbounded generator:
        at most ``2 × max_workers`` clouds are in flight at a time, so the
        engine pulls from the source at the rate it can process (simple
        backpressure for sensor streams).

        When ``reuse_results`` is on, a cloud whose (coords, features)
        content already appeared among the last ``reuse_window`` distinct
        clouds of this stream is never recomputed — its result is
        replayed with the new index and ``reused=True`` (repeated frames,
        retries, and popular assets are the common case of serving
        traffic).
        """
        pipeline = pipeline or PipelineSpec()

        def keyed():
            for i, c in enumerate(clouds):
                coords, features = _as_cloud(c)
                key = None
                if self.reuse_results:
                    # Exact float64 content: replaying a *result* for a
                    # merely float32-equal cloud would be wrong (the
                    # pipeline computes in float64).
                    key = content_key(coords, dtype=np.float64) + (
                        content_key(features, dtype=np.float64)
                        if features is not None
                        else b""
                    )
                yield i, coords, features, key

        def replay(result: CloudResult, index: int) -> CloudResult:
            return dataclasses.replace(
                result, index=index, cache_hit=True, seconds=0.0, reused=True
            )

        if self.mode == "serial":
            done: OrderedDict = OrderedDict()
            for index, coords, features, key in keyed():
                if key is not None and key in done:
                    done.move_to_end(key)
                    yield replay(done[key], index)
                    continue
                result = self._execute(index, coords, features, pipeline)
                if key is not None:
                    done[key] = result
                    while len(done) > self.reuse_window:
                        done.popitem(last=False)
                yield result
            return

        with self._make_pool() as pool:
            pending: deque = deque()
            in_flight: OrderedDict = OrderedDict()
            window = 2 * self.max_workers

            def drain_one() -> CloudResult:
                index, future, is_replay = pending.popleft()
                result = future.result()
                return replay(result, index) if is_replay else result

            for index, coords, features, key in keyed():
                if key is not None and key in in_flight:
                    in_flight.move_to_end(key)
                    pending.append((index, in_flight[key], True))
                else:
                    future = self._submit(pool, (index, coords, features), pipeline)
                    if key is not None:
                        in_flight[key] = future
                        while len(in_flight) > self.reuse_window:
                            in_flight.popitem(last=False)
                    pending.append((index, future, False))
                while len(pending) >= window:
                    yield drain_one()
            while pending:
                yield drain_one()

    def run(
        self,
        clouds: Iterable[object],
        pipeline: PipelineSpec | None = None,
    ) -> BatchReport:
        """Process a batch and return ordered results plus throughput stats."""
        start = time.perf_counter()
        results = list(self.stream(clouds, pipeline))
        wall = time.perf_counter() - start
        stats = ExecutorStats(
            clouds=len(results),
            points=sum(r.num_points for r in results),
            wall_seconds=wall,
            busy_seconds=sum(r.seconds for r in results),
            cache_hits=sum(1 for r in results if r.cache_hit and not r.reused),
            cache_misses=sum(1 for r in results if not r.cache_hit),
            reused=sum(1 for r in results if r.reused),
        )
        return BatchReport(results=results, stats=stats)

    # -- pool plumbing -------------------------------------------------------

    def _make_pool(self) -> Executor:
        if self.mode == "process":
            return ProcessPoolExecutor(
                max_workers=self.max_workers,
                initializer=_process_init,
                initargs=(
                    self.partitioner_name,
                    self.block_size,
                    self.use_batched_ops,
                    self.cache_size,
                ),
            )
        return ThreadPoolExecutor(
            max_workers=self.max_workers,
            thread_name_prefix="repro-batch",
        )

    def _submit(self, pool: Executor, task: tuple, pipeline: PipelineSpec):
        index, coords, features = task
        if self.mode == "process":
            return pool.submit(_process_run, (index, coords, features, pipeline))
        return pool.submit(self._execute, index, coords, features, pipeline)
