"""Tests for the GPU cost model (Fig. 4 shape)."""

import pytest

from repro.hw import GPUModel
from repro.networks import WORKLOADS, get_workload


@pytest.fixture(scope="module")
def gpu():
    return GPUModel()


class TestBottleneckShift:
    def test_pointop_share_grows_with_scale(self, gpu):
        """Fig. 4's headline: point ops rise from ~30-50% at 1 K to >90%
        at 289 K."""
        spec = get_workload("PNXt(s)")
        shares = {}
        for n in (4096, 33_000, 289_000):
            r = gpu.run(spec, n)
            shares[n] = r.point_op_seconds / r.latency_s
        assert shares[4096] < shares[33_000] < shares[289_000]
        assert shares[289_000] > 0.9

    def test_small_scale_mlp_still_visible(self, gpu):
        spec = get_workload("PN++(c)")
        r = gpu.run(spec, 1024)
        share = r.point_op_seconds / r.latency_s
        assert 0.25 < share < 0.75  # paper: ~36% at 1K

    def test_latency_superlinear_in_scale(self, gpu):
        spec = get_workload("PNXt(s)")
        t_33 = gpu.run(spec, 33_000).latency_s
        t_289 = gpu.run(spec, 289_000).latency_s
        assert t_289 / t_33 > 289 / 33  # worse than linear: the O(n^2) terms

    @pytest.mark.parametrize("key", sorted(WORKLOADS))
    def test_all_workloads_run(self, gpu, key):
        spec = get_workload(key)
        n = max(spec.min_points() * 4, 1024)
        r = gpu.run(spec, n)
        assert r.latency_s > 0
        assert r.energy_j > 0
        assert r.platform == "GPU"


class TestPhaseAccounting:
    def test_cls_has_no_interpolation(self, gpu):
        r = gpu.run(get_workload("PN++(c)"), 1024)
        assert "interpolate" not in r.phases

    def test_seg_has_interpolation(self, gpu):
        r = gpu.run(get_workload("PN++(s)"), 4096)
        assert r.phases["interpolate"].seconds > 0

    def test_energy_tracks_latency(self, gpu):
        spec = get_workload("PNXt(s)")
        small = gpu.run(spec, 8192)
        big = gpu.run(spec, 131_000)
        assert big.energy_j > small.energy_j

    def test_power_in_gpu_envelope(self, gpu):
        """Average power must sit between idle and max board power."""
        r = gpu.run(get_workload("PNXt(s)"), 33_000)
        avg_power = r.energy_j / r.latency_s
        assert gpu.idle_w <= avg_power <= gpu.idle_w + gpu.dynamic_w
