"""Kernel registry and cost-model dispatch for block-parallel point ops.

Every block-parallel operation now has three interchangeable
implementations — the per-block **loop** (:mod:`repro.core.bppo`
``block_*``), the padded **stacked** fast path (``block_*_batched``), and
the fused **ragged** CSR kernels (:mod:`repro.core.ragged`) — all
bit-identical under the parity suite, differing only in speed.  This
module is the single place that knows which one to run:

- :data:`KERNELS` maps ``op name → kernel name → callable`` with the
  uniform ``(structure, coords, ...) -> (result, trace)`` signature;
- :func:`choose_kernel` picks a kernel from the partition's block-size
  statistics (see the dispatch table below);
- :func:`run_op` resolves and executes in one call — the entry point the
  network backends and the batch executor go through.

Dispatch table (``kernel="auto"``)
----------------------------------

The unit of cost is a block's *work product* — centres × search-space
size, the number of distance evaluations the block needs.  Auto dispatch
assigns each block's product to one of three regimes and picks the kernel
owning the largest share of total work:

======== ============================================ =====================
kernel   regime (per-block work product)              why it wins there
======== ============================================ =====================
stacked  ``<= _STACK_SMALL`` (128)                    dispatch overhead
                                                      dominates; padding
                                                      waste is tiny
ragged   ``<= RAGGED_BLOCK_MAX`` (512)                too big to pad, too
                                                      small to amortise a
                                                      per-block Python trip
loop     ``> RAGGED_BLOCK_MAX``                       each block is
                                                      dominated by its own
                                                      GEMM/sort; fusion
                                                      buys nothing
======== ============================================ =====================

Centre counts are exact when the caller already groups its centres by
block — pipeline stages know how many centres each block received from
the previous stage — so :func:`choose_kernel` accepts **measured**
per-block counts (``center_counts``) and uses them verbatim.  Callers
that only know the total fall back to spreading the requested centres
proportionally to block population — exact for FPS quotas, a close proxy
elsewhere.  Misprediction costs speed only, never results.

Overrides
---------

Precedence is **explicit argument > environment > auto**: a concrete
``kernel=`` argument (or ``--kernel`` CLI flag) always wins; the
environment variable :data:`KERNEL_ENV` (``REPRO_KERNEL``) only fills in
when the caller left the choice at ``"auto"`` — the benchmarking hook
used by ``benchmarks/bench_ragged_kernels.py``; the cost model decides
whatever remains unresolved.
"""

from __future__ import annotations

import os
from typing import Callable

import numpy as np

from . import bppo, ragged
from .. import obs
from .blocks import BlockStructure
from .bppo import _STACK_SMALL
from .ragged import RAGGED_BLOCK_MAX

__all__ = [
    "AGG_ENV",
    "AGG_NAMES",
    "BUILD_KERNEL_ENV",
    "BUILD_KERNEL_NAMES",
    "GATHER_ELEM_SECONDS",
    "KERNELS",
    "KERNEL_NAMES",
    "KERNEL_ENV",
    "MATMUL_MAC_SECONDS",
    "choose_agg",
    "choose_build_kernel",
    "choose_kernel",
    "mlp_row_macs",
    "resolve_agg",
    "resolve_build_kernel",
    "resolve_kernel",
    "run_build",
    "run_op",
    "validate_agg",
    "validate_build_kernel",
    "validate_kernel",
]

#: Environment variable forcing a kernel (``loop | stacked | ragged`` to
#: pin one, ``auto`` / unset for the cost model).
KERNEL_ENV = "REPRO_KERNEL"

#: Accepted kernel selectors, ``auto`` first (the default everywhere).
KERNEL_NAMES = ("auto", "loop", "stacked", "ragged")

#: op name → kernel name → implementation.  All entries of one op take the
#: same arguments and return bit-identical ``(result, trace)``.
KERNELS: dict[str, dict[str, Callable]] = {
    "fps": {
        "loop": bppo.block_fps,
        "stacked": bppo.block_fps_batched,
        "ragged": ragged.ragged_fps,
    },
    "ball_query": {
        "loop": bppo.block_ball_query,
        "stacked": bppo.block_ball_query_batched,
        "ragged": ragged.ragged_ball_query,
    },
    "knn": {
        "loop": bppo.block_knn,
        "stacked": bppo.block_knn_batched,
        "ragged": ragged.ragged_knn,
    },
    "interpolate": {
        "loop": bppo.block_interpolate,
        "stacked": bppo.block_interpolate_batched,
        "ragged": ragged.ragged_interpolate,
    },
    "gather": {
        "loop": bppo.block_gather,
        "stacked": bppo.block_gather_batched,
        "ragged": ragged.ragged_gather,
    },
}


def validate_kernel(kernel: str) -> str:
    """Return ``kernel`` unchanged or raise — the one shared name check."""
    if kernel not in KERNEL_NAMES:
        raise ValueError(
            f"kernel must be one of {KERNEL_NAMES}, got {kernel!r}"
        )
    return kernel


def choose_kernel(
    op: str,
    structure: BlockStructure,
    num_centers: int | None = None,
    center_counts: np.ndarray | None = None,
) -> str:
    """Pick ``loop | stacked | ragged`` for one op call from block stats.

    Args:
        op: operation name (a :data:`KERNELS` key).
        structure: the partition the op will run over.
        num_centers: total query centres (sample count for ``fps``,
            centre rows for the neighbour searches); ``None`` assumes one
            centre per point.
        center_counts: measured ``(num_blocks,)`` per-block centre counts
            — e.g. the FPS quotas, or a bincount of the previous stage's
            sampled centres over the owner map.  When given, it replaces
            the population-proportion estimate, so skewed partitions
            dispatch on their real work distribution.

    Returns:
        The kernel name owning the largest share of estimated work.
    """
    sizes = structure.block_sizes.astype(np.float64)
    total = sizes.sum()
    if total == 0:
        return "stacked"
    if center_counts is not None:
        centers_est = np.asarray(center_counts, dtype=np.float64)
        if centers_est.shape != (structure.num_blocks,):
            raise ValueError(
                f"center_counts must be ({structure.num_blocks},), got "
                f"{centers_est.shape}"
            )
    else:
        m = total if num_centers is None else float(num_centers)
        centers_est = m * sizes / total
    search = (
        sizes if op == "fps" else structure.search_sizes.astype(np.float64)
    )
    products = centers_est * search
    work_small = products[products <= _STACK_SMALL].sum()
    mid = (products > _STACK_SMALL) & (products <= RAGGED_BLOCK_MAX)
    work_mid = products[mid].sum()
    work_big = products[products > RAGGED_BLOCK_MAX].sum()
    best = max(
        ("stacked", work_small), ("ragged", work_mid), ("loop", work_big),
        key=lambda kv: kv[1],
    )
    return best[0]


def resolve_kernel(
    op: str,
    structure: BlockStructure,
    num_centers: int | None = None,
    kernel: str = "auto",
    center_counts: np.ndarray | None = None,
) -> str:
    """Resolve ``kernel`` to a concrete name.

    Precedence: an explicit non-``auto`` ``kernel`` argument wins
    outright; :data:`KERNEL_ENV` fills in only when the argument is
    ``"auto"``; whatever is still ``"auto"`` after that goes to the cost
    model (with measured ``center_counts`` when the caller has them).
    """
    kernel = validate_kernel(kernel)
    if kernel == "auto":
        override = os.environ.get(KERNEL_ENV)
        if override:
            kernel = validate_kernel(override)
    if kernel == "auto":
        kernel = choose_kernel(op, structure, num_centers, center_counts)
    return kernel


# --------------------------------------------------------------------------
# cold-path build kernels (partition construction on a cache miss)
# --------------------------------------------------------------------------

#: Environment variable forcing a build kernel on cache misses
#: (``build_then_sample | fused`` to pin one, ``auto`` / unset for the
#: cost model).
BUILD_KERNEL_ENV = "REPRO_BUILD"

#: Accepted build-kernel selectors, ``auto`` first.
BUILD_KERNEL_NAMES = ("auto", "build_then_sample", "fused")


def validate_build_kernel(kernel: str) -> str:
    if kernel not in BUILD_KERNEL_NAMES:
        raise ValueError(
            f"build kernel must be one of {BUILD_KERNEL_NAMES}, got {kernel!r}"
        )
    return kernel


def _block_bound(partitioner) -> int:
    """The partitioner's points-per-block target (``th`` / BS)."""
    for attr in ("max_leaf_size", "target_block_size", "block_size"):
        bound = getattr(partitioner, attr, None)
        if bound:
            return int(bound)
    config = getattr(partitioner, "config", None)
    if config is not None and getattr(config, "threshold", 0):
        return int(config.threshold)
    return 256


def choose_build_kernel(partitioner, num_points: int, num_samples: int) -> str:
    """Cost-model choice between the fused and the two-pass cold build.

    Fusion wins when every leaf's eagerly sampled candidate is likely to
    stay inside its final quota — i.e. the sample budget covers roughly
    one sample per expected block.  Below that, the fused path's
    at-least-one-per-leaf eagerness does work the largest-remainder
    allocation will discard, and the two-pass build (which knows the
    exact quotas, many of them zero) is cheaper.  Partitioners without
    the leaf hook always build-then-sample.
    """
    from .coldpath import supports_fused_build

    if not supports_fused_build(partitioner):
        return "build_then_sample"
    expected_blocks = -(-max(1, num_points) // _block_bound(partitioner))
    return "fused" if num_samples >= expected_blocks else "build_then_sample"


def resolve_build_kernel(
    partitioner, num_points: int, num_samples: int, kernel: str = "auto"
) -> str:
    """Resolve a build-kernel selector to a concrete name.

    Same precedence as :func:`resolve_kernel` (explicit > environment >
    cost model), with one safety clamp: ``"fused"`` on a partitioner
    without the leaf hook degrades to ``"build_then_sample"`` — the
    partitioner choice is orthogonal to the build-kernel knob, and a
    hard error here would make ``REPRO_BUILD=fused`` unusable in mixed
    sweeps.
    """
    from .coldpath import supports_fused_build

    kernel = validate_build_kernel(kernel)
    if kernel == "auto":
        override = os.environ.get(BUILD_KERNEL_ENV)
        if override:
            kernel = validate_build_kernel(override)
    if kernel == "auto":
        kernel = choose_build_kernel(partitioner, num_points, num_samples)
    if kernel == "fused" and not supports_fused_build(partitioner):
        kernel = "build_then_sample"
    return kernel


def run_build(
    partitioner,
    coords: np.ndarray,
    num_samples: int,
    kernel: str = "auto",
):
    """Build a partition and its FPS sample set in one dispatched call.

    Returns ``(structure, sampled, fps_trace, name)`` where ``name`` is
    the build kernel that ran.  Both kernels are bit-identical; the fused
    one interleaves per-leaf FPS with tree construction
    (:func:`repro.core.coldpath.fused_build_and_sample`), the reference
    one runs ``partitioner(coords)`` followed by ``block_fps``.
    """
    from .coldpath import fused_build_and_sample

    name = resolve_build_kernel(partitioner, len(coords), num_samples, kernel)
    with (
        obs.span("build." + name, points=len(coords), samples=num_samples)
        if obs.enabled()
        else obs.NULL_SPAN
    ):
        if name == "fused":
            structure, sampled, trace = fused_build_and_sample(
                partitioner, coords, num_samples
            )
        else:
            structure = partitioner(coords)
            sampled, trace = bppo.block_fps(structure, coords, num_samples)
    return structure, sampled, trace, name


# --------------------------------------------------------------------------
# aggregation order (the networks' MLP/aggregate op class)
# --------------------------------------------------------------------------

#: Environment variable forcing a set-abstraction aggregation order
#: (``eager | delayed`` to pin one, ``auto`` / unset for the cost model).
AGG_ENV = "REPRO_AGG"

#: Accepted aggregation selectors, ``auto`` first.  ``eager`` is the
#: textbook gather-then-MLP order (gather neighbour inputs, run the
#: shared MLP over ``(m, k, c)``, pool); ``delayed`` is the
#: Mesorasi-style restructure (run the MLP once per point over
#: ``(n, c)``, gather *output* rows by the ball-query indices, pool).
#: Bit-identical — the MLP is pointwise and every row is computed
#: identically regardless of batching (the Dense row-stability
#: contract) — so the choice only moves work between the GEMM and the
#: gather.
AGG_NAMES = ("auto", "eager", "delayed")

#: Fitted per-element costs of the two resources an aggregation order
#: trades between, measured on the CI-class host this repo benchmarks
#: on (numpy + OpenBLAS, float64): one multiply-accumulate of a shared-
#: MLP GEMM at network-typical widths (19-256 channels), and one
#: fancy-index-gathered array element (memory-bound, ~75x a MAC).
#: Absolute values drift with hardware; only their ratio steers
#: :func:`choose_agg`, and the regimes differ by >2x at the crossover.
MATMUL_MAC_SECONDS = 7e-11
GATHER_ELEM_SECONDS = 5e-9


def validate_agg(agg: str) -> str:
    if agg not in AGG_NAMES:
        raise ValueError(f"agg must be one of {AGG_NAMES}, got {agg!r}")
    return agg


def mlp_row_macs(widths) -> int:
    """Multiply-accumulates one input row costs through a shared MLP."""
    widths = list(widths)
    return sum(a * b for a, b in zip(widths, widths[1:]))


def choose_agg(
    num_points: int, num_centers: int, k: int, mlp_widths,
) -> str:
    """Cost-model choice of aggregation order for one SA stage.

    Eager evaluates the MLP on every gathered neighbour row
    (``m * k`` rows) after gathering its *input* channels; delayed
    evaluates it once per point (``n`` rows) and gathers its *output*
    channels.  With the fitted constants above::

        eager   = m*k*W*MAC + m*k*c_in *GATHER
        delayed = n  *W*MAC + m*k*c_out*GATHER

    where ``W`` is the per-row MAC count of the MLP.  Delayed wins
    whenever neighbour groups overlap (``m*k > n`` — every PointNet++-
    style stage, where ``m ~ n/4`` and ``k = 16`` give ~4x overlap)
    unless the MLP widens the channels enough that gathering outputs
    costs more than the spared GEMM work — exactly the Mesorasi
    trade-off.
    """
    widths = list(mlp_widths)
    row_macs = mlp_row_macs(widths)
    gathered = num_centers * k
    eager = gathered * row_macs * MATMUL_MAC_SECONDS + (
        gathered * widths[0] * GATHER_ELEM_SECONDS
    )
    delayed = num_points * row_macs * MATMUL_MAC_SECONDS + (
        gathered * widths[-1] * GATHER_ELEM_SECONDS
    )
    return "delayed" if delayed <= eager else "eager"


def resolve_agg(
    agg: str = "auto",
    *,
    num_points: int | None = None,
    num_centers: int | None = None,
    k: int | None = None,
    mlp_widths=None,
) -> str:
    """Resolve an aggregation selector to ``eager`` or ``delayed``.

    Same precedence as :func:`resolve_kernel`: an explicit non-``auto``
    argument wins, :data:`AGG_ENV` fills in when the argument is
    ``"auto"``, and the cost model decides the rest (falling back to
    ``delayed`` when the caller cannot describe the stage — the winning
    order for every stage shape the backbones actually use).
    """
    agg = validate_agg(agg)
    if agg == "auto":
        override = os.environ.get(AGG_ENV)
        if override:
            agg = validate_agg(override)
    if agg == "auto":
        if None in (num_points, num_centers, k) or mlp_widths is None:
            return "delayed"
        agg = choose_agg(num_points, num_centers, k, mlp_widths)
    return agg


def run_op(
    op: str,
    structure: BlockStructure,
    *args,
    kernel: str = "auto",
    num_centers: int | None = None,
    center_counts: np.ndarray | None = None,
    **kwargs,
):
    """Dispatch one block-parallel op to the chosen kernel.

    ``args``/``kwargs`` are forwarded verbatim to the implementation
    (every kernel of an op shares one signature); ``num_centers`` /
    ``center_counts`` only steer the cost model.  Returns the kernel's
    ``(result, trace)`` pair.
    """
    if op not in KERNELS:
        raise ValueError(f"unknown op {op!r}; expected one of {sorted(KERNELS)}")
    name = resolve_kernel(op, structure, num_centers, kernel, center_counts)
    if obs.enabled():
        with obs.span("op." + op, kernel=name):
            return KERNELS[op][name](structure, *args, **kwargs)
    return KERNELS[op][name](structure, *args, **kwargs)
