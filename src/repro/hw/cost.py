"""Common cost record flowing from unit models to the accelerator simulator."""

from __future__ import annotations

from dataclasses import dataclass

from . import energy as E

__all__ = ["UnitCost"]


@dataclass
class UnitCost:
    """Raw resource usage of one hardware operation.

    The accelerator turns this into latency (max of compute/SRAM/DRAM
    pipelines) and energy (sum of components).

    Attributes:
        compute_cycles: cycles occupied by the issuing unit's datapath.
        cmp_ops: 16-bit compare/select operations (distance updates,
            pooling, partition comparisons).
        macs: multiply-accumulates (MLP work).
        sram_stream_bytes / sram_random_bytes: on-chip traffic by pattern.
        dram_stream_bytes / dram_random_bytes: off-chip traffic by pattern.
        serial: True when the op cannot overlap with DRAM prefetch
            (sequentially dependent, e.g. KD-tree sorts).
    """

    compute_cycles: float = 0.0
    cmp_ops: float = 0.0
    macs: float = 0.0
    sram_stream_bytes: float = 0.0
    sram_random_bytes: float = 0.0
    dram_stream_bytes: float = 0.0
    dram_random_bytes: float = 0.0
    serial: bool = False

    def merge(self, other: "UnitCost") -> "UnitCost":
        return UnitCost(
            compute_cycles=self.compute_cycles + other.compute_cycles,
            cmp_ops=self.cmp_ops + other.cmp_ops,
            macs=self.macs + other.macs,
            sram_stream_bytes=self.sram_stream_bytes + other.sram_stream_bytes,
            sram_random_bytes=self.sram_random_bytes + other.sram_random_bytes,
            dram_stream_bytes=self.dram_stream_bytes + other.dram_stream_bytes,
            dram_random_bytes=self.dram_random_bytes + other.dram_random_bytes,
            serial=self.serial or other.serial,
        )

    @property
    def compute_energy_j(self) -> float:
        return (self.cmp_ops * E.PJ_PER_CMP + self.macs * E.PJ_PER_MAC_FP16) * 1e-12
