"""The non-partitioned baseline (PointAcc / Mesorasi execution model).

A single block containing every point, whose search space is the whole
cloud — i.e. every point operation degenerates to the original global
search.  Used as the accuracy-lossless, efficiency-poor anchor of
Fig. 3(a) and as the execution model of the non-partitioning accelerators.
"""

from __future__ import annotations

import numpy as np

from ..core.blocks import Block, BlockStructure, PartitionCost
from .base import Partitioner

__all__ = ["NoPartitioner"]


class NoPartitioner(Partitioner):
    """Identity partition: one block, global search space, zero cost."""

    name = "none"

    def partition(self, coords: np.ndarray) -> BlockStructure:
        n = len(coords)
        if n == 0:
            raise ValueError("cannot partition an empty point cloud")
        indices = np.arange(n, dtype=np.int64)
        return BlockStructure(
            num_points=n,
            blocks=[Block(indices, depth=0)],
            search_spaces=[indices],
            cost=PartitionCost(levels=0),
            strategy=self.name,
        )
