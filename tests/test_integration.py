"""End-to-end integration tests across the whole stack."""

import numpy as np

from repro.core import FractalConfig, fractal_partition, block_fps, block_ball_query, block_gather
from repro.core.layout import BlockLayout
from repro.datasets import load_cloud, make_classification_dataset
from repro.geometry import farthest_point_sample
from repro.hw import AcceleratorSim, FRACTALCLOUD, POINTACC, GPUModel
from repro.networks import (
    PNNClassifier,
    evaluate_classifier,
    make_backend,
    train_classifier,
    get_workload,
)


class TestFullPipeline:
    def test_dataset_to_blockops_to_simulator(self):
        """The README quickstart flow, executed end to end."""
        cloud = load_cloud("s3dis", 8192, seed=0)
        coords = cloud.coords.astype(np.float64)

        tree = fractal_partition(coords, FractalConfig(threshold=256))
        structure = tree.block_structure()
        layout = BlockLayout.from_tree(tree)
        assert layout.num_blocks == tree.num_blocks

        sampled, fps_trace = block_fps(structure, coords, 2048)
        neighbors, bq_trace = block_ball_query(structure, coords, sampled, 0.2, 16)
        feats = np.random.default_rng(0).normal(size=(8192, 32))
        gathered, g_trace = block_gather(structure, feats, neighbors, sampled)
        assert gathered.shape == (2048, 16, 32)
        assert fps_trace.total_outputs == 2048
        assert bq_trace.num_blocks == structure.num_blocks

        result = AcceleratorSim(FRACTALCLOUD).run(get_workload("PNXt(s)"), 8192)
        assert result.latency_s > 0

    def test_training_with_fractal_backend_close_to_exact(self):
        """Fig. 14's core claim: retrained networks under block-wise ops
        reach accuracy comparable to exact ops."""
        clouds = make_classification_dataset(30, 128, seed=1)
        accs = {}
        for name in ("exact", "fractal"):
            model = PNNClassifier(num_classes=10, num_points=128, seed=0)
            backend = make_backend(name, max_points_per_block=32)
            train_classifier(model, clouds, backend, epochs=5, batch_size=6, lr=3e-3)
            accs[name] = evaluate_classifier(model, clouds, backend)
        assert accs["exact"] > 0.2
        # Fractal training lands in the same accuracy regime.
        assert accs["fractal"] > accs["exact"] - 0.25

    def test_sampling_quality_survives_whole_scene_pipeline(self):
        """Mean nearest-sample distance (what feature quality tracks)
        stays close to exact FPS even on outlier-heavy LiDAR frames."""
        from repro.geometry import pairwise_sq_dists

        coords = load_cloud("lidar", 16384, seed=2).coords.astype(np.float64)
        tree = fractal_partition(coords, FractalConfig(threshold=256))
        sampled, _ = block_fps(tree.block_structure(), coords, 4096)
        exact = farthest_point_sample(coords, 4096)

        def mean_cov(sel):
            return np.sqrt(pairwise_sq_dists(coords, coords[sel]).min(axis=1)).mean()

        assert mean_cov(sampled) / mean_cov(exact) < 2.0

    def test_hardware_and_gpu_agree_on_workload_identity(self):
        spec = get_workload("PN++(s)")
        gpu = GPUModel().run(spec, 4096)
        acc = AcceleratorSim(POINTACC).run(spec, 4096)
        assert gpu.workload == acc.workload == "PN++(s)"
        assert gpu.num_points == acc.num_points == 4096

    def test_headline_claim_shape(self):
        """FractalCloud beats PointAcc by a large factor at large scale
        while both simulate the same network (the paper's thesis)."""
        spec = get_workload("PNXt(s)")
        fc = AcceleratorSim(FRACTALCLOUD).run(spec, 131_000)
        pa = AcceleratorSim(POINTACC).run(spec, 131_000)
        assert pa.latency_s / fc.latency_s > 10
        assert pa.energy_j / fc.energy_j > 10
