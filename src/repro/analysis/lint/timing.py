"""Timing discipline: REP008.

Per-stage time accounting only works if every measurement flows through
one subsystem.  PR 9 made :mod:`repro.obs` that subsystem: spans for
durations, metrics for counts, and ``repro.obs.now`` as the sanctioned
monotonic clock (it *is* ``time.perf_counter``, but routed through one
name so the trace summarizer, the cross-process stitching, and the
serving telemetry all agree on the timebase).

REP008 therefore bans ad-hoc monotonic-clock reads —
``time.perf_counter()`` / ``time.monotonic()`` and their ``_ns``
variants, called, aliased, or imported — everywhere in the ``repro``
package except inside ``repro.obs`` itself.  Benchmarks, examples, and
tests resolve to bare module stems and are exempt (benchmark harnesses
legitimately time things the observability layer should not see).
"""

from __future__ import annotations

import ast

from .engine import ModuleContext, dotted_name
from .registry import rule

#: Monotonic-clock attributes of the ``time`` module that REP008 owns.
_CLOCK_ATTRS = frozenset(
    {"perf_counter", "monotonic", "perf_counter_ns", "monotonic_ns"}
)
_CLOCKS = frozenset(f"time.{attr}" for attr in _CLOCK_ATTRS)


@rule(
    "REP008",
    "ad-hoc-timing",
    "time.perf_counter()/time.monotonic() only inside repro.obs; "
    "everything else times through obs spans/metrics and obs.now",
)
def check_timing(ctx: ModuleContext):
    if not ctx.in_module("repro") or ctx.in_module("repro.obs"):
        return
    for node in ast.walk(ctx.tree):
        # One finding per clock mention: a call like time.perf_counter()
        # is reported at its Attribute node (the Call wrapper adds
        # nothing), and bare references (``clock=time.perf_counter``)
        # are just as much an ad-hoc clock as a call.
        if isinstance(node, ast.Attribute):
            name = dotted_name(node)
            if name in _CLOCKS:
                yield (
                    node.lineno, node.col_offset,
                    f"ad-hoc {name} read; take timestamps from "
                    "repro.obs.now() and measure durations with obs "
                    "spans/metrics so per-stage accounting sees them",
                )
        elif isinstance(node, ast.ImportFrom) and node.module == "time":
            for alias in node.names:
                if alias.name in _CLOCK_ATTRS:
                    yield (
                        node.lineno, node.col_offset,
                        f"from time import {alias.name} hides a monotonic "
                        "clock from REP008; import repro.obs and use "
                        "obs.now()/spans instead",
                    )
