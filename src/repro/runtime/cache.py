"""Content-addressed partition cache shared by the execution engine and
the network backends.

Partitioning is the preprocessing cost the paper works so hard to bound
(Fig. 5); in a serving loop the same cloud frequently recurs — repeated
frames of a slow-moving sensor, retries, popular assets — so the runtime
keys finished :class:`~repro.core.blocks.BlockStructure` objects by a
content hash of the coordinates and replays them instead of re-sorting.
The cache is a thread-safe LRU: the batched executor shares one instance
across its worker threads.
"""

from __future__ import annotations

import hashlib
import threading
import weakref
from collections import OrderedDict
from typing import TYPE_CHECKING, Callable

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.blocks import BlockStructure
    from ..core.ragged import RaggedBlocks

__all__ = ["content_key", "result_key", "PartitionCache",
           "clear_all_partition_caches"]

#: Every live cache instance, so test harnesses can flush partition state
#: globally (``repro.runtime.compiler.clear_caches``) without threading a
#: reference to each backend's private cache.  Weak references: caches
#: die with their owners.
_ALL_CACHES: "weakref.WeakSet[PartitionCache]" = weakref.WeakSet()


def clear_all_partition_caches() -> int:
    """Clear every live :class:`PartitionCache`; returns how many.

    Dropping a cached :class:`BlockStructure` also drops the ragged CSR
    layout riding on it, so this resets *all* derived partition state.
    """
    caches = list(_ALL_CACHES)
    for cache in caches:
        cache.clear()
    return len(caches)


def content_key(coords: np.ndarray, *, dtype=np.float32) -> bytes:
    """Digest identifying an array by content.

    The default float32 rendering suits the *partition* cache: partition
    decisions are far coarser than float32 resolution, and any partition
    of the right index set is valid.  Callers that replay full results
    (request deduplication) must pass ``dtype=np.float64`` — at float32
    two distinct float64 clouds could collide and the second would
    silently receive the first one's results.  The shape is hashed too,
    so arrays differing only in length never collide with a prefix, and
    so are the input and rendered dtypes: same-shape arrays whose raw
    bytes happen to agree under different dtypes (all-zero int64 vs
    all-zero float64) must never share a key, and digests produced at
    different renderings must never collide in a shared map.
    """
    coords = np.asarray(coords)
    source_dtype = coords.dtype.str
    coords = np.ascontiguousarray(coords, dtype=dtype)
    digest = hashlib.blake2b(digest_size=16)
    digest.update(source_dtype.encode())
    digest.update(coords.dtype.str.encode())
    digest.update(str(coords.shape).encode())
    digest.update(coords.tobytes())
    return digest.digest()


def result_key(coords: np.ndarray, features: np.ndarray | None) -> bytes:
    """The request-deduplication identity of one cloud.

    Exact float64 content of coords + features — replaying a *result*
    for a merely float32-equal cloud would be wrong (the pipeline
    computes in float64).  Every dedup surface (``stream()``,
    ``run(fuse=True)``, the windowed server) must key through here so
    their replay decisions can never diverge.
    """
    key = content_key(coords, dtype=np.float64)
    if features is not None:
        key += content_key(features, dtype=np.float64)
    return key


class PartitionCache:
    """Thread-safe LRU of partition results keyed by cloud content.

    Args:
        partitioner: any callable mapping ``(n, 3)`` coordinates to a
            :class:`BlockStructure` (every :class:`repro.partition.base.
            Partitioner` qualifies).
        maxsize: retained structures; least-recently-used entries are
            evicted first.
    """

    def __init__(
        self,
        partitioner: Callable[[np.ndarray], "BlockStructure"],
        maxsize: int = 64,
    ):
        if maxsize < 1:
            raise ValueError(f"maxsize must be >= 1, got {maxsize}")
        self.partitioner = partitioner
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self._entries: OrderedDict[bytes, "BlockStructure"] = OrderedDict()
        self._lock = threading.Lock()
        _ALL_CACHES.add(self)

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, coords: np.ndarray) -> tuple["BlockStructure", bool]:
        """Return ``(structure, was_cached)`` for ``coords``.

        The partitioner runs outside the lock, so concurrent misses on
        the same new cloud may both partition it (identical results, one
        wasted computation) — cheaper than serialising every worker
        behind the partitioner.
        """
        key = content_key(coords)
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self.hits += 1
                return self._entries[key], True
            self.misses += 1
        structure = self.partitioner(coords)
        with self._lock:
            self._entries[key] = structure
            self._entries.move_to_end(key)
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
        return structure, False

    def get_ragged(
        self, coords: np.ndarray
    ) -> tuple["BlockStructure", "RaggedBlocks", bool]:
        """Return ``(structure, ragged_layout, was_cached)`` for ``coords``.

        The ragged CSR layout is built lazily on first request and memoized
        on the structure itself (guarded by a full-precision coordinate
        digest), so it lives and dies with the cached partition — one
        layout build per distinct cloud, shared by every consumer.
        """
        from ..core.ragged import ragged_of

        structure, was_cached = self.get(coords)
        return structure, ragged_of(structure, coords), was_cached

    def clear(self) -> None:
        """Drop all entries and reset the hit/miss counters."""
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0
