"""Seeded serving-shaped load generation + a streamable cloud wire format.

Serving traffic is nothing like a tidy benchmark batch: cloud sizes are
ragged, popular frames repeat exactly (stalled sensors, retried
requests, hot assets), and arrivals come in bursts rather than a steady
drip.  :func:`generate` produces exactly that shape from one seed, so
every serve benchmark, test, and CI smoke run sees the same stream.

Three traffic profiles stress different scheduler surfaces:

- ``uniform`` — sizes uniform in ``[min_points, max_points]`` (the PR-4
  shape);
- ``diurnal`` — the size band and the burst pacing drift sinusoidally
  over the stream (period ``drift_period`` clouds, amplitude
  ``drift_amplitude``), the daily rhythm an adaptive controller must
  track without a human retuning ``W``/``T``;
- ``adversarial`` — sizes crafted to defeat bin packing: "giants" just
  over half the fusion budget (no two share a bucket under
  ``max_points ≈ adversary_points``) interleaved with "dwarfs" whose
  size ratio to the giants exceeds ``adversary_spread`` (no bucket can
  legally hold both) — best-fit-decreasing strands nearly everything as
  singleton fallbacks, the worst case the planner and the persistent
  pool must absorb;
- ``frames`` — one simulated sensor: each frame is the previous frame
  with every point nudged inside a ball of radius ``frame_motion``
  (bounded per-point displacement, so a delta policy with
  ``motion_threshold >= frame_motion`` always qualifies) and a
  ``frame_churn`` fraction of the tail replaced by fresh returns — the
  streaming workload the cold-path delta protocol exists for;
- ``hotset`` — asset-serving traffic: a fixed catalog of ``hot_assets``
  distinct clouds supplies a ``hot_rate`` fraction of requests (exact
  repeats, recency-free — every asset stays warm forever), the rest are
  one-off cold clouds.  When the catalog is bigger than one server's
  dedup window but smaller than a shard fleet's aggregate capacity,
  this is the workload where content-affine sharding wins;
- ``inference`` — model-serving traffic: uniform ragged sizes, but a
  ``corrupt_rate`` fraction of the fresh clouds passes through a
  randomly drawn corruption of :mod:`repro.datasets.corruptions`
  (jitter, dropout, occlusion, outliers — the robustness sweep a
  deployed perception model actually sees), each seeded from the stream
  position so the traffic stays deterministic.  The shape to pair with
  ``repro serve --model``.

Multi-tenant traffic comes from :func:`tenant_specs` (one seeded
rate/size mix per tenant) merged by :func:`generate_tenants` into a
single deterministic ``(tenant, cloud)`` arrival order.

The wire format is a plain concatenation of ``.npy`` records — one per
cloud — so ``repro loadgen | repro serve`` works over a pipe with no
framing protocol of its own: :func:`write_stream` emits records,
:func:`read_stream` consumes them incrementally (bounded memory, works
on non-seekable pipes) until EOF.  The multi-tenant variant interleaves
a zero-dimensional unicode record (the tenant tag) before each cloud:
:func:`write_tenant_stream` / :func:`read_tenant_stream`, the transport
of ``repro loadgen --tenants N | repro serve --tenants N``.
"""

from __future__ import annotations

import ast
import dataclasses
import heapq
import math
import time
from collections import deque
from collections.abc import Iterable, Iterator, Mapping
from dataclasses import dataclass

import numpy as np

from .. import obs
from ..datasets import corrupt, corruption_names, load_cloud

__all__ = [
    "LoadSpec",
    "generate",
    "generate_tenants",
    "read_stream",
    "read_tenant_stream",
    "tenant_specs",
    "write_stream",
    "write_tenant_stream",
]

_MAGIC = b"\x93NUMPY"

_PROFILES = (
    "uniform", "diurnal", "adversarial", "frames", "hotset", "inference"
)


@dataclass(frozen=True)
class LoadSpec:
    """One seeded serving workload.

    Attributes:
        clouds: total frames to emit.
        min_points / max_points: cloud sizes are drawn from this
            (inclusive) range — the ragged-size dimension of the traffic.
        dup_rate: probability a frame is an exact repeat of a recent
            distinct frame (the dedup-able fraction of the stream).
        dup_window: repeats are drawn from the last this-many distinct
            frames (popularity is recency-biased in serving traffic).
        burst: frames per arrival burst; with ``interval > 0`` the
            generator sleeps between bursts to model paced sensors.
        interval: seconds between bursts (``0`` = firehose, no sleeping —
            what tests and CI use).
        dataset: synthetic dataset shapes are drawn from
            (:mod:`repro.datasets` names; ``lidar`` and ``s3dis`` require
            ``min_points >= 64``).
        seed: the one knob that fixes the whole stream.
        profile: ``uniform`` | ``diurnal`` | ``adversarial`` (see module
            docstring).
        drift_period: diurnal cycle length in clouds.
        drift_amplitude: diurnal swing as a fraction of the half-range
            (sizes) and of ``interval`` (pacing), in ``[0, 1]``.
        adversary_points: the fusion point budget the adversarial
            profile defeats (``None`` = ``max_points``).
        adversary_spread: the planner spread cap the giant/dwarf ratio
            must exceed.
        frame_motion: ``frames`` profile — per-frame displacement bound;
            every retained point moves uniformly inside a ball of this
            radius, so ``max_motion <= frame_motion`` holds exactly.
        frame_churn: ``frames`` profile — fraction of the cloud's tail
            replaced by fresh sensor returns each frame (delete + insert
            churn for the delta protocol), in ``[0, 1)``.
        hot_assets: ``hotset`` profile — size of the fixed asset
            catalog; repeats of one asset are the same array object, so
            content hashes match exactly.
        hot_rate: ``hotset`` profile — probability a request draws from
            the catalog (uniformly) instead of being a one-off cloud.
        corrupt_rate: ``inference`` profile — probability a fresh cloud
            is corrupted before emission (kind drawn uniformly from the
            corruption registry).
        corrupt_severity: ``inference`` profile — severities are drawn
            from ``1..corrupt_severity`` (the registry's 1-5 scale).
    """

    clouds: int = 64
    min_points: int = 64
    max_points: int = 256
    dup_rate: float = 0.2
    dup_window: int = 8
    burst: int = 1
    interval: float = 0.0
    dataset: str = "modelnet40"
    seed: int = 0
    profile: str = "uniform"
    drift_period: int = 64
    drift_amplitude: float = 0.5
    adversary_points: int | None = None
    adversary_spread: float = 4.0
    frame_motion: float = 0.02
    frame_churn: float = 0.1
    hot_assets: int = 16
    hot_rate: float = 0.8
    corrupt_rate: float = 0.25
    corrupt_severity: int = 3

    def __post_init__(self):
        if self.clouds < 1:
            raise ValueError(f"clouds must be >= 1, got {self.clouds}")
        if not 1 <= self.min_points <= self.max_points:
            raise ValueError(
                f"need 1 <= min_points <= max_points, got "
                f"{self.min_points}..{self.max_points}"
            )
        if not 0.0 <= self.dup_rate <= 1.0:
            raise ValueError(f"dup_rate must be in [0, 1], got {self.dup_rate}")
        if self.dup_window < 1:
            raise ValueError(f"dup_window must be >= 1, got {self.dup_window}")
        if self.burst < 1:
            raise ValueError(f"burst must be >= 1, got {self.burst}")
        if self.interval < 0:
            raise ValueError(f"interval must be >= 0, got {self.interval}")
        if self.profile not in _PROFILES:
            raise ValueError(
                f"profile must be one of {_PROFILES}, got {self.profile!r}"
            )
        if self.drift_period < 2:
            raise ValueError(
                f"drift_period must be >= 2, got {self.drift_period}"
            )
        if not 0.0 <= self.drift_amplitude <= 1.0:
            raise ValueError(
                f"drift_amplitude must be in [0, 1], got {self.drift_amplitude}"
            )
        if self.adversary_points is not None and self.adversary_points < 2:
            raise ValueError(
                f"adversary_points must be >= 2 or None, got "
                f"{self.adversary_points}"
            )
        if self.adversary_spread <= 1.0:
            raise ValueError(
                f"adversary_spread must be > 1, got {self.adversary_spread}"
            )
        if self.frame_motion < 0:
            raise ValueError(
                f"frame_motion must be >= 0, got {self.frame_motion}"
            )
        if not 0.0 <= self.frame_churn < 1.0:
            raise ValueError(
                f"frame_churn must be in [0, 1), got {self.frame_churn}"
            )
        if self.hot_assets < 1:
            raise ValueError(
                f"hot_assets must be >= 1, got {self.hot_assets}"
            )
        if not 0.0 <= self.hot_rate <= 1.0:
            raise ValueError(
                f"hot_rate must be in [0, 1], got {self.hot_rate}"
            )
        if not 0.0 <= self.corrupt_rate <= 1.0:
            raise ValueError(
                f"corrupt_rate must be in [0, 1], got {self.corrupt_rate}"
            )
        if not 1 <= self.corrupt_severity <= 5:
            raise ValueError(
                f"corrupt_severity must be in 1..5, got {self.corrupt_severity}"
            )


def _draw_size(spec: LoadSpec, rng: np.random.Generator, emitted: int) -> int:
    """Cloud size for the ``emitted``-th frame under the spec's profile."""
    if spec.profile == "diurnal":
        # The size band slides sinusoidally inside [min, max]: band
        # half-width (1-A)·half, band centre mid ± A·half — the extremes
        # always stay inside the configured range.
        phase = math.sin(2.0 * math.pi * emitted / spec.drift_period)
        mid = (spec.min_points + spec.max_points) / 2.0
        half = (spec.max_points - spec.min_points) / 2.0
        center = mid + spec.drift_amplitude * half * phase
        swing = (1.0 - spec.drift_amplitude) * half
        lo = int(round(center - swing))
        hi = int(round(center + swing))
    elif spec.profile == "adversarial":
        cap = spec.adversary_points or spec.max_points
        if emitted % 4 == 3:
            # Dwarf: too small to share a bucket with a giant under any
            # spread cap <= adversary_spread.
            giant_lo = cap // 2 + 1
            target = int(giant_lo / (spec.adversary_spread * 2.0))
            lo = hi = max(spec.min_points, min(target, spec.max_points))
        else:
            # Giant: just over half the budget, so no two giants fit one
            # bucket under max_points == cap.
            lo = cap // 2 + 1
            hi = max(lo, min(spec.max_points, int(cap * 0.95)))
    else:
        lo, hi = spec.min_points, spec.max_points
    lo = max(spec.min_points, min(lo, spec.max_points))
    hi = max(lo, min(hi, spec.max_points))
    return int(rng.integers(lo, hi + 1))


def _burst_gap(spec: LoadSpec, burst_index: int, base: float) -> float:
    """Seconds between burst ``burst_index - 1`` and ``burst_index``."""
    if spec.profile == "diurnal" and spec.drift_amplitude > 0:
        phase = math.sin(
            2.0 * math.pi * burst_index * spec.burst / spec.drift_period
        )
        return max(base * (1.0 + spec.drift_amplitude * phase), 0.0)
    return base


def _advance_frame(
    cloud: np.ndarray, spec: LoadSpec, rng: np.random.Generator
) -> np.ndarray:
    """One step of the ``frames`` sensor: bounded jitter + tail churn.

    Retained points keep their row order (the frame-delta contract of
    :meth:`repro.core.delta.FrameDelta.between`); each moves uniformly
    inside a ball of radius ``frame_motion``, and the trailing
    ``frame_churn`` fraction is replaced by fresh uniform returns drawn
    in the cloud's bounding box.
    """
    n = len(cloud)
    out = cloud.copy()
    if spec.frame_motion > 0:
        dirs = rng.normal(size=(n, 3))
        norms = np.linalg.norm(dirs, axis=1, keepdims=True)
        norms[norms == 0] = 1.0
        radii = spec.frame_motion * rng.random((n, 1)) ** (1.0 / 3.0)
        out += dirs / norms * radii
    k = min(int(round(spec.frame_churn * n)), n - 1)
    if k > 0:
        lo, hi = out.min(axis=0), out.max(axis=0)
        span = np.where(hi - lo > 0, hi - lo, 1.0)
        fresh = lo + rng.random((k, 3)) * span
        out = np.concatenate([out[:-k], fresh])
    return np.ascontiguousarray(out)


def _hot_asset(
    spec: LoadSpec, catalog: dict[int, np.ndarray], rng: np.random.Generator
) -> np.ndarray:
    """One catalog draw of the ``hotset`` profile, built lazily.

    Asset ``i`` is a pure function of ``(spec.seed, i)`` — its size and
    content never depend on when the stream first requests it — and
    repeats return the cached array object itself, so content hashes
    (and the engine's dedup) match exactly.
    """
    idx = int(rng.integers(spec.hot_assets))
    cloud = catalog.get(idx)
    if cloud is None:
        size_rng = np.random.default_rng((spec.seed, 7_919, idx))
        n = int(size_rng.integers(spec.min_points, spec.max_points + 1))
        cloud = load_cloud(
            spec.dataset, n, seed=spec.seed * 104_729 + idx
        ).coords.astype(np.float64)
        catalog[idx] = cloud
    return cloud


def _frames(spec: LoadSpec) -> Iterator[np.ndarray]:
    """The spec's cloud sequence, deterministic, without pacing."""
    rng = np.random.default_rng(spec.seed)
    recent: deque[np.ndarray] = deque(maxlen=spec.dup_window)
    current: np.ndarray | None = None  # the `frames` sensor state
    catalog: dict[int, np.ndarray] = {}  # the `hotset` asset store
    for emitted in range(spec.clouds):
        if recent and rng.random() < spec.dup_rate:
            cloud = recent[int(rng.integers(len(recent)))]
        elif spec.profile == "hotset" and rng.random() < spec.hot_rate:
            cloud = _hot_asset(spec, catalog, rng)
        elif spec.profile == "frames" and current is not None:
            current = _advance_frame(current, spec, rng)
            cloud = current
            recent.append(cloud)
        else:
            n = _draw_size(spec, rng, emitted)
            loaded = load_cloud(spec.dataset, n, seed=spec.seed * 100_003 + emitted)
            if (
                spec.profile == "inference"
                and rng.random() < spec.corrupt_rate
            ):
                kinds = corruption_names()
                loaded = corrupt(
                    loaded,
                    kinds[int(rng.integers(len(kinds)))],
                    severity=int(rng.integers(1, spec.corrupt_severity + 1)),
                    seed=spec.seed * 9_973 + emitted,
                )
            cloud = loaded.coords.astype(np.float64)
            if spec.profile == "frames":
                current = cloud
            recent.append(cloud)
        yield cloud


def generate(spec: LoadSpec) -> Iterator[np.ndarray]:
    """Yield ``spec.clouds`` float64 ``(n, 3)`` clouds, deterministically.

    Duplicate frames are yielded as the *same array object* as their
    original, so their content hashes — and therefore the engine's
    dedup behaviour — match exactly.  With ``interval > 0`` the
    generator sleeps between bursts (diurnal profiles modulate the gap);
    the cloud contents never depend on the clock.
    """
    for emitted, cloud in enumerate(_frames(spec)):
        if spec.interval > 0 and emitted and emitted % spec.burst == 0:
            time.sleep(_burst_gap(spec, emitted // spec.burst, spec.interval))
        yield cloud


# -- multi-tenant traffic ----------------------------------------------------


def tenant_specs(
    count: int, base: LoadSpec | None = None, *, seed: int | None = None
) -> dict[str, LoadSpec]:
    """``count`` seeded per-tenant variations of one base spec.

    Tenant ``t<i>`` gets its own derived seed, a size band scaled across
    ``0.75×``–``1.25×`` of the base range, and a burst depth cycling
    1×/2×/3× the base — so a mix of tenants exercises ragged sizes,
    unequal rates, and unequal burstiness without hand-writing N specs.
    Deterministic: same ``(count, base, seed)`` → same mix.
    """
    if count < 1:
        raise ValueError(f"count must be >= 1, got {count}")
    base = base or LoadSpec()
    seed = base.seed if seed is None else seed
    specs: dict[str, LoadSpec] = {}
    for i in range(count):
        scale = 1.0 if count == 1 else 0.75 + 0.5 * i / (count - 1)
        lo = max(1, int(round(base.min_points * scale)))
        hi = max(lo, int(round(base.max_points * scale)))
        specs[f"t{i}"] = dataclasses.replace(
            base,
            min_points=lo,
            max_points=hi,
            burst=base.burst * (1 + i % 3),
            seed=seed * 1_000_003 + i,
        )
    return specs


def generate_tenants(
    specs: Mapping[str, LoadSpec], *, pace: bool = False
) -> Iterator[tuple[str, np.ndarray]]:
    """Merge per-tenant streams into one ``(tenant, cloud)`` arrival order.

    Each tenant's stream keeps its own seed, profile, and burst
    structure; arrivals interleave on a synthetic per-tenant timeline
    (burst index × interval, with ``interval == 0`` treated as one time
    unit per burst so firehose tenants interleave round-robin).  The
    merge is a pure function of the specs — deterministic for tests,
    benchmarks, and CI.  With ``pace=True`` the generator sleeps to
    replay the merged timeline in real time (only meaningful when the
    specs set ``interval``).
    """
    if not specs:
        raise ValueError("need at least one tenant spec")

    def timeline(pos: int, name: str, spec: LoadSpec):
        t = 0.0
        base = spec.interval if spec.interval > 0 else 1.0
        for j, cloud in enumerate(_frames(spec)):
            if j and j % spec.burst == 0:
                t += _burst_gap(spec, j // spec.burst, base)
            yield (t, pos, j, name, cloud)

    streams = [
        timeline(pos, name, spec)
        for pos, (name, spec) in enumerate(specs.items())
    ]
    start = obs.now()
    for t, _, _, name, cloud in heapq.merge(
        *streams, key=lambda entry: entry[:3]
    ):
        if pace:
            delay = start + t - obs.now()
            if delay > 0:
                time.sleep(delay)
        yield name, cloud


# -- wire format -------------------------------------------------------------


def _write_record(fh, arr: np.ndarray) -> None:
    """One ``.npy`` record, written pipe-safely.

    Header and payload written by hand: numpy's ``write_array`` calls
    ``ndarray.tofile`` on real file objects, which needs a seekable
    stream and dies on the pipes this format exists for.
    """
    np.lib.format.write_array_header_1_0(
        fh, np.lib.format.header_data_from_array_1_0(arr)
    )
    fh.write(arr.tobytes())


def write_stream(fh, clouds: Iterable[np.ndarray]) -> int:
    """Write clouds to ``fh`` as concatenated ``.npy`` records; returns
    the record count.  The inverse of :func:`read_stream`."""
    count = 0
    for cloud in clouds:
        _write_record(fh, np.ascontiguousarray(np.asarray(cloud, np.float64)))
        count += 1
    fh.flush()
    return count


def write_tenant_stream(fh, pairs: Iterable[tuple[str, np.ndarray]]) -> int:
    """Write a ``(tenant, cloud)`` stream as tag + cloud record pairs.

    The tag is a zero-dimensional unicode ``.npy`` record immediately
    preceding its cloud; :func:`read_tenant_stream` reassembles the
    pairs.  Returns the cloud count."""
    count = 0
    for tenant, cloud in pairs:
        _write_record(fh, np.array(str(tenant)))
        _write_record(fh, np.ascontiguousarray(np.asarray(cloud, np.float64)))
        count += 1
    fh.flush()
    return count


def _read_exact(fh, count: int) -> bytes:
    """Read exactly ``count`` bytes (pipes may return short reads)."""
    chunks = []
    remaining = count
    while remaining > 0:
        chunk = fh.read(remaining)
        if not chunk:
            break
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def read_stream(fh) -> Iterator[np.ndarray]:
    """Yield arrays from a concatenated ``.npy`` stream until EOF.

    Parses record headers by hand instead of looping :func:`numpy.load`
    so it works on non-seekable pipes (``repro loadgen | repro serve``)
    and never buffers more than one record.  A stream that ends mid-
    record raises ``ValueError`` — serving silently on truncated input
    would hide producer crashes.
    """
    while True:
        preamble = _read_exact(fh, len(_MAGIC) + 2)
        if not preamble:
            return
        if len(preamble) < len(_MAGIC) + 2 or preamble[: len(_MAGIC)] != _MAGIC:
            raise ValueError("input is not a concatenated .npy cloud stream")
        major = preamble[len(_MAGIC)]
        header_len_size = 2 if major == 1 else 4
        header_len_bytes = _read_exact(fh, header_len_size)
        if len(header_len_bytes) < header_len_size:
            raise ValueError("truncated .npy record header length")
        header_len = int.from_bytes(header_len_bytes, "little")
        header_bytes = _read_exact(fh, header_len)
        if len(header_bytes) < header_len:
            raise ValueError("truncated .npy record header")
        header = ast.literal_eval(header_bytes.decode("latin1"))
        dtype = np.dtype(header["descr"])
        if dtype.hasobject:
            raise ValueError("object-dtype records are not allowed on the wire")
        shape = tuple(header["shape"])
        count = int(np.prod(shape, dtype=np.int64)) if shape else 1
        data = _read_exact(fh, count * dtype.itemsize)
        if len(data) != count * dtype.itemsize:
            raise ValueError("truncated .npy record payload")
        arr = np.frombuffer(data, dtype=dtype)
        if header.get("fortran_order"):
            arr = arr.reshape(shape[::-1]).T
        else:
            arr = arr.reshape(shape)
        # frombuffer views are read-only; downstream partitioners expect
        # ordinary writable arrays.
        yield arr.copy()


def read_tenant_stream(fh) -> Iterator[tuple[str, np.ndarray]]:
    """Yield ``(tenant, cloud)`` pairs from a tagged (or plain) stream.

    A unicode record tags the cloud record that follows it; untagged
    cloud records — i.e. plain :func:`write_stream` output — fall to the
    default tenant ``"t0"``, so a single-tenant producer can feed a
    multi-tenant server unchanged.  A trailing tag with no cloud raises
    ``ValueError`` (truncated producer).
    """
    tag: str | None = None
    for arr in read_stream(fh):
        if arr.dtype.kind == "U":
            if tag is not None:
                raise ValueError("tenant tag not followed by a cloud record")
            tag = str(arr[()]) if arr.ndim == 0 else str(arr.flat[0])
            continue
        yield (tag if tag is not None else "t0", arr)
        tag = None
    if tag is not None:
        raise ValueError("tenant tag at end of stream with no cloud record")
