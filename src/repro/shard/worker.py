"""The engine shard: one worker process behind the router.

Each shard runs :func:`shard_main` in its own process: a private serial
:class:`~repro.runtime.executor.BatchExecutor` (own ``PartitionCache``,
own dedup window), a response :class:`~repro.shard.transport.ShmArena`
it owns, and a request loop that mirrors the single-process
:class:`~repro.serve.window.WindowedServer` window semantics —
dedup against the shard's rolling done-window, fused execution through
``execute_window``, replays marked ``reused`` — so a sharded deployment
stays bit-identical to the one-process reference.

Because the router's consistent hash sends every repeat of a content key
(and every frame of a delta stream) to the same shard, shard-local
caches see the same hit pattern a single process would, but the fleet's
*aggregate* cache capacity is N× one process — that is where the sharded
speedup on hot-asset traffic comes from on a single-core host.

Control traffic rides one duplex :func:`multiprocessing.Pipe` per shard
(no queue feeder threads, no extra pickling hop), bulk arrays ride the
shm transport, and replies are batched per executed window — one
``results`` message carries every result of the window plus its stats,
so per-request messaging cost stays flat as windows grow:

- router → worker: ``("run", req_id, refs, has_features, span_ctx)``
  (``span_ctx`` is the request's sampled trace context or ``None``),
  ``("free", refs)`` (response blocks the router consumed),
  ``("drain", token)``, ``("stop",)``;
- worker → router: ``("ready", shard, arena_name)``,
  ``("results", shard, [(req_id, meta, refs, req_refs), ...], stats)``
  (``stats`` may carry the window's finished spans under ``"spans"``),
  ``("drained", shard, token)``, ``("stopped", shard)``.

Tracing: the worker runs its tracer in remote-only mode (``sample=0``)
— it never opens root traces of its own, but when a batch contains a
request the router sampled, the whole window (engine, partition, ops)
records under that request's trace and the finished spans ride home in
the window's ``results`` message.
"""

from __future__ import annotations

import dataclasses
from collections import OrderedDict

import numpy as np

from .. import obs
from ..runtime.cache import result_key
from ..runtime.executor import BatchExecutor, CloudResult, PipelineSpec
from .transport import ArrayRef, PickleChannel, ShmArena, ShmPeer

__all__ = ["shard_main", "pack_result", "unpack_result", "RESULT_ARRAYS"]

#: CloudResult array fields shipped through the transport, in wire order.
RESULT_ARRAYS = ("sampled", "neighbors", "grouped", "interpolated")


def pack_result(channel, result: CloudResult, *, ship_traces: bool = True):
    """Split one result into (picklable meta, transport refs).

    ``ship_traces=False`` drops the per-op traces from the wire: they
    are serial-engine diagnostics of ~450 nested dataclass objects per
    window, and (un)pickling them costs more than moving the result
    arrays themselves at small cloud sizes.
    """
    refs: list[ArrayRef | None] = []
    for name in RESULT_ARRAYS:
        array = getattr(result, name)
        refs.append(None if array is None else channel.pack(array))
    meta = {
        "index": result.index,
        "num_points": result.num_points,
        "num_blocks": result.num_blocks,
        "cache_hit": result.cache_hit,
        "seconds": result.seconds,
        "traces": result.traces if ship_traces else {},
        "reused": result.reused,
        "partition_source": result.partition_source,
    }
    return meta, tuple(refs)


def unpack_result(peer, meta: dict, refs, *, copy: bool) -> CloudResult:
    """Rebuild a :class:`CloudResult` from wire form."""
    arrays = {
        name: None if ref is None else peer.unpack(ref, copy=copy)
        for name, ref in zip(RESULT_ARRAYS, refs)
    }
    return CloudResult(**meta, **arrays)


def shard_main(
    shard: str,
    conn,
    engine_kwargs: dict,
    pipeline: PipelineSpec,
    *,
    transport: str = "shm",
    arena_bytes: int = 64 << 20,
    max_clouds: int = 16,
    ship_traces: bool = False,
    obs_config: dict | None = None,
) -> None:
    """Process entry point of one engine shard (run under ``fork``)."""
    # Fresh, pid-correct tracer: never serve from state forked off the
    # router.  Remote-only sampling (``sample=0``) — the router decides
    # which requests trace; everything else stays on the fast exit.
    if obs_config:
        obs.configure(**obs_config)
    else:
        obs.configure(trace=False, metrics=False)
    engine = BatchExecutor(mode="serial", max_workers=1, **engine_kwargs)
    # Delta-mode caches retain request coords past the reply, so they
    # must own their bytes; otherwise zero-copy views are safe for the
    # lifetime of the window (the router reclaims request blocks only
    # after this worker reports them consumed via ``req_refs``).
    copy_requests = bool(engine_kwargs.get("delta"))
    channel = ShmArena(arena_bytes) if transport == "shm" else PickleChannel()
    peer = ShmPeer()
    done: OrderedDict[bytes, CloudResult] = OrderedDict()
    conn.send(("ready", shard, channel.name))

    def run_window(batch) -> None:
        """Dedup + fused execution of one greedy batch, mirroring
        ``WindowedServer._run_window``; replies with ONE batched
        ``results`` message."""
        # The window span parents to the first *sampled* request of the
        # batch (the router's head sampling decision rides in as the run
        # message's span context); with none, the whole window skips.
        span_ctx = next(
            (entry[4] for entry in batch if entry[4] is not None), None
        )
        with obs.span_remote(
            span_ctx, "shard.window", shard=shard, clouds=len(batch)
        ):
            uniques: list[tuple[int, np.ndarray, np.ndarray | None]] = []
            canonical: dict[bytes, int] = {}
            replays: list[tuple[int, bytes]] = []
            dup_of: dict[int, int] = {}
            for slot, (_req_id, coords, features, _refs, _ctx) in enumerate(
                batch
            ):
                key = (
                    result_key(coords, features)
                    if engine.reuse_results
                    else None
                )
                if key is not None and key in done:
                    replays.append((slot, key))
                elif key is not None and key in canonical:
                    dup_of[slot] = canonical[key]
                else:
                    if key is not None:
                        canonical[key] = slot
                    uniques.append((slot, coords, features))
            start = obs.now()
            results, plan = engine.execute_window(uniques, pipeline)
            seconds = obs.now() - start
            for slot, key in replays:
                done.move_to_end(key)
                results[slot] = dataclasses.replace(
                    done[key], index=slot, cache_hit=True, seconds=0.0,
                    reused=True,
                )
            for slot, original in dup_of.items():
                results[slot] = dataclasses.replace(
                    results[original], index=slot, cache_hit=True,
                    seconds=0.0, reused=True,
                )
            for key, slot in canonical.items():
                done[key] = results[slot]
                while len(done) > engine.reuse_window:
                    done.popitem(last=False)
            sources = [
                results[slot].partition_source for slot, _, _ in uniques
            ]
            payload = []
            with (
                obs.span("transport.pack", results=len(batch))
                if obs.enabled()
                else obs.NULL_SPAN
            ):
                for slot, (req_id, _, _, req_refs, _ctx) in enumerate(batch):
                    meta, refs = pack_result(
                        channel, results[slot], ship_traces=ship_traces
                    )
                    payload.append((req_id, meta, refs, req_refs))
        stats = {
            "size": len(batch),
            "buckets": plan.buckets,
            "fused": plan.fused_clouds,
            "singletons": plan.singleton_clouds,
            "reused": len(replays) + len(dup_of),
            "cold": sources.count("cold"),
            "patched": sources.count("patched") + sources.count("reused"),
            "warm": sources.count("warm"),
            "seconds": seconds,
        }
        spans = obs.drain()
        if spans:
            stats["spans"] = tuple(s.to_wire() for s in spans)
        conn.send(("results", shard, payload, stats))

    def decode(msg):
        """``run`` message → (req_id, coords, features, req_refs, ctx)."""
        _, req_id, refs, has_features, span_ctx = msg
        coords = peer.unpack(refs[0], copy=copy_requests)
        features = (
            peer.unpack(refs[1], copy=copy_requests) if has_features else None
        )
        return (req_id, coords, features, refs, span_ctx)

    stopping = False
    while not stopping:
        msg = conn.recv()
        batch = []
        # Greedy window assembly: take whatever is already on the pipe
        # (up to the window cap) so co-arriving requests fuse, but never
        # wait — latency on an idle shard is one pipe hop, not a timeout.
        while True:
            kind = msg[0]
            if kind == "run":
                batch.append(decode(msg))
                if len(batch) >= max_clouds:
                    break
            elif kind == "free":
                channel.reclaim(msg[1])
            elif kind == "drain":
                if batch:  # serve everything submitted before the token
                    run_window(batch)
                    batch = []
                conn.send(("drained", shard, msg[1]))
            elif kind == "stop":
                stopping = True
                break
            if not conn.poll(0):
                break
            msg = conn.recv()
        if batch:
            run_window(batch)

    engine.close()
    done.clear()
    peer.close()  # drop request-arena attachments (router owns those)
    channel.close()  # unlink the response arena
    conn.send(("stopped", shard))
