"""Tests for analysis helpers (tables, sweeps) and the project linter.

The lint tests follow one shape per rule: a positive fixture (must be
flagged), a negative fixture (must stay silent), and a suppression
fixture (flagged line silenced by ``# repro: ignore[RULE]``).  Fixture
paths are fake but *shaped* — ``src/repro/serve/mod.py`` puts a snippet
inside the parity-tested package, ``examples/demo.py`` outside it — so
module-scoped rules see exactly what they would on a real tree.
"""

import os
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.analysis import format_si, format_table, geomean, ratio, threshold_sweep
from repro.analysis.lint import RULES, Rule, lint_source, register
from repro.analysis.lint import main as lint_main
from repro.analysis.lint.engine import module_name_for
from repro.networks import get_workload

REPO = Path(__file__).resolve().parents[1]

#: A fake path inside the parity-tested serve package.
SERVE = "src/repro/serve/mod.py"
#: A fake path inside the shard package (REP007's scope).
SHARD = "src/repro/shard/mod.py"
#: A fake path outside the repro package entirely.
SCRIPT = "examples/demo.py"


def lint(src: str, path: str = SERVE, select=None):
    return lint_source(textwrap.dedent(src), path, select=select)


def rules_of(findings) -> set[str]:
    return {f.rule for f in findings}


class TestReport:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [[1, 22], [333, 4]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len(lines) == 5

    def test_geomean(self):
        assert geomean([1, 100]) == pytest.approx(10.0)
        assert geomean([7]) == pytest.approx(7.0)

    def test_geomean_validates(self):
        with pytest.raises(ValueError, match="empty"):
            geomean([])
        with pytest.raises(ValueError, match="positive"):
            geomean([1.0, 0.0])

    def test_ratio(self):
        assert ratio(10, 4) == pytest.approx(2.5)
        with pytest.raises(ZeroDivisionError):
            ratio(1, 0)

    def test_format_si(self):
        assert format_si(1024) == "1.02K"
        assert format_si(2_000_000) == "2M"
        assert format_si(12) == "12"


class TestThresholdSweep:
    def test_sweep_shape_and_tradeoff(self):
        """Fig. 17's qualitative trade-off: small thresholds are faster
        but distort sampling; no-fractal is the slow/lossless anchor."""
        spec = get_workload("PNXt(s)")
        points = threshold_sweep(spec, 8192, [None, 512, 64, 8])
        assert points[0].threshold is None
        assert points[0].speedup_vs_no_fractal == pytest.approx(1.0)
        by_th = {p.threshold: p for p in points}
        # Speedup: every fractal point beats no-fractal; smaller th faster.
        assert by_th[64].speedup_vs_no_fractal > 1.0
        assert by_th[8].speedup_vs_no_fractal >= by_th[512].speedup_vs_no_fractal
        # Quality: coverage distortion grows as blocks shrink.
        assert by_th[8].coverage_ratio >= by_th[512].coverage_ratio
        assert by_th[512].coverage_ratio >= 0.99


class TestLintEngine:
    def test_module_name_anchors_at_repro(self):
        assert module_name_for("src/repro/serve/window.py") == "repro.serve.window"
        assert module_name_for("src/repro/core/__init__.py") == "repro.core"
        assert module_name_for("examples/quickstart.py") == "quickstart"

    def test_syntax_error_is_rep000(self):
        findings = lint("def broken(:\n    pass\n")
        assert [f.rule for f in findings] == ["REP000"]

    def test_suppression_is_per_line_and_per_rule(self):
        flagged = lint("block_fps(s, c, 64)\n")
        assert rules_of(flagged) == {"REP001"}
        assert lint("block_fps(s, c, 64)  # repro: ignore[REP001]\n") == []
        # Suppressing a *different* rule on the line silences nothing.
        still = lint("block_fps(s, c, 64)  # repro: ignore[REP005]\n")
        assert rules_of(still) == {"REP001"}

    def test_suppression_comma_list(self):
        src = (
            "t = Thread(target=block_fps(s, c, 4))"
            "  # repro: ignore[REP001, REP004]\n"
        )
        assert lint(src) == []

    def test_unknown_select_rejected(self):
        with pytest.raises(ValueError, match="unknown rule"):
            lint("x = 1\n", select=["REP999"])

    def test_registry_rejects_duplicate_ids(self):
        with pytest.raises(ValueError, match="already registered"):
            register(Rule("REP001", "imposter", "dup", lambda ctx: ()))

    def test_registry_accepts_downstream_rules(self):
        def no_todo(ctx):
            for i, line in enumerate(ctx.lines, start=1):
                if "TODO" in line:
                    yield (i, line.index("TODO"), "unresolved TODO")

        register(Rule("TST900", "no-todo", "test-only rule", no_todo))
        try:
            findings = lint("x = 1  # TODO later\n", select=["TST900"])
            assert [f.rule for f in findings] == ["TST900"]
        finally:
            del RULES["TST900"]

    def test_finding_format_is_path_line_col(self):
        finding = lint("block_fps(s, c, 64)\n")[0]
        assert finding.format() == (
            f"{SERVE}:1:0: REP001 " + finding.message
        )


class TestKernelRules:
    def test_rep001_flags_direct_kernel_calls(self):
        for call in ("block_fps(s, c, 4)",
                     "bppo.block_ball_query_batched(s, c, i, 0.2, 16)",
                     "ragged.ragged_knn(s, c, cand, ctr, 3)"):
            assert rules_of(lint(f"{call}\n")) == {"REP001"}, call

    def test_rep001_allows_dispatch_and_kernel_homes(self):
        assert lint("dispatch.run_op('fps', s, c, 4)\n") == []
        # The dispatcher and the kernel-definition modules may call
        # implementations directly — that is where they live.
        inside = "block_fps(s, c, 4)\n"
        for home in ("src/repro/core/dispatch.py", "src/repro/core/ragged.py",
                     "src/repro/core/bppo.py", "src/repro/core/coldpath.py"):
            assert lint(inside, path=home) == [], home

    def test_rep001_applies_outside_the_package_too(self):
        # Examples and benchmarks hold the same contract (or suppress).
        assert rules_of(lint("block_fps(s, c, 4)\n", path=SCRIPT)) == {"REP001"}

    def test_rep002_flags_env_reads_outside_dispatch(self):
        for src in ('os.environ.get("REPRO_KERNEL")\n',
                    'os.getenv("REPRO_BUILD_KERNEL", "auto")\n',
                    'os.environ["REPRO_KERNEL"]\n',
                    "os.environ.get(KERNEL_ENV)\n"):
            assert rules_of(lint(src)) == {"REP002"}, src

    def test_rep002_allows_dispatch_and_foreign_keys(self):
        assert lint('os.environ.get("REPRO_KERNEL")\n',
                    path="src/repro/core/dispatch.py") == []
        assert lint('os.environ.get("PATH")\n') == []
        assert lint('os.environ["HOME"]\n') == []


class TestResourceRules:
    def test_rep003_flags_shm_outside_transport(self):
        src = "seg = SharedMemory(create=True, size=64)\n"
        assert "REP003" in rules_of(lint(src))
        assert lint(src, path="src/repro/shard/transport.py",
                    select=["REP003"]) == []

    def test_rep004_flags_discarded_and_unjoined(self):
        # Constructed and dropped on the floor.
        assert rules_of(lint("Thread(target=f)\n")) == {"REP004"}
        # Chained .start() with no binding: can never be joined.
        assert rules_of(lint("Thread(target=f).start()\n")) == {"REP004"}
        # Bound, started, never joined, never escapes.
        src = """
            def spawn(f):
                t = Thread(target=f)
                t.start()
        """
        assert rules_of(lint(src)) == {"REP004"}

    def test_rep004_accepts_release_with_and_escape(self):
        for src in (
            # Explicit cleanup call.
            "t = Thread(target=f)\nt.start()\nt.join()\n",
            # Context manager.
            "with ThreadPoolExecutor(2) as pool:\n    pool.submit(f)\n",
            # Ownership transferred: returned to the caller...
            "def make():\n    return BatchExecutor('fractal')\n",
            # ...passed to another call...
            "def make():\n    e = BatchExecutor('fractal')\n    serve(e)\n",
            # ...or immediate argument of one.
            "serve(BatchExecutor('fractal'))\n",
        ):
            assert lint(textwrap.dedent(src)) == [], src

    def test_rep004_tracks_self_attributes_class_wide(self):
        leaky = """
            class Leaky:
                def __init__(self):
                    self._pool = ThreadPoolExecutor(2)
        """
        assert rules_of(lint(leaky)) == {"REP004"}
        # The executor.close() idiom: alias out under a lock, shut down
        # outside it — the aliasing assignment counts as a hand-off.
        closed = """
            class Engine:
                def __init__(self):
                    self._pool = ThreadPoolExecutor(2)

                def close(self):
                    pool, self._pool = self._pool, None
                    if pool is not None:
                        pool.shutdown(wait=True)
        """
        assert lint(closed) == []


class TestDeterminismRules:
    def test_rep005_flags_global_rng_everywhere(self):
        src = "x = np.random.rand(3)\n"
        assert rules_of(lint(src)) == {"REP005"}
        assert rules_of(lint(src, path=SCRIPT)) == {"REP005"}

    def test_rep005_allows_seeded_generators(self):
        assert lint("rng = np.random.default_rng(0)\nx = rng.normal()\n") == []

    def test_rep005_wall_clock_only_in_parity_modules(self):
        src = "t = time.time()\n"
        assert rules_of(lint(src)) == {"REP005"}
        assert lint(src, path=SCRIPT) == []
        # Monotonic clocks pass REP005 (determinism) — policing their
        # *placement* is REP008's job.
        assert lint("t = time.perf_counter()\n", select=["REP005"]) == []

    def test_rep005_set_iteration(self):
        src = """
            def drain(digests):
                out = []
                for d in set(digests):
                    out.append(d)
                return out
        """
        assert rules_of(lint(src)) == {"REP005"}
        sorted_src = src.replace("set(digests)", "sorted(set(digests))")
        assert lint(sorted_src) == []
        comp = "names = [str(d) for d in {1, 2, 3}]\n"
        assert rules_of(lint(comp)) == {"REP005"}


class TestConcurrencyRules:
    def test_rep006_blocking_send_under_lock(self):
        src = """
            def push(self, msg):
                with self._lock:
                    self.conn.send(msg)
        """
        findings = lint(src, select=["REP006"])
        assert [f.rule for f in findings] == ["REP006"]
        # Move the transfer outside the critical section: clean.
        fixed = """
            def push(self, msg):
                with self._lock:
                    seq = self._next()
                self.conn.send(msg)
        """
        assert lint(fixed, select=["REP006"]) == []

    def test_rep006_plain_dict_get_is_not_blocking(self):
        src = """
            def lookup(self, key):
                with self._cache_lock:
                    return self._table.get(key)
        """
        assert lint(src, select=["REP006"]) == []

    def test_rep006_skips_nested_defs(self):
        # A function *defined* under a lock does not run under it.
        src = """
            def start(self):
                with self._lock:
                    def sender():
                        self.conn.send(None)
                    self._sender = sender
        """
        assert lint(src, select=["REP006"]) == []

    def test_rep006_lock_order_cycle(self):
        src = """
            def a(x_lock, y_lock):
                with x_lock:
                    with y_lock:
                        pass

            def b(x_lock, y_lock):
                with y_lock:
                    with x_lock:
                        pass
        """
        findings = lint(src, select=["REP006"])
        assert any("inconsistent lock order" in f.message for f in findings)
        one_order = """
            def a(x_lock, y_lock):
                with x_lock:
                    with y_lock:
                        pass

            def b(x_lock, y_lock):
                with x_lock:
                    with y_lock:
                        pass
        """
        assert lint(one_order, select=["REP006"]) == []

    def test_rep006_reacquisition(self):
        src = """
            def f(self):
                with self._lock:
                    with self._lock:
                        pass
        """
        findings = lint(src, select=["REP006"])
        assert any("re-acquired" in f.message for f in findings)

    def test_rep007_unknown_message_kinds(self):
        assert rules_of(
            lint('conn.send(("gossip", 1))\n', path=SHARD, select=["REP007"])
        ) == {"REP007"}
        assert rules_of(
            lint("conn.send(payload)\n", path=SHARD, select=["REP007"])
        ) == {"REP007"}

    def test_rep007_allowlist_sentinel_and_relay(self):
        for src in (
            'conn.send(("run", 0, ref))\n',
            'outbox.put(("results", 1, []))\n',
            "conn.send(None)\n",  # sender-shutdown sentinel
            # Forwarding loop: the payload came off a validated queue.
            "def pump(outbox, conn):\n"
            "    while True:\n"
            "        msg = outbox.get()\n"
            "        if msg is None:\n"
            "            break\n"
            "        conn.send(msg)\n",
        ):
            assert lint(src, path=SHARD, select=["REP007"]) == [], src

    def test_rep007_scoped_to_shard_package(self):
        assert lint('conn.send(("gossip", 1))\n', path=SERVE,
                    select=["REP007"]) == []

    def test_rep008_flags_raw_monotonic_clocks(self):
        for src in (
            "import time\nt0 = time.perf_counter()\n",
            "import time\nt0 = time.monotonic()\n",
            "import time\nt0 = time.perf_counter_ns()\n",
            "import time\nclock = time.monotonic\n",  # bare ref, no call
            "from time import perf_counter\n",
        ):
            assert rules_of(lint(src, select=["REP008"])) == {"REP008"}, src

    def test_rep008_exempts_obs_sleep_and_scripts(self):
        # repro.obs is the one sanctioned clock reader.
        assert lint("import time\nnow = time.perf_counter\n",
                    path="src/repro/obs/trace.py", select=["REP008"]) == []
        # sleep / wall-clock reads are not interval clocks.
        assert lint("import time\ntime.sleep(0.1)\nt = time.time()\n",
                    select=["REP008"]) == []
        # Benchmarks, examples, and tests time things however they like.
        assert lint("import time\nt0 = time.perf_counter()\n",
                    path="benchmarks/bench_x.py", select=["REP008"]) == []
        assert lint("import time\nt0 = time.perf_counter()\n",
                    path=SCRIPT, select=["REP008"]) == []

    def test_rep008_suppression(self):
        src = "t0 = time.perf_counter()  # repro: ignore[REP008]\n"
        assert lint(src, select=["REP008"]) == []


#: Seeded corpus: two files that together violate every rule — the
#: acceptance fixture proving the linter reports >= 6 distinct ids.
_CORPUS = {
    "src/repro/serve/bad_serve.py": """
        import os
        import threading
        import time

        import numpy as np

        def sample(structure, coords, conn):
            start = time.perf_counter()
            idx, _ = block_fps(structure, coords, 64)
            kernel = os.environ.get("REPRO_KERNEL", "auto")
            seg = SharedMemory(create=True, size=64)
            threading.Thread(target=print).start()
            noise = np.random.rand(3)
            return idx, kernel, seg, noise, start
    """,
    "src/repro/shard/bad_shard.py": """
        def pump(conn, work_lock, items):
            with work_lock:
                conn.send(("gossip", items))
    """,
}


class TestLintCli:
    def _write_corpus(self, root: Path) -> list[str]:
        paths = []
        for rel, src in _CORPUS.items():
            path = root / rel
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(textwrap.dedent(src), encoding="utf-8")
            paths.append(str(path))
        return paths

    def test_corpus_reports_at_least_six_distinct_rules(self, tmp_path):
        findings = []
        for rel, src in _CORPUS.items():
            findings += lint_source(textwrap.dedent(src), rel)
        assert len(rules_of(findings)) >= 6
        assert rules_of(findings) == {
            "REP001", "REP002", "REP003", "REP004", "REP005", "REP006",
            "REP007", "REP008",
        }

    def test_main_fails_on_injected_violations(self, tmp_path, capsys):
        """The CI lint leg's failure mode: REP001/REP004 injected into an
        otherwise-clean tree must flip the exit code to 1."""
        bad = tmp_path / "src" / "repro" / "serve" / "injected.py"
        bad.parent.mkdir(parents=True)
        bad.write_text(
            "def handle(structure, coords):\n"
            "    t = Thread(target=print)\n"
            "    t.start()\n"
            "    return block_fps(structure, coords, 16)\n",
            encoding="utf-8",
        )
        assert lint_main([str(bad)]) == 1
        out = capsys.readouterr().out
        assert "REP001" in out and "REP004" in out

    def test_main_statistics_and_exit_codes(self, tmp_path, capsys):
        paths = self._write_corpus(tmp_path)
        assert lint_main(paths + ["--statistics"]) == 1
        out = capsys.readouterr().out
        assert "REP006" in out and "violation(s)" in out

        clean = tmp_path / "clean.py"
        clean.write_text("x = 1\n", encoding="utf-8")
        assert lint_main([str(clean)]) == 0
        assert lint_main([str(tmp_path / "missing.txt")]) == 2
        assert lint_main([str(clean), "--select", "REP999"]) == 2

    def test_main_list_rules(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("REP001", "REP004", "REP007"):
            assert rule_id in out

    def test_repo_tree_is_clean(self):
        """`repro lint src examples benchmarks` exits 0 on this tree —
        the same invariant the CI lint leg gates on."""
        argv = [str(REPO / d) for d in ("src", "examples", "benchmarks")]
        assert lint_main(argv) == 0

    def test_cli_subcommand_wiring(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("Thread(target=print)\n", encoding="utf-8")
        env = dict(os.environ, PYTHONPATH=str(REPO / "src"))
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "lint", str(bad)],
            capture_output=True, text=True, env=env, cwd=str(tmp_path),
        )
        assert proc.returncode == 1
        assert "REP004" in proc.stdout


class TestSanitizer:
    def test_thread_and_shm_accounting(self):
        import threading
        from multiprocessing.shared_memory import SharedMemory

        from repro.analysis import sanitize

        thread_base = set(threading.enumerate())
        shm_base = sanitize.shm_segments()
        assert sanitize.extra_threads(thread_base) == []

        stop = threading.Event()
        t = threading.Thread(target=stop.wait, name="acct-probe", daemon=True)
        t.start()
        seg = SharedMemory(create=True, size=64)
        try:
            assert "acct-probe" in sanitize.extra_threads(thread_base)
            assert any(
                seg.name.lstrip("/") in name
                for name in sanitize.extra_shm_segments(shm_base)
            )
        finally:
            stop.set()
            t.join()
            seg.close()
            seg.unlink()
        assert sanitize.extra_threads(thread_base) == []
        assert sanitize.extra_shm_segments(shm_base) == []

    def test_plugin_fails_leaking_test_only(self, tmp_path):
        """End-to-end: under `-p repro.analysis.sanitize` a thread-leaking
        test fails with the sanitizer message, a clean test passes, and
        @pytest.mark.no_sanitize opts a deliberate leak out."""
        (tmp_path / "test_leak_demo.py").write_text(textwrap.dedent("""
            import threading
            import time

            import pytest

            def test_leaks_a_thread():
                threading.Thread(target=time.sleep, args=(30,),
                                 name="deliberate-leak", daemon=True).start()

            def test_clean():
                stop = threading.Event()
                t = threading.Thread(target=stop.wait, daemon=True)
                t.start()
                stop.set()
                t.join()

            @pytest.mark.no_sanitize
            def test_opted_out_leak():
                threading.Thread(target=time.sleep, args=(30,),
                                 daemon=True).start()
        """), encoding="utf-8")
        env = dict(os.environ, PYTHONPATH=str(REPO / "src"))
        proc = subprocess.run(
            [sys.executable, "-m", "pytest", "-q", "-p",
             "repro.analysis.sanitize", "-p", "no:cacheprovider",
             "test_leak_demo.py"],
            capture_output=True, text=True, env=env, cwd=str(tmp_path),
        )
        out = proc.stdout + proc.stderr
        assert proc.returncode == 1, out
        # The leak is reported at teardown, so pytest counts it as an
        # ERROR on that test — the run still exits non-zero, which is
        # what the CI leg gates on.
        assert "3 passed, 1 error" in out, out
        assert "ERROR test_leak_demo.py::test_leaks_a_thread" in out, out
        assert "resource sanitizer" in out and "deliberate-leak" in out
