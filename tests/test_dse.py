"""Tests for the hardware design-space exploration module."""

import pytest

from repro.hw import FRACTALCLOUD
from repro.hw.dse import DesignPoint, estimate_area_mm2, pareto_frontier, sweep
from repro.networks import get_workload


class TestAreaModel:
    def test_matches_fig12_for_shipping_config(self):
        assert estimate_area_mm2(FRACTALCLOUD) == pytest.approx(1.5, rel=0.02)

    def test_more_units_more_area(self):
        from dataclasses import replace

        bigger = replace(FRACTALCLOUD, num_point_units=32)
        assert estimate_area_mm2(bigger) > estimate_area_mm2(FRACTALCLOUD)


class TestSweep:
    @pytest.fixture(scope="class")
    def points(self):
        return sweep(
            get_workload("PNXt(s)"), 33_000,
            unit_counts=(4, 16), lane_counts=(4, 8),
        )

    def test_cross_product_size(self, points):
        assert len(points) == 4

    def test_more_parallelism_not_slower(self, points):
        by_key = {(p.num_point_units, p.lanes_per_unit): p for p in points}
        assert by_key[(16, 8)].latency_s <= by_key[(4, 4)].latency_s

    def test_edp_positive(self, points):
        assert all(p.edp > 0 for p in points)


class TestPareto:
    def test_dominated_points_removed(self):
        mk = lambda lat, area: DesignPoint(1, 1, 274.0, 256, lat, 1.0, area)
        points = [mk(1.0, 2.0), mk(2.0, 1.0), mk(2.0, 2.0)]
        frontier = pareto_frontier(points)
        assert len(frontier) == 2
        assert all(p.latency_s != 2.0 or p.area_mm2 != 2.0 for p in frontier)

    def test_frontier_sorted_by_first_objective(self):
        mk = lambda lat, area: DesignPoint(1, 1, 274.0, 256, lat, 1.0, area)
        frontier = pareto_frontier([mk(3.0, 1.0), mk(1.0, 3.0), mk(2.0, 2.0)])
        latencies = [p.latency_s for p in frontier]
        assert latencies == sorted(latencies)

    def test_real_sweep_frontier_nonempty(self):
        points = sweep(get_workload("PN++(s)"), 4096,
                       unit_counts=(4, 16), lane_counts=(4, 8))
        frontier = pareto_frontier(points)
        assert 1 <= len(frontier) <= len(points)
