"""End-to-end network inference through the serving engine.

This package is the bridge between the trainable numpy PNNs of
:mod:`repro.networks` and the batched execution engine of
:mod:`repro.runtime.executor`: a registry of named, deterministically
seeded serving models (:mod:`repro.infer.registry`) plus the fused
multi-cloud forward pass (:mod:`repro.infer.fused`) that shares one
FPS/ball-query structure pass across every cloud of a window while
features flow through the existing ragged CSR layout.

Served outputs are bit-identical to the per-cloud offline reference
(``model.forward`` on the same partitioner) — the fused runner only
re-batches row-wise math, and the Dense row-stability contract of
:mod:`repro.networks.layers` makes every row independent of batching.
"""

from .fused import run_fused
from .registry import (
    MODEL_NAMES,
    MODELS,
    ModelSpec,
    get_model,
    model_spec,
    run_model,
    run_offline,
)

__all__ = [
    "MODELS",
    "MODEL_NAMES",
    "ModelSpec",
    "get_model",
    "model_spec",
    "run_fused",
    "run_model",
    "run_offline",
]
