"""Extension bench — ragged CSR kernels vs loop/stacked in the mid-size regime.

The stacked fast paths only pay off for blocks whose work product
(centres × search size) stays at or below ``_STACK_SMALL``; above that the
pre-PR-2 engine fell back to the per-block Python loop.  The ragged CSR
kernels (:mod:`repro.core.ragged`) were built for exactly that gap, so the
acceptance bar here is:

- on partitions whose work mass sits between ``_STACK_SMALL`` and
  ~4x ``_STACK_SMALL`` (the mid-size regime), the ragged kernels must
  beat the per-block loop on wall time;
- the cost-model dispatcher (``kernel="auto"``) must pick ``ragged`` for
  those partitions on its own;
- every timed configuration must stay bit-identical to the serial
  reference (asserted, not assumed).

KD-tree leaf thresholds steer the regime: with sampling ratio 1/4 and
parent search spaces, per-block products scale like ``size² / 2``, so
leaves of 16/32/48 land below, inside, and above the mid window.
"""

import numpy as np

from repro.analysis import format_table
from repro.core import bppo, dispatch, ragged
from repro.core.bppo import _STACK_SMALL
from repro.datasets import load_cloud
from repro.partition import get_partitioner

from _common import best_time, emit

N_POINTS = 8192
SAMPLE_RATIO = 4          # one centre per SAMPLE_RATIO points
RADIUS = 0.25
GROUP = 16
KNN_K = 3
LEAVES = (16, 32, 48)     # below / inside / above the mid-size window
MID_LO, MID_HI = _STACK_SMALL, 4 * _STACK_SMALL


def run_bench():
    coords = load_cloud("s3dis", N_POINTS, seed=0).coords.astype(np.float64)
    num_centers = N_POINTS // SAMPLE_RATIO
    rows = []
    mid_results = []
    for leaf in LEAVES:
        structure = get_partitioner("kdtree", max_points_per_block=leaf)(coords)
        centers, _ = dispatch.run_op(
            "fps", structure, coords, num_centers, num_centers=num_centers
        )
        ragged.ragged_of(structure, coords)  # build the layout once up front
        sizes = structure.block_sizes
        est_products = (len(centers) * sizes / sizes.sum()) * structure.search_sizes
        median_product = float(np.median(est_products))
        in_mid = MID_LO < median_product <= MID_HI
        choice = dispatch.choose_kernel("ball_query", structure, len(centers))

        timings = {}
        outputs = {}
        # This bench times each kernel implementation against the others,
        # so every entry below pins one deliberately (suppressed REP001);
        # dispatcher-overhead-free calls are the measurement.
        benches = {
            "ball_query": {
                "loop": lambda: bppo.block_ball_query(  # repro: ignore[REP001]
                    structure, coords, centers, RADIUS, GROUP),
                "stacked": lambda: bppo.block_ball_query_batched(  # repro: ignore[REP001]
                    structure, coords, centers, RADIUS, GROUP),
                "ragged": lambda: ragged.ragged_ball_query(  # repro: ignore[REP001]
                    structure, coords, centers, RADIUS, GROUP),
            },
            "knn": {
                "loop": lambda: bppo.block_knn(  # repro: ignore[REP001]
                    structure, coords, np.arange(N_POINTS), centers, KNN_K),
                "stacked": lambda: bppo.block_knn_batched(  # repro: ignore[REP001]
                    structure, coords, np.arange(N_POINTS), centers, KNN_K),
                "ragged": lambda: ragged.ragged_knn(  # repro: ignore[REP001]
                    structure, coords, np.arange(N_POINTS), centers, KNN_K),
            },
            "fps": {
                "loop": lambda: bppo.block_fps(structure, coords, num_centers),  # repro: ignore[REP001]
                "stacked": lambda: bppo.block_fps_batched(  # repro: ignore[REP001]
                    structure, coords, num_centers),
                "ragged": lambda: ragged.ragged_fps(  # repro: ignore[REP001]
                    structure, coords, num_centers),
            },
        }
        for op, kernels in benches.items():
            for kernel, fn in kernels.items():
                timings[(op, kernel)], (outputs[(op, kernel)], _) = best_time(fn)
            # Timed runs must stay bit-identical to the serial reference.
            for kernel in ("stacked", "ragged"):
                assert np.array_equal(
                    outputs[(op, "loop")], outputs[(op, kernel)]
                ), (op, kernel, leaf)
            rows.append([
                leaf, f"{median_product:.0f}",
                "mid" if in_mid else ("small" if median_product <= MID_LO else "big"),
                op,
                f"{timings[(op, 'loop')] * 1e3:.2f}",
                f"{timings[(op, 'stacked')] * 1e3:.2f}",
                f"{timings[(op, 'ragged')] * 1e3:.2f}",
                f"{timings[(op, 'loop')] / timings[(op, 'ragged')]:.2f}x",
                choice if op != "fps"
                else dispatch.choose_kernel("fps", structure, num_centers),
            ])
        if in_mid:
            mid_results.append(
                (
                    choice,
                    min(
                        timings[(op, "loop")] / timings[(op, "ragged")]
                        for op in ("ball_query", "knn")
                    ),
                )
            )

    table = format_table(
        ["leaf", "median m*s", "regime", "op",
         "loop ms", "stacked ms", "ragged ms", "ragged vs loop", "auto picks"],
        rows,
        title=f"ragged CSR kernels: {N_POINTS} pts, kdtree sweep "
              f"(mid regime = products in ({MID_LO}, {MID_HI}])",
    )
    return table, mid_results


def test_ragged_kernels(benchmark):
    table, mid_results = benchmark.pedantic(run_bench, rounds=1, iterations=1)
    emit("ragged_kernels", table)
    # Acceptance: in the mid-size regime the dispatcher must choose the
    # ragged path on its own, and that path must beat the per-block loop
    # with a real margin — the fused multi-k KNN extraction (one padded
    # stable argsort instead of k segment-min passes) widened it from
    # the historical ~1.1x.
    assert mid_results, "sweep produced no mid-regime configuration"
    for choice, speedup in mid_results:
        assert choice == "ragged"
        assert speedup >= 1.1
