"""Tests for Fractal partitioning (paper Alg. 1, Figs. 5-6)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import FractalConfig, fractal_partition
from repro.partition import fractal_traversal_count


def _check_partition_invariants(tree, n, threshold):
    """Leaves are disjoint, covering, and within the threshold."""
    seen = np.zeros(n, dtype=bool)
    for leaf in tree.leaves:
        assert not seen[leaf.indices].any(), "leaves overlap"
        seen[leaf.indices] = True
        if not leaf.forced_leaf:
            assert leaf.num_points <= threshold
    assert seen.all(), "leaves do not cover all points"


class TestFractalBasics:
    def test_partition_invariants_gaussian(self, gaussian_cloud):
        tree = fractal_partition(gaussian_cloud, FractalConfig(threshold=64))
        _check_partition_invariants(tree, len(gaussian_cloud), 64)

    def test_partition_invariants_scene(self, scene_coords):
        tree = fractal_partition(scene_coords, FractalConfig(threshold=256))
        _check_partition_invariants(tree, len(scene_coords), 256)

    def test_small_input_single_block(self, rng):
        pts = rng.normal(size=(10, 3))
        tree = fractal_partition(pts, FractalConfig(threshold=64))
        assert tree.num_blocks == 1
        assert tree.num_levels == 0
        assert tree.root.is_leaf

    def test_deterministic(self, gaussian_cloud):
        t1 = fractal_partition(gaussian_cloud, FractalConfig(threshold=32))
        t2 = fractal_partition(gaussian_cloud, FractalConfig(threshold=32))
        assert t1.num_blocks == t2.num_blocks
        for a, b in zip(t1.leaves, t2.leaves):
            assert np.array_equal(a.indices, b.indices)

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="empty"):
            fractal_partition(np.empty((0, 3)))

    def test_rejects_bad_shape(self, rng):
        with pytest.raises(ValueError, match=r"\(n, 3\)"):
            fractal_partition(rng.normal(size=(10, 2)))


class TestSplitSemantics:
    def test_dimension_cycling(self, rng):
        # A cloud spread mostly on x should still split y and z at the
        # next levels because dimensions cycle.
        pts = rng.normal(size=(512, 3)) * np.array([100.0, 1.0, 1.0])
        tree = fractal_partition(pts, FractalConfig(threshold=32))
        dims = {node.split_dim for node in tree.nodes() if node.split_dim is not None}
        assert dims == {0, 1, 2}

    def test_longest_rule_follows_extent(self, rng):
        pts = rng.normal(size=(512, 3)) * np.array([100.0, 1.0, 1.0])
        tree = fractal_partition(
            pts, FractalConfig(threshold=128, split_rule="longest")
        )
        assert tree.root.split_dim == 0

    def test_midpoint_is_minmax_average(self, gaussian_cloud):
        tree = fractal_partition(gaussian_cloud, FractalConfig(threshold=256))
        root = tree.root
        dim = root.split_dim
        col = gaussian_cloud[:, dim]
        assert root.split_mid == pytest.approx((col.min() + col.max()) / 2.0)

    def test_split_respects_midpoint(self, gaussian_cloud):
        tree = fractal_partition(gaussian_cloud, FractalConfig(threshold=64))
        for node in tree.nodes():
            if node.is_leaf:
                continue
            col = gaussian_cloud[:, node.split_dim]
            assert (col[node.left.indices] <= node.split_mid).all()
            assert (col[node.right.indices] > node.split_mid).all()

    def test_coplanar_points_survive(self):
        # All points in the z=0 plane: the z axis is never splittable; the
        # cycle must skip it rather than loop forever (paper §VI-D).
        rng = np.random.default_rng(0)
        pts = np.column_stack([rng.normal(size=500), rng.normal(size=500), np.zeros(500)])
        tree = fractal_partition(pts, FractalConfig(threshold=32, start_dim=2))
        _check_partition_invariants(tree, 500, 32)

    def test_coincident_points_become_forced_leaf(self):
        pts = np.zeros((100, 3))
        tree = fractal_partition(pts, FractalConfig(threshold=16))
        assert tree.num_blocks == 1
        assert tree.leaves[0].forced_leaf

    def test_mixed_coincident_cluster(self, rng):
        # 90 coincident points + 30 scattered: the coincident cluster ends
        # in one oversized forced leaf; scattered points split normally.
        pts = np.concatenate([np.zeros((90, 3)), rng.normal(size=(30, 3)) + 5.0])
        tree = fractal_partition(pts, FractalConfig(threshold=16))
        seen = np.zeros(120, dtype=bool)
        for leaf in tree.leaves:
            seen[leaf.indices] = True
        assert seen.all()
        forced = [leaf for leaf in tree.leaves if leaf.forced_leaf]
        assert any(leaf.num_points >= 90 for leaf in forced)


class TestTreeStructure:
    def test_threshold_bounds_imbalance(self, scene_coords):
        """Paper §VI-D: max imbalance among blocks is bounded by th."""
        tree = fractal_partition(scene_coords, FractalConfig(threshold=128))
        assert tree.block_sizes.max() <= 128

    def test_levels_match_balanced_formula_on_uniform_data(self, rng):
        # Uniform cube: Fractal behaves like a balanced split, so the
        # level count should be close to ceil(log2(n / th)) (Fig. 5).
        pts = rng.uniform(size=(4096, 3))
        tree = fractal_partition(pts, FractalConfig(threshold=64))
        analytic = fractal_traversal_count(4096, 64)
        assert analytic <= tree.num_levels <= analytic + 3

    def test_cost_counters_levels(self, gaussian_cloud):
        tree = fractal_partition(gaussian_cloud, FractalConfig(threshold=64))
        assert tree.cost.levels == tree.num_levels
        assert len(tree.cost.traversals) == tree.num_levels
        assert len(tree.cost.passes) == tree.num_levels
        # Level 0 traverses every point exactly once.
        assert tree.cost.traversals[0] == len(gaussian_cloud)

    def test_sibling_navigation(self, small_tree):
        for leaf in small_tree.leaves:
            if leaf.parent is None:
                continue
            sib = leaf.sibling
            assert sib is not None and sib.parent is leaf.parent and sib is not leaf

    def test_internal_nodes_union_of_children(self, small_tree):
        for node in small_tree.nodes():
            if node.is_leaf:
                continue
            union = np.sort(np.concatenate([node.left.indices, node.right.indices]))
            assert np.array_equal(np.sort(node.indices), union)

    def test_search_space_rule(self, small_tree):
        for leaf in small_tree.leaves:
            space = small_tree.search_space(leaf)
            if leaf.depth <= 1:
                assert np.array_equal(space, leaf.indices)
            else:
                assert np.array_equal(space, leaf.parent.indices)
                assert len(space) >= leaf.num_points

    def test_dft_order_is_left_to_right(self, small_tree):
        # In DFT order, every leaf of the left subtree precedes every leaf
        # of the right subtree for any internal node.
        position = {id(leaf): i for i, leaf in enumerate(small_tree.leaves)}
        def leaf_positions(node):
            if node.is_leaf:
                return [position[id(node)]]
            return leaf_positions(node.left) + leaf_positions(node.right)
        for node in small_tree.nodes():
            if node.is_leaf:
                continue
            assert max(leaf_positions(node.left)) < min(leaf_positions(node.right))


class TestWorkedExample:
    """Fig. 6 semantics: an 80-point cloud with th=24 fractures into
    blocks of at most 24 points across two to three iterations."""

    def test_fig6_shape(self):
        rng = np.random.default_rng(6)
        # Two dense lobes like the paper's example distribution.
        pts = np.concatenate([
            rng.normal(loc=(-0.5, 0.3, 0.0), scale=0.15, size=(43, 3)),
            rng.normal(loc=(0.6, -0.2, 0.0), scale=0.18, size=(37, 3)),
        ])
        tree = fractal_partition(pts, FractalConfig(threshold=24))
        assert tree.block_sizes.max() <= 24
        assert tree.num_blocks >= 4
        assert sum(tree.block_sizes) == 80
        assert 2 <= tree.num_levels <= 4


class TestFractalProperties:
    @settings(max_examples=30, deadline=None)
    @given(
        st.integers(2, 2000),
        st.integers(2, 128),
        st.integers(0, 10_000),
    )
    def test_random_clouds_always_partition(self, n, th, seed):
        pts = np.random.default_rng(seed).normal(size=(n, 3))
        tree = fractal_partition(pts, FractalConfig(threshold=th))
        _check_partition_invariants(tree, n, th)

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 1000))
    def test_dft_permutation_is_bijection(self, seed):
        pts = np.random.default_rng(seed).normal(size=(300, 3))
        tree = fractal_partition(pts, FractalConfig(threshold=32))
        perm = tree.dft_permutation()
        assert sorted(perm.tolist()) == list(range(300))
