"""Fused-bucket planning: bin packing for the whole-cloud fusion scheduler.

One fused kernel invocation amortises its fixed costs over every cloud in
its bucket, so the scheduling question is a bin-packing problem: pack
clouds into as few, as full buckets as possible without violating the two
fusion feasibility constraints —

- ``max_points``: a bucket's total point count bounds the flat arrays one
  fused invocation materialises;
- ``max_spread``: the largest/smallest cloud-size ratio inside a bucket
  bounds how unlike the per-stage work shapes may get.

PR 3 shipped a greedy first-fit pass in ascending size order
(:func:`first_fit_buckets`, kept as the baseline); its failure mode is
closing a bucket as soon as one cloud does not fit, stranding clouds that
a later bucket could have hosted as singleton fallbacks.
:func:`plan_buckets` replaces it with classic **best-fit-decreasing**:
clouds are placed largest-first, each into the feasible open bucket it
fills tightest, so large clouds anchor buckets early and small clouds
fill the gaps instead of being stranded behind a budget boundary.

Both planners are pure functions of the member list and the caps —
deterministic, no RNG, no clock — and bucket composition never affects
results (fusion is bit-identical to running every cloud alone), only
throughput.  Buckets come back in submission order (ordered by their
first member, members in input order) so schedules read naturally and
old greedy-era expectations keep holding where the plans agree.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass

__all__ = [
    "WindowPlan",
    "cloud_points",
    "first_fit_buckets",
    "plan_buckets",
    "singleton_count",
]


def cloud_points(member) -> int:
    """Default size measure: ``len(member[1])`` — the executor's member
    tuples are ``(index, coords, features)``."""
    return len(member[1])


def singleton_count(buckets: Sequence[Sequence]) -> int:
    """Number of one-cloud buckets in a plan (the fallback-path clouds)."""
    return sum(1 for bucket in buckets if len(bucket) == 1)


@dataclass(frozen=True)
class WindowPlan:
    """Plan counters for one executed window (telemetry food).

    ``fused_clouds`` ran inside a multi-cloud fused bucket;
    ``singleton_clouds`` fell back to the per-cloud path; ``buckets``
    counts the multi-cloud fused invocations.  ``singleton_indices``
    names the fallback clouds by their window item index so multi-tenant
    telemetry can attribute the split per tenant.
    """

    buckets: int = 0
    fused_clouds: int = 0
    singleton_clouds: int = 0
    singleton_indices: tuple[int, ...] = ()

    def __add__(self, other: "WindowPlan") -> "WindowPlan":
        """Aggregate the plans of one window's execution groups (a
        multi-tenant window runs one fused execution per pipeline)."""
        if not isinstance(other, WindowPlan):
            return NotImplemented
        return WindowPlan(
            buckets=self.buckets + other.buckets,
            fused_clouds=self.fused_clouds + other.fused_clouds,
            singleton_clouds=self.singleton_clouds + other.singleton_clouds,
            singleton_indices=self.singleton_indices + other.singleton_indices,
        )


def _order_plan(buckets: list[list[tuple[int, object]]]) -> list[list]:
    """Strip positions; members in input order, buckets by first member."""
    ordered = []
    for bucket in buckets:
        bucket.sort(key=lambda entry: entry[0])
        ordered.append(bucket)
    ordered.sort(key=lambda bucket: bucket[0][0])
    return [[member for _, member in bucket] for bucket in ordered]


def first_fit_buckets(
    members: Sequence,
    *,
    max_points: int | None = None,
    max_spread: float | None = None,
    size: Callable[[object], int] = cloud_points,
) -> list[list]:
    """The PR-3 greedy baseline: first-fit in ascending size order.

    Members are packed smallest-first (input position breaks ties); the
    open bucket closes as soon as admitting the next member would push
    its total past ``max_points`` or its size ratio past ``max_spread``.
    Kept as the comparison baseline for :func:`plan_buckets` — the
    best-fit plan must never strand more singletons than this one.
    """
    entries = sorted(
        enumerate(members), key=lambda entry: (size(entry[1]), entry[0])
    )
    buckets: list[list] = []
    current: list = []
    smallest = total = 0
    for pos, member in entries:
        n = size(member)
        over_budget = max_points is not None and total + n > max_points
        over_spread = max_spread is not None and n > smallest * max_spread
        if current and (over_budget or over_spread):
            buckets.append(current)
            current, total = [], 0
        if not current:
            smallest = n
        current.append((pos, member))
        total += n
    if current:
        buckets.append(current)
    return _order_plan(buckets)


def _best_fit_decreasing(
    entries: list[tuple[int, object, int]],
    max_points: int | None,
    max_spread: float | None,
) -> list[list[tuple[int, object]]]:
    """Best-fit-decreasing core: returns position-decorated buckets."""
    # Largest first; input position breaks ties so the plan is a pure
    # function of the member list.
    entries = sorted(entries, key=lambda entry: (-entry[2], entry[0]))
    bins: list[dict] = []
    for pos, member, n in entries:
        best = None
        for bin_ in bins:
            # Decreasing order makes the new member the bucket minimum,
            # so the spread check only needs the bucket maximum.
            if max_points is not None and bin_["total"] + n > max_points:
                continue
            if max_spread is not None and bin_["largest"] > n * max_spread:
                continue
            if best is None or bin_["total"] > best["total"]:
                best = bin_
        if best is None:
            bins.append({"total": n, "largest": n, "items": [(pos, member)]})
        else:
            best["total"] += n
            best["items"].append((pos, member))
    return [bin_["items"] for bin_ in bins]


def plan_buckets(
    members: Sequence,
    *,
    max_points: int | None = None,
    max_spread: float | None = None,
    size: Callable[[object], int] = cloud_points,
) -> list[list]:
    """Pack ``members`` into fused buckets by best-fit-decreasing.

    Every member lands in exactly one bucket.  A bucket with two or more
    members always respects both caps; a member that alone exceeds
    ``max_points`` still gets a bucket of its own (it must run somewhere,
    and the per-cloud fallback handles any size).  The best-fit plan is
    compared against :func:`first_fit_buckets` and the one stranding
    fewer singletons wins (ties prefer best-fit, which packs tighter) —
    so the planner is never worse than the greedy pass it replaced, by
    construction.
    """
    if not members:
        return []
    entries = [(pos, member, size(member)) for pos, member in enumerate(members)]
    if any(n <= 0 for _, _, n in entries):
        raise ValueError("every member must have a positive size")
    best_fit = _order_plan(_best_fit_decreasing(entries, max_points, max_spread))
    greedy = first_fit_buckets(
        members, max_points=max_points, max_spread=max_spread, size=size
    )
    if singleton_count(greedy) < singleton_count(best_fit):
        return greedy
    return best_fit
