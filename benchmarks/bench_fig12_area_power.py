"""Fig. 12 — chip specifications and area/power breakdown.

Prints the reported post-layout budget (area and average power per
module) and checks it sums to the headline 1.5 mm^2 / 0.58 W figures.
"""

from repro.analysis import format_table
from repro.hw import FRACTALCLOUD_BUDGET, total_area_mm2, total_power_w
from repro.hw import area

from _common import emit


def run_fig12():
    rows = []
    for module in FRACTALCLOUD_BUDGET:
        rows.append([
            module.name,
            f"{module.area_mm2:.3f}",
            f"{100 * module.area_mm2 / total_area_mm2():.1f}%",
            f"{module.power_w * 1e3:.0f}",
            f"{100 * module.power_w / total_power_w():.1f}%",
        ])
    rows.append(["TOTAL", f"{total_area_mm2():.3f}", "100%",
                 f"{total_power_w() * 1e3:.0f}", "100%"])
    header = (
        f"Fig. 12 — FractalCloud chip budget "
        f"({area.TECHNOLOGY_NM} nm, die {area.DIE_AREA_MM2} mm2, "
        f"{area.FREQUENCY_HZ/1e9:g} GHz, {area.SRAM_KB:g} KB SRAM)"
    )
    return format_table(
        ["module", "area mm2", "area %", "power mW", "power %"], rows, title=header
    )


def test_fig12_area_power(benchmark):
    table = benchmark.pedantic(run_fig12, rounds=1, iterations=1)
    emit("fig12_area_power", table)
    assert abs(total_area_mm2() - 1.5) < 0.02
    assert abs(total_power_w() - 0.58) < 0.01
