"""Tests for the trainable backbones and training loops."""

import numpy as np
import pytest

from repro.datasets import make_classification_dataset, make_part_dataset
from repro.networks import (
    ARCHS,
    ExactBackend,
    PNNClassifier,
    PNNSegmenter,
    evaluate_classifier,
    evaluate_segmenter,
    make_backend,
    mean_iou,
    train_classifier,
    train_segmenter,
)


@pytest.fixture(scope="module")
def backend():
    return ExactBackend()


@pytest.fixture(scope="module")
def tiny_cls_data():
    return make_classification_dataset(20, 128, seed=0)


@pytest.fixture(scope="module")
def tiny_seg_data():
    return make_part_dataset(8, 128, seed=0)


class TestClassifier:
    @pytest.mark.parametrize("arch", sorted(ARCHS))
    def test_forward_all_archs(self, arch, backend, rng):
        model = PNNClassifier(num_classes=10, num_points=128, arch=arch, seed=0)
        logits = model.forward(rng.normal(size=(128, 3)), backend)
        assert logits.shape == (10,)
        assert np.isfinite(logits).all()

    def test_backward_accumulates_gradients(self, backend, rng):
        model = PNNClassifier(num_classes=5, num_points=128, seed=0)
        coords = rng.normal(size=(128, 3))
        coords /= np.linalg.norm(coords, axis=1).max()  # models expect unit-sphere input
        logits = model.forward(coords, backend)
        model.zero_grad()
        model.backward(np.ones_like(logits))
        grads = [np.abs(p.grad).sum() for p in model.parameters()]
        assert sum(g > 0 for g in grads) > len(grads) // 2

    def test_unknown_arch(self):
        with pytest.raises(ValueError, match="unknown architecture"):
            PNNClassifier(num_classes=3, arch="transformer")

    def test_training_reduces_loss(self, backend, tiny_cls_data):
        model = PNNClassifier(num_classes=10, num_points=128, seed=0)
        result = train_classifier(
            model, tiny_cls_data, backend, epochs=4, batch_size=5, lr=3e-3
        )
        assert result.losses[-1] < result.losses[0]

    def test_training_beats_chance(self, backend, tiny_cls_data):
        model = PNNClassifier(num_classes=10, num_points=128, seed=1)
        train_classifier(model, tiny_cls_data, backend, epochs=6, batch_size=5, lr=3e-3)
        acc = evaluate_classifier(model, tiny_cls_data, backend)
        assert acc > 0.2  # chance is 0.1 on 10 classes

    def test_requires_class_ids(self, backend, rng):
        from repro.geometry import PointCloud

        clouds = [PointCloud(rng.normal(size=(64, 3)))]
        model = PNNClassifier(num_classes=2, num_points=64)
        with pytest.raises(ValueError, match="class_id"):
            train_classifier(model, clouds, backend, epochs=1)


class TestSegmenter:
    @pytest.mark.parametrize("arch", sorted(ARCHS))
    def test_forward_all_archs(self, arch, backend, rng):
        model = PNNSegmenter(num_classes=4, num_points=128, arch=arch, seed=0)
        logits = model.forward(rng.normal(size=(128, 3)), backend)
        assert logits.shape == (128, 4)
        assert np.isfinite(logits).all()

    def test_training_reduces_loss(self, backend, tiny_seg_data):
        model = PNNSegmenter(num_classes=4, num_points=128, seed=0)
        result = train_segmenter(
            model, tiny_seg_data, backend, epochs=4, batch_size=4, lr=3e-3
        )
        assert result.losses[-1] < result.losses[0]

    def test_training_beats_chance(self, backend, tiny_seg_data):
        model = PNNSegmenter(num_classes=4, num_points=128, seed=2)
        train_segmenter(model, tiny_seg_data, backend, epochs=6, batch_size=4, lr=3e-3)
        miou = evaluate_segmenter(model, tiny_seg_data, backend)
        assert miou > 0.15

    def test_requires_labels(self, backend, rng):
        from repro.geometry import PointCloud

        clouds = [PointCloud(rng.normal(size=(64, 3)))]
        model = PNNSegmenter(num_classes=2, num_points=64)
        with pytest.raises(ValueError, match="labels"):
            train_segmenter(model, clouds, backend, epochs=1)


class TestMeanIoU:
    def test_perfect_prediction(self):
        labels = np.array([0, 0, 1, 1, 2])
        assert mean_iou(labels, labels, 3) == pytest.approx(1.0)

    def test_disjoint_prediction(self):
        pred = np.array([1, 1, 0, 0])
        true = np.array([0, 0, 1, 1])
        assert mean_iou(pred, true, 2) == pytest.approx(0.0)

    def test_absent_classes_ignored(self):
        pred = np.array([0, 0])
        true = np.array([0, 0])
        assert mean_iou(pred, true, 10) == pytest.approx(1.0)


class TestBackendSwap:
    def test_model_runs_with_block_backends(self, rng):
        """The same trained model must run under every point-op backend —
        the substitution the accuracy experiments perform."""
        model = PNNSegmenter(num_classes=3, num_points=128, seed=0)
        coords = rng.normal(size=(128, 3))
        outputs = {}
        for name in ["exact", "fractal", "uniform", "kdtree", "octree"]:
            backend = make_backend(name, max_points_per_block=32)
            outputs[name] = model.forward(coords, backend)
        for name, out in outputs.items():
            assert out.shape == (128, 3), name
        # Block ops approximate the exact ops: outputs differ but remain
        # in a comparable numeric range.
        exact_scale = np.abs(outputs["exact"]).mean()
        for name in ["fractal", "kdtree"]:
            assert np.abs(outputs[name]).mean() < 10 * exact_scale
