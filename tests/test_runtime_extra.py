"""Additional runtime/compiler coverage: caches, strategies, determinism."""

import numpy as np
import pytest

from repro.networks import WORKLOADS, get_workload
from repro.runtime import compile_program
from repro.runtime.compiler import _weight_bytes, clear_caches


class TestWeightBytes:
    @pytest.mark.parametrize("key", sorted(WORKLOADS))
    def test_positive_for_all_workloads(self, key):
        assert _weight_bytes(get_workload(key)) > 0

    def test_bigger_model_more_weights(self):
        assert _weight_bytes(get_workload("PVr(s)")) > _weight_bytes(
            get_workload("PNXt(s)")
        )

    def test_cls_head_included(self):
        """Classification workloads carry the global MLP + FC head."""
        cls = _weight_bytes(get_workload("PN++(c)"))
        # The global MLP (256→512→1024) alone is ~700K params = 1.4 MB.
        assert cls > 1e6


class TestCompilerStrategies:
    @pytest.mark.parametrize("strategy", ["fractal", "kdtree", "uniform", "octree", "morton"])
    def test_all_partitioners_compile(self, strategy):
        program = compile_program(get_workload("PN++(s)"), 4096, strategy, 128)
        sa = [p for p in program.stages if p.stage.kind == "sa"]
        assert all(p.partition is not None for p in sa)
        assert sa[0].partition.strategy == strategy

    def test_different_seeds_different_stats(self):
        a = compile_program(get_workload("PNXt(s)"), 8192, "fractal", 256, seed=0)
        b = compile_program(get_workload("PNXt(s)"), 8192, "fractal", 256, seed=1)
        assert not np.array_equal(
            a.stages[0].partition.block_sizes, b.stages[0].partition.block_sizes
        )

    def test_clear_caches(self):
        compile_program(get_workload("PN++(c)"), 1024, "fractal", 64)
        clear_caches()  # must not raise; next compile rebuilds
        program = compile_program(get_workload("PN++(c)"), 1024, "fractal", 64)
        assert program.stages[0].partition is not None

    def test_block_size_respected_across_strategies(self):
        for strategy in ("fractal", "kdtree", "octree"):
            program = compile_program(get_workload("PNXt(s)"), 8192, strategy, 128)
            for plan in program.stages:
                if plan.partition is not None and plan.partition.num_blocks > 1:
                    assert plan.partition.block_sizes.max() <= 128, strategy
