"""Extension bench — multi-tenant shared-engine serving vs isolation,
plus the adaptive-controller A/B.

Three claims from the PR-5 ISSUE, each asserted:

1. **Sharing wins.** On a seeded 3-tenant mix, one shared engine with
   cross-tenant fused windows beats three per-tenant isolated windowed
   servers (each fusing only its own third of the traffic, run
   concurrently on the same machine as co-located deployments would be)
   by >= 1.3x wall-clock — and stays bit-identical per tenant.
2. **Adaptivity cuts idle tails for free.** The adaptive controller's
   p95 on a paced idle stream improves on the static window's, while
   firehose throughput stays within noise of static (no busy-stream
   loss).
3. **Fairness bounds the trickle tenant.** With a bursty and a trickle
   tenant sharing the engine under deficit-round-robin admission, the
   trickle tenant's p95 stays within a small multiple of its lone-tenant
   p95 instead of queueing behind the burst.

Marked ``slow``: serving benches time wall-clock over hundreds of
clouds.  Run with ``pytest -m slow benchmarks/bench_tenancy.py``.
"""

import threading
import time

import numpy as np
import pytest

from repro.analysis import format_table
from repro.runtime import BatchExecutor, PipelineSpec
from repro.serve import (
    AdaptiveWindow,
    ControllerConfig,
    LoadSpec,
    MultiTenantServer,
    TenantSpec,
    WindowConfig,
    WindowedServer,
    generate,
)

from _common import best_time, emit

pytestmark = pytest.mark.slow

PIPELINE = PipelineSpec(sample_ratio=0.25, radius=0.25, group_size=16)
BLOCK = 32
WORKERS = 4


def make_hot_asset_mix(tenants=3, catalog=30, per_tenant=60, seed=0):
    """A seeded 3-tenant mix over a shared hot-asset catalog.

    Serving traffic concentrates on popular content and popular content
    is popular for *every* client (retried frames, shared map tiles, hot
    CAD assets).  Each tenant draws its stream from one catalog of
    distinct clouds with a recency-ish bias — so streams overlap in
    content across tenants without ever being identical in order.
    """
    rng = np.random.default_rng(seed)
    shapes = [
        c for c in generate(LoadSpec(
            clouds=catalog, min_points=96, max_points=384, dup_rate=0.0,
            seed=seed,
        ))
    ]
    streams = {}
    for t in range(tenants):
        draw = rng.zipf(1.6, size=per_tenant)  # popularity skew
        streams[f"t{t}"] = [
            shapes[int(idx - 1) % catalog] for idx in draw
        ]
    # Interleave round-robin: the arrival order tenants actually share.
    pairs = []
    for i in range(per_tenant):
        for name in streams:
            pairs.append((name, streams[name][i]))
    return pairs, streams


def bench_shared_vs_isolated(rows):
    """Claim 1: shared fused engine >= 1.3x over isolated servers.

    The isolated deployment runs one engine + windowed server per tenant
    concurrently on the same machine with the same per-server window
    budget.  It fuses and dedups *within* each tenant's stream but
    cannot share anything across tenants; the shared engine fuses
    cross-tenant windows and (share_results) serves hot content computed
    for any tenant to all of them.
    """
    pairs, streams = make_hot_asset_mix()
    window = WindowConfig(max_clouds=24, max_wait=0.25)

    def run_shared():
        engine = BatchExecutor("kdtree", block_size=BLOCK, max_workers=WORKERS)
        with MultiTenantServer(
            engine, [TenantSpec(name, PIPELINE) for name in streams],
            window=window, share_results=True,
        ) as server:
            return list(server.serve(iter(pairs)))

    def run_isolated():
        # One engine + windowed server per tenant, run concurrently on
        # the same machine (the co-located no-sharing deployment).
        out = {}

        def serve_one(name):
            engine = BatchExecutor(
                "kdtree", block_size=BLOCK, max_workers=WORKERS
            )
            with WindowedServer(engine, window) as server:
                out[name] = list(server.serve(iter(streams[name]), PIPELINE))

        threads = [
            threading.Thread(target=serve_one, args=(name,)) for name in streams
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        return out

    t_shared, shared = best_time(run_shared)
    t_isolated, isolated = best_time(run_isolated)

    # Cross-tenant fusion must not change a bit of any tenant's results.
    per_tenant = {name: [] for name in streams}
    for served in shared:
        per_tenant[served.tenant].append(served)
    for name, clouds in streams.items():
        assert [r.seq for r in per_tenant[name]] == list(range(len(clouds)))
        for mine, lone in zip(per_tenant[name], isolated[name]):
            assert np.array_equal(mine.result.sampled, lone.sampled)
            assert np.array_equal(mine.result.neighbors, lone.neighbors)
            assert np.array_equal(mine.result.interpolated, lone.interpolated)

    total = len(pairs)
    speedup = t_isolated / t_shared
    rows.append(["3-tenant hot assets", f"isolated x3 ({WORKERS} thr each)",
                 f"{t_isolated * 1e3:.0f}", f"{total / t_isolated:.0f}", "1.00x"])
    rows.append(["3-tenant hot assets", "shared fused engine",
                 f"{t_shared * 1e3:.0f}", f"{total / t_shared:.0f}",
                 f"{speedup:.2f}x"])
    return speedup


def bench_adaptive_ab(rows):
    """Claim 2: adaptive idle p95 improves, busy throughput holds."""
    bounds = ControllerConfig(
        min_clouds=1, max_clouds=16, min_wait=0.002, max_wait=0.05
    )
    idle = LoadSpec(clouds=40, min_points=64, max_points=128, dup_rate=0.0,
                    interval=0.012, seed=2)
    busy = LoadSpec(clouds=200, min_points=64, max_points=128, dup_rate=0.0,
                    seed=3)

    def run(spec, adaptive):
        engine = BatchExecutor("kdtree", block_size=BLOCK, max_workers=WORKERS)
        controller = AdaptiveWindow(bounds) if adaptive else None
        with WindowedServer(
            engine,
            WindowConfig(max_clouds=bounds.max_clouds,
                         max_wait=bounds.max_wait),
            controller=controller,
        ) as server:
            start = time.perf_counter()
            results = list(server.serve(generate(spec), PIPELINE))
            wall = time.perf_counter() - start
            p95 = server.telemetry.percentiles()[1]
            return wall, p95, results

    # Idle stream: paced arrivals, p95 is the figure of merit (best-of-3
    # on the tail, since pacing fixes the wall).
    _, (_, p95_static, res_static) = best_time(
        lambda: run(idle, adaptive=False)
    )
    _, (_, p95_adaptive, res_adaptive) = best_time(
        lambda: run(idle, adaptive=True)
    )
    for a, b in zip(res_static, res_adaptive):
        assert np.array_equal(a.interpolated, b.interpolated)

    # Busy stream: firehose, throughput is the figure of merit.
    wall_static, _, _ = best_time(lambda: run(busy, adaptive=False))[1]
    wall_adaptive, _, _ = best_time(lambda: run(busy, adaptive=True))[1]

    idle_gain = p95_static / p95_adaptive if p95_adaptive > 0 else float("inf")
    busy_ratio = wall_static / wall_adaptive
    rows.append(["idle (12 ms pace)", "static W=16/T=50ms",
                 f"p95 {p95_static * 1e3:.1f} ms", "-", "1.00x"])
    rows.append(["idle (12 ms pace)", "adaptive",
                 f"p95 {p95_adaptive * 1e3:.1f} ms", "-",
                 f"{idle_gain:.2f}x"])
    rows.append(["busy (firehose)", "static W=16/T=50ms",
                 f"{wall_static * 1e3:.0f}",
                 f"{busy.clouds / wall_static:.0f}", "1.00x"])
    rows.append(["busy (firehose)", "adaptive",
                 f"{wall_adaptive * 1e3:.0f}",
                 f"{busy.clouds / wall_adaptive:.0f}",
                 f"{busy_ratio:.2f}x"])
    return idle_gain, busy_ratio


def bench_fairness(rows):
    """Claim 3: the trickle tenant's p95 is bounded under a burst."""
    rng = np.random.default_rng(4)
    bursty_clouds = [rng.normal(size=(96, 3)) for _ in range(180)]
    trickle_clouds = [rng.normal(size=(96, 3)) for _ in range(20)]

    def trickle_stream():
        for cloud in trickle_clouds:
            yield ("trickle", cloud)
            time.sleep(0.004)

    def merged():
        # The burst floods in at t=0; the trickle keeps dripping.
        bursty_iter = iter(bursty_clouds)
        trickle_iter = trickle_stream()
        exhausted = object()
        while True:
            cloud = next(bursty_iter, exhausted)
            if cloud is not exhausted:
                yield ("bursty", cloud)
            pair = next(trickle_iter, exhausted)
            if pair is not exhausted:
                yield pair
            if cloud is exhausted and pair is exhausted:
                return

    def run_shared():
        engine = BatchExecutor(
            "kdtree", block_size=BLOCK, max_workers=WORKERS,
            reuse_results=False, in_flight=64,
        )
        with MultiTenantServer(
            engine,
            [TenantSpec("bursty", PIPELINE), TenantSpec("trickle", PIPELINE)],
            window=WindowConfig(max_clouds=16, max_wait=0.01),
            quantum_points=4096,
        ) as server:
            list(server.serve(merged()))
            return (
                server.session("trickle").telemetry.percentiles()[1],
                server.session("bursty").telemetry.percentiles()[1],
            )

    def run_lone_trickle():
        engine = BatchExecutor(
            "kdtree", block_size=BLOCK, max_workers=WORKERS,
            reuse_results=False,
        )
        with MultiTenantServer(
            engine, [TenantSpec("trickle", PIPELINE)],
            window=WindowConfig(max_clouds=16, max_wait=0.01),
        ) as server:
            list(server.serve(trickle_stream()))
            return server.session("trickle").telemetry.percentiles()[1]

    trickle_shared, bursty_shared = run_shared()
    trickle_lone = run_lone_trickle()
    inflation = trickle_shared / max(trickle_lone, 1e-9)
    rows.append(["bursty+trickle", "trickle alone",
                 f"p95 {trickle_lone * 1e3:.1f} ms", "-", "1.00x"])
    rows.append(["bursty+trickle", "trickle beside 180-cloud burst",
                 f"p95 {trickle_shared * 1e3:.1f} ms", "-",
                 f"{inflation:.2f}x inflation"])
    rows.append(["bursty+trickle", "bursty (self-queued)",
                 f"p95 {bursty_shared * 1e3:.1f} ms", "-", "-"])
    return inflation, trickle_shared, bursty_shared


def run_bench():
    rows = []
    speedup = bench_shared_vs_isolated(rows)
    idle_gain, busy_ratio = bench_adaptive_ab(rows)
    inflation, trickle_p95, bursty_p95 = bench_fairness(rows)
    table = format_table(
        ["scenario", "engine", "ms / p95", "clouds / s", "speedup"],
        rows,
        title="multi-tenant serving: shared fused engine, adaptive "
              "windows, DRR fairness (kdtree, warm caches)",
    )
    return table, speedup, idle_gain, busy_ratio, inflation


def test_tenancy(benchmark):
    table, speedup, idle_gain, busy_ratio, inflation = benchmark.pedantic(
        run_bench, rounds=1, iterations=1
    )
    emit("tenancy", table)
    # Acceptance (the ISSUE's): shared fused engine >= 1.3x over
    # isolated per-tenant servers on the 3-tenant seeded mix.
    assert speedup >= 1.3, f"shared-engine speedup {speedup:.2f}x < 1.3x"
    # Adaptive windows: idle-stream p95 improves, busy throughput holds.
    assert idle_gain >= 1.2, f"idle p95 gain {idle_gain:.2f}x < 1.2x"
    assert busy_ratio >= 0.85, f"busy throughput ratio {busy_ratio:.2f}"
    # Fairness: the trickle tenant's tail is bounded, not burst-sized.
    assert inflation <= 8.0, f"trickle p95 inflated {inflation:.2f}x"
