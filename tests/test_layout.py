"""Tests for the DFT memory layout (paper §IV-A)."""

import numpy as np
import pytest

from repro.core import BlockLayout, FractalConfig, fractal_partition


@pytest.fixture
def layout(small_tree):
    return BlockLayout.from_tree(small_tree)


class TestLayoutBasics:
    def test_permutation_bijection(self, layout):
        assert sorted(layout.permutation.tolist()) == list(range(layout.num_points))

    def test_inverse_roundtrip(self, layout):
        assert (layout.permutation[layout.inverse] == np.arange(layout.num_points)).all()

    def test_block_ranges_tile_storage(self, layout, small_tree):
        assert layout.block_starts[0] == 0
        assert layout.block_ends[-1] == layout.num_points
        assert (layout.block_starts[1:] == layout.block_ends[:-1]).all()
        for b, leaf in enumerate(small_tree.leaves):
            start, end = layout.block_range(b)
            assert end - start == leaf.num_points

    def test_block_contents_match_leaves(self, layout, small_tree):
        for b, leaf in enumerate(small_tree.leaves):
            start, end = layout.block_range(b)
            assert set(layout.permutation[start:end]) == set(leaf.indices.tolist())


class TestSubtreeContiguity:
    def test_every_node_occupies_contiguous_range(self, layout, small_tree):
        """The DFT property that makes parent loads a streamed read."""
        for node in small_tree.nodes():
            start, end = layout.node_range(node)
            assert end - start == node.num_points
            stored = set(layout.permutation[start:end].tolist())
            assert stored == set(node.indices.tolist())

    def test_parent_range_contains_leaf_range(self, layout, small_tree):
        for b, leaf in enumerate(small_tree.leaves):
            if leaf.parent is None:
                continue
            ls, le = layout.block_range(b)
            ps, pe = layout.node_range(leaf.parent)
            assert ps <= ls and le <= pe


class TestBanking:
    def test_round_robin_banks(self, layout):
        banks = layout.bank_of_block(4)
        assert banks.max() < 4
        # Consecutive blocks land in different banks.
        assert (np.diff(banks) != 0).all() or layout.num_blocks == 1

    def test_bank_count_validated(self, layout):
        with pytest.raises(ValueError, match="num_banks"):
            layout.bank_of_block(0)


class TestReorder:
    def test_reorder_applies_permutation(self, small_tree, layout, gaussian_cloud):
        stored = layout.reorder(gaussian_cloud)
        start, end = layout.block_range(0)
        first_leaf = small_tree.leaves[0]
        assert np.allclose(stored[start:end], gaussian_cloud[first_leaf.indices])

    def test_reorder_checks_rows(self, layout, rng):
        with pytest.raises(ValueError, match="rows"):
            layout.reorder(rng.normal(size=(3, 3)))

    def test_spatial_coherence_of_storage_order(self, scene_coords):
        """Consecutive stored points are closer on average than random
        pairs — the locality the streamed access pattern exploits."""
        tree = fractal_partition(scene_coords, FractalConfig(threshold=128))
        layout = BlockLayout.from_tree(tree)
        stored = layout.reorder(scene_coords)
        consecutive = np.linalg.norm(np.diff(stored, axis=0), axis=1).mean()
        rng = np.random.default_rng(0)
        a = rng.integers(0, len(stored), 2000)
        b = rng.integers(0, len(stored), 2000)
        random_pairs = np.linalg.norm(stored[a] - stored[b], axis=1).mean()
        assert consecutive < 0.5 * random_pairs
