"""Partition statistics and the Fig. 5 analytic sort/traversal counts.

These formulas are what the paper prints next to its workflow diagrams:

- KD-tree on ``n`` points with block size ``BS`` needs
  ``2^ceil(log2(n/BS)) - 1`` exclusive sorts (every internal node of a
  complete binary tree with ``ceil(n/BS)`` leaves): 15 sorts for 1 K / 64,
  2047 for 289 K / 256.
- Fractal needs ``ceil(log2(n/BS))`` inclusive traversals (one per tree
  level): 4 for 1 K / 64, 11 for 289 K / 256.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..core.blocks import BlockStructure

__all__ = [
    "kdtree_sort_count",
    "fractal_traversal_count",
    "PartitionSummary",
    "summarize",
]


def _levels(num_points: int, block_size: int) -> int:
    """Balanced-tree depth needed to reach blocks of at most ``block_size``."""
    if num_points <= 0 or block_size <= 0:
        raise ValueError("num_points and block_size must be positive")
    if num_points <= block_size:
        return 0
    return math.ceil(math.log2(num_points / block_size))


def kdtree_sort_count(num_points: int, block_size: int) -> int:
    """Number of exclusive sorts a KD-tree build performs (Fig. 5 left)."""
    return 2 ** _levels(num_points, block_size) - 1


def fractal_traversal_count(num_points: int, block_size: int) -> int:
    """Number of inclusive traversals Fractal performs (Fig. 5 right)."""
    return _levels(num_points, block_size)


@dataclass
class PartitionSummary:
    """Balance and cost summary of one partitioning run."""

    strategy: str
    num_points: int
    num_blocks: int
    max_block: int
    mean_block: float
    balance_factor: float
    underfilled_fraction: float
    num_sorts: int
    num_traversals: int
    num_passes: int
    levels: int

    def row(self) -> list:
        """Row for experiment tables."""
        return [
            self.strategy,
            self.num_blocks,
            self.max_block,
            round(self.mean_block, 1),
            round(self.balance_factor, 2),
            round(self.underfilled_fraction, 3),
            self.num_sorts,
            self.num_traversals,
            self.levels,
        ]


def summarize(structure: BlockStructure, *, underfilled_below: float = 0.25) -> PartitionSummary:
    """Compute a :class:`PartitionSummary` for a block structure.

    Args:
        structure: the partition.
        underfilled_below: a block counts as underfilled when its
            population is below this fraction of the mean (the paper's
            outlier discussion, §VI-D).
    """
    sizes = structure.block_sizes.astype(np.float64)
    mean = float(sizes.mean())
    return PartitionSummary(
        strategy=structure.strategy,
        num_points=structure.num_points,
        num_blocks=structure.num_blocks,
        max_block=int(sizes.max()),
        mean_block=mean,
        balance_factor=float(sizes.max() / mean),
        underfilled_fraction=float((sizes < underfilled_below * mean).mean()),
        num_sorts=structure.cost.num_sorts,
        num_traversals=structure.cost.num_traversals,
        num_passes=len(structure.cost.passes),
        levels=structure.cost.levels,
    )
