"""Tests for the pipelined-throughput model and ASCII charts."""

import pytest

from repro.analysis.charts import bar_chart, log_bar_chart
from repro.hw import AcceleratorSim, FRACTALCLOUD, POINTACC
from repro.hw.pipeline import RESOURCE_OF_PHASE, pipeline_throughput
from repro.networks import get_workload


class TestPipeline:
    @pytest.fixture(scope="class")
    def estimate(self):
        result = AcceleratorSim(FRACTALCLOUD).run(get_workload("PNXt(s)"), 33_000)
        return pipeline_throughput(result)

    def test_interval_bounded_by_latency(self, estimate):
        assert 0 < estimate.initiation_interval_s <= estimate.latency_s

    def test_overlap_speedup_at_least_one(self, estimate):
        assert estimate.overlap_speedup >= 1.0

    def test_fractalcloud_bottleneck_is_pe_array(self, estimate):
        """MLP-bound after BPPO — so streaming is PE-limited."""
        assert estimate.bottleneck_resource == "pe_array"

    def test_pointacc_bottleneck_is_point_units(self):
        result = AcceleratorSim(POINTACC).run(get_workload("PNXt(s)"), 33_000)
        estimate = pipeline_throughput(result)
        assert estimate.bottleneck_resource == "rspu"

    def test_fps_positive(self, estimate):
        assert estimate.frames_per_second > 0

    def test_resources_cover_all_phases(self):
        result = AcceleratorSim(FRACTALCLOUD).run(get_workload("PN++(s)"), 4096)
        for phase in result.phases:
            assert phase in RESOURCE_OF_PHASE

    def test_busy_times_sum_to_latency(self, estimate):
        assert sum(estimate.resource_busy_s.values()) == pytest.approx(
            estimate.latency_s
        )


class TestCharts:
    def test_bar_chart_renders(self):
        text = bar_chart(["a", "bb"], [1.0, 2.0], title="T", unit="x")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert lines[2].count("#") == 2 * lines[1].count("#")

    def test_log_chart_compresses(self):
        text = log_bar_chart(["small", "large"], [1.0, 1000.0], width=30)
        small, large = text.splitlines()
        assert large.count("#") <= 30
        assert small.count("#") >= 1

    def test_validation(self):
        with pytest.raises(ValueError, match="labels"):
            bar_chart(["a"], [1.0, 2.0])
        with pytest.raises(ValueError, match="non-negative"):
            bar_chart(["a"], [-1.0])
        with pytest.raises(ValueError, match="positive"):
            log_bar_chart(["a"], [0.0])
        with pytest.raises(ValueError, match="nothing"):
            bar_chart([], [])
