"""Extension bench — partition quality under corruption (ModelNet40-C style).

The paper cites ModelNet40-C; this bench measures how each partitioning
strategy's block-FPS sampling quality degrades under the corruption
families, at severity 3.  Expected shape: Fractal (shape-aware) and
KD-tree (density-aware) degrade gracefully; the uniform grid — already
the worst clean — is hit hardest by outliers, which stretch its bounding
box and empty most cells.
"""

import numpy as np

from repro.analysis import format_table
from repro.core import dispatch
from repro.datasets import corrupt, corruption_names, load_cloud
from repro.geometry import farthest_point_sample, pairwise_sq_dists
from repro.partition import get_partitioner

from _common import emit

STRATEGIES = ["uniform", "kdtree", "fractal"]
N = 2048


def _mean_cov(coords, sampled):
    return float(np.sqrt(pairwise_sq_dists(coords, coords[sampled]).min(axis=1)).mean())


def run_robustness():
    base = load_cloud("modelnet40", N, seed=4)
    rows = []
    worst = {s: 1.0 for s in STRATEGIES}
    for kind in ["clean"] + corruption_names():
        cloud = base if kind == "clean" else corrupt(base, kind, severity=3, seed=1)
        coords = cloud.coords.astype(np.float64)
        n_s = max(len(coords) // 4, 8)
        exact = _mean_cov(coords, farthest_point_sample(coords, n_s))
        row = [kind, len(coords)]
        for strategy in STRATEGIES:
            structure = get_partitioner(strategy, max_points_per_block=128)(coords)
            sampled, _ = dispatch.run_op(
                "fps", structure, coords, n_s, num_centers=n_s
            )
            ratio = _mean_cov(coords, sampled) / max(exact, 1e-12)
            worst[strategy] = max(worst[strategy], ratio)
            row.append(f"{ratio:.2f}")
        rows.append(row)
    table = format_table(
        ["corruption", "points"] + [f"{s} cov" for s in STRATEGIES],
        rows,
        title="Block-FPS mean-coverage ratio vs exact FPS under corruption "
              "(severity 3; 1.0 = exact)",
    )
    return table, worst


def test_robustness(benchmark):
    table, worst = benchmark.pedantic(run_robustness, rounds=1, iterations=1)
    emit("robustness", table)
    # Fractal stays near-exact under every corruption.
    assert worst["fractal"] < 2.0
    # And never degrades catastrophically more than the density-aware baseline.
    assert worst["fractal"] < 2.5 * worst["kdtree"]
