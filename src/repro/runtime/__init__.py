"""Runtime: op-level IR, the workload compiler, and the batched
multi-cloud execution engine."""

from .cache import (
    PartitionCache,
    clear_all_partition_caches,
    content_key,
    result_key,
)
from .compiler import clear_caches, compile_program
from .executor import (
    BatchExecutor,
    BatchReport,
    CloudResult,
    ExecutorStats,
    PipelineSpec,
)
from .program import PartitionStats, Program, StagePlan

__all__ = [
    "BatchExecutor",
    "BatchReport",
    "CloudResult",
    "ExecutorStats",
    "PartitionCache",
    "PartitionStats",
    "PipelineSpec",
    "Program",
    "StagePlan",
    "clear_all_partition_caches",
    "clear_caches",
    "compile_program",
    "content_key",
    "result_key",
]
