"""DDR4 DRAM timing/energy model (DRAMsim3-lite).

Aggregate model of a DDR4-2133 x64 channel (17 GB/s peak per Table II):
streamed transfers run near peak bandwidth; random (row-missing) access
drops to ~a fifth of peak and pays activation energy per access.  This is
the mechanism that separates conventional gathering (random) from
Fractal's DFT-organised block gathering (streamed) — paper §V-B.
"""

from __future__ import annotations

from dataclasses import dataclass

from . import energy as E

__all__ = ["DRAMModel", "DRAMTraffic"]


@dataclass
class DRAMTraffic:
    """Accumulated traffic of one simulated phase."""

    streamed_bytes: float = 0.0
    random_bytes: float = 0.0

    @property
    def total_bytes(self) -> float:
        return self.streamed_bytes + self.random_bytes

    def merge(self, other: "DRAMTraffic") -> "DRAMTraffic":
        return DRAMTraffic(
            self.streamed_bytes + other.streamed_bytes,
            self.random_bytes + other.random_bytes,
        )


@dataclass(frozen=True)
class DRAMModel:
    """Bandwidth/energy model of one DRAM channel.

    Attributes:
        peak_gbps: peak bandwidth in GB/s (17 for DDR4-2133 per Table II).
    """

    peak_gbps: float = 17.0

    def time_s(self, traffic: DRAMTraffic) -> float:
        """Transfer time in seconds for the given traffic mix."""
        peak = self.peak_gbps * 1e9
        return (
            traffic.streamed_bytes / (peak * E.STREAM_DRAM_EFFICIENCY)
            + traffic.random_bytes / (peak * E.RANDOM_DRAM_EFFICIENCY)
        )

    def energy_j(self, traffic: DRAMTraffic) -> float:
        """Access energy in joules for the given traffic mix."""
        return (
            traffic.streamed_bytes * E.DRAM_STREAM_PJ_PER_BYTE
            + traffic.random_bytes * E.DRAM_RANDOM_PJ_PER_BYTE
        ) * 1e-12
