"""§VI-C RSPU ablation — window-check skipping and intra-block reuse.

Isolates the two RSPU mechanisms on microbenchmarks:

- FPS with vs without the window check (computation skipping), at the
  PointAcc-style global-search configuration;
- neighbour search with vs without intra-block search-space reuse.

Expected shape (paper): window check ≈3.6x FPS speedup and ≈3.4x
memory-access reduction; intra-block reuse ≈7.6x memory-access reduction.
"""

import numpy as np

from repro.analysis import format_table
from repro.hw import RSPUModel

from _common import emit


def run_rspu():
    rspu = RSPUModel(num_units=16, lanes=8)
    n, s = 131_000, 32_768

    fps_plain = rspu.fps_global(n, s, window_check=False)
    fps_skip = rspu.fps_global(n, s, window_check=True)

    blocks = 512
    centers = np.full(blocks, 64)
    spaces = np.full(blocks, 512)
    ns_plain = rspu.neighbor_blocks(centers, spaces, 16, intra_block_reuse=False)
    ns_reuse = rspu.neighbor_blocks(centers, spaces, 16, intra_block_reuse=True)

    rows = [
        ["FPS (no skip)", f"{fps_plain.compute_cycles:.3g}",
         f"{fps_plain.sram_stream_bytes / 1e6:.1f}", "1.0x", "1.0x"],
        ["FPS (+window check)", f"{fps_skip.compute_cycles:.3g}",
         f"{fps_skip.sram_stream_bytes / 1e6:.1f}",
         f"{fps_plain.compute_cycles / fps_skip.compute_cycles:.2f}x",
         f"{fps_plain.sram_stream_bytes / fps_skip.sram_stream_bytes:.2f}x"],
        ["NS (no reuse)", f"{ns_plain.compute_cycles:.3g}",
         f"{ns_plain.sram_stream_bytes / 1e6:.1f}", "1.0x", "1.0x"],
        ["NS (+intra-block reuse)", f"{ns_reuse.compute_cycles:.3g}",
         f"{ns_reuse.sram_stream_bytes / 1e6:.1f}",
         f"{ns_plain.compute_cycles / max(ns_reuse.compute_cycles, 1e-9):.2f}x",
         f"{ns_plain.sram_stream_bytes / ns_reuse.sram_stream_bytes:.2f}x"],
    ]
    table = format_table(
        ["operation", "cycles", "SRAM MB", "cycle gain", "memory-access gain"],
        rows,
        title="RSPU ablation (paper: skip 3.6x speedup / 3.4x accesses; "
              "reuse 7.6x accesses)",
    )
    gains = {
        "skip_cycles": fps_plain.compute_cycles / fps_skip.compute_cycles,
        "skip_mem": fps_plain.sram_stream_bytes / fps_skip.sram_stream_bytes,
        "reuse_mem": ns_plain.sram_stream_bytes / ns_reuse.sram_stream_bytes,
    }
    return table, gains


def test_rspu_ablation(benchmark):
    table, gains = benchmark.pedantic(run_rspu, rounds=1, iterations=1)
    emit("rspu_ablation", table)
    assert gains["skip_cycles"] > 1.1
    assert gains["skip_mem"] > 1.1
    # Reuse: coordinate reads drop by ~the number of centres per block.
    assert gains["reuse_mem"] > 5
