"""Serving a live cloud stream: windowed micro-batching + telemetry.

A sensor-shaped traffic generator (ragged sizes, exact duplicate frames,
paced bursts) feeds the :class:`~repro.serve.WindowedServer`: requests
wait at most ``T`` ms, whatever arrived is bin-packed into fused buckets
under the engine's fusion caps, each bucket runs as one ragged kernel
invocation per pipeline stage, and results come back in submission order
with rolling p50/p95/p99 latency telemetry — the paper's block-parallel
kernels turned into a service.

Run:  python examples/serving_window.py
"""

import time

from repro.runtime import BatchExecutor, PipelineSpec
from repro.serve import (
    LoadSpec,
    ServeTelemetry,
    WindowConfig,
    WindowedServer,
    generate,
)


def main() -> None:
    # Serving-shaped traffic: 80 ragged ROI-crop-sized clouds, ~20 % of
    # frames exact repeats of recent ones, arriving in bursts of four.
    traffic = LoadSpec(
        clouds=80, min_points=96, max_points=384, dup_rate=0.2,
        dup_window=8, burst=4, interval=0.005, seed=0,
    )

    window = WindowConfig(max_clouds=16, max_wait=0.02)
    telemetry = ServeTelemetry(window_capacity=window.max_clouds, every=2)
    pipeline = PipelineSpec(sample_ratio=0.25, radius=0.3, group_size=16)

    with BatchExecutor("fractal", block_size=64, max_workers=4,
                       fuse_max_spread=4.0) as engine:
        with WindowedServer(engine, window, telemetry=telemetry) as server:
            print(f"serving {traffic.clouds} clouds "
                  f"({traffic.min_points}-{traffic.max_points} points, "
                  f"{traffic.dup_rate:.0%} repeats) through "
                  f"{window.max_clouds}-cloud / "
                  f"{window.max_wait * 1e3:.0f}-ms windows\n")
            start = time.perf_counter()
            served = 0
            for result in server.serve(generate(traffic), pipeline,
                                       on_stats=print):
                served += 1  # results arrive here in submission order
            wall = time.perf_counter() - start

        print()
        print(telemetry.report(wall).format())

        # The same engine, same traffic, offline: run(fuse=True) is the
        # batch-mode ceiling the windowed path trades a latency bound for.
        # (close() is idempotent; the engine rebuilds its pool on demand.)
        offline = engine.run(list(generate(traffic)), pipeline, fuse=True)
        print(f"\noffline ceiling (run(fuse=True) over the same "
              f"{served} clouds):")
        print(f"  {offline.summary()}")


if __name__ == "__main__":
    main()
