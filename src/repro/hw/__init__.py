"""Hardware models: the FractalCloud accelerator, its baselines, and the GPU.

- :mod:`configs` — Table II accelerator configurations + Fig. 18 ladder.
- :mod:`accelerator` — the cycle-level analytic simulator.
- :mod:`gpu` — TITAN-RTX-class cost model (the evaluation baseline).
- component models: :mod:`dram`, :mod:`sram`, :mod:`pe_array`,
  :mod:`fractal_engine`, :mod:`rspu`, :mod:`gather_unit`.
- :mod:`area` — Fig. 12 area/power budget.
"""

from .accelerator import AcceleratorSim
from .area import FRACTALCLOUD_BUDGET, ModuleBudget, total_area_mm2, total_power_w
from .configs import (
    CRESCENT,
    FRACTALCLOUD,
    MESORASI,
    POINTACC,
    SOTA_CONFIGS,
    AcceleratorConfig,
    ablation_ladder,
)
from .cost import UnitCost
from .dram import DRAMModel, DRAMTraffic
from .fractal_engine import FractalEngineModel
from .gather_unit import GatherUnitModel
from .gpu import GPUModel
from .noc import NoCModel
from .pe_array import MLPCost, PEArrayModel
from .results import POINT_OP_PHASES, PhaseStats, RunResult, TraceEvent
from .rspu import RSPUModel
from .sram import SRAMModel

__all__ = [
    "AcceleratorConfig",
    "AcceleratorSim",
    "CRESCENT",
    "DRAMModel",
    "DRAMTraffic",
    "FRACTALCLOUD",
    "FRACTALCLOUD_BUDGET",
    "FractalEngineModel",
    "GPUModel",
    "GatherUnitModel",
    "MESORASI",
    "MLPCost",
    "NoCModel",
    "ModuleBudget",
    "PEArrayModel",
    "POINTACC",
    "POINT_OP_PHASES",
    "PhaseStats",
    "RSPUModel",
    "RunResult",
    "SOTA_CONFIGS",
    "SRAMModel",
    "TraceEvent",
    "UnitCost",
    "ablation_ladder",
    "total_area_mm2",
    "total_power_w",
]
