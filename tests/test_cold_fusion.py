"""Cold-path fusion: the fused build-and-sample kernel must be
bit-identical to build-then-sample, and the build-kernel dispatch must
honour the explicit > environment > cost-model precedence."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import bppo, dispatch
from repro.core.coldpath import (
    FusedBuildUnsupported,
    fused_build_and_sample,
    supports_fused_build,
)
from repro.geometry.ops import _DIRECT_FORM_MAX
from repro.partition import get_partitioner
from repro.runtime.executor import BatchExecutor, PipelineSpec

STRATEGIES = ("fractal", "kdtree", "octree", "uniform")

# Sizes straddling the distance-kernel form switch (n^2 vs expanded at
# _DIRECT_FORM_MAX = 512 work products) and the partition threshold.
SIZES = (1, 5, 40, 256, 513, 1500)


def _cloud(n: int, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.normal(size=(n, 3))


def _assert_structures_equal(a, b):
    assert a.num_points == b.num_points
    assert a.num_blocks == b.num_blocks
    assert a.strategy == b.strategy
    for ba, bb in zip(a.blocks, b.blocks):
        assert np.array_equal(ba.indices, bb.indices)
        assert ba.depth == bb.depth
    for sa, sb in zip(a.search_spaces, b.search_spaces):
        assert np.array_equal(sa, sb)
    assert a.cost.levels == b.cost.levels
    assert a.cost.traversals == b.cost.traversals
    assert a.cost.passes == b.cost.passes
    assert a.cost.sorts == b.cost.sorts


def _assert_traces_equal(ta, tb):
    assert ta.kind == tb.kind
    assert len(ta.blocks) == len(tb.blocks)
    for wa, wb in zip(ta.blocks, tb.blocks):
        assert (wa.block_id, wa.n_points, wa.n_search, wa.n_centers,
                wa.n_outputs) == (
            wb.block_id, wb.n_points, wb.n_search, wb.n_centers, wb.n_outputs)


class TestFusedParity:
    @pytest.mark.parametrize("strategy", STRATEGIES)
    @pytest.mark.parametrize("n", SIZES)
    def test_bit_identical_to_build_then_sample(self, strategy, n):
        partitioner = get_partitioner(strategy, max_points_per_block=128)
        coords = _cloud(n, seed=n)
        for ratio in (0.02, 0.25, 1.0):
            num_samples = max(1, round(ratio * n))
            fused_s, fused_idx, fused_trace = fused_build_and_sample(
                partitioner, coords, num_samples
            )
            ref_s = partitioner(coords)
            ref_idx, ref_trace = bppo.block_fps(ref_s, coords, num_samples)
            _assert_structures_equal(fused_s, ref_s)
            assert np.array_equal(fused_idx, ref_idx)
            _assert_traces_equal(fused_trace, ref_trace)

    def test_straddles_direct_form_boundary(self):
        # Block size chosen so per-block FPS work products land on both
        # sides of the distance-kernel switch.
        partitioner = get_partitioner("kdtree", max_points_per_block=64)
        for n in (_DIRECT_FORM_MAX - 1, _DIRECT_FORM_MAX,
                  _DIRECT_FORM_MAX + 1):
            coords = _cloud(n, seed=7)
            fused_s, fused_idx, _ = fused_build_and_sample(
                partitioner, coords, n // 4
            )
            ref_s = partitioner(coords)
            ref_idx, _ = bppo.block_fps(ref_s, coords, n // 4)
            assert np.array_equal(fused_idx, ref_idx)

    @settings(max_examples=40, deadline=None)
    @given(
        strategy=st.sampled_from(STRATEGIES),
        n=st.integers(1, 800),
        ratio=st.floats(0.01, 1.0),
        seed=st.integers(0, 10_000),
        block=st.sampled_from((32, 64, 256)),
    )
    def test_parity_property(self, strategy, n, ratio, seed, block):
        partitioner = get_partitioner(strategy, max_points_per_block=block)
        coords = _cloud(n, seed)
        num_samples = max(1, round(ratio * n))
        fused_s, fused_idx, fused_trace = fused_build_and_sample(
            partitioner, coords, num_samples
        )
        ref_s = partitioner(coords)
        ref_idx, ref_trace = bppo.block_fps(ref_s, coords, num_samples)
        _assert_structures_equal(fused_s, ref_s)
        assert np.array_equal(fused_idx, ref_idx)
        _assert_traces_equal(fused_trace, ref_trace)

    def test_degenerate_coincident_points(self):
        coords = np.zeros((300, 3))
        for strategy in STRATEGIES:
            partitioner = get_partitioner(strategy, max_points_per_block=64)
            fused_s, fused_idx, _ = fused_build_and_sample(
                partitioner, coords, 10
            )
            ref_s = partitioner(coords)
            ref_idx, _ = bppo.block_fps(ref_s, coords, 10)
            _assert_structures_equal(fused_s, ref_s)
            assert np.array_equal(fused_idx, ref_idx)

    def test_unsupported_partitioner_raises(self):
        class Bare:
            def __call__(self, coords):  # pragma: no cover - never called
                raise AssertionError

        assert not supports_fused_build(Bare())
        with pytest.raises(FusedBuildUnsupported):
            fused_build_and_sample(Bare(), _cloud(10, 0), 2)


class TestBuildDispatch:
    def test_validate_rejects_unknown(self):
        with pytest.raises(ValueError, match="build kernel"):
            dispatch.validate_build_kernel("sideways")

    def test_cost_model_prefers_fused_at_dense_quotas(self):
        partitioner = get_partitioner("kdtree", max_points_per_block=128)
        # One sample per expected block or more: fusion wins.
        assert dispatch.choose_build_kernel(partitioner, 1024, 256) == "fused"
        # Far fewer samples than blocks: the eager per-leaf candidate is
        # mostly wasted, build-then-sample wins.
        assert (
            dispatch.choose_build_kernel(partitioner, 1024, 2)
            == "build_then_sample"
        )

    def test_explicit_beats_env(self, monkeypatch):
        partitioner = get_partitioner("kdtree", max_points_per_block=128)
        monkeypatch.setenv(dispatch.BUILD_KERNEL_ENV, "build_then_sample")
        assert (
            dispatch.resolve_build_kernel(partitioner, 1024, 256, "fused")
            == "fused"
        )

    def test_env_fills_in_for_auto(self, monkeypatch):
        partitioner = get_partitioner("kdtree", max_points_per_block=128)
        monkeypatch.setenv(dispatch.BUILD_KERNEL_ENV, "build_then_sample")
        assert (
            dispatch.resolve_build_kernel(partitioner, 1024, 256, "auto")
            == "build_then_sample"
        )
        monkeypatch.setenv(dispatch.BUILD_KERNEL_ENV, "fused")
        assert (
            dispatch.resolve_build_kernel(partitioner, 1024, 2, "auto")
            == "fused"
        )

    def test_fused_clamps_on_unsupported_partitioner(self):
        class Bare:
            pass

        assert (
            dispatch.resolve_build_kernel(Bare(), 1024, 256, "fused")
            == "build_then_sample"
        )

    @pytest.mark.parametrize("kernel", ("build_then_sample", "fused"))
    def test_run_build_parity(self, kernel):
        partitioner = get_partitioner("fractal", max_points_per_block=64)
        coords = _cloud(900, seed=11)
        structure, sampled, trace, name = dispatch.run_build(
            partitioner, coords, 200, kernel=kernel
        )
        assert name == kernel
        ref_s = partitioner(coords)
        ref_idx, ref_trace = bppo.block_fps(ref_s, coords, 200)
        _assert_structures_equal(structure, ref_s)
        assert np.array_equal(sampled, ref_idx)
        _assert_traces_equal(trace, ref_trace)


class TestExecutorIntegration:
    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_engine_results_identical_across_build_kernels(self, strategy):
        clouds = [_cloud(n, seed=n) for n in (60, 300, 900)]
        pipeline = PipelineSpec(sample_ratio=0.25)
        reports = {}
        for kernel in ("build_then_sample", "fused"):
            engine = BatchExecutor(
                strategy, mode="serial", reuse_results=False,
                build_kernel=kernel, cache_size=1,
            )
            reports[kernel] = engine.run(clouds, pipeline)
        for a, b in zip(
            reports["fused"].results, reports["build_then_sample"].results
        ):
            assert np.array_equal(a.sampled, b.sampled)
            assert np.array_equal(a.neighbors, b.neighbors)
            assert np.array_equal(a.grouped, b.grouped)
            assert np.array_equal(a.interpolated, b.interpolated)
            assert set(a.traces) == {"fps", "ball_query", "gather",
                                     "interpolate"}
            _assert_traces_equal(a.traces["fps"], b.traces["fps"])

    def test_engine_validates_build_kernel(self):
        with pytest.raises(ValueError, match="build kernel"):
            BatchExecutor("fractal", build_kernel="nope")

    def test_fused_cold_build_skips_separate_fps(self, monkeypatch):
        calls = []
        original = dispatch.run_op

        def spy(op, *args, **kwargs):
            calls.append(op)
            return original(op, *args, **kwargs)

        monkeypatch.setattr(
            "repro.runtime.executor.dispatch.run_op", spy
        )
        engine = BatchExecutor(
            "fractal", mode="serial", reuse_results=False,
            build_kernel="fused",
        )
        engine.run([_cloud(500, seed=1)], PipelineSpec(sample_ratio=0.5))
        # The fused build already produced the FPS result; only the
        # downstream stages go through run_op.
        assert "fps" not in calls
        assert "ball_query" in calls
