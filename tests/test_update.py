"""Tests for incremental fractal updates (dynamic point clouds)."""

import pytest

from repro.core import FractalConfig
from repro.core.bppo import block_fps
from repro.core.update import FractalUpdater


@pytest.fixture
def updater(rng):
    coords = rng.normal(size=(800, 3))
    return FractalUpdater(coords, FractalConfig(threshold=64))


def _assert_valid(updater):
    structure, live_ids = updater.structure()
    structure.validate()
    assert structure.num_points == updater.num_points
    assert len(live_ids) == updater.num_points
    return structure


class TestConstruction:
    def test_initial_partition_valid(self, updater):
        structure = _assert_valid(updater)
        assert structure.max_block_size <= 64

    def test_rejects_bad_shape(self, rng):
        with pytest.raises(ValueError, match=r"\(n, 3\)"):
            FractalUpdater(rng.normal(size=(10, 2)))


class TestInsert:
    def test_insert_routes_and_grows(self, updater, rng):
        ids = updater.insert(rng.normal(size=(100, 3)))
        assert len(ids) == 100
        assert updater.num_points == 900
        structure = _assert_valid(updater)
        assert structure.max_block_size <= 64

    def test_leaf_splits_on_overflow(self, rng):
        coords = rng.normal(size=(60, 3))
        updater = FractalUpdater(coords, FractalConfig(threshold=64))
        # All in one leaf; inserting 40 more forces a split.
        updater.insert(rng.normal(size=(40, 3)))
        assert updater.stats.leaf_splits >= 1
        structure = _assert_valid(updater)
        assert structure.num_blocks >= 2

    def test_dense_insertions_stay_bounded(self, updater, rng):
        # Hammer one region: local splits keep the leaf bound.
        cluster = rng.normal(scale=0.05, size=(300, 3))
        updater.insert(cluster)
        structure = _assert_valid(updater)
        assert structure.max_block_size <= 64

    def test_update_cheaper_than_rebuild(self, updater, rng):
        before = updater.stats.update_work
        updater.insert(rng.normal(size=(50, 3)))
        incremental = updater.stats.update_work - before
        assert incremental < updater.rebuild_work()


class TestRemove:
    def test_remove_shrinks(self, updater):
        _, live = updater.structure()
        updater.remove(live[:100])
        assert updater.num_points == 700
        _assert_valid(updater)

    def test_double_remove_rejected(self, updater):
        _, live = updater.structure()
        updater.remove(live[:1])
        with pytest.raises(KeyError, match="not alive"):
            updater.remove(live[:1])

    def test_merges_underfilled_siblings(self, rng):
        coords = rng.normal(size=(400, 3))
        updater = FractalUpdater(coords, FractalConfig(threshold=64))
        blocks_before = updater.structure()[0].num_blocks
        _, live = updater.structure()
        updater.remove(live[: 360])  # leave 40 points scattered
        assert updater.stats.leaf_merges >= 1
        structure = _assert_valid(updater)
        assert structure.num_blocks < blocks_before

    def test_remove_all_but_few(self, updater):
        _, live = updater.structure()
        updater.remove(live[:-5])
        assert updater.num_points == 5
        _assert_valid(updater)


class TestStreaming:
    def test_frame_stream_invariants(self, rng):
        """Simulated sensor stream: insert/remove churn each frame."""
        updater = FractalUpdater(rng.normal(size=(1000, 3)), FractalConfig(threshold=64))
        for frame in range(5):
            _, live = updater.structure()
            updater.remove(rng.choice(live, size=150, replace=False))
            updater.insert(rng.normal(size=(150, 3)) + frame * 0.2)
            structure = _assert_valid(updater)
            assert structure.max_block_size <= 64

    def test_structure_drives_bppo_after_updates(self, updater, rng):
        updater.insert(rng.normal(size=(64, 3)))
        structure, live = updater.structure()
        coords = updater.coords()
        sampled, _ = block_fps(structure, coords, 200)
        assert len(sampled) == 200
        assert sampled.max() < len(coords)
