"""Served network inference ≡ the offline per-cloud reference, bit for bit.

Proof obligations of the inference path (all at ``array_equal`` level,
never ``allclose``):

1. delayed aggregation (per-point MLP, then gather + pool) equals eager
   aggregation (gather, then MLP + pool) on every registry model — the
   Mesorasi restructuring must be invisible in the output;
2. the engine's model pipelines — per-cloud and fused-window — equal
   :func:`repro.infer.run_offline` on each cloud alone, for every model,
   every aggregation mode, and every kernel selection (explicit and via
   ``REPRO_KERNEL``);
3. multi-tenant serving with per-tenant models stays bit-identical to
   the offline reference, whatever the window composition;
4. a hypothesis sweep over ragged size mixes keeps obligation 2 true for
   arbitrary fused-bucket shapes.
"""

import threading

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import dispatch
from repro.infer import MODEL_NAMES, model_spec, run_offline
from repro.runtime import BatchExecutor, PipelineSpec
from repro.serve import MultiTenantServer, TenantSpec

#: Ragged sizes straddling the models' stage clamps (n_out=64 at 256
#: nominal points): tiny clouds clamp every stage, larger ones do not.
SIZES = (64, 97, 150, 210)


def make_cloud(n: int, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.normal(size=(n, 3))


class TestRegistry:
    def test_unknown_model_rejected(self):
        with pytest.raises(ValueError, match="unknown model"):
            model_spec("resnet50")

    def test_pipeline_spec_validates_agg(self):
        with pytest.raises(ValueError, match="agg"):
            PipelineSpec(model="pointnet2-cls", agg="lazy")

    def test_thread_local_instances_are_bit_identical(self):
        """Deterministic seeds: which thread serves a request never shows."""
        coords = make_cloud(120, seed=0)
        outs = {}

        def worker(tag):
            outs[tag] = run_offline("pointnet2-cls", coords)

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(2)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert np.array_equal(outs[0], outs[1])


class TestAggDispatch:
    def test_choose_prefers_delayed_when_macs_dominate(self):
        # A wide mid-network stage (64-channel features in and out) at 8x
        # neighbour overlap: eager pays the GEMM on 32K gathered rows,
        # delayed on the 4K input rows, and the output gather it adds
        # costs less than the spared MAC work.
        assert dispatch.choose_agg(4096, 1024, 32, (67, 128, 64)) == "delayed"

    def test_choose_prefers_eager_when_centers_are_few(self):
        # 4 centres × 2 neighbours: eager touches 8 rows, delayed all 4096.
        assert dispatch.choose_agg(4096, 4, 2, (3, 64, 64)) == "eager"

    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv(dispatch.AGG_ENV, "eager")
        assert dispatch.resolve_agg("delayed") == "delayed"

    def test_env_fills_in_for_auto(self, monkeypatch):
        monkeypatch.setenv(dispatch.AGG_ENV, "eager")
        assert dispatch.resolve_agg("auto") == "eager"

    def test_auto_without_shape_falls_back_to_delayed(self):
        assert dispatch.resolve_agg("auto") == "delayed"

    @pytest.mark.parametrize("name", MODEL_NAMES)
    def test_eager_delayed_auto_bit_identical(self, name):
        coords = make_cloud(150, seed=3)
        eager = run_offline(name, coords, agg="eager")
        assert np.array_equal(eager, run_offline(name, coords, agg="delayed"))
        assert np.array_equal(eager, run_offline(name, coords, agg="auto"))


class TestEngineParity:
    """Engine model pipelines ≡ run_offline, per cloud."""

    @pytest.mark.parametrize("name", MODEL_NAMES)
    @pytest.mark.parametrize("fuse", [False, True])
    def test_engine_matches_offline(self, name, fuse):
        clouds = [make_cloud(n, seed=10 + n) for n in SIZES]
        engine = BatchExecutor("fractal", max_workers=1, fuse=fuse)
        report = engine.run(clouds, PipelineSpec(model=name, agg="delayed"))
        for result, coords in zip(report.results, clouds):
            ref = run_offline(name, coords, agg="delayed")
            assert np.array_equal(result.model_output, ref)
            # Model pipelines leave the point-op fields empty.
            assert result.sampled.size == 0
            assert result.interpolated is None

    @pytest.mark.parametrize("kernel", ["loop", "stacked", "ragged"])
    def test_kernel_env_matrix(self, kernel, monkeypatch):
        """REPRO_KERNEL never changes the served logits."""
        coords = make_cloud(130, seed=5)
        baseline = run_offline("pointnet2-cls", coords, kernel="loop")
        monkeypatch.setenv(dispatch.KERNEL_ENV, kernel)
        engine = BatchExecutor("fractal", max_workers=1, fuse=True)
        report = engine.run(
            [coords], PipelineSpec(model="pointnet2-cls", agg="delayed")
        )
        assert np.array_equal(report.results[0].model_output, baseline)

    def test_duplicate_clouds_replay(self):
        coords = make_cloud(90, seed=7)
        engine = BatchExecutor("fractal", max_workers=1, fuse=True)
        report = engine.run(
            [coords, coords.copy()],
            PipelineSpec(model="pointnet2-cls", agg="delayed"),
        )
        assert report.results[1].reused
        assert np.array_equal(
            report.results[0].model_output, report.results[1].model_output
        )

    @settings(deadline=None, max_examples=8)
    @given(
        sizes=st.lists(st.integers(16, 140), min_size=1, max_size=5),
        agg=st.sampled_from(["eager", "delayed"]),
    )
    def test_fused_window_parity_over_ragged_mixes(self, sizes, agg):
        """Whatever the bucket composition, fused ≡ offline per cloud."""
        clouds = [make_cloud(n, seed=1000 + i) for i, n in enumerate(sizes)]
        engine = BatchExecutor(
            "fractal", max_workers=1, fuse=True, reuse_results=False
        )
        report = engine.run(clouds, PipelineSpec(model="pointnet2-cls", agg=agg))
        for result, coords in zip(report.results, clouds):
            ref = run_offline("pointnet2-cls", coords, agg=agg)
            assert np.array_equal(result.model_output, ref)


class TestSegmenterParity:
    def test_per_point_outputs_split_back(self):
        clouds = [make_cloud(n, seed=40 + n) for n in (80, 130)]
        engine = BatchExecutor("fractal", max_workers=1, fuse=True)
        report = engine.run(
            clouds, PipelineSpec(model="pointnet2-seg", agg="delayed")
        )
        for result, coords in zip(report.results, clouds):
            assert result.model_output.shape[0] == len(coords)
            ref = run_offline("pointnet2-seg", coords, agg="delayed")
            assert np.array_equal(result.model_output, ref)


class TestServedInference:
    """Multi-tenant serving with per-tenant models ≡ offline reference."""

    def drain_all(self, server):
        out = []
        while server.backlog:
            out.extend(server.drain(now=0.0))
        return out

    def test_mixed_model_tenants_bit_identical(self):
        roster = {
            "cls": ("pointnet2-cls", [make_cloud(n, seed=n) for n in (70, 120)]),
            "msg": ("pointnet2-msg-cls", [make_cloud(95, seed=2)]),
            "seg": ("pointnet2-seg", [make_cloud(85, seed=9)]),
        }
        engine = BatchExecutor("fractal", max_workers=1)
        server = MultiTenantServer(
            engine,
            [
                TenantSpec(name, PipelineSpec(model=model, agg="delayed"))
                for name, (model, _) in roster.items()
            ],
        )
        for name, (_, clouds) in roster.items():
            for cloud in clouds:
                server.submit(name, cloud, arrived=0.0)
        served = self.drain_all(server)
        per_tenant = {name: [] for name in roster}
        for emission in served:
            per_tenant[emission.tenant].append(emission)
        for name, (model, clouds) in roster.items():
            assert [e.seq for e in per_tenant[name]] == list(range(len(clouds)))
            for emission, coords in zip(per_tenant[name], clouds):
                ref = run_offline(model, coords, agg="delayed")
                assert np.array_equal(emission.result.model_output, ref)
