"""Fractal-accelerated dynamic graph construction (paper §VI-D).

The paper's "Potential Adaptations" discussion claims Fractal can
"exploit spatial locality in dynamic graphs to accelerate their
construction and updates in DGCNN".  DGCNN rebuilds a KNN graph over the
point features at every layer — an O(n²) all-pairs search that has the
same global-search structure as the PNN point operations.

This module implements that adaptation: :func:`block_knn_graph` builds
the KNN graph block-locally over a :class:`BlockStructure` (each point
searches its block's parent-expanded space), and :func:`exact_knn_graph`
is the global-search reference.  Graphs are returned as
:mod:`networkx` DiGraphs (an edge ``u → v`` means "v is one of u's K
nearest neighbours") so downstream graph algorithms apply directly.

Quality is measured by edge recall; the same parent-expansion argument
that preserves grouping accuracy applies, so recall stays high while the
distance-computation count drops from ``n²`` to ``n · O(th)``.
"""

from __future__ import annotations

import networkx as nx
import numpy as np

from ..geometry import ops as exact_ops
from .blocks import BlockStructure

__all__ = [
    "exact_knn_graph",
    "block_knn_graph",
    "edge_recall",
    "graph_construction_work",
]


def _graph_from_neighbors(neighbors: np.ndarray, coords: np.ndarray) -> nx.DiGraph:
    """Directed KNN graph with Euclidean edge weights."""
    graph = nx.DiGraph()
    graph.add_nodes_from(range(len(neighbors)))
    edges = []
    for u in range(len(neighbors)):
        for v in neighbors[u]:
            v = int(v)
            if v == u:
                continue
            weight = float(np.linalg.norm(coords[u] - coords[v]))
            edges.append((u, v, weight))
    graph.add_weighted_edges_from(edges)
    return graph


def exact_knn_graph(coords: np.ndarray, k: int) -> nx.DiGraph:
    """Global-search KNN graph (the DGCNN baseline, O(n^2) work).

    Each node's ``k`` nearest *other* points become out-edges.
    """
    coords = np.asarray(coords, dtype=np.float64)
    # k+1 because the nearest neighbour of a point is itself.
    neighbors = exact_ops.knn_search(coords, coords, min(k + 1, len(coords)))
    return _graph_from_neighbors(neighbors, coords)


def block_knn_graph(
    structure: BlockStructure, coords: np.ndarray, k: int
) -> tuple[nx.DiGraph, int]:
    """Block-local KNN graph over a partition (the Fractal adaptation).

    Every point searches only its block's search space (leaf + parent for
    deep leaves), making construction embarrassingly block-parallel.

    Returns:
        ``(graph, work)`` — the graph and the number of distance
        computations performed (for the speedup accounting).
    """
    coords = np.asarray(coords, dtype=np.float64)
    n = len(coords)
    neighbors = np.empty((n, min(k + 1, n)), dtype=np.int64)
    work = 0
    for block, space in zip(structure.blocks, structure.search_spaces):
        kk = min(k + 1, len(space))
        local = exact_ops.knn_search(coords[block.indices], coords[space], kk)
        picked = space[local]
        if kk < k + 1:
            # Tiny search space: pad with the nearest available.
            picked = np.concatenate(
                [picked, np.repeat(picked[:, :1], k + 1 - kk, axis=1)], axis=1
            )
        neighbors[block.indices] = picked
        work += len(block.indices) * len(space)
    return _graph_from_neighbors(neighbors, coords), work


def edge_recall(approx: nx.DiGraph, exact: nx.DiGraph) -> float:
    """Fraction of the exact graph's edges present in the approximation."""
    exact_edges = set(exact.edges())
    if not exact_edges:
        return 1.0
    approx_edges = set(approx.edges())
    return len(exact_edges & approx_edges) / len(exact_edges)


def graph_construction_work(n: int, structure: BlockStructure | None = None) -> int:
    """Distance computations needed to build the graph.

    Global construction costs ``n^2``; block-local construction costs
    ``sum_b |block_b| * |space_b|``.
    """
    if structure is None:
        return n * n
    return int(
        sum(
            len(block.indices) * len(space)
            for block, space in zip(structure.blocks, structure.search_spaces)
        )
    )
