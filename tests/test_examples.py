"""Smoke tests: the fast examples must run end to end.

(`indoor_segmentation.py` trains for minutes and is exercised by
`bench_fig14_accuracy.py`'s equivalent path instead.)
"""

import runpy
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"

FAST_EXAMPLES = [
    "quickstart.py",
    "fractal_workflow.py",
    "lidar_pipeline.py",
    "accelerator_comparison.py",
    "streaming_lidar.py",
    "serving_window.py",
    "multi_tenant_serving.py",
]


@pytest.mark.parametrize("script", FAST_EXAMPLES)
def test_example_runs(script, capsys):
    path = EXAMPLES / script
    assert path.exists(), f"missing example {script}"
    runpy.run_path(str(path), run_name="__main__")
    out = capsys.readouterr().out
    assert len(out) > 100  # produced a real report


def test_all_examples_present():
    scripts = sorted(p.name for p in EXAMPLES.glob("*.py"))
    assert "quickstart.py" in scripts
    assert len(scripts) >= 5  # the deliverable floor is 3
