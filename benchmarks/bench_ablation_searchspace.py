"""DESIGN §4.2 ablation — leaf-only vs parent-expanded search spaces.

The paper's block-wise neighbour search expands a deep leaf's search
space to its immediate parent (§IV-B).  This ablation quantifies both
sides of that choice on an S3DIS-like scene: neighbour recall (accuracy
driver) and the search-space volume (work/traffic driver).

Expected shape: parent expansion roughly doubles the scanned volume but
recovers most neighbours lost at block borders.
"""

import numpy as np

from repro.analysis import format_table
from repro.core import FractalConfig, dispatch, fractal_partition
from repro.core.blocks import BlockStructure
from repro.datasets import load_cloud
from repro.geometry import ball_query, neighbor_recall

from _common import emit

N_POINTS = 33_000


def run_searchspace():
    coords = load_cloud("s3dis", N_POINTS, seed=0).coords.astype(np.float64)
    tree = fractal_partition(coords, FractalConfig(threshold=256))
    parent = tree.block_structure()
    leaf_only = BlockStructure(
        num_points=parent.num_points,
        blocks=parent.blocks,
        search_spaces=[b.indices for b in parent.blocks],
        cost=parent.cost,
        strategy="fractal-leaf-only",
    )
    centers, _ = dispatch.run_op(
        "fps", parent, coords, N_POINTS // 4, num_centers=N_POINTS // 4
    )
    centers = centers[:1024]
    exact = ball_query(coords[centers], coords, 0.2, 16)

    rows = []
    recalls = {}
    for label, structure in [("leaf only", leaf_only), ("leaf + parent", parent)]:
        approx, trace = dispatch.run_op(
            "ball_query", structure, coords, centers, 0.2, 16,
            num_centers=len(centers),
        )
        recall = neighbor_recall(approx, exact)
        recalls[label] = recall
        rows.append([
            label,
            f"{structure.search_sizes.mean():.0f}",
            f"{trace.total_search_elements:.3g}",
            f"{recall:.3f}",
        ])
    table = format_table(
        ["search space", "mean candidates", "distance computations", "recall"],
        rows,
        title="Ablation — neighbour-search space rule (paper §IV-B)",
    )
    return table, recalls


def test_ablation_searchspace(benchmark):
    table, recalls = benchmark.pedantic(run_searchspace, rounds=1, iterations=1)
    emit("ablation_searchspace", table)
    assert recalls["leaf + parent"] > recalls["leaf only"]
    assert recalls["leaf + parent"] > 0.7
