"""Common interface for all partitioning strategies (paper Fig. 3).

Every strategy maps ``(n, 3)`` coordinates to a
:class:`~repro.core.blocks.BlockStructure`; the Block-Parallel Point
Operations and the hardware model consume that structure without knowing
which strategy produced it.
"""

from __future__ import annotations

import abc

import numpy as np

from ..core.blocks import BlockStructure

__all__ = ["Partitioner", "get_partitioner", "PARTITIONER_NAMES"]

PARTITIONER_NAMES = ("fractal", "uniform", "kdtree", "octree", "morton", "none")


class Partitioner(abc.ABC):
    """A strategy that splits a point cloud into blocks.

    Subclasses set :attr:`name` and implement :meth:`partition`.
    """

    #: Short identifier used in experiment tables.
    name: str = "abstract"

    @abc.abstractmethod
    def partition(self, coords: np.ndarray) -> BlockStructure:
        """Partition ``coords`` ((n, 3)) into blocks."""

    def __call__(self, coords: np.ndarray) -> BlockStructure:
        structure = self.partition(np.asarray(coords, dtype=np.float64))
        structure.validate()
        return structure

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


def get_partitioner(name: str, *, max_points_per_block: int = 256) -> Partitioner:
    """Factory over the strategies compared in the paper.

    Args:
        name: one of ``fractal | uniform | kdtree | octree | none``.
        max_points_per_block: the block-size threshold (``th`` / BS).
            The uniform grid derives its cell count from this so all
            strategies target comparable average block populations.
    """
    from .fractal_adapter import FractalPartitioner
    from .kdtree import KDTreePartitioner
    from .morton import MortonPartitioner
    from .octree import OctreePartitioner
    from .uniform import UniformPartitioner
    from .none import NoPartitioner

    factories = {
        "fractal": lambda: FractalPartitioner(threshold=max_points_per_block),
        "uniform": lambda: UniformPartitioner(target_block_size=max_points_per_block),
        "kdtree": lambda: KDTreePartitioner(max_leaf_size=max_points_per_block),
        "octree": lambda: OctreePartitioner(max_leaf_size=max_points_per_block),
        "morton": lambda: MortonPartitioner(block_size=max_points_per_block),
        "none": lambda: NoPartitioner(),
    }
    if name not in factories:
        raise ValueError(f"unknown partitioner {name!r}; expected one of {PARTITIONER_NAMES}")
    return factories[name]()
