"""Indoor-scene generator (S3DIS substitute) for large-scale workloads.

S3DIS is the paper's large-scale benchmark (8 K–289 K points; 1 M for the
asymptotic study).  This generator reproduces the statistical properties
the partitioning experiments depend on:

- points concentrated on *surfaces* (floors, walls, furniture) — the
  shape-alignment property Fractal exploits;
- strongly non-uniform density (per-surface density jitter plus a
  scanner-distance falloff) — the property that breaks space-uniform
  partitioning;
- large coplanar structures (whole floors/walls) — the §VI-D pathology
  that dimension cycling must survive;
- a small outlier population (0.5–2.5 %, matching the paper's S3DIS
  measurement).

Labels follow the 13 S3DIS classes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..geometry import PointCloud

__all__ = ["SCENE_CLASSES", "make_scene", "SceneSpec"]

SCENE_CLASSES = [
    "ceiling", "floor", "wall", "beam", "column", "window", "door",
    "table", "chair", "sofa", "bookcase", "board", "clutter",
]
_LABEL = {name: i for i, name in enumerate(SCENE_CLASSES)}

_ROOM_W, _ROOM_D, _ROOM_H = 6.0, 4.0, 3.0


@dataclass
class _Rect:
    """A labelled parallelogram surface patch: origin + two edge vectors."""

    origin: np.ndarray
    u: np.ndarray
    v: np.ndarray
    label: int

    @property
    def area(self) -> float:
        return float(np.linalg.norm(np.cross(self.u, self.v)))

    @property
    def center(self) -> np.ndarray:
        return self.origin + 0.5 * self.u + 0.5 * self.v

    def sample(self, m: int, rng: np.random.Generator) -> np.ndarray:
        a = rng.uniform(size=(m, 1))
        b = rng.uniform(size=(m, 1))
        return self.origin + a * self.u + b * self.v


def _box_rects(center, size, label) -> list[_Rect]:
    """Six rectangle faces of an axis-aligned box."""
    cx, cy, cz = center
    sx, sy, sz = np.asarray(size) / 2.0
    lo = np.array([cx - sx, cy - sy, cz - sz])
    ex = np.array([2 * sx, 0, 0])
    ey = np.array([0, 2 * sy, 0])
    ez = np.array([0, 0, 2 * sz])
    return [
        _Rect(lo, ex, ey, label),
        _Rect(lo + ez, ex, ey, label),
        _Rect(lo, ex, ez, label),
        _Rect(lo + ey, ex, ez, label),
        _Rect(lo, ey, ez, label),
        _Rect(lo + ex, ey, ez, label),
    ]


def _furnish_room(room_origin: np.ndarray, rng: np.random.Generator) -> list[_Rect]:
    """Surfaces of one office room at ``room_origin`` (its min corner)."""
    ox, oy = float(room_origin[0]), float(room_origin[1])
    w, d, h = _ROOM_W, _ROOM_D, _ROOM_H
    rects: list[_Rect] = []

    floor = _Rect(np.array([ox, oy, 0.0]), np.array([w, 0, 0]), np.array([0, d, 0]), _LABEL["floor"])
    ceiling = _Rect(np.array([ox, oy, h]), np.array([w, 0, 0]), np.array([0, d, 0]), _LABEL["ceiling"])
    rects += [floor, ceiling]

    walls = [
        _Rect(np.array([ox, oy, 0.0]), np.array([w, 0, 0]), np.array([0, 0, h]), _LABEL["wall"]),
        _Rect(np.array([ox, oy + d, 0.0]), np.array([w, 0, 0]), np.array([0, 0, h]), _LABEL["wall"]),
        _Rect(np.array([ox, oy, 0.0]), np.array([0, d, 0]), np.array([0, 0, h]), _LABEL["wall"]),
        _Rect(np.array([ox + w, oy, 0.0]), np.array([0, d, 0]), np.array([0, 0, h]), _LABEL["wall"]),
    ]
    rects += walls

    # Door + window + board live slightly off a wall plane.
    rects.append(_Rect(np.array([ox + 1.0, oy + 0.01, 0.0]), np.array([0.9, 0, 0]),
                       np.array([0, 0, 2.1]), _LABEL["door"]))
    rects.append(_Rect(np.array([ox + 3.5, oy + 0.01, 1.0]), np.array([1.4, 0, 0]),
                       np.array([0, 0, 1.2]), _LABEL["window"]))
    rects.append(_Rect(np.array([ox + 1.5, oy + d - 0.01, 1.1]), np.array([2.2, 0, 0]),
                       np.array([0, 0, 1.1]), _LABEL["board"]))

    # Occasional structural column / beam.
    if rng.uniform() < 0.5:
        rects += _box_rects([ox + 0.3, oy + 0.3, h / 2], [0.3, 0.3, h], _LABEL["column"])
    if rng.uniform() < 0.35:
        rects += _box_rects([ox + w / 2, oy + d / 2, h - 0.15], [w, 0.3, 0.3], _LABEL["beam"])

    # Furniture: a couple of tables with chairs, a sofa, a bookcase.
    for _ in range(rng.integers(1, 3)):
        tx = ox + rng.uniform(1.2, w - 1.2)
        ty = oy + rng.uniform(1.0, d - 1.0)
        rects += _box_rects([tx, ty, 0.72], [1.4, 0.8, 0.06], _LABEL["table"])
        for dx, dy in [(-0.9, 0.0), (0.9, 0.0)]:
            rects += _box_rects([tx + dx, ty + dy, 0.45], [0.45, 0.45, 0.9], _LABEL["chair"])
    rects += _box_rects([ox + w - 1.0, oy + d - 0.6, 0.4], [1.8, 0.8, 0.8], _LABEL["sofa"])
    rects += _box_rects([ox + 0.25, oy + d - 1.5, 1.0], [0.4, 1.2, 2.0], _LABEL["bookcase"])
    return rects


@dataclass
class SceneSpec:
    """Summary of a generated scene (useful for tests/examples)."""

    num_rooms: int
    num_surfaces: int
    outlier_fraction: float
    extent: np.ndarray


def make_scene(
    num_points: int,
    seed: int = 0,
    *,
    outlier_fraction: float | None = None,
    noise: float = 0.008,
) -> tuple[PointCloud, SceneSpec]:
    """Generate an S3DIS-like multi-room scene with ``num_points`` points.

    Room count scales with the requested size (~33 K points per room at
    S3DIS-like density) so large inputs are larger *environments*, not
    denser scans — matching how the paper scales its S3DIS test crops.

    Args:
        num_points: total output points (>= 64).
        seed: RNG seed (fully deterministic output).
        outlier_fraction: fraction of floating outlier points; default
            draws from the paper's measured 0.5–2.5 % band.
        noise: surface sensor-noise sigma in metres.

    Returns:
        ``(cloud, spec)`` — labelled cloud and generation summary.
    """
    if num_points < 64:
        raise ValueError(f"num_points must be >= 64, got {num_points}")
    rng = np.random.default_rng(seed)
    if outlier_fraction is None:
        outlier_fraction = float(rng.uniform(0.005, 0.025))
    if not 0.0 <= outlier_fraction < 0.5:
        raise ValueError(f"outlier_fraction must be in [0, 0.5), got {outlier_fraction}")

    num_rooms = max(1, int(round(num_points / 33_000)))
    grid_w = int(np.ceil(np.sqrt(num_rooms)))
    rects: list[_Rect] = []
    scanners: list[np.ndarray] = []
    for room in range(num_rooms):
        gx, gy = room % grid_w, room // grid_w
        origin = np.array([gx * _ROOM_W, gy * _ROOM_D, 0.0])
        rects += _furnish_room(origin, rng)
        scanners.append(origin + np.array(
            [rng.uniform(1, _ROOM_W - 1), rng.uniform(1, _ROOM_D - 1), 1.6]
        ))
    scanners_arr = np.stack(scanners)

    # Density: area x per-surface jitter x scanner-distance falloff.
    # Real S3DIS scans are *highly* uneven (the paper's motivation for
    # density-aware partitioning): surfaces near the scanner are orders
    # of magnitude denser than far corners, and reflective/cluttered
    # surfaces add heavy-tailed per-surface variation.  Log-normal
    # jitter plus a quadratic falloff reproduces that dynamic range.
    areas = np.array([r.area for r in rects])
    jitter = np.clip(rng.lognormal(mean=0.0, sigma=1.0, size=len(rects)), 0.15, 8.0)
    centers = np.stack([r.center for r in rects])
    d_scan = np.linalg.norm(
        centers[:, None, :] - scanners_arr[None, :, :], axis=2
    ).min(axis=1)
    falloff = 1.0 / (0.4 + (d_scan / 3.0) ** 2)
    weights = areas * jitter * falloff
    weights /= weights.sum()

    n_outliers = int(round(num_points * outlier_fraction))
    n_surface = num_points - n_outliers
    counts = rng.multinomial(n_surface, weights)

    coords_list, labels_list = [], []
    for rect, count in zip(rects, counts):
        if count == 0:
            continue
        coords_list.append(rect.sample(int(count), rng))
        labels_list.append(np.full(int(count), rect.label, dtype=np.int64))

    if n_outliers:
        extent_hi = np.array([grid_w * _ROOM_W, np.ceil(num_rooms / grid_w) * _ROOM_D, _ROOM_H])
        coords_list.append(rng.uniform(0, 1, size=(n_outliers, 3)) * extent_hi)
        labels_list.append(np.full(n_outliers, _LABEL["clutter"], dtype=np.int64))

    coords = np.concatenate(coords_list)
    coords += rng.normal(scale=noise, size=coords.shape)
    labels = np.concatenate(labels_list)
    perm = rng.permutation(len(coords))
    cloud = PointCloud(coords[perm].astype(np.float32), labels=labels[perm])
    spec = SceneSpec(
        num_rooms=num_rooms,
        num_surfaces=len(rects),
        outlier_fraction=outlier_fraction,
        extent=coords.max(axis=0) - coords.min(axis=0),
    )
    return cloud, spec
