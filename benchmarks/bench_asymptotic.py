"""§VI-D — asymptotic scaling (>500 K points) and the imbalance effect.

Two studies from the discussion section:

1. **Asymptotic speedup**: FractalCloud vs GPU at 500 K and 1 M points on
   PointNeXt segmentation (paper: 105.7x over GPU at 1 M).
2. **Imbalance effect**: end-to-end latency on a real (partially
   imbalanced) scene partition vs an idealised strictly-balanced
   partition with identical block count (paper: +3.0% / +2.8% only).
"""

import numpy as np

from repro.analysis import format_table
from repro.hw import AcceleratorSim, FRACTALCLOUD, GPUModel
from repro.networks import get_workload
from repro.runtime import compile_program
from repro.runtime.program import PartitionStats

from _common import emit

SCALES = [289_000, 500_000, 1_000_000]


def run_asymptotic():
    spec = get_workload("PNXt(s)")
    gpu = GPUModel()
    sim = AcceleratorSim(FRACTALCLOUD)
    rows = []
    for n in SCALES:
        g = gpu.run(spec, n)
        r = sim.run(spec, n)
        rows.append([
            n,
            f"{g.latency_s:.2f}",
            f"{r.latency_s * 1e3:.1f}",
            f"{g.latency_s / r.latency_s:.1f}x",
        ])
    scaling = format_table(
        ["points", "GPU s", "FractalCloud ms", "speedup"],
        rows,
        title="Asymptotic scaling (paper: 105.7x over GPU at 1M points)",
    )

    # Imbalance effect: replace measured block stats with a strictly
    # balanced partition of the same block count and compare latency.
    n = 289_000
    program = compile_program(spec, n, "fractal", FRACTALCLOUD.block_size)
    real = sim.run_program(program)
    for plan in program.stages:
        if plan.partition is None:
            continue
        blocks = plan.partition.num_blocks
        points = plan.partition.num_points
        even = np.full(blocks, points // blocks, dtype=np.int64)
        even[: points % blocks] += 1
        plan.partition = PartitionStats(
            strategy="fractal",
            block_sizes=even,
            search_sizes=np.minimum(even * 2, points),
            cost=plan.partition.cost,
        )
    balanced = sim.run_program(program)
    overhead = real.latency_s / balanced.latency_s - 1.0
    imbalance = format_table(
        ["case", "latency ms"],
        [["measured partition", f"{real.latency_s * 1e3:.2f}"],
         ["strictly balanced", f"{balanced.latency_s * 1e3:.2f}"],
         ["imbalance overhead", f"{100 * overhead:.1f}%"]],
        title="Imbalance effect @ 289K (paper: +3.0% PointNeXt / +2.8% PointVector)",
    )
    return "\n".join([scaling, "", imbalance]), rows, overhead


def test_asymptotic(benchmark):
    table, rows, overhead = benchmark.pedantic(run_asymptotic, rounds=1, iterations=1)
    emit("asymptotic", table)
    speedups = [float(r[3].rstrip("x")) for r in rows]
    # Speedup keeps growing past 500 K points.
    assert speedups[-1] >= speedups[0]
    assert speedups[-1] > 20
    # Partial imbalance costs percents, not factors.
    assert overhead < 0.25
