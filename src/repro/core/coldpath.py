"""Fused build-and-sample: FPS interleaved with partition construction.

A cold :class:`~repro.runtime.cache.PartitionCache` miss pays the full
tree build *then* a separate block-FPS pass — two traversals of every
point before the first kernel output exists.  FuseFPS-style fusion folds
the sampling pass into the build: the moment a tree node is finalized as
a leaf, its points are already resident, so the FPS recurrence starts
immediately on that block while the builder keeps splitting the rest of
the cloud.

The python analogue keeps the hardware contract that matters — **bit
identity** with the unfused path (``partitioner(coords)`` followed by
``block_fps``).  Two properties make that cheap to guarantee:

- the builders call :func:`~repro.partition.base.Partitioner.partition`'s
  ``on_leaf`` hook with exactly the index ordering the final
  :class:`~repro.core.blocks.Block` will carry, so per-leaf FPS sees the
  same candidate order as the reference;
- the exact FPS recurrence is *prefix-stable*: retaining ``min_d2``
  lets a provisional sample list be truncated or extended to the exact
  largest-remainder quota (only known once all block sizes are) without
  changing a single selected index.

Because final quotas are unknown mid-build, each leaf samples an
estimated pro-rata quota eagerly and the driver reconciles against
:func:`~repro.core.bppo.allocate_samples` afterwards.
"""

from __future__ import annotations

import numpy as np

from .blocks import BlockStructure
from .bppo import BlockWork, OpTrace, allocate_samples

__all__ = ["FusedBuildUnsupported", "fused_build_and_sample", "supports_fused_build"]


class FusedBuildUnsupported(TypeError):
    """The partitioner does not implement the ``on_leaf`` build hook."""


def supports_fused_build(partitioner) -> bool:
    """True when ``partitioner`` exposes the fused-build leaf hook."""
    return bool(getattr(partitioner, "supports_fused_build", False))


class _LeafSampler:
    """Incremental FPS over one finalized block.

    Replicates :func:`repro.geometry.ops.farthest_point_sample`
    (``start_index=0``) step for step: ``argmax`` over the running
    ``min_d2`` array, then an in-place ``minimum`` update.  Keeping the
    state alive is what makes quota reconciliation free: ``take(q)`` is a
    slice when the estimate overshot and a resumed recurrence when it
    undershot — both bit-identical to a fresh run at quota ``q``.
    """

    __slots__ = ("local", "selected", "min_d2")

    def __init__(self, local: np.ndarray, quota: int):
        self.local = local
        self.selected = [0]
        self.min_d2 = np.sum((local - local[0]) ** 2, axis=1)
        self._grow(quota)

    def _grow(self, upto: int) -> None:
        upto = min(int(upto), len(self.local))
        while len(self.selected) < upto:
            nxt = int(np.argmax(self.min_d2))
            self.selected.append(nxt)
            d2 = np.sum((self.local - self.local[nxt]) ** 2, axis=1)
            np.minimum(self.min_d2, d2, out=self.min_d2)

    def take(self, quota: int) -> np.ndarray:
        self._grow(quota)
        return np.asarray(self.selected[:quota], dtype=np.int64)


def fused_build_and_sample(
    partitioner,
    coords: np.ndarray,
    num_samples: int,
) -> tuple[BlockStructure, np.ndarray, OpTrace]:
    """Build the partition and FPS-sample it in one interleaved pass.

    Args:
        partitioner: a :class:`~repro.partition.base.Partitioner` whose
            ``partition`` accepts the ``on_leaf`` hook (kdtree, octree,
            uniform, fractal).
        coords: ``(n, 3)`` point coordinates.
        num_samples: global sample budget (clamped to ``n`` like
            :func:`~repro.core.bppo.block_fps`).

    Returns:
        ``(structure, sampled, trace)`` — bit-identical to
        ``structure = partitioner(coords)`` followed by
        ``block_fps(structure, coords, num_samples)``.

    Raises:
        FusedBuildUnsupported: the partitioner has no leaf hook.
    """
    if not supports_fused_build(partitioner):
        raise FusedBuildUnsupported(
            f"partitioner {getattr(partitioner, 'name', partitioner)!r} does not "
            f"support fused build-and-sample"
        )
    coords = np.ascontiguousarray(np.asarray(coords, dtype=np.float64))
    n = len(coords)
    if n == 0:
        raise ValueError("cannot partition an empty point cloud")
    budget = min(max(int(num_samples), 1), n)

    samplers: dict[int, _LeafSampler] = {}

    def on_leaf(block_indices: np.ndarray) -> None:
        # Pro-rata estimate of the final largest-remainder quota; ceil
        # overshoots slightly so reconciliation usually truncates.
        size = len(block_indices)
        est = min(size, max(1, -(-budget * size // n)))
        samplers[int(block_indices[0])] = _LeafSampler(coords[block_indices], est)

    structure = partitioner.partition(coords, on_leaf=on_leaf)
    structure.validate()

    quotas = allocate_samples(structure.block_sizes, budget, clamp=True)
    trace = OpTrace(kind="fps")
    chunks: list[np.ndarray] = []
    for block_id, (block, quota) in enumerate(zip(structure.blocks, quotas)):
        trace.blocks.append(
            BlockWork(
                block_id=block_id,
                n_points=len(block),
                n_search=len(block),
                n_centers=int(quota),
                n_outputs=int(quota),
            )
        )
        if quota == 0:
            continue
        local = samplers[int(block.indices[0])].take(int(quota))
        chunks.append(block.indices[local])
    sampled = np.concatenate(chunks) if chunks else np.empty(0, dtype=np.int64)
    return structure, sampled, trace
