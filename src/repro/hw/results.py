"""Result records produced by the accelerator and GPU simulators."""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["PhaseStats", "RunResult", "TraceEvent", "POINT_OP_PHASES"]

#: Phases the paper groups as "Point Ops" in its breakdowns (Fig. 15).
POINT_OP_PHASES = ("partition", "sample", "neighbor", "interpolate", "gather")


@dataclass
class PhaseStats:
    """Latency/energy accounting for one execution phase."""

    seconds: float = 0.0
    compute_j: float = 0.0
    sram_j: float = 0.0
    dram_j: float = 0.0
    dram_bytes: float = 0.0
    sram_bytes: float = 0.0

    @property
    def energy_j(self) -> float:
        return self.compute_j + self.sram_j + self.dram_j

    def add(self, other: "PhaseStats") -> None:
        self.seconds += other.seconds
        self.compute_j += other.compute_j
        self.sram_j += other.sram_j
        self.dram_j += other.dram_j
        self.dram_bytes += other.dram_bytes
        self.sram_bytes += other.sram_bytes


@dataclass(frozen=True)
class TraceEvent:
    """One operation in the simulated execution timeline."""

    stage_index: int
    stage_kind: str
    phase: str
    start_s: float
    seconds: float
    compute_cycles: float
    dram_bytes: float

    @property
    def end_s(self) -> float:
        return self.start_s + self.seconds


@dataclass
class RunResult:
    """One simulated inference on one platform.

    Attributes:
        platform: config or GPU name.
        workload: Table I key.
        num_points: input scale.
        phases: per-phase statistics.
        static_j: leakage energy charged over the whole run.
        trace: per-operation timeline (populated when the simulator runs
            with ``trace=True``); events are sequential, so each event's
            ``start_s`` is the sum of all earlier durations.
    """

    platform: str
    workload: str
    num_points: int
    phases: dict[str, PhaseStats] = field(default_factory=dict)
    static_j: float = 0.0
    trace: list[TraceEvent] = field(default_factory=list)

    def timeline(self) -> str:
        """Human-readable execution timeline (trace mode only)."""
        if not self.trace:
            return "(no trace recorded — run with trace=True)"
        lines = [f"timeline — {self.platform} / {self.workload} @ {self.num_points}"]
        for ev in self.trace:
            lines.append(
                f"  [{ev.start_s * 1e3:9.4f} ms] stage {ev.stage_index:2d} "
                f"{ev.stage_kind:6s} {ev.phase:11s} "
                f"{ev.seconds * 1e3:9.4f} ms  dram {ev.dram_bytes / 1e6:8.2f} MB"
            )
        return "\n".join(lines)

    def phase(self, name: str) -> PhaseStats:
        if name not in self.phases:
            self.phases[name] = PhaseStats()
        return self.phases[name]

    @property
    def latency_s(self) -> float:
        return sum(p.seconds for p in self.phases.values())

    @property
    def energy_j(self) -> float:
        return sum(p.energy_j for p in self.phases.values()) + self.static_j

    @property
    def dram_bytes(self) -> float:
        return sum(p.dram_bytes for p in self.phases.values())

    @property
    def point_op_seconds(self) -> float:
        return sum(
            p.seconds for name, p in self.phases.items() if name in POINT_OP_PHASES
        )

    @property
    def mlp_seconds(self) -> float:
        return self.phases.get("mlp", PhaseStats()).seconds

    @property
    def other_seconds(self) -> float:
        return self.latency_s - self.point_op_seconds - self.mlp_seconds

    def energy_breakdown(self) -> dict[str, float]:
        """Joules by component: compute / SRAM / DRAM / static."""
        return {
            "compute": sum(p.compute_j for p in self.phases.values()),
            "sram": sum(p.sram_j for p in self.phases.values()),
            "dram": sum(p.dram_j for p in self.phases.values()),
            "static": self.static_j,
        }

    def summary_row(self) -> list:
        return [
            self.platform,
            self.workload,
            self.num_points,
            f"{self.latency_s * 1e3:.3f} ms",
            f"{self.energy_j * 1e3:.3f} mJ",
            f"{self.dram_bytes / 1e6:.2f} MB",
        ]
