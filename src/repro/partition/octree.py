"""Octree partitioning (HGPCN/ParallelNN-style, paper Fig. 16).

A uniform-based extension with dynamic subdivision: cells splitting into
eight equal octants whenever they exceed the leaf bound.  Adapts to
density better than a flat grid (cells subdivide where points concentrate)
but still splits *space* rather than the point distribution, so residual
imbalance — and the paper's reported ≈3 % accuracy loss — remains.

Cost model: every subdivision level is one streaming classification pass
over the oversized cells (three coordinate comparisons per point), plus
per-level control overhead for managing up to 8 children per node, which
is where the paper's "increased control complexity" shows up.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..core.blocks import Block, BlockStructure, PartitionCost
from ..core.delta import OctreeCertificate, attach_certificate
from .base import Partitioner

__all__ = ["OctreePartitioner", "OctreeNode"]

_DEGENERATE_EXTENT = 1e-12


@dataclass
class OctreeNode:
    """One octree cell."""

    indices: np.ndarray
    depth: int
    lo: np.ndarray
    hi: np.ndarray
    children: list["OctreeNode"] = field(default_factory=list)
    parent: Optional["OctreeNode"] = field(default=None, repr=False)
    #: Octant code within the parent cell (root: -1).
    code: int = -1

    @property
    def is_leaf(self) -> bool:
        return not self.children


class OctreePartitioner(Partitioner):
    """Octree with max-points-per-leaf subdivision.

    Args:
        max_leaf_size: subdivision threshold.
        max_depth: hard recursion bound (guards coincident points).
    """

    name = "octree"
    supports_fused_build = True

    def __init__(self, max_leaf_size: int = 256, max_depth: int = 24):
        if max_leaf_size < 1:
            raise ValueError(f"max_leaf_size must be >= 1, got {max_leaf_size}")
        self.max_leaf_size = max_leaf_size
        self.max_depth = max_depth

    def partition(self, coords: np.ndarray, on_leaf=None) -> BlockStructure:
        n = len(coords)
        if n == 0:
            raise ValueError("cannot partition an empty point cloud")

        cost = PartitionCost()
        lo = coords.min(axis=0)
        hi = coords.max(axis=0)
        root = OctreeNode(np.arange(n, dtype=np.int64), 0, lo, hi)
        frontier = [root] if n > self.max_leaf_size else []
        if not frontier and on_leaf is not None:
            on_leaf(np.sort(root.indices))
        levels = 0
        while frontier:
            levels += 1
            cost.passes.append(int(sum(len(node.indices) for node in frontier)))
            next_frontier: list[OctreeNode] = []
            for node in frontier:
                if node.depth >= self.max_depth:
                    if on_leaf is not None:
                        on_leaf(np.sort(node.indices))
                    continue
                extent = node.hi - node.lo
                if np.all(extent <= _DEGENERATE_EXTENT):
                    if on_leaf is not None:
                        on_leaf(np.sort(node.indices))
                    continue  # coincident points: give up on this cell
                mid = (node.lo + node.hi) / 2.0
                pts = coords[node.indices]
                octant = (
                    (pts[:, 0] > mid[0]).astype(np.int64) * 4
                    + (pts[:, 1] > mid[1]).astype(np.int64) * 2
                    + (pts[:, 2] > mid[2]).astype(np.int64)
                )
                for code in range(8):
                    mask = octant == code
                    if not np.any(mask):
                        continue
                    child_lo = np.where(
                        [code & 4, code & 2, code & 1], mid, node.lo
                    ).astype(np.float64)
                    child_hi = np.where(
                        [code & 4, code & 2, code & 1], node.hi, mid
                    ).astype(np.float64)
                    child = OctreeNode(
                        node.indices[mask], node.depth + 1, child_lo, child_hi,
                        parent=node, code=code,
                    )
                    node.children.append(child)
                    if len(child.indices) > self.max_leaf_size:
                        next_frontier.append(child)
                    elif on_leaf is not None:
                        on_leaf(np.sort(child.indices))
            frontier = next_frontier
        cost.levels = levels

        leaves = self._collect_leaves(root)
        blocks = [Block(np.sort(leaf.indices), depth=max(leaf.depth, 1)) for leaf in leaves]
        spaces = [b.indices for b in blocks]
        structure = BlockStructure(
            num_points=n,
            blocks=blocks,
            search_spaces=spaces,
            cost=cost,
            strategy=self.name,
        )
        attach_certificate(
            structure,
            OctreeCertificate.from_tree(
                root, leaves, self.max_leaf_size, self.max_depth
            ),
        )
        return structure

    @staticmethod
    def _collect_leaves(root: OctreeNode) -> list[OctreeNode]:
        leaves: list[OctreeNode] = []
        stack = [root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                leaves.append(node)
            else:
                stack.extend(reversed(node.children))
        return leaves
