"""Parity suite: the batched and ragged execution paths are bit-identical
to the exact single-cloud references.

Four layers of proof obligations, all at index/bit level (``array_equal``,
never ``allclose``):

1. every ``block_*_batched`` op *and* every ragged CSR kernel
   (:mod:`repro.core.ragged`) equals its serial ``block_*`` reference
   across partitioners and cloud shapes (n=1, duplicate points, blocks
   smaller than the ball-query group size);
2. with the ``none`` partitioner (single block) the block ops equal the
   global-search references in :mod:`repro.geometry.ops`;
3. the :class:`~repro.runtime.executor.BatchExecutor` end-to-end pipeline
   equals a hand-rolled serial loop of the reference ops — for every
   kernel selection and for whole-cloud fusion (size-bucketed clouds,
   equal-size or mixed, concatenated into one ragged problem per bucket);
4. kernel dispatch never changes results (see also ``tests/test_dispatch.py``
   for the boundary-straddling and property cases).
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import bppo, ragged
from repro.geometry import ops as exact_ops
from repro.partition import get_partitioner
from repro.runtime import BatchExecutor, PipelineSpec

PARTITIONERS = ("octree", "kdtree", "uniform", "none", "fractal", "morton")
CLOUD_SIZES = (1, 2, 7, 33, 257)

#: (label, fps, ball_query, knn, interpolate) — every fast path that must
#: reproduce the serial ``block_*`` reference bit-for-bit.
FAST_PATHS = (
    (
        "stacked",
        bppo.block_fps_batched,
        bppo.block_ball_query_batched,
        bppo.block_knn_batched,
        bppo.block_interpolate_batched,
    ),
    (
        "ragged",
        ragged.ragged_fps,
        ragged.ragged_ball_query,
        ragged.ragged_knn,
        ragged.ragged_interpolate,
    ),
)


def make_cloud(n: int, seed: int, duplicates: bool = False) -> np.ndarray:
    rng = np.random.default_rng(seed)
    pts = rng.normal(size=(n, 3))
    if duplicates and n >= 4:
        # Exact coordinate duplicates: the tie-breaking stress test.
        pts[n // 2:] = pts[: n - n // 2]
    return pts


def structure_for(name: str, coords: np.ndarray, block_size: int = 16):
    return get_partitioner(name, max_points_per_block=block_size)(coords)


class TestBlockOpParity:
    """block_*_batched ≡ ragged_* ≡ block_* — indices, weights, traces."""

    @pytest.mark.parametrize("path", FAST_PATHS, ids=lambda p: p[0])
    @pytest.mark.parametrize("partitioner", PARTITIONERS)
    @pytest.mark.parametrize("n", CLOUD_SIZES)
    @pytest.mark.parametrize("duplicates", [False, True])
    def test_fps(self, path, partitioner, n, duplicates):
        coords = make_cloud(n, seed=n, duplicates=duplicates)
        structure = structure_for(partitioner, coords)
        num = max(1, n // 3)
        serial, t_serial = bppo.block_fps(structure, coords, num)
        fast, t_fast = path[1](structure, coords, num)
        assert np.array_equal(serial, fast)
        assert [(w.block_id, w.n_centers) for w in t_serial.blocks] == [
            (w.block_id, w.n_centers) for w in t_fast.blocks
        ]

    @pytest.mark.parametrize("path", FAST_PATHS, ids=lambda p: p[0])
    @pytest.mark.parametrize("partitioner", PARTITIONERS)
    @pytest.mark.parametrize("n", CLOUD_SIZES)
    @pytest.mark.parametrize("duplicates", [False, True])
    def test_ball_query(self, path, partitioner, n, duplicates):
        coords = make_cloud(n, seed=100 + n, duplicates=duplicates)
        structure = structure_for(partitioner, coords, block_size=8)
        centers, _ = bppo.block_fps(structure, coords, max(1, n // 2))
        # num=16 with block_size=8: every block is smaller than the group
        # size, exercising the first-hit padding path in every block.
        for num in (3, 16):
            serial, _ = bppo.block_ball_query(structure, coords, centers, 0.4, num)
            fast, _ = path[2](structure, coords, centers, 0.4, num)
            assert np.array_equal(serial, fast)

    @pytest.mark.parametrize("path", FAST_PATHS, ids=lambda p: p[0])
    @pytest.mark.parametrize("partitioner", PARTITIONERS)
    @pytest.mark.parametrize("n", CLOUD_SIZES)
    @pytest.mark.parametrize("duplicates", [False, True])
    def test_knn_and_interpolate(self, path, partitioner, n, duplicates):
        coords = make_cloud(n, seed=200 + n, duplicates=duplicates)
        structure = structure_for(partitioner, coords, block_size=8)
        candidates, _ = bppo.block_fps(structure, coords, max(1, n // 2))
        k = min(3, len(candidates))
        centers = np.arange(n, dtype=np.int64)

        serial, t_serial = bppo.block_knn(structure, coords, centers, candidates, k)
        fast, t_fast = path[3](structure, coords, centers, candidates, k)
        assert np.array_equal(serial, fast)
        assert [w.widened for w in t_serial.blocks] == [
            w.widened for w in t_fast.blocks
        ]
        assert [(w.n_centers, w.n_search) for w in t_serial.blocks] == [
            (w.n_centers, w.n_search) for w in t_fast.blocks
        ]

        feats = np.random.default_rng(n).normal(size=(len(candidates), 5))
        f_serial, _ = bppo.block_interpolate(
            structure, coords, centers, candidates, feats, k
        )
        f_fast, _ = path[4](structure, coords, centers, candidates, feats, k)
        assert np.array_equal(f_serial, f_fast)  # bit-identical weights

    @pytest.mark.parametrize("gather", [bppo.block_gather_batched, ragged.ragged_gather])
    @pytest.mark.parametrize("partitioner", ("kdtree", "none"))
    def test_gather(self, partitioner, gather):
        coords = make_cloud(120, seed=9)
        structure = structure_for(partitioner, coords)
        centers, _ = bppo.block_fps(structure, coords, 30)
        neighbors, _ = bppo.block_ball_query(structure, coords, centers, 0.5, 8)
        feats = np.random.default_rng(1).normal(size=(120, 6))
        serial, _ = bppo.block_gather(structure, feats, neighbors, centers)
        fast, _ = gather(structure, feats, neighbors, centers)
        assert np.array_equal(serial, fast)


class TestNonePartitionerMatchesGlobalReference:
    """With a single block, block ops must equal the exact global ops."""

    @pytest.mark.parametrize("n", CLOUD_SIZES)
    @pytest.mark.parametrize("duplicates", [False, True])
    def test_fps_equals_global(self, n, duplicates):
        coords = make_cloud(n, seed=300 + n, duplicates=duplicates)
        structure = structure_for("none", coords)
        num = max(1, n // 2)
        for fps in (bppo.block_fps, bppo.block_fps_batched, ragged.ragged_fps):
            block, _ = fps(structure, coords, num)
            assert np.array_equal(block, exact_ops.farthest_point_sample(coords, num))

    @pytest.mark.parametrize("n", (1, 7, 33, 257))
    def test_ball_query_equals_global(self, n):
        coords = make_cloud(n, seed=400 + n)
        structure = structure_for("none", coords)
        centers = np.arange(n, dtype=np.int64)
        reference = exact_ops.ball_query(coords, coords, 0.4, 8)
        for ball in (bppo.block_ball_query, bppo.block_ball_query_batched,
                     ragged.ragged_ball_query):
            block, _ = ball(structure, coords, centers, 0.4, 8)
            assert np.array_equal(block, reference)

    @pytest.mark.parametrize("n", (3, 33, 257))
    def test_knn_equals_global(self, n):
        coords = make_cloud(n, seed=500 + n, duplicates=True)
        structure = structure_for("none", coords)
        candidates = np.arange(0, n, 2, dtype=np.int64)
        k = min(3, len(candidates))
        reference = candidates[exact_ops.knn_search(coords, coords[candidates], k)]
        centers = np.arange(n, dtype=np.int64)
        for knn in (bppo.block_knn, bppo.block_knn_batched, ragged.ragged_knn):
            block, _ = knn(structure, coords, centers, candidates, k)
            assert np.array_equal(block, reference)

    @pytest.mark.parametrize("n", (3, 33, 257))
    def test_interpolate_equals_global(self, n):
        coords = make_cloud(n, seed=600 + n)
        structure = structure_for("none", coords)
        candidates = np.arange(0, n, 2, dtype=np.int64)
        k = min(3, len(candidates))
        feats = np.random.default_rng(n).normal(size=(len(candidates), 4))
        reference = exact_ops.interpolate_features(
            coords, coords[candidates], feats, k
        )
        for interp in (bppo.block_interpolate, bppo.block_interpolate_batched,
                       ragged.ragged_interpolate):
            block, _ = interp(
                structure, coords, np.arange(n, dtype=np.int64),
                candidates, feats, k,
            )
            assert np.array_equal(block, reference)


class TestExecutorParity:
    """The engine's end-to-end pipeline equals a reference serial loop."""

    @staticmethod
    def reference_pipeline(coords, partitioner, block_size, pipeline):
        structure = get_partitioner(
            partitioner, max_points_per_block=block_size
        )(coords)
        sampled, _ = bppo.block_fps(
            structure, coords, pipeline.samples_for(len(coords))
        )
        neighbors, _ = bppo.block_ball_query(
            structure, coords, sampled, pipeline.radius, pipeline.group_size
        )
        grouped, _ = bppo.block_gather(structure, coords, neighbors, sampled)
        k = min(pipeline.interpolate_k, len(sampled))
        interpolated, _ = bppo.block_interpolate(
            structure, coords, np.arange(len(coords), dtype=np.int64),
            sampled, coords[sampled], k,
        )
        return sampled, neighbors, grouped, interpolated

    @pytest.mark.parametrize("partitioner", ("octree", "kdtree", "uniform", "none"))
    def test_engine_matches_reference(self, partitioner):
        pipeline = PipelineSpec(radius=0.4, group_size=8)
        clouds = [make_cloud(n, seed=700 + n, duplicates=(n % 2 == 0))
                  for n in (1, 5, 40, 181, 304)]
        engine = BatchExecutor(partitioner, block_size=16, max_workers=2)
        report = engine.run(clouds, pipeline)
        for coords, result in zip(clouds, report.results):
            ref = self.reference_pipeline(coords, partitioner, 16, pipeline)
            assert np.array_equal(ref[0], result.sampled)
            assert np.array_equal(ref[1], result.neighbors)
            assert np.array_equal(ref[2], result.grouped)
            assert np.array_equal(ref[3], result.interpolated)

    @pytest.mark.parametrize("kernel", ("loop", "stacked", "ragged", "auto"))
    def test_every_kernel_matches_reference(self, kernel):
        pipeline = PipelineSpec(radius=0.4, group_size=8)
        clouds = [make_cloud(n, seed=800 + n, duplicates=(n % 2 == 0))
                  for n in (1, 5, 40, 181)]
        engine = BatchExecutor(
            "kdtree", block_size=16, max_workers=1, kernel=kernel
        )
        report = engine.run(clouds, pipeline)
        for coords, result in zip(clouds, report.results):
            ref = self.reference_pipeline(coords, "kdtree", 16, pipeline)
            assert np.array_equal(ref[0], result.sampled)
            assert np.array_equal(ref[1], result.neighbors)
            assert np.array_equal(ref[3], result.interpolated)


class TestFusedExecutorParity:
    """Whole-cloud fusion: equal-size clouds run as one ragged problem,
    split back in submission order, bit-identical to the serial loop."""

    @pytest.mark.parametrize("partitioner", ("kdtree", "fractal", "uniform", "none"))
    def test_fused_matches_reference(self, partitioner):
        pipeline = PipelineSpec(radius=0.4, group_size=8)
        # Equal-size clouds (fused), one odd size (singleton path), one
        # exact repeat (dedup replay inside the fused path).
        clouds = [make_cloud(96, seed=900 + i, duplicates=(i % 2 == 0))
                  for i in range(4)]
        clouds.append(make_cloud(41, seed=950))
        clouds.append(clouds[1].copy())
        engine = BatchExecutor(partitioner, block_size=16, max_workers=1, fuse=True)
        report = engine.run(clouds, pipeline)
        assert [r.index for r in report.results] == list(range(len(clouds)))
        for coords, result in zip(clouds, report.results):
            ref = TestExecutorParity.reference_pipeline(
                coords, partitioner, 16, pipeline
            )
            assert np.array_equal(ref[0], result.sampled)
            assert np.array_equal(ref[1], result.neighbors)
            assert np.array_equal(ref[2], result.grouped)
            assert np.array_equal(ref[3], result.interpolated)
        assert report.results[-1].reused
        assert report.stats.reused == 1

    def test_fused_traces_match_serial(self):
        pipeline = PipelineSpec(radius=0.4, group_size=8)
        clouds = [make_cloud(96, seed=1000 + i) for i in range(3)]
        engine = BatchExecutor("kdtree", block_size=16, max_workers=1)
        fused = engine.run(clouds, pipeline, fuse=True)
        serial = engine.run(clouds, pipeline)
        for a, b in zip(fused.results, serial.results):
            assert set(a.traces) == set(b.traces)
            for op in a.traces:
                got = a.traces[op]
                want = b.traces[op]
                assert [
                    (w.block_id, w.n_points, w.n_search, w.n_centers,
                     w.n_outputs, w.widened)
                    for w in got.blocks
                ] == [
                    (w.block_id, w.n_points, w.n_search, w.n_centers,
                     w.n_outputs, w.widened)
                    for w in want.blocks
                ]

    def test_fused_with_features_and_widening(self):
        # Tiny sample budget forces candidate-starved blocks to widen to
        # their own cloud's candidate set, never a fused neighbour's.
        pipeline = PipelineSpec(num_samples=4, radius=0.3, group_size=4)
        rng = np.random.default_rng(7)
        clouds = [
            (rng.normal(size=(80, 3)), rng.normal(size=(80, 5)))
            for _ in range(3)
        ]
        engine = BatchExecutor("kdtree", block_size=8, max_workers=1)
        fused = engine.run(clouds, pipeline, fuse=True)
        serial = engine.run(clouds, pipeline)
        widened = 0
        for a, b in zip(fused.results, serial.results):
            widened += a.traces["interpolate"].num_widened
            assert np.array_equal(a.sampled, b.sampled)
            assert np.array_equal(a.grouped, b.grouped)
            assert np.array_equal(a.interpolated, b.interpolated)
        assert widened > 0  # the starved case was actually exercised


class TestMixedSizeFusedParity:
    """Mixed-size whole-cloud fusion: near-equal clouds bucket into one
    ragged problem with per-cloud sample quotas and offset tables, and
    every split-back result is bit-identical to the per-cloud serial
    reference."""

    @staticmethod
    def assert_parity(clouds, engine, pipeline, partitioner, block_size=16):
        report = engine.run(clouds, pipeline)
        assert [r.index for r in report.results] == list(range(len(clouds)))
        for coords, result in zip(clouds, report.results):
            ref = TestExecutorParity.reference_pipeline(
                coords, partitioner, block_size, pipeline
            )
            assert np.array_equal(ref[0], result.sampled)
            assert np.array_equal(ref[1], result.neighbors)
            assert np.array_equal(ref[2], result.grouped)
            assert np.array_equal(ref[3], result.interpolated)
        return report

    @pytest.mark.parametrize("partitioner", ("kdtree", "fractal", "uniform", "none"))
    def test_mixed_sizes_match_reference(self, partitioner):
        pipeline = PipelineSpec(radius=0.4, group_size=8)
        # Sizes straddle _STACK_SMALL (128) and RAGGED_BLOCK_MAX (512),
        # so one batch spans all three kernel regimes.
        sizes = (97, 120, 128, 131, 250, 500, 512, 530)
        clouds = [make_cloud(n, seed=1100 + n, duplicates=(n % 2 == 0))
                  for n in sizes]
        engine = BatchExecutor(
            partitioner, block_size=16, max_workers=1, fuse=True,
            fuse_max_spread=None,
        )
        self.assert_parity(clouds, engine, pipeline, partitioner)

    def test_single_point_cloud_in_fused_group(self):
        """n=1 clouds fuse with other tiny clouds (shared effective k=1)
        and still match the serial path exactly."""
        pipeline = PipelineSpec(radius=0.4, group_size=4)
        clouds = [make_cloud(n, seed=1200 + n) for n in (1, 2, 3, 4)]
        engine = BatchExecutor("kdtree", block_size=16, max_workers=1, fuse=True)
        self.assert_parity(clouds, engine, pipeline, "kdtree")

    def test_duplicates_deduped_inside_bucket(self):
        pipeline = PipelineSpec(radius=0.4, group_size=8)
        clouds = [make_cloud(n, seed=1300 + n) for n in (60, 70, 80)]
        batch = [clouds[0], clouds[1], clouds[0].copy(), clouds[2],
                 clouds[1].copy()]
        engine = BatchExecutor("kdtree", block_size=16, max_workers=1, fuse=True)
        report = self.assert_parity(batch, engine, pipeline, "kdtree")
        assert report.stats.reused == 2
        assert report.results[2].reused and report.results[4].reused

    def test_spread_budget_splits_buckets(self):
        """The scheduler never packs clouds whose size ratio exceeds the
        spread budget into one bucket, and the point budget caps bucket
        mass; parity holds either way."""
        pipeline = PipelineSpec(radius=0.4, group_size=8)
        clouds = [make_cloud(n, seed=1400 + n) for n in (20, 30, 200, 260)]
        engine = BatchExecutor(
            "kdtree", block_size=16, max_workers=1, fuse=True,
            fuse_max_spread=2.0,
        )
        buckets = engine._fuse_buckets([(i, c, None) for i, c in enumerate(clouds)])
        assert [[len(c) for _, c, _ in b] for b in buckets] == [[20, 30], [200, 260]]
        self.assert_parity(clouds, engine, pipeline, "kdtree")

        tight = BatchExecutor(
            "kdtree", block_size=16, max_workers=1, fuse=True,
            fuse_max_points=50, fuse_max_spread=None,
        )
        buckets = tight._fuse_buckets([(i, c, None) for i, c in enumerate(clouds)])
        assert [[len(c) for _, c, _ in b] for b in buckets] == [
            [20, 30], [200], [260]
        ]
        self.assert_parity(clouds, tight, pipeline, "kdtree")

    def test_mixed_sizes_with_features(self):
        pipeline = PipelineSpec(radius=0.35, group_size=6)
        rng = np.random.default_rng(17)
        clouds = [
            (rng.normal(size=(n, 3)), rng.normal(size=(n, 5)))
            for n in (50, 64, 90, 130)
        ]
        engine = BatchExecutor("kdtree", block_size=16, max_workers=1)
        fused = engine.run(clouds, pipeline, fuse=True)
        serial = engine.run(clouds, pipeline)  # per-cloud unfused path
        assert sum(not r.reused for r in serial.results) == len(clouds)
        for a, b in zip(fused.results, serial.results):
            assert np.array_equal(a.sampled, b.sampled)
            assert np.array_equal(a.neighbors, b.neighbors)
            assert np.array_equal(a.grouped, b.grouped)
            assert np.array_equal(a.interpolated, b.interpolated)

    def test_mixed_size_traces_match_serial(self):
        pipeline = PipelineSpec(radius=0.4, group_size=8)
        clouds = [make_cloud(n, seed=1500 + n) for n in (60, 75, 96)]
        engine = BatchExecutor("kdtree", block_size=16, max_workers=1)
        fused = engine.run(clouds, pipeline, fuse=True)
        serial = engine.run(clouds, pipeline)
        for a, b in zip(fused.results, serial.results):
            assert set(a.traces) == set(b.traces)
            for op in a.traces:
                assert [
                    (w.block_id, w.n_points, w.n_search, w.n_centers,
                     w.n_outputs, w.widened)
                    for w in a.traces[op].blocks
                ] == [
                    (w.block_id, w.n_points, w.n_search, w.n_centers,
                     w.n_outputs, w.widened)
                    for w in b.traces[op].blocks
                ]

    @settings(max_examples=15, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        sizes=st.lists(st.integers(1, 160), min_size=2, max_size=8),
        partitioner=st.sampled_from(["kdtree", "uniform", "fractal"]),
        spread=st.sampled_from([None, 2.0, 4.0]),
    )
    def test_random_size_mixes(self, seed, sizes, partitioner, spread):
        """Property: any mix of cloud sizes, any spread budget — fused
        results equal the per-cloud serial reference at the bit level."""
        rng = np.random.default_rng(seed)
        clouds = [rng.normal(size=(n, 3)) for n in sizes]
        pipeline = PipelineSpec(radius=0.5, group_size=4)
        engine = BatchExecutor(
            partitioner, block_size=8, max_workers=1, fuse=True,
            fuse_max_spread=spread,
        )
        report = engine.run(clouds, pipeline)
        for coords, result in zip(clouds, report.results):
            ref = TestExecutorParity.reference_pipeline(
                coords, partitioner, 8, pipeline
            )
            assert np.array_equal(ref[0], result.sampled)
            assert np.array_equal(ref[1], result.neighbors)
            assert np.array_equal(ref[3], result.interpolated)


@pytest.mark.slow
class TestLargeCloudParity:
    """Large-n spot checks, excluded from tier-1 by the ``slow`` marker."""

    @pytest.mark.parametrize("partitioner", ("kdtree", "octree"))
    def test_large_cloud(self, partitioner):
        coords = make_cloud(20_000, seed=1)
        structure = structure_for(partitioner, coords, block_size=256)
        serial, _ = bppo.block_fps(structure, coords, 5000)
        batched, _ = bppo.block_fps_batched(structure, coords, 5000)
        assert np.array_equal(serial, batched)
        b_serial, _ = bppo.block_ball_query(structure, coords, serial, 0.1, 32)
        b_batched, _ = bppo.block_ball_query_batched(
            structure, coords, serial, 0.1, 32
        )
        assert np.array_equal(b_serial, b_batched)
