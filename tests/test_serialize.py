"""Tests for block-structure serialisation."""

import numpy as np
import pytest

from repro.core import (
    FractalConfig,
    fractal_partition,
    load_block_structure,
    save_block_structure,
    save_tree,
)
from repro.core.bppo import block_fps
from repro.partition import get_partitioner


class TestRoundTrip:
    def test_fractal_tree_roundtrip(self, gaussian_cloud, tmp_path):
        tree = fractal_partition(gaussian_cloud, FractalConfig(threshold=64))
        path = tmp_path / "tree.npz"
        save_tree(str(path), tree)
        loaded = load_block_structure(str(path))
        original = tree.block_structure()
        assert loaded.num_points == original.num_points
        assert loaded.num_blocks == original.num_blocks
        assert loaded.strategy == "fractal"
        for a, b in zip(original.blocks, loaded.blocks):
            assert np.array_equal(a.indices, b.indices)
            assert a.depth == b.depth
        for a, b in zip(original.search_spaces, loaded.search_spaces):
            assert np.array_equal(a, b)
        assert loaded.cost.levels == original.cost.levels
        assert loaded.cost.traversals == original.cost.traversals

    @pytest.mark.parametrize("strategy", ["uniform", "kdtree", "octree", "none"])
    def test_all_strategies_roundtrip(self, gaussian_cloud, tmp_path, strategy):
        structure = get_partitioner(strategy, max_points_per_block=64)(gaussian_cloud)
        path = tmp_path / f"{strategy}.npz"
        save_block_structure(str(path), structure)
        loaded = load_block_structure(str(path))
        loaded.validate()
        assert loaded.strategy == strategy
        assert np.array_equal(loaded.block_sizes, structure.block_sizes)

    def test_loaded_structure_drives_bppo(self, gaussian_cloud, tmp_path):
        """The round-tripped structure is fully usable."""
        tree = fractal_partition(gaussian_cloud, FractalConfig(threshold=64))
        path = tmp_path / "t.npz"
        save_tree(str(path), tree)
        loaded = load_block_structure(str(path))
        idx, _ = block_fps(loaded, gaussian_cloud, 100)
        assert len(idx) == 100

    def test_version_check(self, gaussian_cloud, tmp_path):
        tree = fractal_partition(gaussian_cloud, FractalConfig(threshold=64))
        path = tmp_path / "t.npz"
        save_tree(str(path), tree)
        # Corrupt the version field.
        data = dict(np.load(str(path)))
        data["version"] = np.int64(99)
        np.savez(str(path), **data)
        with pytest.raises(ValueError, match="version"):
            load_block_structure(str(path))
