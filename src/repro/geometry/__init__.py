"""Geometry substrate: point-cloud containers and exact point operations.

Everything in this package is *reference* behaviour — global-search
operations and exact metrics.  The paper's contribution (Fractal + BPPO)
lives in :mod:`repro.core` and is validated against this package.
"""

from .bbox import AABB, aabb_of_points
from .metrics import (
    block_balance_factor,
    chamfer_distance,
    coverage_radius,
    neighbor_recall,
    sampling_distortion,
)
from .ops import (
    ball_query,
    batched_ball_query,
    batched_farthest_point_sample,
    batched_knn_search,
    batched_pairwise_sq_dists,
    farthest_point_sample,
    gather_features,
    idw_weights,
    interpolate_features,
    interpolation_weights,
    knn_search,
    pairwise_sq_dists,
)
from .pointcloud import PointCloud
from .voxel import voxel_downsample, voxel_downsample_indices

__all__ = [
    "AABB",
    "PointCloud",
    "aabb_of_points",
    "ball_query",
    "batched_ball_query",
    "batched_farthest_point_sample",
    "batched_knn_search",
    "batched_pairwise_sq_dists",
    "block_balance_factor",
    "chamfer_distance",
    "coverage_radius",
    "farthest_point_sample",
    "gather_features",
    "idw_weights",
    "interpolate_features",
    "interpolation_weights",
    "knn_search",
    "neighbor_recall",
    "pairwise_sq_dists",
    "sampling_distortion",
    "voxel_downsample",
    "voxel_downsample_indices",
]
