"""Large-scale LiDAR pipeline: partitioner shoot-out + accelerator run.

Simulates a 131 K-point automotive LiDAR frame (30 K-300 K per frame for
modern sensors, paper §I), compares all four partitioning strategies on
it, then estimates end-to-end PointNeXt-segmentation latency/energy on
the FractalCloud accelerator against the GPU baseline.

Run:  python examples/lidar_pipeline.py
"""

import numpy as np

from repro.analysis import format_table
from repro.datasets import lidar_scan
from repro.geometry import block_balance_factor
from repro.hw import AcceleratorSim, FRACTALCLOUD, GPUModel, POINTACC
from repro.networks import get_workload
from repro.partition import get_partitioner, kdtree_sort_count

N_POINTS = 131_000


def main() -> None:
    frame = lidar_scan(N_POINTS, seed=3)
    coords = frame.coords.astype(np.float64)
    print(f"LiDAR frame: {frame} "
          f"(labels: ground/building/vehicle/pole)\n")

    rows = []
    for name in ["uniform", "octree", "kdtree", "fractal"]:
        structure = get_partitioner(name, max_points_per_block=256)(coords)
        rows.append([
            name,
            structure.num_blocks,
            int(structure.block_sizes.max()),
            f"{block_balance_factor(structure.block_sizes):.2f}",
            structure.cost.num_sorts,
            structure.cost.num_traversals,
            structure.cost.levels,
        ])
    print(format_table(
        ["strategy", "blocks", "max block", "balance",
         "sorts", "traversals", "levels"],
        rows,
        title=f"partitioning a {N_POINTS:,}-point frame (BS = 256)",
    ))
    print(f"\n(balanced-tree formula: KD-tree would need "
          f"{kdtree_sort_count(N_POINTS, 256):,} sorts — Fig. 5)")

    spec = get_workload("PNXt(s)")
    gpu = GPUModel().run(spec, N_POINTS)
    fract = AcceleratorSim(FRACTALCLOUD).run(spec, N_POINTS)
    pointacc = AcceleratorSim(POINTACC).run(spec, N_POINTS)

    print(format_table(
        ["platform", "latency ms", "energy mJ", "DRAM MB", "point-op share"],
        [
            ["GPU (TITAN RTX class)", f"{gpu.latency_s*1e3:.1f}",
             f"{gpu.energy_j*1e3:.0f}", "-",
             f"{100*gpu.point_op_seconds/gpu.latency_s:.0f}%"],
            ["PointAcc", f"{pointacc.latency_s*1e3:.1f}",
             f"{pointacc.energy_j*1e3:.1f}",
             f"{pointacc.dram_bytes/1e6:.0f}",
             f"{100*pointacc.point_op_seconds/pointacc.latency_s:.0f}%"],
            ["FractalCloud", f"{fract.latency_s*1e3:.1f}",
             f"{fract.energy_j*1e3:.1f}",
             f"{fract.dram_bytes/1e6:.0f}",
             f"{100*fract.point_op_seconds/fract.latency_s:.0f}%"],
        ],
        title=f"\nPointNeXt segmentation @ {N_POINTS:,} points",
    ))
    print(f"\nFractalCloud speedup: {gpu.latency_s/fract.latency_s:.1f}x over GPU, "
          f"{pointacc.latency_s/fract.latency_s:.1f}x over PointAcc; "
          f"energy saving {gpu.energy_j/fract.energy_j:.0f}x over GPU")


if __name__ == "__main__":
    main()
