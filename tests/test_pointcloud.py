"""Tests for the PointCloud container."""

import numpy as np
import pytest

from repro.geometry import PointCloud


class TestConstruction:
    def test_coords_coerced_to_float32(self, rng):
        cloud = PointCloud(rng.normal(size=(10, 3)).astype(np.float64))
        assert cloud.coords.dtype == np.float32
        assert len(cloud) == 10

    def test_rejects_bad_coord_shape(self):
        with pytest.raises(ValueError, match=r"\(n, 3\)"):
            PointCloud(np.zeros((5, 2)))

    def test_features_row_count_checked(self, rng):
        with pytest.raises(ValueError, match="features"):
            PointCloud(rng.normal(size=(4, 3)), features=rng.normal(size=(5, 8)))

    def test_labels_shape_checked(self, rng):
        with pytest.raises(ValueError, match="labels"):
            PointCloud(rng.normal(size=(4, 3)), labels=np.zeros(5, dtype=np.int64))

    def test_labels_must_be_integers(self, rng):
        with pytest.raises(ValueError, match="integers"):
            PointCloud(rng.normal(size=(4, 3)), labels=np.zeros(4, dtype=np.float32))

    def test_num_features(self, rng):
        bare = PointCloud(rng.normal(size=(4, 3)))
        rich = bare.with_features(rng.normal(size=(4, 16)))
        assert bare.num_features == 0
        assert rich.num_features == 16


class TestOperations:
    def test_select_carries_everything(self, rng):
        cloud = PointCloud(
            rng.normal(size=(10, 3)),
            features=rng.normal(size=(10, 4)),
            labels=np.arange(10),
            class_id=5,
        )
        sub = cloud.select(np.array([1, 3, 5]))
        assert len(sub) == 3
        assert sub.labels.tolist() == [1, 3, 5]
        assert sub.class_id == 5
        assert np.allclose(sub.features, cloud.features[[1, 3, 5]])

    def test_permute_is_bijection_checked(self, rng):
        cloud = PointCloud(rng.normal(size=(5, 3)))
        with pytest.raises(ValueError, match="bijection"):
            cloud.permute(np.array([0, 0, 1, 2, 3]))

    def test_permute_roundtrip(self, rng):
        cloud = PointCloud(rng.normal(size=(8, 3)))
        perm = rng.permutation(8)
        inverse = np.empty(8, dtype=np.int64)
        inverse[perm] = np.arange(8)
        back = cloud.permute(perm).permute(inverse)
        assert np.allclose(back.coords, cloud.coords)

    def test_normalized_in_unit_sphere(self, rng):
        cloud = PointCloud(rng.normal(size=(100, 3)) * 10 + 5)
        norm = cloud.normalized()
        radii = np.linalg.norm(norm.coords, axis=1)
        assert radii.max() <= 1.0 + 1e-5
        assert np.allclose(norm.coords.mean(axis=0), 0.0, atol=1e-5)

    def test_normalized_degenerate_cloud(self):
        cloud = PointCloud(np.zeros((4, 3), dtype=np.float32))
        norm = cloud.normalized()
        assert np.allclose(norm.coords, 0.0)

    def test_nbytes_fp16_default(self, rng):
        cloud = PointCloud(rng.normal(size=(10, 3)), features=rng.normal(size=(10, 5)))
        assert cloud.nbytes() == (10 * 3 + 10 * 5) * 2

    def test_bbox_matches_coords(self, rng):
        coords = rng.normal(size=(50, 3))
        cloud = PointCloud(coords)
        box = cloud.bbox
        assert np.allclose(box.lo, coords.min(axis=0), atol=1e-6)
        assert np.allclose(box.hi, coords.max(axis=0), atol=1e-6)
