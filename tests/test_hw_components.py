"""Tests for the hardware component models (DRAM/SRAM/PE/engine/RSPU/gather)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.blocks import PartitionCost
from repro.hw import (
    DRAMModel,
    DRAMTraffic,
    FractalEngineModel,
    GatherUnitModel,
    PEArrayModel,
    RSPUModel,
    SRAMModel,
)
from repro.hw import energy as E


class TestEnergyConstants:
    def test_sram_energy_grows_with_capacity(self):
        """The mechanism behind Crescent's SRAM-energy penalty."""
        assert E.sram_pj_per_byte(1622.8) > 2 * E.sram_pj_per_byte(274.0)

    def test_sram_energy_validates(self):
        with pytest.raises(ValueError, match="positive"):
            E.sram_pj_per_byte(0)

    def test_dram_random_more_expensive_than_streamed(self):
        assert E.DRAM_RANDOM_PJ_PER_BYTE > E.DRAM_STREAM_PJ_PER_BYTE
        assert E.RANDOM_DRAM_EFFICIENCY < E.STREAM_DRAM_EFFICIENCY


class TestDRAM:
    def test_streamed_faster_than_random(self):
        dram = DRAMModel()
        nbytes = 1e6
        t_stream = dram.time_s(DRAMTraffic(streamed_bytes=nbytes))
        t_random = dram.time_s(DRAMTraffic(random_bytes=nbytes))
        assert t_random > 3 * t_stream

    def test_bandwidth_matches_table2(self):
        dram = DRAMModel(peak_gbps=17.0)
        t = dram.time_s(DRAMTraffic(streamed_bytes=17e9 * E.STREAM_DRAM_EFFICIENCY))
        assert t == pytest.approx(1.0)

    def test_energy_additive(self):
        dram = DRAMModel()
        a = DRAMTraffic(streamed_bytes=1e6)
        b = DRAMTraffic(random_bytes=2e6)
        assert dram.energy_j(a.merge(b)) == pytest.approx(
            dram.energy_j(a) + dram.energy_j(b)
        )

    @settings(max_examples=25, deadline=None)
    @given(st.floats(0, 1e9), st.floats(0, 1e9))
    def test_monotone_in_traffic(self, s, r):
        dram = DRAMModel()
        base = dram.time_s(DRAMTraffic(s, r))
        more = dram.time_s(DRAMTraffic(s + 1e3, r))
        assert more >= base


class TestSRAM:
    def test_blocked_beats_random_multi_unit(self):
        sram = SRAMModel(capacity_kb=274, num_banks=16)
        nbytes = 1e5
        blocked = sram.access_cycles(nbytes, pattern="blocked", units=16)
        random = sram.access_cycles(nbytes, pattern="random", units=16)
        assert random > blocked

    def test_stream_is_fastest(self):
        sram = SRAMModel()
        nbytes = 1e5
        t_stream = sram.access_cycles(nbytes, pattern="stream")
        for pattern in ("blocked", "random"):
            assert sram.access_cycles(nbytes, pattern=pattern, units=4) >= t_stream

    def test_fits(self):
        sram = SRAMModel(capacity_kb=274)
        assert sram.fits(200 * 1024)
        assert not sram.fits(300 * 1024)

    def test_unknown_pattern(self):
        with pytest.raises(ValueError, match="pattern"):
            SRAMModel().access_cycles(10, pattern="zigzag")

    def test_energy_scales_with_capacity(self):
        small = SRAMModel(capacity_kb=274)
        big = SRAMModel(capacity_kb=1622.8)
        assert big.energy_j(1e6) > 2 * small.energy_j(1e6)


class TestPEArray:
    def test_macs_accounting(self):
        pe = PEArrayModel(utilization=1.0)
        cost = pe.mlp_cost(100, (64,), 32)
        assert cost.macs == 100 * 32 * 64

    def test_cycles_bounded_below_by_peak(self):
        pe = PEArrayModel(rows=16, cols=16, utilization=1.0)
        cost = pe.mlp_cost(10_000, (128, 128), 64)
        assert cost.cycles >= cost.macs / 256

    def test_zero_rows_free(self):
        cost = PEArrayModel().mlp_cost(0, (64,), 32)
        assert cost.cycles == 0 and cost.macs == 0

    def test_weight_bytes(self):
        cost = PEArrayModel().mlp_cost(10, (8, 4), 6)
        assert cost.weight_bytes == (6 * 8 + 8 * 4) * 2

    def test_utilization_slows_array(self):
        fast = PEArrayModel(utilization=1.0).mlp_cost(100_000, (256,), 256)
        slow = PEArrayModel(utilization=0.5).mlp_cost(100_000, (256,), 256)
        assert slow.cycles > 1.8 * fast.cycles


class TestFractalEngine:
    def _fractal_cost(self, n, levels):
        return PartitionCost(
            traversals=[n] * levels, passes=[n] * levels, levels=levels
        )

    def _kd_cost(self, n, levels):
        sorts = []
        for lvl in range(levels):
            sorts += [n // (2 ** lvl)] * (2 ** lvl)
        return PartitionCost(sorts=sorts, levels=levels)

    def test_fractal_much_cheaper_than_kdtree(self):
        """The Fig. 16 preprocessing gap (~100x at large scale)."""
        engine = FractalEngineModel(lanes=16, sorter_width=1)
        n, levels = 289_000, 11
        fr = engine.fractal_cost(self._fractal_cost(n, levels))
        kd = engine.kdtree_cost(self._kd_cost(n, levels))
        assert kd.compute_cycles > 50 * fr.compute_cycles

    def test_kdtree_is_serial(self):
        engine = FractalEngineModel()
        kd = engine.kdtree_cost(self._kd_cost(1024, 4))
        assert kd.serial
        fr = engine.fractal_cost(self._fractal_cost(1024, 4))
        assert not fr.serial

    def test_uniform_single_pass_cheapest(self):
        engine = FractalEngineModel()
        n = 33_000
        uni = engine.uniform_cost(PartitionCost(passes=[n], levels=1))
        fr = engine.fractal_cost(self._fractal_cost(n, 7))
        assert uni.compute_cycles < fr.compute_cycles

    def test_octree_control_overhead(self):
        engine = FractalEngineModel()
        cost = PartitionCost(passes=[1000, 800], levels=2)
        oc = engine.octree_cost(cost)
        fr = engine.fractal_cost(PartitionCost(traversals=[1000, 800],
                                               passes=[1000, 800], levels=2))
        assert oc.compute_cycles > fr.compute_cycles * 0.5  # same order

    def test_dispatch(self):
        engine = FractalEngineModel()
        assert engine.cost_for("none", PartitionCost()).compute_cycles == 0
        with pytest.raises(ValueError, match="unknown"):
            engine.cost_for("morton", PartitionCost())


class TestRSPU:
    def test_window_check_reduces_work(self):
        rspu = RSPUModel()
        plain = rspu.fps_global(10_000, 5_000, window_check=False)
        skip = rspu.fps_global(10_000, 5_000, window_check=True)
        assert skip.compute_cycles < plain.compute_cycles
        assert skip.sram_stream_bytes < plain.sram_stream_bytes

    def test_block_parallel_beats_block_serial(self):
        rspu = RSPUModel(num_units=16, lanes=8)
        sizes = np.full(128, 256)
        quotas = np.full(128, 64)
        par = rspu.fps_blocks(sizes, quotas, block_parallel=True)
        ser = rspu.fps_blocks(sizes, quotas, block_parallel=False)
        assert par.compute_cycles < ser.compute_cycles

    def test_makespan_bounded_by_largest_block(self):
        rspu = RSPUModel(num_units=16, lanes=8)
        sizes = np.array([10_000] + [10] * 100)
        quotas = np.array([2_000] + [2] * 100)
        cost = rspu.fps_blocks(sizes, quotas)
        solo = rspu.fps_blocks(np.array([10_000]), np.array([2_000]))
        assert cost.compute_cycles >= solo.compute_cycles

    def test_imbalance_penalty_is_bounded(self):
        """§VI-D: latency is dominated by the largest block, so mild
        imbalance costs a few percent, not a factor."""
        rspu = RSPUModel(num_units=16, lanes=8)
        balanced = rspu.fps_blocks(np.full(160, 256), np.full(160, 64))
        skewed_sizes = np.concatenate([np.full(80, 200), np.full(80, 312)])
        skewed = rspu.fps_blocks(skewed_sizes, np.full(160, 64))
        assert skewed.compute_cycles < 1.5 * balanced.compute_cycles

    def test_intra_block_reuse_cuts_sram_traffic(self):
        """§VI-C: shared search space gives ~(centres-per-block)x fewer
        coordinate reads."""
        rspu = RSPUModel()
        centers = np.full(64, 16)
        spaces = np.full(64, 512)
        reuse = rspu.neighbor_blocks(centers, spaces, 16, intra_block_reuse=True)
        no_reuse = rspu.neighbor_blocks(centers, spaces, 16, intra_block_reuse=False)
        assert no_reuse.sram_stream_bytes > 5 * reuse.sram_stream_bytes
        assert reuse.compute_cycles == no_reuse.compute_cycles

    def test_global_neighbor_scales_with_mn(self):
        rspu = RSPUModel()
        small = rspu.neighbor_global(1000, 10_000, 16)
        big = rspu.neighbor_global(2000, 20_000, 16)
        assert big.compute_cycles > 3.5 * small.compute_cycles

    def test_empty_inputs_free(self):
        rspu = RSPUModel()
        assert rspu.fps_global(0, 0).compute_cycles == 0
        assert rspu.neighbor_global(0, 100, 4).compute_cycles == 0


class TestGatherUnit:
    def test_blocked_gather_avoids_random_dram(self):
        gather = GatherUnitModel()
        sram = SRAMModel(capacity_kb=274)
        table = 10e6  # 10 MB table: spills the buffer
        glob = gather.gather_global(50_000, 32, 64, table, sram)
        blocked = gather.gather_blocks(50_000, 32, 64, table, sram)
        assert glob.dram_random_bytes > 0
        assert blocked.dram_random_bytes == 0
        assert blocked.dram_stream_bytes == pytest.approx(table)

    def test_fitting_table_stays_on_chip(self):
        gather = GatherUnitModel()
        sram = SRAMModel(capacity_kb=274)
        table = 50e3
        glob = gather.gather_global(1000, 16, 8, table, sram)
        assert glob.dram_random_bytes == 0
        assert glob.sram_random_bytes > 0

    def test_blocked_uses_streamed_sram(self):
        gather = GatherUnitModel()
        sram = SRAMModel()
        blocked = gather.gather_blocks(1000, 16, 8, 50e3, sram)
        assert blocked.sram_random_bytes == 0
        assert blocked.sram_stream_bytes > 0
