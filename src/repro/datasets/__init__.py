"""Synthetic stand-ins for the paper's datasets (see DESIGN.md §1).

- :mod:`shapes` — ModelNet40-like labelled objects.
- :mod:`parts` — ShapeNet-part-like objects with part labels.
- :mod:`scenes` — S3DIS-like multi-room indoor scenes.
- :mod:`lidar` — KITTI-like automotive LiDAR frames.
- :mod:`registry` — name/scale lookup used by benches and examples.
"""

from .corruptions import CORRUPTIONS, corrupt, corruption_names
from .lidar import LidarConfig, lidar_scan
from .parts import PART_CLASSES, make_part_dataset, sample_part_object
from .registry import DATASET_NAMES, SCALES, load_cloud, scale_points
from .scenes import SCENE_CLASSES, SceneSpec, make_scene
from .shapes import SHAPE_CLASSES, make_classification_dataset, sample_shape

__all__ = [
    "CORRUPTIONS",
    "DATASET_NAMES",
    "LidarConfig",
    "PART_CLASSES",
    "SCALES",
    "SCENE_CLASSES",
    "SHAPE_CLASSES",
    "SceneSpec",
    "lidar_scan",
    "corrupt",
    "corruption_names",
    "load_cloud",
    "make_classification_dataset",
    "make_part_dataset",
    "make_scene",
    "sample_part_object",
    "sample_shape",
    "scale_points",
]
