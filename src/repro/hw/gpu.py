"""GPU cost model (TITAN RTX class) — the paper's latency/energy baseline.

An analytic model of CUDA-optimised PNN inference (Openpoints-style),
calibrated to the scaling behaviour the paper reports in Fig. 4:

- MLPs are fast and scale linearly (tensor cores + cuDNN), but carry a
  fixed per-layer framework overhead that dominates small inputs.
- Point operations scale as O(n^2): FPS is iteration-serial (a device-wide
  sync per selected point), neighbour search and interpolation do
  all-pairs work, and gathers run at random-access bandwidth.

The result reproduces the Fig. 4 bottleneck shift — ~30-40 % of latency
in point operations at 1 K points rising to >90 % at 289 K — and serves
as the denominator for every speedup/energy bar in Fig. 13.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..networks.workloads import WorkloadSpec
from .results import RunResult

__all__ = ["GPUModel"]


@dataclass(frozen=True)
class GPUModel:
    """TITAN-RTX-like device (24 GB, ~16 TFLOPS fp32, 672 GB/s).

    Attributes:
        mlp_tflops: sustained tensor throughput for dense layers.
        pointop_tflops: sustained throughput of irregular point-op
            kernels (all-pairs distance + top-k); far below peak.
        mem_gbps: streamed memory bandwidth.
        gather_gbps: achieved bandwidth of random gathers.
        layer_overhead_s: framework/kernel overhead per MLP layer
            (dispatch + BN/ReLU + tensor reshapes).
        pointop_overhead_s: overhead per point-op kernel invocation.
        fps_step_s: device-wide synchronisation per FPS iteration.
        idle_w / dynamic_w: power model P = idle + dynamic * utilisation.
    """

    mlp_tflops: float = 12.0
    pointop_tflops: float = 0.35
    mem_gbps: float = 600.0
    gather_gbps: float = 80.0
    layer_overhead_s: float = 350e-6
    pointop_overhead_s: float = 150e-6
    fps_step_s: float = 5.0e-6
    idle_w: float = 40.0
    dynamic_w: float = 180.0

    # Utilisation by phase (drives the power model).
    _UTIL = {
        "mlp": 0.65,
        "sample": 0.10,
        "neighbor": 0.45,
        "interpolate": 0.45,
        "gather": 0.15,
        "pool": 0.25,
    }

    def _power(self, phase: str) -> float:
        return self.idle_w + self.dynamic_w * self._UTIL.get(phase, 0.2)

    def _fps_s(self, n: int, s: int) -> float:
        """Iteration-serial FPS: s sequential steps over n candidates."""
        per_iter = max(
            n * 4.0 / (self.mem_gbps * 1e9),  # distance array touch
            n * 8.0 / (self.pointop_tflops * 1e12),
        ) + self.fps_step_s
        return self.pointop_overhead_s + s * per_iter

    def _pairs_s(self, m: int, n: int) -> float:
        """All-pairs distance kernel (ball query / KNN)."""
        flops = 10.0 * m * n
        return self.pointop_overhead_s + flops / (self.pointop_tflops * 1e12)

    def _gather_s(self, rows: int, k: int, channels: int) -> float:
        bytes_moved = rows * k * channels * 4.0  # fp32 on GPU
        return self.pointop_overhead_s + bytes_moved / (self.gather_gbps * 1e9)

    def _mlp_s(self, rows: int, widths: tuple[int, ...], in_channels: int) -> float:
        seconds = 0.0
        c_in = in_channels
        for c_out in widths:
            flops = 2.0 * rows * c_in * c_out
            compute = flops / (self.mlp_tflops * 1e12)
            memory = rows * (c_in + c_out) * 4.0 / (self.mem_gbps * 1e9)
            seconds += self.layer_overhead_s + max(compute, memory)
            c_in = c_out
        return seconds

    def run(self, spec: WorkloadSpec, num_points: int) -> RunResult:
        """Simulate one inference; returns phase-resolved latency/energy."""
        result = RunResult(platform="GPU", workload=spec.key, num_points=num_points)

        def charge(phase: str, seconds: float) -> None:
            stats = result.phase(phase)
            stats.seconds += seconds
            stats.compute_j += seconds * self._power(phase)

        for stage in spec.concrete(num_points):
            if stage.kind == "sa":
                charge("sample", self._fps_s(stage.n_in, stage.n_out))
                charge("neighbor", self._pairs_s(stage.n_out, stage.n_in))
                charge("gather", self._gather_s(stage.n_out, stage.k, stage.in_channels + 3))
                rows = stage.n_out * stage.k
                charge("mlp", self._mlp_s(rows, stage.mlp, stage.in_channels + 3))
                charge("pool", self.pointop_overhead_s
                       + rows * stage.mlp[-1] * 4.0 / (self.mem_gbps * 1e9))
            elif stage.kind == "fp":
                charge("interpolate", self._pairs_s(stage.n_out, stage.n_in))
                charge("gather", self._gather_s(stage.n_out, stage.k, stage.in_channels))
                charge("mlp", self._mlp_s(stage.n_out, stage.mlp, stage.in_channels))
            elif stage.kind == "global":
                charge("mlp", self._mlp_s(stage.n_in, stage.mlp, stage.in_channels + 3))
                charge("pool", self.pointop_overhead_s
                       + stage.n_in * stage.mlp[-1] * 4.0 / (self.mem_gbps * 1e9))
            elif stage.kind == "head":
                charge("mlp", self._mlp_s(stage.n_in, stage.mlp, stage.in_channels))
        return result
