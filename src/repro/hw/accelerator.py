"""Top-level accelerator simulator.

Executes a compiled :class:`~repro.runtime.program.Program` on an
:class:`~repro.hw.configs.AcceleratorConfig`, phase by phase:

    partition → sample → neighbor → gather → mlp → pool   (per SA stage)
    partition → interpolate → gather → mlp                (per FP stage)

Each phase's :class:`~repro.hw.cost.UnitCost` (from the unit models) is
converted to latency as ``max(compute, SRAM, DRAM)`` — datapaths and
memory are pipelined — and to energy as the sum of compute, SRAM, and
DRAM components plus leakage over the total runtime.

Spill behaviour (the paper's large-scale story) is explicit:

- Global FPS re-reads its working set (coords + running distances) every
  iteration; the part that exceeds the point-op share of the buffer is
  re-streamed from DRAM each iteration.
- Global neighbour search streams the candidate set once per resident
  centre tile.
- Global gathering over a spilled feature table either pays random DRAM
  lookups (sparse misses) or multi-pass table re-streaming, whichever is
  cheaper — block-wise gathering stays on-chip by construction.
"""

from __future__ import annotations

import math

import numpy as np

from ..core.bppo import allocate_samples
from ..networks.workloads import WorkloadSpec
from ..runtime.compiler import compile_program
from ..runtime.program import PartitionStats, Program
from . import energy as E
from .configs import AcceleratorConfig
from .cost import UnitCost
from .dram import DRAMModel, DRAMTraffic
from .fractal_engine import FractalEngineModel
from .gather_unit import GatherUnitModel
from .noc import NoCModel
from .pe_array import PEArrayModel
from .results import RunResult, TraceEvent
from .rspu import RSPUModel
from .sram import SRAMModel

__all__ = ["AcceleratorSim", "POINTOP_SRAM_SHARE", "GATHER_REFETCH_CAP"]

#: Fraction of the global buffer available to a point-op working set
#: (the rest holds weights, activations, and double buffers).
POINTOP_SRAM_SHARE = 0.5

#: Upper bound on how many times a spilled gather table is re-streamed
#: (multi-pass gathering beats per-row random DRAM beyond this point).
GATHER_REFETCH_CAP = 8


class AcceleratorSim:
    """Cycle-level analytic simulator for one accelerator configuration."""

    def __init__(self, config: AcceleratorConfig):
        self.config = config
        self.dram = DRAMModel(peak_gbps=config.dram_gbps)
        self.sram = SRAMModel(capacity_kb=config.sram_kb, num_banks=16)
        self.pe = PEArrayModel(
            rows=config.pe_rows, cols=config.pe_cols, utilization=config.pe_utilization
        )
        self.engine = FractalEngineModel(
            lanes=config.total_point_lanes if config.partitioner == "fractal" else 16,
            sorter_width=config.sorter_width,
        )
        self.rspu = RSPUModel(
            num_units=config.num_point_units, lanes=config.lanes_per_unit
        )
        self.gather = GatherUnitModel(num_units=2)
        self.noc = NoCModel()
        self._trace_ctx: tuple[int, str] | None = None

    # ------------------------------------------------------------------ util
    @property
    def _pointop_sram_bytes(self) -> float:
        return self.sram.usable_bytes * POINTOP_SRAM_SHARE

    def _charge(self, result: RunResult, phase: str, cost: UnitCost,
                *, pointop: bool = False) -> None:
        """Convert a unit cost into phase latency + energy.

        When tracing is enabled (``self._trace_ctx``), every charge also
        appends a :class:`TraceEvent` to the result's timeline.
        """
        f = self.config.frequency_hz
        compute_cycles = cost.compute_cycles
        sram_stream = cost.sram_stream_bytes
        sram_random = cost.sram_random_bytes
        if pointop and self.config.legacy_pointop_factor != 1.0:
            # Legacy designs (Mesorasi): point-op datapath both slower and
            # re-reads operands; cycles scale fully, buffer traffic less so.
            compute_cycles *= self.config.legacy_pointop_factor
            sram_stream *= min(self.config.legacy_pointop_factor, 4.0)
            sram_random *= min(self.config.legacy_pointop_factor, 4.0)
        compute_s = compute_cycles / f
        sram_cycles = self.sram.access_cycles(sram_stream, pattern="stream")
        if sram_random:
            sram_cycles += self.sram.access_cycles(
                sram_random, pattern="random",
                units=self.config.num_point_units,
            )
        sram_s = sram_cycles / f
        traffic = DRAMTraffic(cost.dram_stream_bytes, cost.dram_random_bytes)
        dram_s = self.dram.time_s(traffic)
        seconds = compute_s + dram_s if cost.serial else max(compute_s, sram_s, dram_s)
        if self._trace_ctx is not None:
            stage_index, stage_kind = self._trace_ctx
            result.trace.append(TraceEvent(
                stage_index=stage_index, stage_kind=stage_kind, phase=phase,
                start_s=result.latency_s, seconds=seconds,
                compute_cycles=compute_cycles, dram_bytes=traffic.total_bytes,
            ))
        stats = result.phase(phase)
        stats.seconds += seconds
        stats.compute_j += cost.compute_energy_j
        stats.sram_j += self.sram.energy_j(sram_stream + sram_random)
        stats.dram_j += self.dram.energy_j(traffic)
        stats.dram_bytes += traffic.total_bytes
        stats.sram_bytes += sram_stream + sram_random

    # ------------------------------------------------------------- point ops
    def _sample_cost(self, n_in: int, n_out: int,
                     partition: PartitionStats | None) -> UnitCost:
        cfg = self.config
        if cfg.block_sampling and partition is not None:
            quotas = allocate_samples(partition.block_sizes, max(n_out, 1))
            return self.rspu.fps_blocks(
                partition.block_sizes, quotas,
                window_check=cfg.window_check,
                block_parallel=cfg.block_parallel,
            )
        cost = self.rspu.fps_global(n_in, n_out, window_check=cfg.window_check)
        # Working set: coordinates + running min-distance per candidate.
        working = n_in * (E.COORD_BYTES + E.BYTES_PER_SCALAR)
        spill = max(0.0, working - self._pointop_sram_bytes)
        if spill > 0:
            refetches = float(n_out)
            if cfg.window_check:
                # Skipped (already-sampled) candidates are not refetched.
                refetches *= max(1.0 - n_out / (2.0 * max(n_in, 1)), 0.5)
            cost.dram_stream_bytes += spill * E.FPS_SPILL_FACTOR * refetches
        return cost

    def _neighbor_cost(self, m: int, n: int, k: int, blocked: bool,
                       partition: PartitionStats | None,
                       *, centers_are_blocks: bool = False,
                       candidate_fraction: float = 1.0) -> UnitCost:
        cfg = self.config
        if blocked and partition is not None:
            if centers_are_blocks:
                centers = partition.block_sizes.astype(np.float64)
            else:
                centers = allocate_samples(partition.block_sizes, max(m, 1)).astype(np.float64)
            searches = np.maximum(
                partition.search_sizes.astype(np.float64) * candidate_fraction, float(k)
            )
            return self.rspu.neighbor_blocks(
                centers, searches, k,
                intra_block_reuse=cfg.intra_block_reuse,
                block_parallel=cfg.block_parallel,
            )
        cost = self.rspu.neighbor_global(m, n, k)
        working = n * E.COORD_BYTES
        if working > self._pointop_sram_bytes:
            # Candidate set streamed once per resident centre tile.
            tiles = math.ceil((m * E.COORD_BYTES) / max(self._pointop_sram_bytes / 4, 1.0))
            cost.dram_stream_bytes += working * tiles
        return cost

    def _gather_cost(self, rows: int, k: int, channels: int, table_rows: int,
                     blocked: bool) -> UnitCost:
        table_bytes = float(table_rows) * channels * E.BYTES_PER_SCALAR
        if blocked:
            return self.gather.gather_blocks(rows, k, channels, table_bytes, self.sram)
        cost = self.gather.gather_global(rows, k, channels, table_bytes, self.sram)
        # Multi-pass streaming beats per-row random DRAM when misses are
        # dense; take the cheaper strategy, capped.
        if cost.dram_random_bytes:
            passes = min(
                math.ceil(cost.dram_random_bytes / max(table_bytes, 1.0)),
                GATHER_REFETCH_CAP,
            )
            stream_alternative = passes * table_bytes
            random_time = cost.dram_random_bytes / (
                self.dram.peak_gbps * 1e9 * E.RANDOM_DRAM_EFFICIENCY
            )
            stream_time = stream_alternative / (
                self.dram.peak_gbps * 1e9 * E.STREAM_DRAM_EFFICIENCY
            )
            if stream_time < random_time:
                cost.dram_stream_bytes += stream_alternative
                cost.dram_random_bytes = 0.0
        return cost

    def _mlp_cost(self, rows: int, widths: tuple[int, ...], in_channels: int) -> UnitCost:
        mc = self.pe.mlp_cost(rows, widths, in_channels)
        cost = UnitCost(
            compute_cycles=mc.cycles,
            macs=mc.macs,
            sram_stream_bytes=mc.sram_bytes,
        )
        # Activations spill when a layer's in+out tensors exceed the buffer.
        act_bytes = rows * (in_channels + (widths[0] if widths else 0)) * E.BYTES_PER_SCALAR
        if act_bytes > self.sram.usable_bytes:
            cost.dram_stream_bytes += act_bytes
        return cost

    def _pool_cost(self, rows: int, k: int, channels: int) -> UnitCost:
        ops = float(rows) * k * channels
        return UnitCost(
            compute_cycles=ops / 256.0,  # pooling unit: 256 compares/cycle
            cmp_ops=ops,
            sram_stream_bytes=ops * E.BYTES_PER_SCALAR,
        )

    # ------------------------------------------------------------------- run
    def run_program(self, program: Program, *, trace: bool = False) -> RunResult:
        """Simulate a compiled program; returns phase-resolved results.

        Args:
            program: compiled workload.
            trace: record a per-operation :class:`TraceEvent` timeline
                on the result (``result.trace`` / ``result.timeline()``).
        """
        cfg = self.config
        result = RunResult(
            platform=cfg.name, workload=program.workload_key,
            num_points=program.num_points,
        )
        self._trace_ctx = (-1, "setup") if trace else None
        # Weights stream from DRAM once per inference.
        self._charge(result, "io", UnitCost(dram_stream_bytes=program.weight_bytes))

        for stage_index, plan in enumerate(program.stages):
            stage = plan.stage
            partition = plan.partition
            if trace:
                self._trace_ctx = (stage_index, stage.kind)
            if partition is not None and cfg.uses_partitioning and stage.kind == "sa":
                self._charge(result, "partition",
                             self.engine.cost_for(partition.strategy, partition.cost))

            if stage.kind == "sa":
                # Stage input coordinates stream on-chip once; the NoC
                # then distributes blocks to the point units.  The DFT
                # layout keeps blocks contiguous, so Fractal needs one
                # DMA descriptor where other layouts pay one per block
                # (the "control complexity" of §IV-A).
                self._charge(result, "io",
                             UnitCost(dram_stream_bytes=stage.n_in * E.COORD_BYTES))
                if partition is not None and cfg.uses_partitioning:
                    self._charge(result, "io", self.noc.distribute(
                        stage.n_in * E.COORD_BYTES,
                        partition.num_blocks,
                        contiguous=(cfg.partitioner == "fractal"),
                    ))
                self._charge(result, "sample",
                             self._sample_cost(stage.n_in, stage.n_out, partition),
                             pointop=True)
                self._charge(
                    result, "neighbor",
                    self._neighbor_cost(
                        stage.n_out, stage.n_in, stage.k,
                        cfg.block_grouping, partition,
                    ),
                    pointop=True,
                )
                rows = stage.n_out * stage.k
                if cfg.delayed_aggregation:
                    # MLP on the (smaller) input set, gather transformed
                    # features, aggregate afterwards (Mesorasi).
                    self._charge(result, "mlp",
                                 self._mlp_cost(stage.n_in, stage.mlp,
                                                stage.in_channels + 3))
                    gather_ch = stage.mlp[-1]
                else:
                    gather_ch = stage.in_channels + 3
                self._charge(
                    result, "gather",
                    self._gather_cost(stage.n_out, stage.k, gather_ch,
                                      stage.n_in, cfg.block_gathering and partition is not None),
                    pointop=True,
                )
                if not cfg.delayed_aggregation:
                    self._charge(result, "mlp",
                                 self._mlp_cost(rows, stage.mlp, stage.in_channels + 3))
                self._charge(result, "pool",
                             self._pool_cost(stage.n_out, stage.k, stage.mlp[-1]))

            elif stage.kind == "fp":
                # Interpolation: centres are the dense set (n_out), the
                # candidates are the sparse set (n_in).
                frac = stage.n_in / max(stage.n_out, 1)
                self._charge(
                    result, "interpolate",
                    self._neighbor_cost(
                        stage.n_out, stage.n_in, stage.k,
                        cfg.block_interpolation, partition,
                        centers_are_blocks=True,
                        candidate_fraction=frac,
                    ),
                    pointop=True,
                )
                self._charge(
                    result, "gather",
                    self._gather_cost(stage.n_out, stage.k, stage.in_channels,
                                      stage.n_in,
                                      cfg.block_gathering and partition is not None),
                    pointop=True,
                )
                self._charge(result, "mlp",
                             self._mlp_cost(stage.n_out, stage.mlp, stage.in_channels))

            elif stage.kind == "global":
                self._charge(result, "mlp",
                             self._mlp_cost(stage.n_in, stage.mlp, stage.in_channels + 3))
                self._charge(result, "pool",
                             self._pool_cost(1, stage.n_in, stage.mlp[-1]))

            elif stage.kind == "head":
                self._charge(result, "mlp",
                             self._mlp_cost(stage.n_in, stage.mlp, stage.in_channels))

        result.static_j = (cfg.static_power_w + cfg.platform_power_w) * result.latency_s
        self._trace_ctx = None
        return result

    def run(self, spec: WorkloadSpec, num_points: int, seed: int = 0,
            *, trace: bool = False) -> RunResult:
        """Compile and simulate ``spec`` at ``num_points``."""
        partitioner = self.config.partitioner if self.config.uses_partitioning else "none"
        program = compile_program(
            spec, num_points, partitioner, self.config.block_size, seed
        )
        return self.run_program(program, trace=trace)
