"""Tests for the multi-scale-grouping SA stage."""

import numpy as np
import pytest

from repro.networks import ExactBackend
from repro.networks.msg import SAStageMSG


@pytest.fixture
def backend():
    return ExactBackend()


class TestSAStageMSG:
    def test_forward_concatenates_scales(self, rng, backend):
        stage = SAStageMSG(
            n_out=16,
            scales=[(0.2, 8), (0.4, 8), (0.8, 8)],
            in_channels=0,
            mlp_widths=[8, 16],
            rng=rng,
        )
        coords = rng.normal(size=(128, 3))
        c, f, idx = stage.forward(coords, None, backend)
        assert c.shape == (16, 3)
        assert f.shape == (16, 3 * 16)
        assert stage.out_channels == 48

    def test_scales_share_one_sample(self, rng, backend):
        stage = SAStageMSG(
            n_out=8, scales=[(0.3, 4), (0.6, 4)], in_channels=0,
            mlp_widths=[8], rng=rng,
        )
        coords = rng.normal(size=(64, 3))
        _, _, idx = stage.forward(coords, None, backend)
        # The centre set must equal exact FPS of the backend.
        assert np.array_equal(idx, backend.sample(coords, 8))

    def test_backward_shapes(self, rng, backend):
        stage = SAStageMSG(
            n_out=8, scales=[(0.3, 4), (0.6, 4)], in_channels=5,
            mlp_widths=[8], rng=rng,
        )
        coords = rng.normal(size=(64, 3))
        feats = rng.normal(size=(64, 5))
        _, f, _ = stage.forward(coords, feats, backend)
        grad = stage.backward(np.ones_like(f))
        assert grad.shape == feats.shape

    def test_backward_without_features(self, rng, backend):
        stage = SAStageMSG(
            n_out=8, scales=[(0.3, 4)], in_channels=0, mlp_widths=[8], rng=rng
        )
        coords = rng.normal(size=(64, 3))
        _, f, _ = stage.forward(coords, None, backend)
        assert stage.backward(np.ones_like(f)) is None

    def test_needs_scales(self, rng):
        with pytest.raises(ValueError, match="scale"):
            SAStageMSG(8, [], 0, [8], rng)

    def test_parameters_cover_all_scales(self, rng):
        stage = SAStageMSG(
            n_out=8, scales=[(0.3, 4), (0.6, 4)], in_channels=0,
            mlp_widths=[8], rng=rng,
        )
        single = SAStageMSG(
            n_out=8, scales=[(0.3, 4)], in_channels=0, mlp_widths=[8], rng=rng
        )
        assert len(stage.parameters()) == 2 * len(single.parameters())

    def test_fixed_sample_backend_rejects_short_slice(self, rng, backend):
        """Regression: asking the shared-FPS wrapper for more centres
        than it holds used to return a silently short slice, skewing
        every per-scale output shape downstream."""
        from repro.networks.msg import _FixedSampleBackend

        coords = rng.normal(size=(32, 3))
        fixed = _FixedSampleBackend(backend, np.arange(8))
        assert np.array_equal(fixed.sample(coords, 8), np.arange(8))
        assert np.array_equal(fixed.sample(coords, 5), np.arange(5))
        with pytest.raises(ValueError, match="cannot satisfy"):
            fixed.sample(coords, 9)

    def test_works_with_block_backend(self, rng):
        from repro.networks import make_backend

        stage = SAStageMSG(
            n_out=16, scales=[(0.2, 8), (0.4, 8)], in_channels=0,
            mlp_widths=[8], rng=rng,
        )
        coords = rng.normal(size=(256, 3))
        coords /= np.linalg.norm(coords, axis=1).max()
        backend = make_backend("fractal", max_points_per_block=64)
        _, f, _ = stage.forward(coords, None, backend)
        assert f.shape == (16, 16)
        assert np.isfinite(f).all()
