"""Tests for partition statistics and the Fig. 5 analytic counts."""

import pytest

from repro.partition import (
    UniformPartitioner,
    fractal_traversal_count,
    kdtree_sort_count,
    summarize,
)


class TestFig5Formulas:
    def test_paper_quoted_values(self):
        """Fig. 5 prints these exact numbers."""
        assert kdtree_sort_count(1024, 64) == 15
        assert fractal_traversal_count(1024, 64) == 4
        assert kdtree_sort_count(289_000, 256) == 2047
        assert fractal_traversal_count(289_000, 256) == 11

    def test_no_partition_needed(self):
        assert kdtree_sort_count(64, 64) == 0
        assert fractal_traversal_count(64, 64) == 0

    def test_sorts_exponential_in_traversals(self):
        for n in (10_000, 100_000, 1_000_000):
            t = fractal_traversal_count(n, 256)
            assert kdtree_sort_count(n, 256) == 2**t - 1

    def test_validates_inputs(self):
        with pytest.raises(ValueError, match="positive"):
            kdtree_sort_count(0, 64)
        with pytest.raises(ValueError, match="positive"):
            fractal_traversal_count(100, 0)


class TestSummarize:
    def test_summary_fields(self, scene_coords):
        s = UniformPartitioner(target_block_size=128)(scene_coords)
        summary = summarize(s)
        assert summary.strategy == "uniform"
        assert summary.num_points == len(scene_coords)
        assert summary.num_blocks == s.num_blocks
        assert summary.max_block == s.block_sizes.max()
        assert summary.balance_factor == pytest.approx(
            s.block_sizes.max() / s.block_sizes.mean()
        )
        assert 0.0 <= summary.underfilled_fraction <= 1.0

    def test_row_shape(self, scene_coords):
        s = UniformPartitioner(target_block_size=128)(scene_coords)
        row = summarize(s).row()
        assert len(row) == 9
        assert row[0] == "uniform"
