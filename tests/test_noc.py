"""Tests for the NoC/DMA model."""

import pytest

from repro.hw import NoCModel


class TestNoC:
    def test_transfer_time_linear(self):
        noc = NoCModel(bytes_per_cycle=64)
        assert noc.transfer_time_cycles(6400) == pytest.approx(100.0)

    def test_contiguous_blocks_amortise_setup(self):
        """The DFT layout's payoff: one descriptor instead of hundreds."""
        noc = NoCModel()
        scattered = noc.distribute(1e5, num_blocks=512, contiguous=False)
        contiguous = noc.distribute(1e5, num_blocks=512, contiguous=True)
        assert contiguous.compute_cycles < scattered.compute_cycles

    def test_setup_negligible_for_large_payloads(self):
        noc = NoCModel()
        cost = noc.distribute(1e8, num_blocks=512, contiguous=False)
        payload = noc.transfer_time_cycles(1e8)
        assert cost.compute_cycles < payload * 1.05

    def test_zero_payload(self):
        noc = NoCModel()
        cost = noc.distribute(0.0, num_blocks=1)
        assert cost.compute_cycles >= 0
