"""PNN building blocks: set abstraction and feature propagation.

These implement the two computational pathways of Fig. 2(d) with manual
backprop.  Point operations (sampling / grouping / interpolation) go
through an injected :class:`~repro.networks.backends.PointOpsBackend`;
their index outputs are treated as constants of the backward pass (the
standard straight-through treatment — neighbour selection is not
differentiable), while feature gradients flow through gathers,
interpolation weights, MLPs, and pooling.

Set abstraction is structured Mesorasi-style: the shared MLP consumes
one row per *point* (absolute xyz ++ features — the delayed-aggregation
form, where per-point results are independent of which neighbourhoods a
point lands in), and aggregation happens on the ball-query indices.
:meth:`SAStage.compute` exposes both evaluation orders — ``eager``
gathers the input rows and runs the MLP over ``(m, k, c)``, ``delayed``
runs the MLP once over ``(n, c)`` and gathers the output rows — and the
two are bit-identical (the Dense row-stability contract), so the
``REPRO_AGG`` / ``agg=`` dispatch axis of :mod:`repro.core.dispatch`
only moves work between the GEMM and the gather.  The split between
``forward`` (sample + group via the backend, then compute) and
``compute`` (index-parameterised math) is what lets the fused serving
engine drive the same stage objects with fused cross-cloud indices.
"""

from __future__ import annotations

import numpy as np

from ..core import dispatch
from .backends import PointOpsBackend
from .layers import Dense, Module, ReLU, SharedMLP, max_pool, max_pool_backward

__all__ = ["SAStage", "GlobalSA", "FPStage", "InvResBlock"]


class InvResBlock(Module):
    """Inverted-residual pointwise block (PointNeXt's InvResMLP, simplified).

    ``y = relu(x + W2 relu(W1 x))`` with an expansion factor of 2.
    """

    def __init__(self, channels: int, rng: np.random.Generator, expansion: int = 2):
        hidden = channels * expansion
        self.fc1 = Dense(channels, hidden, rng)
        self.act1 = ReLU()
        self.fc2 = Dense(hidden, channels, rng)
        self.act2 = ReLU()

    def forward(self, x: np.ndarray) -> np.ndarray:
        h = self.fc2.forward(self.act1.forward(self.fc1.forward(x)))
        return self.act2.forward(x + h)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        grad = self.act2.backward(grad)
        grad_h = self.fc1.backward(self.act1.backward(self.fc2.backward(grad)))
        return grad + grad_h


class SAStage(Module):
    """Set-abstraction stage: sample → group → MLP ⇄ aggregate.

    Args:
        n_out: number of sampled centres this stage keeps.
        radius: ball-query radius.
        k: group size.
        in_channels: input feature channels (0 when only coordinates).
        mlp_widths: hidden/output widths of the shared MLP (applied to
            ``3 + in_channels`` inputs: absolute xyz ++ features — the
            per-point form delayed aggregation requires; networks
            retrain from scratch under either order, exactly as
            Mesorasi retrains its restructured backbones).
        pooling: ``max`` (PointNet++/PointNeXt) or ``maxmean``
            (PointVector-style vector aggregation).
        post_blocks: number of InvResBlocks after pooling (PointNeXt).
    """

    def __init__(
        self,
        n_out: int,
        radius: float,
        k: int,
        in_channels: int,
        mlp_widths: list[int],
        rng: np.random.Generator,
        pooling: str = "max",
        post_blocks: int = 0,
    ):
        if pooling not in ("max", "maxmean"):
            raise ValueError(f"pooling must be 'max' or 'maxmean', got {pooling!r}")
        self.n_out = n_out
        self.radius = radius
        self.k = k
        self.in_channels = in_channels
        self.pooling = pooling
        self.mlp = SharedMLP([3 + in_channels] + list(mlp_widths), rng)
        self.out_channels = mlp_widths[-1]
        if pooling == "maxmean":
            self.fuse = Dense(2 * self.out_channels, self.out_channels, rng)
            self.fuse_act = ReLU()
        self.post = [InvResBlock(self.out_channels, rng) for _ in range(post_blocks)]
        self._ctx: dict | None = None

    def forward(
        self,
        coords: np.ndarray,
        feats: np.ndarray | None,
        backend: PointOpsBackend,
        agg: str = "auto",
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Returns ``(center_coords, out_feats, center_indices)``."""
        n = len(coords)
        n_out = min(self.n_out, n)
        centers = backend.sample(coords, n_out)
        neighbors = backend.group(coords, centers, self.radius, self.k)
        out = self.compute(coords, feats, neighbors, agg=agg)
        return coords[centers], out, centers

    def compute(
        self,
        coords: np.ndarray,
        feats: np.ndarray | None,
        neighbors: np.ndarray,
        agg: str = "auto",
    ) -> np.ndarray:
        """MLP + aggregation over precomputed ball-query indices.

        ``neighbors`` may index into any point set ``coords``/``feats``
        describe — including a fused multi-cloud concatenation — since
        every row of the MLP depends on its point alone.  ``agg`` picks
        the evaluation order (see :func:`repro.core.dispatch.
        resolve_agg`); both orders are bit-identical.
        """
        x = coords if feats is None else np.concatenate([coords, feats], axis=1)
        mode = dispatch.resolve_agg(
            agg,
            num_points=len(x),
            num_centers=len(neighbors),
            k=neighbors.shape[1] if neighbors.ndim == 2 else 1,
            mlp_widths=self.mlp.widths,
        )
        if mode == "delayed":
            h_all = self.mlp.forward(x)
            h = h_all[neighbors]
        else:
            h = self.mlp.forward(x[neighbors])

        pooled_max, arg = max_pool(h, axis=1)
        if self.pooling == "maxmean":
            pooled_mean = h.mean(axis=1)
            fused = self.fuse_act.forward(
                self.fuse.forward(np.concatenate([pooled_max, pooled_mean], axis=1))
            )
            out = fused
        else:
            out = pooled_max
        for block in self.post:
            out = block.forward(out)

        self._ctx = {
            "n": len(x),
            "mode": mode,
            "neighbors": neighbors,
            "arg": arg,
            "h_shape": h.shape,
            "has_feats": feats is not None,
        }
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray | None:
        """Backprop to the *input features*; returns None when stage had none."""
        ctx = self._ctx
        if ctx is None:
            raise RuntimeError("backward called before forward")
        for block in reversed(self.post):
            grad_out = block.backward(grad_out)
        if self.pooling == "maxmean":
            grad_out = self.fuse.backward(self.fuse_act.backward(grad_out))
            c = self.out_channels
            grad_max, grad_mean = grad_out[:, :c], grad_out[:, c:]
            grad_h = max_pool_backward(grad_max, ctx["arg"], ctx["h_shape"], axis=1)
            grad_h += grad_mean[:, None, :] / ctx["h_shape"][1]
        else:
            grad_h = max_pool_backward(grad_out, ctx["arg"], ctx["h_shape"], axis=1)

        if ctx["mode"] == "delayed":
            # Scatter the gathered-row gradients back to the per-point MLP
            # output, then one MLP backward over the (n, c) pass.
            grad_h_all = np.zeros(
                (ctx["n"], ctx["h_shape"][-1]), dtype=grad_h.dtype
            )
            np.add.at(grad_h_all, ctx["neighbors"], grad_h)
            grad_x = self.mlp.backward(grad_h_all)
            if not ctx["has_feats"]:
                return None
            return grad_x[:, 3:]
        grad_grouped = self.mlp.backward(grad_h)
        if not ctx["has_feats"]:
            return None
        grad_feat_part = grad_grouped[:, :, 3:]
        grad_feats = np.zeros((ctx["n"], self.in_channels))
        np.add.at(grad_feats, ctx["neighbors"], grad_feat_part)
        return grad_feats


class GlobalSA(Module):
    """Final whole-cloud abstraction for classification heads.

    Applies a shared MLP to every point (coords ++ features) and
    max-pools over the full cloud into one global descriptor.
    """

    def __init__(self, in_channels: int, mlp_widths: list[int], rng: np.random.Generator):
        self.mlp = SharedMLP([3 + in_channels] + list(mlp_widths), rng)
        self.in_channels = in_channels
        self.out_channels = mlp_widths[-1]
        self._ctx: dict | None = None

    def forward(self, coords: np.ndarray, feats: np.ndarray) -> np.ndarray:
        x = np.concatenate([coords, feats], axis=1)
        h = self.mlp.forward(x)
        pooled, arg = max_pool(h[None, :, :], axis=1)
        self._ctx = {"arg": arg, "h_shape": (1,) + h.shape, "n": len(coords)}
        return pooled[0]

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        ctx = self._ctx
        if ctx is None:
            raise RuntimeError("backward called before forward")
        grad_h = max_pool_backward(grad_out[None, :], ctx["arg"], ctx["h_shape"], axis=1)[0]
        grad_x = self.mlp.backward(grad_h)
        return grad_x[:, 3:]  # drop the coords part


class FPStage(Module):
    """Feature propagation: interpolate sparse features onto dense points.

    Implements the propagation pathway of Fig. 2(d): 3-NN inverse-distance
    interpolation of the sparser level's features, concatenated with the
    denser level's skip features, then a pointwise MLP.
    """

    def __init__(
        self,
        sparse_channels: int,
        skip_channels: int,
        mlp_widths: list[int],
        rng: np.random.Generator,
        k: int = 3,
    ):
        self.k = k
        self.sparse_channels = sparse_channels
        self.skip_channels = skip_channels
        self.mlp = SharedMLP([sparse_channels + skip_channels] + list(mlp_widths), rng)
        self.out_channels = mlp_widths[-1]
        self._ctx: dict | None = None

    def forward(
        self,
        dense_coords: np.ndarray,
        skip_feats: np.ndarray | None,
        sparse_indices: np.ndarray,
        sparse_feats: np.ndarray,
        backend: PointOpsBackend,
    ) -> np.ndarray:
        """``sparse_indices`` are ids *into dense_coords* (FPS subset)."""
        m = len(dense_coords)
        all_dense = np.arange(m)
        idx, weights = backend.interpolate_indices(
            dense_coords, all_dense, np.asarray(sparse_indices, dtype=np.int64), self.k
        )
        # Map global point ids back to rows of sparse_feats.
        row_of = np.full(m, -1, dtype=np.int64)
        row_of[np.asarray(sparse_indices, dtype=np.int64)] = np.arange(len(sparse_indices))
        rows = row_of[idx]
        interp = np.einsum("mk,mkc->mc", weights, sparse_feats[rows])

        if skip_feats is not None:
            x = np.concatenate([interp, skip_feats], axis=1)
        else:
            x = interp
        out = self.mlp.forward(x)
        self._ctx = {
            "rows": rows,
            "weights": weights,
            "n_sparse": len(sparse_indices),
            "has_skip": skip_feats is not None,
        }
        return out

    def backward(self, grad_out: np.ndarray) -> tuple[np.ndarray, np.ndarray | None]:
        """Returns ``(grad_sparse_feats, grad_skip_feats)``."""
        ctx = self._ctx
        if ctx is None:
            raise RuntimeError("backward called before forward")
        grad_x = self.mlp.backward(grad_out)
        grad_interp = grad_x[:, : self.sparse_channels]
        grad_skip = grad_x[:, self.sparse_channels:] if ctx["has_skip"] else None
        grad_sparse = np.zeros((ctx["n_sparse"], self.sparse_channels))
        np.add.at(
            grad_sparse,
            ctx["rows"],
            ctx["weights"][:, :, None] * grad_interp[:, None, :],
        )
        return grad_sparse, grad_skip
