"""Generic block structures shared by all partitioning strategies.

Every partitioner in this library (Fractal, uniform grid, KD-tree, octree)
reduces a point cloud to the same thing: a list of *blocks* (disjoint index
sets covering all points) plus, per block, a *search space* — the set of
candidate indices a block-wise neighbour search may consult.  The
Block-Parallel Point Operations (:mod:`repro.core.bppo`) run against this
interface, so the same code path evaluates every strategy in the paper's
comparisons (Fig. 3, Fig. 16).

The per-strategy differences that drive the paper's accuracy results are
encoded entirely in the search spaces:

- **Fractal / KD-tree** (binary trees): a leaf's search space is its
  immediate parent's point set (paper §IV-B), except depth-1 leaves which
  search only themselves.
- **Uniform grid / octree**: a cell's search space is the cell itself —
  these strategies have no cheap parent notion, which is exactly why they
  lose neighbours at cell borders and degrade accuracy.

:class:`PartitionCost` carries the preprocessing-cost counters that the
hardware model turns into cycles (Fig. 5: exclusive sorts vs inclusive
traversals).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["Block", "PartitionCost", "BlockStructure"]


@dataclass
class Block:
    """One partition block.

    Attributes:
        indices: global point indices belonging to this block (disjoint
            across blocks; union covers the cloud).
        depth: tree depth of the block (0 = root/whole cloud); grid
            partitioners report depth 1.
    """

    indices: np.ndarray
    depth: int = 1

    def __post_init__(self) -> None:
        self.indices = np.asarray(self.indices, dtype=np.int64)
        if self.indices.ndim != 1:
            raise ValueError(f"block indices must be 1-D, got shape {self.indices.shape}")
        if len(self.indices) == 0:
            raise ValueError("blocks must be non-empty")
        if self.depth < 0:
            raise ValueError(f"depth must be >= 0, got {self.depth}")

    def __len__(self) -> int:
        return len(self.indices)


@dataclass
class PartitionCost:
    """Preprocessing work counters for one partitioning run.

    These feed the fractal-engine timing model.  A *sort* is an exclusive
    merge-sort pass over ``m`` elements (KD-tree median selection); a
    *traversal* is an inclusive linear min/max pass (Fractal midpoint); a
    *pass* is a single streaming classification of all points (uniform
    grid bucketing, and the partition step of each Fractal level).

    Attributes:
        sorts: list of sort sizes, in the order they must execute.
            KD-tree sorts are sequentially dependent level to level.
        traversals: list of traversal sizes (one per tree level for
            Fractal — all nodes of a level traverse concurrently, so a
            level's entry is the *total* points touched at that level).
        passes: list of streaming-pass sizes.
        levels: number of sequential levels (pipeline depth of the
            preprocessing; 1 for uniform grid).
    """

    sorts: list[int] = field(default_factory=list)
    traversals: list[int] = field(default_factory=list)
    passes: list[int] = field(default_factory=list)
    levels: int = 0

    @property
    def total_sorted_elements(self) -> int:
        return int(sum(self.sorts))

    @property
    def total_traversed_elements(self) -> int:
        return int(sum(self.traversals))

    @property
    def num_sorts(self) -> int:
        return len(self.sorts)

    @property
    def num_traversals(self) -> int:
        return len(self.traversals)


@dataclass
class BlockStructure:
    """Blocks + per-block search spaces + preprocessing cost.

    Attributes:
        num_points: total points in the partitioned cloud.
        blocks: the partition (disjoint, covering).
        search_spaces: per-block candidate index arrays for neighbour
            search; always a superset of the block's own indices.
        cost: preprocessing cost counters.
        strategy: short name ("fractal", "uniform", "kdtree", "octree").
    """

    num_points: int
    blocks: list[Block]
    search_spaces: list[np.ndarray]
    cost: PartitionCost
    strategy: str = "generic"

    def __post_init__(self) -> None:
        if len(self.blocks) != len(self.search_spaces):
            raise ValueError(
                f"{len(self.blocks)} blocks but {len(self.search_spaces)} search spaces"
            )

    @property
    def num_blocks(self) -> int:
        return len(self.blocks)

    @property
    def block_sizes(self) -> np.ndarray:
        """``(num_blocks,)`` int array of block populations."""
        return np.array([len(b) for b in self.blocks], dtype=np.int64)

    @property
    def search_sizes(self) -> np.ndarray:
        """``(num_blocks,)`` int array of search-space populations."""
        return np.array([len(s) for s in self.search_spaces], dtype=np.int64)

    @property
    def max_block_size(self) -> int:
        return int(self.block_sizes.max())

    def block_of_point(self) -> np.ndarray:
        """``(num_points,)`` map from point index to owning block id.

        Memoized: every op of a pipeline pass groups its centres through
        this map, and blocks never change after construction.  Treat the
        returned array as read-only.
        """
        owner = getattr(self, "_owner_memo", None)
        if owner is None:
            owner = np.full(self.num_points, -1, dtype=np.int64)
            for block_id, block in enumerate(self.blocks):
                owner[block.indices] = block_id
            self._owner_memo = owner
        return owner

    def validate(self) -> None:
        """Raise unless blocks are disjoint and cover all points."""
        seen = np.zeros(self.num_points, dtype=bool)
        for block in self.blocks:
            if np.any(seen[block.indices]):
                raise ValueError("blocks overlap")
            seen[block.indices] = True
        if not np.all(seen):
            missing = int((~seen).sum())
            raise ValueError(f"{missing} points not covered by any block")
        # Membership via generation stamps: one reusable array instead of
        # a sort-based isin per block.
        stamp = np.zeros(self.num_points, dtype=np.int64)
        for gen, (block, space) in enumerate(
            zip(self.blocks, self.search_spaces), start=1
        ):
            stamp[space] = gen
            if not np.all(stamp[block.indices] == gen):
                raise ValueError("search space must contain the block's own points")
