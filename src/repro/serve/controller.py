"""Adaptive window control: resize ``W``/``T`` online from traffic.

The windowed micro-batcher has two knobs — close a window after ``W``
clouds or ``T`` seconds — and PR 4 left them static, which bakes one
traffic assumption into the server: a window sized for rush hour makes
an idle stream pay the full ``T`` of batching latency for batches that
never materialise, and a window sized for idle traffic starves the fused
kernels at rush hour.  The :class:`AdaptiveWindow` controller replaces
the static pair with an online policy driven by two live signals:

- an EWMA **arrival rate** estimate (from inter-arrival gaps), which
  says how many clouds a given wait can actually gather;
- the **rolling p95** of served latencies, which says whether the
  current policy is blowing the tail-latency budget.

The control law, applied once per closed window:

1. if even a maximum-length wait cannot gather ``gather_min`` clouds
   (``rate × max_wait < gather_min - 1``), waiting buys nothing —
   close windows immediately (``W = min_clouds``, ``T = min_wait``):
   this is the idle-stream latency win;
2. otherwise the candidate wait is the fusion sweet spot — the time the
   current rate needs to deliver ``fuse_target`` clouds — scaled by
   **utilization**: batching exists to raise capacity, so when the
   observed per-cloud service time says the engine could serve this
   rate many times over (``ρ = rate × service`` below ``util_low``),
   waiting is pure latency loss and ``T`` collapses to the floor; as
   ``ρ`` climbs toward ``util_high`` the full sweet-spot wait phases
   in (linearly, so steady load converges instead of flapping).  ``W``
   is what the chosen wait is expected to gather (plus headroom), so
   busy windows keep closing on count, not on timeout;
3. if a ``target_p95`` is configured and the rolling p95 overshoots it,
   a multiplicative brake shrinks ``T`` (and releases slowly once the
   tail recovers);
4. everything is clamped into the configured bounds — ``W`` in
   ``[min_clouds, max_clouds]``, ``T`` in ``[min_wait, max_wait]`` —
   **unconditionally**, whatever the observations were.

The controller is a pure consumer of timestamps handed to it
(``observe_arrival(now)``), so tests drive it with a synthetic clock and
the policy is deterministic for a given observation sequence.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .telemetry import LatencyRing, latency_percentiles

__all__ = ["ControllerConfig", "AdaptiveWindow"]

#: Gaps below this are treated as simultaneous arrivals (rate cap).
_MIN_GAP = 1e-6


@dataclass(frozen=True)
class ControllerConfig:
    """Bounds and gains of the adaptive window controller.

    Attributes:
        min_clouds / max_clouds: the range ``W`` may move in.  The static
            scheduler's ``W`` is the natural ``max_clouds``.
        min_wait / max_wait: the range ``T`` may move in (seconds).  The
            static scheduler's ``T`` is the natural ``max_wait``.
        alpha: EWMA weight of the newest inter-arrival sample (higher =
            faster tracking, noisier estimate).
        headroom: ``W`` overshoot factor over the expected arrivals of
            one wait, so a window closes on count slightly *before* its
            deadline under steady load.
        fuse_target: the bucket size fusion is tuned for; ``T`` aims to
            gather about this many clouds and no more (waiting past the
            amortisation sweet spot only adds latency).
        gather_min: the batch a maximum-length wait must plausibly reach
            for waiting to be worth anything at all; below it the
            controller closes windows immediately.
        util_low / util_high: the utilisation band (``ρ = rate ×
            per-cloud service time``) over which the sweet-spot wait
            phases in — below ``util_low`` the engine has capacity to
            burn and dispatches near-immediately; above ``util_high``
            it batches at full strength.  Until the first service
            observation arrives, ``ρ`` is assumed high (batch — the
            safe default for throughput).
        target_p95: optional tail-latency budget in seconds; overshoot
            engages the multiplicative brake on ``T``.
        rolling: how many recent latencies the p95 window retains.
    """

    min_clouds: int = 1
    max_clouds: int = 64
    min_wait: float = 0.002
    max_wait: float = 0.100
    alpha: float = 0.3
    headroom: float = 1.25
    fuse_target: int = 16
    gather_min: float = 2.0
    util_low: float = 0.5
    util_high: float = 0.9
    target_p95: float | None = None
    rolling: int = 256

    def __post_init__(self):
        if not 1 <= self.min_clouds <= self.max_clouds:
            raise ValueError(
                f"need 1 <= min_clouds <= max_clouds, got "
                f"{self.min_clouds}..{self.max_clouds}"
            )
        if not 0 < self.min_wait <= self.max_wait:
            raise ValueError(
                f"need 0 < min_wait <= max_wait, got "
                f"{self.min_wait}..{self.max_wait}"
            )
        if not 0.0 < self.alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {self.alpha}")
        if self.headroom < 1.0:
            raise ValueError(f"headroom must be >= 1.0, got {self.headroom}")
        if self.fuse_target < 2:
            raise ValueError(f"fuse_target must be >= 2, got {self.fuse_target}")
        if self.gather_min < 1.0:
            raise ValueError(f"gather_min must be >= 1.0, got {self.gather_min}")
        if not 0.0 <= self.util_low < self.util_high:
            raise ValueError(
                f"need 0 <= util_low < util_high, got "
                f"{self.util_low}..{self.util_high}"
            )
        if self.target_p95 is not None and self.target_p95 <= 0:
            raise ValueError(f"target_p95 must be > 0, got {self.target_p95}")
        if self.rolling < 1:
            raise ValueError(f"rolling must be >= 1, got {self.rolling}")


class AdaptiveWindow:
    """Online ``(W, T)`` policy for one stream (one tenant, one session).

    Usage (the serving loops do exactly this)::

        controller = AdaptiveWindow(ControllerConfig(max_clouds=32))
        W, T = controller.limits()          # schedule the next window
        controller.observe_arrival(now)     # once per admitted cloud
        controller.observe_latency(sec)     # once per emitted result
        controller.observe_service(sec, n)  # once per executed window
        controller.update()                 # once per closed window

    Until the first inter-arrival gap is seen the controller behaves
    exactly like the static scheduler at the upper bounds.
    """

    def __init__(self, config: ControllerConfig | None = None):
        self.config = config or ControllerConfig()
        self.rate: float | None = None  # EWMA arrival rate, clouds/s
        self.service: float | None = None  # EWMA per-cloud service, s
        self._last_arrival: float | None = None
        self._latencies = LatencyRing(self.config.rolling)
        self._brake = 1.0
        self.max_clouds = self.config.max_clouds
        self.max_wait = self.config.max_wait
        self.updates = 0

    def limits(self) -> tuple[int, float]:
        """The current window limits ``(W, T)``."""
        return (self.max_clouds, self.max_wait)

    # -- observations --------------------------------------------------------

    def observe_arrival(self, now: float) -> None:
        """Record one arrival timestamp (any monotonic clock)."""
        if self._last_arrival is not None:
            gap = max(float(now) - self._last_arrival, _MIN_GAP)
            sample = 1.0 / gap
            alpha = self.config.alpha
            self.rate = (
                sample
                if self.rate is None
                else alpha * sample + (1.0 - alpha) * self.rate
            )
        self._last_arrival = float(now)

    def observe_latency(self, seconds: float) -> None:
        """Record one served arrival→emission latency."""
        self._latencies.append(float(seconds))

    def observe_service(self, seconds: float, clouds: int = 1) -> None:
        """Record one window execution: ``seconds`` spent computing
        ``clouds`` distinct clouds (replays excluded).  Feeds the
        utilisation estimate."""
        if clouds < 1 or seconds < 0:
            return
        sample = float(seconds) / clouds
        alpha = self.config.alpha
        self.service = (
            sample
            if self.service is None
            else alpha * sample + (1.0 - alpha) * self.service
        )

    def p95(self) -> float:
        """Rolling p95 of the observed latencies (0.0 when none)."""
        return latency_percentiles(self._latencies)[1]

    # -- the control law -----------------------------------------------------

    def update(self) -> tuple[int, float]:
        """Re-plan ``(W, T)`` after a closed window; returns the new pair.

        Never leaves the configured bounds, whatever was observed.
        """
        cfg = self.config
        self.updates += 1
        if self.rate is not None:
            # Clouds a maximum-length wait would gather beyond the first.
            reachable = self.rate * cfg.max_wait
            if reachable < cfg.gather_min - 1.0:
                # Too sparse to batch: stop paying latency for it.
                clouds, wait = cfg.min_clouds, cfg.min_wait
            else:
                sweet = (cfg.fuse_target - 1) / self.rate
                sweet = min(max(sweet, cfg.min_wait), cfg.max_wait)
                if self.service is None:
                    wait = sweet  # no capacity signal yet: batch
                else:
                    # Utilisation gates the wait: a server with capacity
                    # to burn dispatches immediately, a loaded one needs
                    # the batch.  Linear phase-in keeps steady load at a
                    # fixed point instead of flapping across a cliff.
                    rho = self.rate * self.service
                    fraction = (rho - cfg.util_low) / (
                        cfg.util_high - cfg.util_low
                    )
                    fraction = min(max(fraction, 0.0), 1.0)
                    wait = cfg.min_wait + fraction * (sweet - cfg.min_wait)
                clouds = math.ceil((1.0 + self.rate * wait) * cfg.headroom)
            if cfg.target_p95 is not None:
                p95 = self.p95()
                if p95 > cfg.target_p95:
                    # Braking below the min_wait/max_wait ratio is dead
                    # travel (the clamp already holds there) and would
                    # only slow the release once the tail recovers.
                    self._brake = max(
                        self._brake * 0.5, cfg.min_wait / cfg.max_wait
                    )
                elif p95 < 0.8 * cfg.target_p95:
                    self._brake = min(self._brake * 1.25, 1.0)
                wait *= self._brake
            self.max_clouds = min(max(clouds, cfg.min_clouds), cfg.max_clouds)
            self.max_wait = min(max(wait, cfg.min_wait), cfg.max_wait)
        return self.limits()
