"""Sharded serving front-end: consistent-hash routing over engine shards.

:class:`ShardRouter` is the process-level scale-out of the serving
layer.  It keeps N :mod:`~repro.shard.worker` processes behind a
:class:`~repro.shard.hashring.HashRing` and routes every request by a
stable key:

- ``affinity="content"`` — the content digest
  (:func:`~repro.runtime.cache.result_key`), so every repeat of a hot
  asset lands on the same shard and the fleet's dedup windows and
  partition caches tile the catalog instead of replicating it.  With N
  shards the aggregate hot capacity is N× one process — the sharded win
  on hot-asset traffic, even on a single core.
- ``affinity="stream"`` — the stream/tenant tag, so every frame of a
  sensor stream hits one shard and delta patching
  (``engine.delta=True``) stays shard-local: the shard that cached frame
  *t*'s partition is the one asked to patch frame *t+1*.

Bulk arrays move through the shared-memory transport
(:mod:`~repro.shard.transport`): the router owns one request arena per
shard, each worker owns a response arena, and the pipes carry only
control tuples.  Each shard is wired by one duplex
:func:`multiprocessing.Pipe` — no queue feeder threads or their extra
pickling hop — and the router multiplexes result pipes with
:func:`multiprocessing.connection.wait`.  Workers reply once per
executed window (a single batched ``results`` message), so messaging
cost amortises over the window instead of scaling per request.  Requests
are written by a tiny per-shard sender thread: the router's main thread
then never blocks on a pipe write, which could otherwise deadlock
against a worker blocked writing a large inline result in ``pickle``
mode.  Results are copied out of the arena at the emission boundary
(ownership leaves the transport there) and the blocks are recycled.

Ordering: results are emitted in global submission order — a total order
that in particular preserves every stream's own order — via a reorder
buffer, exactly like the single-process servers.  Membership changes are
live: :meth:`add_shard` grows the ring (only ~1/N of the key space
remaps), :meth:`remove_shard` drains the leaving shard first, so every
in-flight cloud is delivered exactly once.
"""

from __future__ import annotations

import multiprocessing as mp
import queue
import threading
from collections.abc import Iterable, Iterator
from dataclasses import dataclass, field
from multiprocessing import connection as mp_connection

from .. import obs
from ..runtime.cache import result_key
from ..runtime.executor import CloudResult, PipelineSpec, _as_cloud
from .hashring import HashRing
from .transport import PickleChannel, ShmArena, ShmPeer
from .worker import shard_main, unpack_result

__all__ = ["ShardRouter", "ShardResult"]


@dataclass(frozen=True)
class ShardResult:
    """One served cloud with its routing envelope."""

    stream: str
    seq: int
    shard: str
    latency: float
    result: CloudResult


def _send_loop(outbox: queue.SimpleQueue, conn) -> None:
    """Per-shard sender: drain the outbox into the pipe, off the main
    thread, so a full pipe never blocks routing/pumping."""
    while True:
        msg = outbox.get()
        if msg is None:
            break
        try:
            conn.send(msg)
        except (BrokenPipeError, OSError):
            break  # worker gone; the stop path will surface it


@dataclass
class _Shard:
    """Router-side state of one worker process."""

    name: str
    process: mp.process.BaseProcess
    conn: object  # router end of the duplex pipe
    channel: object  # request arena (router-owned)
    outbox: queue.SimpleQueue = field(default_factory=queue.SimpleQueue)
    sender: threading.Thread | None = None
    peer: ShmPeer = field(default_factory=ShmPeer)
    in_flight: int = 0
    served: int = 0
    windows: int = 0
    busy_seconds: float = 0.0


class ShardRouter:
    """Route a cloud stream across N single-process engine shards.

    Usage::

        router = ShardRouter(4, engine=dict(partitioner="fractal",
                                            block_size=256))
        for served in router.serve(clouds):        # submission order
            consume(served.result)
        print(router.report(wall).format())
        router.close()

    Args:
        shards: shard count (names become ``shard-0..N-1``) or an
            iterable of explicit shard names.
        engine: keyword arguments for each shard's private
            :class:`~repro.runtime.executor.BatchExecutor` (the
            partitioner **name**, block size, cache and dedup sizing,
            delta flags — anything but ``mode``/``max_workers``, which
            are forced serial inside the worker).
        pipeline: the :class:`PipelineSpec` every shard runs.
        transport: ``"shm"`` (shared-memory arenas, control-only pipes)
            or ``"pickle"`` (arrays inline through the pipes — the
            baseline).
        affinity: ``"content"``, ``"stream"``, or ``"auto"`` (stream
            when the engine runs the delta protocol — patching needs
            frame locality — content otherwise).
        arena_bytes: size of each arena (one request arena per shard on
            the router side, one response arena per worker).  Overflow
            degrades to inline transport per array, never an error.
        max_clouds: greedy window cap inside each worker.
        max_in_flight: router-wide cap on unemitted requests; the pump
            blocks submission beyond it, bounding arena pressure.
        ship_traces: ship per-op :class:`OpTrace` diagnostics with each
            result.  Off by default — traces are hundreds of nested
            dataclass objects per window and (un)pickling them can cost
            more than the arrays they describe; results then carry
            ``traces={}``.
        telemetry: optional :class:`ServeTelemetry` to record into.
    """

    def __init__(
        self,
        shards: int | Iterable[str] = 2,
        *,
        engine: dict | None = None,
        pipeline: PipelineSpec | None = None,
        transport: str = "shm",
        affinity: str = "auto",
        arena_bytes: int = 64 << 20,
        max_clouds: int = 16,
        max_in_flight: int = 32,
        replicas: int = 128,
        ship_traces: bool = False,
        telemetry=None,
    ):
        if transport not in ("shm", "pickle"):
            raise ValueError(f"transport must be shm|pickle, got {transport!r}")
        if affinity not in ("auto", "content", "stream"):
            raise ValueError(
                f"affinity must be auto|content|stream, got {affinity!r}"
            )
        self.engine_kwargs = dict(engine or {})
        self.engine_kwargs.pop("mode", None)
        self.engine_kwargs.pop("max_workers", None)
        self.pipeline = pipeline or PipelineSpec()
        self.transport = transport
        self.affinity = (
            ("stream" if self.engine_kwargs.get("delta") else "content")
            if affinity == "auto"
            else affinity
        )
        self.arena_bytes = arena_bytes
        self.max_clouds = max_clouds
        self.max_in_flight = max_in_flight
        self.ship_traces = ship_traces
        if telemetry is None:
            from ..serve.telemetry import ServeTelemetry

            telemetry = ServeTelemetry(window_capacity=max_clouds, every=0)
        self.telemetry = telemetry

        # Start the resource tracker before the first fork: every shard
        # then inherits one shared tracker, whose name registry (a set)
        # dedups the create+attach registrations of each segment, and
        # each segment's single unlink clears it — no spurious "leaked
        # shared_memory" warnings from per-process trackers at exit.
        try:
            from multiprocessing import resource_tracker

            resource_tracker.ensure_running()
        except (ImportError, AttributeError):  # non-POSIX fallback
            pass
        self._ctx = mp.get_context("fork")
        self._ring = HashRing(replicas=replicas)
        self._shards: dict[str, _Shard] = {}
        self._pending: dict[int, tuple[str, int, float, str, object]] = {}
        self._emitted: dict[int, ShardResult] = {}
        self._next_req = 0
        self._next_emit = 0
        self._stream_seq: dict[str, int] = {}
        self._drain_tokens = 0
        self._closed = False
        names = (
            [f"shard-{i}" for i in range(shards)]
            if isinstance(shards, int)
            else list(shards)
        )
        if not names:
            raise ValueError("need at least one shard")
        for name in names:
            self.add_shard(name)

    # -- membership ----------------------------------------------------------

    @property
    def shards(self) -> tuple[str, ...]:
        return self._ring.shards

    def add_shard(self, name: str) -> None:
        """Start a worker and join it to the ring (remaps ~1/N of keys)."""
        if name in self._shards:
            raise ValueError(f"shard {name!r} already running")
        router_conn, worker_conn = self._ctx.Pipe(duplex=True)
        process = self._ctx.Process(
            target=shard_main,
            args=(name, worker_conn, self.engine_kwargs, self.pipeline),
            kwargs=dict(transport=self.transport,
                        arena_bytes=self.arena_bytes,
                        max_clouds=self.max_clouds,
                        ship_traces=self.ship_traces,
                        obs_config={"trace": obs.enabled(), "sample": 0}),
            name=f"repro-{name}",
            daemon=True,
        )
        process.start()
        worker_conn.close()  # router keeps only its own end
        channel = (
            ShmArena(self.arena_bytes)
            if self.transport == "shm"
            else PickleChannel()
        )
        shard = _Shard(name, process, router_conn, channel)
        shard.sender = threading.Thread(
            target=_send_loop, args=(shard.outbox, router_conn),
            name=f"repro-{name}-tx", daemon=True,
        )
        shard.sender.start()
        # Handshake before the shard takes traffic: the first message on
        # this shard's fresh pipe is its ``ready``.
        msg = router_conn.recv()
        if msg[0] != "ready" or msg[1] != name:
            raise RuntimeError(f"bad handshake from {name!r}: {msg[:2]!r}")
        self._shards[name] = shard
        self._ring.add(name)

    def remove_shard(self, name: str, *, drain: bool = True) -> None:
        """Retire a shard; with ``drain`` every in-flight cloud it holds
        is delivered (exactly once, in order) before the process stops."""
        if name not in self._shards:
            raise KeyError(f"unknown shard {name!r}")
        self._ring.remove(name)  # future keys rehash onto survivors
        shard = self._shards[name]
        if drain:
            token = self._drain_tokens = self._drain_tokens + 1
            shard.outbox.put(("drain", token))
            drained = False
            while not (drained and shard.in_flight == 0):
                msg = shard.conn.recv()
                if msg[0] == "drained" and msg[2] == token:
                    drained = True
                else:
                    self._handle(msg)
        self._stop_shard(shard)
        del self._shards[name]

    def _stop_shard(self, shard: _Shard) -> None:
        shard.outbox.put(("stop",))
        shard.outbox.put(None)  # sender exits once the stop is on the wire
        while True:
            msg = shard.conn.recv()
            if msg[0] == "stopped" and msg[1] == shard.name:
                break
            self._handle(msg)
        if shard.sender is not None:
            shard.sender.join(timeout=5)
        shard.process.join(timeout=10)
        shard.peer.close()      # detach from the worker's (unlinked) arena
        shard.channel.close()   # unlink the router-owned request arena
        shard.conn.close()

    # -- serving -------------------------------------------------------------

    def submit(self, cloud, *, stream: str = "t0") -> int:
        """Route one cloud; returns its global submission index."""
        if self._closed:
            raise RuntimeError("router is closed")
        coords, features = _as_cloud(cloud)
        key = (
            stream.encode("utf-8")
            if self.affinity == "stream"
            else result_key(coords, features)
        )
        name = self._ring.route(key)
        shard = self._shards[name]
        # Head sampling happens here, once per request: a sampled request
        # gets an open root span whose context rides the run message so
        # the worker's window stitches under it.
        handle = obs.open_span("serve.request", stream=stream, shard=name)
        pack_start = obs.now() if handle is not None else 0.0
        refs = [shard.channel.pack(coords)]
        if features is not None:
            refs.append(shard.channel.pack(features))
        if handle is not None:
            obs.record(
                "shard.serialize", pack_start, obs.now(),
                parent=handle.ctx, points=len(coords),
            )
        req_id = self._next_req
        self._next_req += 1
        seq = self._stream_seq.get(stream, 0)
        self._stream_seq[stream] = seq + 1
        self._pending[req_id] = (stream, seq, obs.now(), name, handle)
        shard.in_flight += 1
        shard.outbox.put((
            "run", req_id, tuple(refs), features is not None,
            handle.ctx if handle is not None else None,
        ))
        return req_id

    def _handle(self, msg) -> None:
        """Fold one worker message into router state."""
        kind = msg[0]
        if kind == "results":
            _, name, payload, stats = msg
            shard = self._shards[name]
            now = obs.now()
            spans = stats.pop("spans", None)
            if spans:
                obs.adopt(spans)
            first_ctx = None
            free_refs = []
            for req_id, meta, refs, req_refs in payload:
                shard.in_flight -= 1
                shard.served += 1
                # Copy out of the arena: ownership leaves the transport
                # at the emission boundary, then the blocks recycle.
                result = unpack_result(shard.peer, meta, refs, copy=True)
                free_refs.extend(r for r in refs if r is not None)
                shard.channel.reclaim(req_refs)
                stream, seq, submitted, _, handle = self._pending.pop(req_id)
                if handle is not None:
                    if first_ctx is None:
                        first_ctx = handle.ctx
                    handle.finish()
                latency = now - submitted
                self.telemetry.record_latency(latency)
                obs.observe("repro_shard_latency_seconds", latency)
                obs.inc("repro_serve_clouds")
                self._emitted[req_id] = ShardResult(
                    stream, seq, name, latency, result
                )
            if first_ctx is not None:
                obs.record(
                    "transport.unpack", now, obs.now(),
                    parent=first_ctx, results=len(payload),
                )
            # One free message recycles the whole window's response
            # blocks — messaging stays O(windows), not O(requests).
            shard.outbox.put(("free", tuple(free_refs)))
            shard.windows += 1
            shard.busy_seconds += stats.pop("seconds", 0.0)
            self.telemetry.record_window(
                queue_depth=len(self._pending), timed_out=False, **stats
            )
        elif kind in ("ready", "drained"):
            pass  # late handshake/drain echo (already consumed)
        else:
            raise RuntimeError(f"unexpected shard message {msg[:2]!r}")

    def _emit_ready(self) -> Iterator[ShardResult]:
        """Yield completed results in global submission order."""
        while self._next_emit in self._emitted:
            served = self._emitted.pop(self._next_emit)
            self._next_emit += 1
            yield served

    def pump(self, *, block: bool = False) -> Iterator[ShardResult]:
        """Absorb worker messages; yield whatever became emittable.

        With ``block=True`` waits until at least one shard reports
        (progress guarantee for the flow-control loop).
        """
        yield from self._emit_ready()
        conns = [s.conn for s in self._shards.values()]
        if conns:
            ready = mp_connection.wait(conns, timeout=None if block else 0)
            for conn in ready:
                while conn.poll(0):
                    self._handle(conn.recv())
        yield from self._emit_ready()

    def serve(
        self, clouds: Iterable[object], *, default_stream: str = "t0"
    ) -> Iterator[ShardResult]:
        """Serve a stream of clouds (or ``(stream, cloud)`` pairs).

        Yields one :class:`ShardResult` per submission, in submission
        order.  Flow control: at most ``max_in_flight`` requests ride
        the shards at once; beyond that, submission blocks on results.
        """
        for item in clouds:
            if (
                isinstance(item, tuple)
                and len(item) == 2
                and isinstance(item[0], str)
            ):
                stream, cloud = item
            else:
                stream, cloud = default_stream, item
            self.submit(cloud, stream=stream)
            yield from self.pump()
            while len(self._pending) >= self.max_in_flight:
                yield from self.pump(block=True)
        yield from self.flush()

    def flush(self) -> Iterator[ShardResult]:
        """Deliver every outstanding request."""
        while self._pending:
            yield from self.pump(block=True)
        yield from self._emit_ready()

    # -- lifecycle / reporting ----------------------------------------------

    def report(self, wall_seconds: float):
        """Aggregate :class:`~repro.serve.telemetry.ServeReport` across
        the fleet (per-shard counters via :attr:`shard_stats`)."""
        return self.telemetry.report(wall_seconds)

    @property
    def shard_stats(self) -> dict[str, dict]:
        """Per-shard counters: served clouds, windows, busy seconds,
        in-flight, and transport spill count."""
        return {
            name: {
                "served": s.served,
                "windows": s.windows,
                "busy_seconds": round(s.busy_seconds, 6),
                "in_flight": s.in_flight,
                "spilled": getattr(s.channel, "spilled", 0),
            }
            for name, s in sorted(self._shards.items())
        }

    def close(self) -> None:
        """Drain nothing, stop every shard, reclaim every arena."""
        if self._closed:
            return
        self._closed = True
        for name in list(self._shards):
            self._stop_shard(self._shards[name])
            del self._shards[name]

    def __enter__(self) -> "ShardRouter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
