"""Tests for the synthetic dataset generators."""

import numpy as np
import pytest

from repro.datasets import (
    PART_CLASSES,
    SCALES,
    SCENE_CLASSES,
    SHAPE_CLASSES,
    LidarConfig,
    lidar_scan,
    load_cloud,
    make_classification_dataset,
    make_part_dataset,
    make_scene,
    sample_part_object,
    sample_shape,
    scale_points,
)


class TestShapes:
    @pytest.mark.parametrize("name", sorted(SHAPE_CLASSES))
    def test_every_class_generates(self, name):
        cloud = sample_shape(name, 256, np.random.default_rng(0))
        assert len(cloud) == 256
        assert cloud.class_id == sorted(SHAPE_CLASSES).index(name) or cloud.class_id is not None

    def test_normalised_output(self):
        cloud = sample_shape("torus", 512, np.random.default_rng(1))
        assert np.linalg.norm(cloud.coords, axis=1).max() <= 1.0 + 1e-5

    def test_unknown_class(self):
        with pytest.raises(ValueError, match="unknown shape"):
            sample_shape("klein_bottle", 128, np.random.default_rng(0))

    def test_classification_dataset_balanced(self):
        clouds = make_classification_dataset(30, 128, seed=0)
        labels = [c.class_id for c in clouds]
        assert len(set(labels)) == len(SHAPE_CLASSES)
        assert all(len(c) == 128 for c in clouds)

    def test_deterministic(self):
        a = make_classification_dataset(5, 64, seed=3)
        b = make_classification_dataset(5, 64, seed=3)
        for x, y in zip(a, b):
            assert np.allclose(x.coords, y.coords)

    def test_view_bias_creates_density_asymmetry(self):
        # With view bias, one hemisphere should carry clearly more points.
        rng = np.random.default_rng(5)
        cloud = sample_shape("sphere", 2048, rng, view_biased=True)
        coords = cloud.coords - cloud.coords.mean(axis=0)
        # Find the densest direction via the mean offset.
        direction = coords.mean(axis=0)
        if np.linalg.norm(direction) < 1e-6:
            pytest.skip("no bias direction detectable")
        side = coords @ direction > 0
        assert not 0.40 < side.mean() < 0.60


class TestParts:
    @pytest.mark.parametrize("name", sorted(PART_CLASSES))
    def test_every_category_generates(self, name):
        cloud = sample_part_object(name, 512, np.random.default_rng(0))
        assert len(cloud) == 512
        assert cloud.labels is not None
        _, expected_parts = PART_CLASSES[name]
        assert len(np.unique(cloud.labels)) <= expected_parts
        assert len(np.unique(cloud.labels)) >= 2

    def test_part_dataset(self):
        clouds = make_part_dataset(10, 256, seed=0)
        assert len(clouds) == 10
        assert all(c.labels is not None for c in clouds)

    def test_unknown_category(self):
        with pytest.raises(ValueError, match="unknown category"):
            sample_part_object("spaceship", 128, np.random.default_rng(0))


class TestScenes:
    def test_exact_size_and_labels(self):
        cloud, spec = make_scene(8192, seed=1)
        assert len(cloud) == 8192
        assert cloud.labels.max() < len(SCENE_CLASSES)
        assert spec.num_rooms >= 1

    def test_room_count_scales(self):
        _, small = make_scene(8192, seed=0)
        _, large = make_scene(131_000, seed=0)
        assert large.num_rooms > small.num_rooms

    def test_outlier_fraction_in_paper_band(self):
        """Paper: outliers are 0.5-2.5% of S3DIS points."""
        for seed in range(5):
            _, spec = make_scene(4096, seed=seed)
            assert 0.005 <= spec.outlier_fraction <= 0.025

    def test_explicit_outlier_fraction(self):
        cloud, spec = make_scene(4096, seed=0, outlier_fraction=0.1)
        assert spec.outlier_fraction == 0.1

    def test_rejects_tiny(self):
        with pytest.raises(ValueError, match="num_points"):
            make_scene(10)

    def test_surface_alignment(self):
        """Most points sit on planes: z-coordinates cluster at floor and
        ceiling heights — the shape-alignment property Fractal exploits."""
        cloud, _ = make_scene(16384, seed=2)
        z = cloud.coords[:, 2]
        near_floor = (np.abs(z) < 0.1).mean()
        near_ceiling = (np.abs(z - 3.0) < 0.1).mean()
        assert near_floor + near_ceiling > 0.2

    def test_deterministic(self):
        a, _ = make_scene(2048, seed=9)
        b, _ = make_scene(2048, seed=9)
        assert np.allclose(a.coords, b.coords)


class TestLidar:
    def test_exact_size(self):
        cloud = lidar_scan(8192, seed=0)
        assert len(cloud) == 8192
        assert cloud.labels is not None

    def test_ground_dominates(self):
        cloud = lidar_scan(16384, seed=1)
        assert (cloud.labels == 0).mean() > 0.3  # ground returns

    def test_range_bounded(self):
        config = LidarConfig(max_range=50.0)
        cloud = lidar_scan(4096, seed=2, config=config)
        dist = np.linalg.norm(
            cloud.coords - np.array([0, 0, config.sensor_height]), axis=1
        )
        assert dist.max() <= config.max_range * 1.05

    def test_rejects_tiny(self):
        with pytest.raises(ValueError, match="num_points"):
            lidar_scan(10)


class TestRegistry:
    def test_scale_labels(self):
        assert scale_points("1K") == 1024
        assert scale_points("289K") == 289_000
        assert scale_points(12345) == 12345

    def test_unknown_scale(self):
        with pytest.raises(ValueError, match="unknown scale"):
            scale_points("7Q")

    def test_negative_count(self):
        with pytest.raises(ValueError, match="point count"):
            scale_points(0)

    @pytest.mark.parametrize("name", ["modelnet40", "shapenet", "s3dis", "lidar"])
    def test_all_datasets_load(self, name):
        cloud = load_cloud(name, "1K", seed=0)
        assert len(cloud) == 1024

    def test_unknown_dataset(self):
        with pytest.raises(ValueError, match="unknown dataset"):
            load_cloud("nuscenes", "1K")

    def test_scales_cover_paper_range(self):
        assert set(SCALES) >= {"1K", "2K", "4K", "8K", "33K", "131K", "289K", "1M"}
