"""Multi-banked global buffer model.

Models the two behaviours the paper leans on:

- **Capacity-dependent access energy** — bigger buffers (Crescent's
  1622.8 KB) pay more per byte than the 274 KB design (Fig. 15(b)).
- **Bank conflicts** — before Fractal, multiple compute units hitting
  random addresses collide in the same bank; after Fractal each unit owns
  a bank, so block-parallel access is conflict-free (§IV-A).
"""

from __future__ import annotations

from dataclasses import dataclass

from . import energy as E

__all__ = ["SRAMModel"]


@dataclass(frozen=True)
class SRAMModel:
    """One multi-banked scratchpad.

    Attributes:
        capacity_kb: total capacity (Table II: 274 or 1622.8 / 1624).
        num_banks: independently addressable banks.
        bytes_per_cycle_per_bank: port width (16 B = 8 FP16 words).
    """

    capacity_kb: float = 274.0
    num_banks: int = 16
    bytes_per_cycle_per_bank: int = 16

    @property
    def capacity_bytes(self) -> float:
        return self.capacity_kb * 1024.0

    @property
    def usable_bytes(self) -> float:
        """Capacity available for point-operation working sets.

        A fraction is reserved for weights/double-buffering; 80 % is the
        conventional allocation.
        """
        return 0.8 * self.capacity_bytes

    def access_cycles(self, nbytes: float, *, pattern: str = "stream", units: int = 1) -> float:
        """Cycles to move ``nbytes`` through the buffer.

        Args:
            nbytes: total bytes accessed.
            pattern: ``stream`` (bank-striped, conflict-free), ``blocked``
                (each unit owns a bank — the post-Fractal layout), or
                ``random`` (pre-Fractal global layout; conflicting).
            units: number of compute units issuing accesses in parallel.
        """
        if pattern not in ("stream", "blocked", "random"):
            raise ValueError(f"unknown SRAM pattern {pattern!r}")
        peak = self.num_banks * self.bytes_per_cycle_per_bank
        if pattern == "stream":
            bandwidth = peak
        elif pattern == "blocked":
            # Each unit reads its own bank at full port width.
            bandwidth = min(units, self.num_banks) * self.bytes_per_cycle_per_bank
        else:
            # Random multi-unit access: expected conflict serialisation.
            # With u units hitting b banks uniformly, effective
            # throughput ≈ b * (1 - (1 - 1/b)^u) ports per cycle.
            u = max(units, 1)
            b = self.num_banks
            live_banks = b * (1.0 - (1.0 - 1.0 / b) ** u)
            bandwidth = live_banks * self.bytes_per_cycle_per_bank * 0.5
        return nbytes / bandwidth

    def energy_j(self, nbytes: float) -> float:
        """Access energy in joules (capacity-dependent pJ/byte)."""
        return nbytes * E.sram_pj_per_byte(self.capacity_kb) * 1e-12

    def fits(self, nbytes: float) -> bool:
        """Whether a working set fits in the usable capacity."""
        return nbytes <= self.usable_bytes
