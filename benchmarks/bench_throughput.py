"""Extension bench — streaming throughput (frames/second) per accelerator.

The edge devices the paper targets (§VI-D) process sensor *streams*, not
single frames.  With double buffering, an accelerator's phases overlap
across consecutive frames and throughput is bounded by its busiest
resource.  This bench reports single-frame latency, the pipeline
initiation interval, the bottleneck resource, and achievable FPS for a
33 K-point PointNeXt segmentation stream — against the 10-20 Hz frame
rates automotive LiDAR produces.
"""

from repro.analysis import format_table
from repro.hw import AcceleratorSim, SOTA_CONFIGS
from repro.hw.pipeline import pipeline_throughput
from repro.networks import get_workload

from _common import emit

N_POINTS = 33_000


def run_throughput():
    spec = get_workload("PNXt(s)")
    rows = []
    fps = {}
    for name, cfg in SOTA_CONFIGS.items():
        result = AcceleratorSim(cfg).run(spec, N_POINTS)
        estimate = pipeline_throughput(result)
        fps[name] = estimate.frames_per_second
        rows.append([
            name,
            f"{estimate.latency_s * 1e3:.2f}",
            f"{estimate.initiation_interval_s * 1e3:.2f}",
            estimate.bottleneck_resource,
            f"{estimate.frames_per_second:.1f}",
            "yes" if estimate.frames_per_second >= 20 else "no",
        ])
    table = format_table(
        ["accelerator", "latency ms", "interval ms", "bottleneck",
         "frames/s", "sustains 20Hz LiDAR"],
        rows,
        title=f"Streaming throughput @ {N_POINTS} pts (double-buffered pipeline)",
    )
    return table, fps


def test_throughput(benchmark):
    table, fps = benchmark.pedantic(run_throughput, rounds=1, iterations=1)
    emit("throughput", table)
    # FractalCloud sustains real-time LiDAR rates at 33 K points;
    # the global-search baselines cannot.
    assert fps["FractalCloud"] > 20
    assert fps["FractalCloud"] > 5 * fps["PointAcc"]
