"""Tests for fractal-accelerated dynamic-graph construction (§VI-D)."""

import networkx as nx
import numpy as np
import pytest

from repro.core import (
    FractalConfig,
    block_knn_graph,
    edge_recall,
    exact_knn_graph,
    fractal_partition,
)
from repro.core.graph import graph_construction_work


@pytest.fixture(scope="module")
def cloud():
    rng = np.random.default_rng(11)
    return rng.normal(size=(600, 3))


@pytest.fixture(scope="module")
def structure(cloud):
    return fractal_partition(cloud, FractalConfig(threshold=128)).block_structure()


class TestExactGraph:
    def test_out_degree_is_k(self, cloud):
        graph = exact_knn_graph(cloud, 6)
        degrees = [d for _, d in graph.out_degree()]
        assert all(d == 6 for d in degrees)

    def test_no_self_loops(self, cloud):
        graph = exact_knn_graph(cloud, 4)
        assert nx.number_of_selfloops(graph) == 0

    def test_edges_carry_distances(self, cloud):
        graph = exact_knn_graph(cloud, 3)
        u, v, data = next(iter(graph.edges(data=True)))
        assert data["weight"] == pytest.approx(
            float(np.linalg.norm(cloud[u] - cloud[v]))
        )

    def test_edges_are_nearest(self, cloud):
        graph = exact_knn_graph(cloud, 5)
        # For a few nodes: out-neighbours are exactly the 5 closest others.
        d = np.linalg.norm(cloud[:, None, :] - cloud[None, :, :], axis=2)
        np.fill_diagonal(d, np.inf)
        for u in (0, 100, 599):
            expected = set(np.argsort(d[u])[:5].tolist())
            assert set(graph.successors(u)) == expected


class TestBlockGraph:
    def test_nodes_complete(self, structure, cloud):
        graph, _ = block_knn_graph(structure, cloud, 6)
        assert graph.number_of_nodes() == len(cloud)
        degrees = [d for _, d in graph.out_degree()]
        assert min(degrees) >= 1

    def test_high_edge_recall(self, structure, cloud):
        """Parent-expanded search keeps most true KNN edges."""
        exact = exact_knn_graph(cloud, 6)
        approx, _ = block_knn_graph(structure, cloud, 6)
        assert edge_recall(approx, exact) > 0.8

    def test_work_reduction(self, structure, cloud):
        """The adaptation's point: n*O(th) instead of n^2 distances."""
        _, work = block_knn_graph(structure, cloud, 6)
        assert work < graph_construction_work(len(cloud)) / 3
        assert work == graph_construction_work(len(cloud), structure)

    def test_edges_within_search_spaces(self, structure, cloud):
        graph, _ = block_knn_graph(structure, cloud, 4)
        owner = structure.block_of_point()
        spaces = [set(s.tolist()) for s in structure.search_spaces]
        for u in range(0, len(cloud), 37):
            space = spaces[owner[u]]
            for v in graph.successors(u):
                assert v in space

    def test_graph_usable_by_networkx_algorithms(self, structure, cloud):
        """Downstream DGCNN-style consumers get a normal nx graph."""
        graph, _ = block_knn_graph(structure, cloud, 6)
        und = graph.to_undirected()
        components = nx.number_connected_components(und)
        assert 1 <= components < len(cloud) / 10


class TestEdgeRecall:
    def test_identical_graphs(self, cloud):
        g = exact_knn_graph(cloud[:50], 3)
        assert edge_recall(g, g) == 1.0

    def test_empty_reference(self):
        g = nx.DiGraph()
        g.add_nodes_from(range(3))
        assert edge_recall(g, g) == 1.0
