"""Configuration for the Fractal partitioner and BPPO."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["FractalConfig", "DEFAULT_LARGE_SCALE_THRESHOLD", "DEFAULT_SMALL_SCALE_THRESHOLD"]

# Chosen by the paper's greedy design-space exploration (Fig. 17):
# th = 256 for large-scale (segmentation) inputs, 64 for small-scale
# (classification) inputs.
DEFAULT_LARGE_SCALE_THRESHOLD = 256
DEFAULT_SMALL_SCALE_THRESHOLD = 64


@dataclass(frozen=True)
class FractalConfig:
    """Parameters of Fractal partitioning and block-parallel operations.

    Attributes:
        threshold: maximum points per block (``th`` in Alg. 1).
        split_rule: "cycle" cycles dimensions x→y→z per level (paper
            default, avoids coplanar pathologies §VI-D); "longest" splits
            the longest extent instead (ablation).
        start_dim: first dimension for the cycle rule.
        parent_search: expand a deep leaf's neighbour-search space to its
            immediate parent (paper default True; False is the
            leaf-only ablation).
        min_search_candidates: block-wise KNN/interpolation widens its
            search space up the tree until at least this many candidates
            are available (guards tiny blocks; the widening events are
            counted in traces).
    """

    threshold: int = DEFAULT_LARGE_SCALE_THRESHOLD
    split_rule: str = "cycle"
    start_dim: int = 0
    parent_search: bool = True
    min_search_candidates: int = 3

    def __post_init__(self) -> None:
        if self.threshold < 1:
            raise ValueError(f"threshold must be >= 1, got {self.threshold}")
        if self.split_rule not in ("cycle", "longest"):
            raise ValueError(f"split_rule must be 'cycle' or 'longest', got {self.split_rule!r}")
        if not 0 <= self.start_dim < 3:
            raise ValueError(f"start_dim must be 0..2, got {self.start_dim}")
        if self.min_search_candidates < 1:
            raise ValueError("min_search_candidates must be >= 1")

    @staticmethod
    def for_scale(num_points: int) -> "FractalConfig":
        """Paper defaults: th=64 below 8 K points, th=256 at or above."""
        if num_points < 8192:
            return FractalConfig(threshold=DEFAULT_SMALL_SCALE_THRESHOLD)
        return FractalConfig(threshold=DEFAULT_LARGE_SCALE_THRESHOLD)
