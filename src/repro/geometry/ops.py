"""Exact (global-search) reference point operations.

These are the operations the paper identifies as the large-scale
bottleneck (§II-B): farthest point sampling, ball query, K-nearest
neighbours, interpolation, and gathering.  All run a *global* search over
the candidate set, i.e. they reproduce the O(n²) baseline behaviour of
PointAcc/Mesorasi-style execution.  The block-parallel variants live in
``repro.core.bppo`` and are validated against these references.

Conventions (matching PointNet++ semantics):

- Ball query returns exactly ``num`` indices per centre; when fewer than
  ``num`` points fall within the radius the first found index is repeated
  (the standard padding used by PointNet++ and its descendants).  When a
  centre has *no* neighbour within the radius, the nearest point overall is
  used so downstream gathers never see an invalid index.
- Interpolation is inverse-distance-weighted over the K=3 nearest sampled
  points, with an epsilon guard for coincident points.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "pairwise_sq_dists",
    "batched_pairwise_sq_dists",
    "farthest_point_sample",
    "batched_farthest_point_sample",
    "ball_query",
    "batched_ball_query",
    "knn_search",
    "batched_knn_search",
    "idw_weights",
    "interpolate_features",
    "interpolation_weights",
    "gather_features",
]


#: Below this many distance entries the direct ``(a-b)**2`` form is used:
#: it skips the GEMM and, being purely elementwise, produces bit-identical
#: values no matter how the problem is sliced or stacked — the property
#: both the stacked and the ragged block fast paths build on.  Above it,
#: the expanded GEMM form is faster and memory-lean.  The raw speed
#: crossover sits near ~150 entries, but the boundary is deliberately at
#: 4x ``_STACK_SMALL`` so the entire mid-size block regime (the ragged
#: kernels' territory, see :mod:`repro.core.ragged`) stays on the
#: slice-invariant form: a ~4 µs/call concession on 150–512-entry serial
#: problems buys fusing whole partitions into one elementwise pass.
_DIRECT_FORM_MAX = 512


def pairwise_sq_dists(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Squared Euclidean distances between rows of ``a`` (m,3) and ``b`` (n,3).

    Returns an ``(m, n)`` float64 matrix.  Small problems (``m * n <=``
    :data:`_DIRECT_FORM_MAX`) use the direct difference form; large ones
    use the expanded form with a clamp at zero to avoid negative
    round-off.
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if len(a) * len(b) <= _DIRECT_FORM_MAX:
        return ((a[:, None, :] - b[None, :, :]) ** 2).sum(axis=2)
    d2 = (
        np.sum(a * a, axis=1)[:, None]
        + np.sum(b * b, axis=1)[None, :]
        - 2.0 * (a @ b.T)
    )
    np.maximum(d2, 0.0, out=d2)
    return d2


def farthest_point_sample(
    coords: np.ndarray,
    num_samples: int,
    *,
    start_index: int = 0,
) -> np.ndarray:
    """Exact farthest point sampling (FPS) over the full cloud.

    Iteratively selects the point farthest (in Euclidean distance) from the
    already-sampled set, starting from ``start_index``.  This is the
    O(n * num_samples) formulation with an incrementally maintained
    min-distance array — the same dataflow the PointAcc FPS engine
    implements in hardware.

    Args:
        coords: ``(n, 3)`` candidate coordinates.
        num_samples: number of points to select (1 <= num_samples <= n).
        start_index: deterministic seed point (papers typically random;
            a fixed index keeps experiments reproducible).

    Returns:
        ``(num_samples,)`` int64 indices into ``coords``, in selection order.
    """
    coords = np.asarray(coords, dtype=np.float64)
    n = len(coords)
    if not 1 <= num_samples <= n:
        raise ValueError(
            f"num_samples must be in [1, {n}], got {num_samples}; callers that "
            f"derive per-block quotas should clamp the allocation "
            f"(allocate_samples(..., clamp=True)) so a tiny block is never "
            f"asked for more samples than it holds"
        )
    if not 0 <= start_index < n:
        raise ValueError(f"start_index must be in [0, {n}), got {start_index}")

    selected = np.empty(num_samples, dtype=np.int64)
    selected[0] = start_index
    # min squared distance from each point to the sampled set so far
    min_d2 = np.sum((coords - coords[start_index]) ** 2, axis=1)
    for i in range(1, num_samples):
        nxt = int(np.argmax(min_d2))
        selected[i] = nxt
        d2 = np.sum((coords - coords[nxt]) ** 2, axis=1)
        np.minimum(min_d2, d2, out=min_d2)
    return selected


def batched_farthest_point_sample(
    coords: np.ndarray,
    num_samples: int,
    *,
    num_valid: np.ndarray | None = None,
    start_index: int = 0,
) -> np.ndarray:
    """FPS over a stack of clouds ``(B, n, 3)``, one greedy recurrence for all.

    Runs the same selection rule as :func:`farthest_point_sample` on every
    cloud of the stack simultaneously; row ``b`` of the result is
    bit-identical to ``farthest_point_sample(coords[b, :num_valid[b]],
    num_samples)``.  Clouds shorter than ``n`` are padded (any values);
    their padding rows get a permanent min-distance of zero, so — like a
    duplicate of an already-selected point — they can never win the argmax
    while a real point is strictly farther, and index ties resolve to the
    first (always real) position exactly as in the unpadded recurrence.

    Args:
        coords: ``(B, n, 3)`` stacked clouds (padded to a common length).
        num_samples: samples per cloud, ``1 <= num_samples <= min(num_valid)``.
        num_valid: ``(B,)`` count of real (non-padding) points per cloud;
            ``None`` means all ``n`` rows are real everywhere.
        start_index: deterministic seed point shared by all clouds.

    Returns:
        ``(B, num_samples)`` int64 indices into each cloud, in selection order.
    """
    coords = np.asarray(coords, dtype=np.float64)
    if coords.ndim != 3 or coords.shape[-1] != 3:
        raise ValueError(f"coords must be (B, n, 3), got {coords.shape}")
    num_batches, n, _ = coords.shape
    min_valid = n if num_valid is None else int(np.min(num_valid))
    if not 1 <= num_samples <= min_valid:
        raise ValueError(
            f"num_samples must be in [1, {min_valid}] (the smallest stacked "
            f"cloud), got {num_samples}"
        )
    if not 0 <= start_index < min_valid:
        raise ValueError(f"start_index must be in [0, {min_valid}), got {start_index}")

    rows = np.arange(num_batches)
    selected = np.empty((num_batches, num_samples), dtype=np.int64)
    selected[:, 0] = start_index
    min_d2 = np.sum((coords - coords[:, start_index][:, None, :]) ** 2, axis=2)
    if num_valid is not None:
        pad = np.arange(n)[None, :] >= np.asarray(num_valid, dtype=np.int64)[:, None]
        min_d2[pad] = 0.0
    for i in range(1, num_samples):
        nxt = np.argmax(min_d2, axis=1)
        selected[:, i] = nxt
        d2 = np.sum((coords - coords[rows, nxt][:, None, :]) ** 2, axis=2)
        np.minimum(min_d2, d2, out=min_d2)
    return selected


def ball_query(
    centers: np.ndarray,
    candidates: np.ndarray,
    radius: float,
    num: int,
) -> np.ndarray:
    """Ball query: up to ``num`` candidate indices within ``radius`` of each centre.

    Follows PointNet++ semantics: indices are taken in candidate order, the
    first in-radius index pads any remaining slots, and a centre with no
    in-radius candidate falls back to its single nearest candidate.

    Args:
        centers: ``(m, 3)`` query centres.
        candidates: ``(n, 3)`` search space.
        radius: inclusion radius (Euclidean).
        num: group size (number of neighbour slots per centre).

    Returns:
        ``(m, num)`` int64 indices into ``candidates``.
    """
    if radius <= 0:
        raise ValueError(f"radius must be positive, got {radius}")
    if num < 1:
        raise ValueError(f"num must be >= 1, got {num}")
    centers = np.asarray(centers, dtype=np.float64)
    candidates = np.asarray(candidates, dtype=np.float64)
    d2 = pairwise_sq_dists(centers, candidates)
    return _select_ball_neighbors(d2, float(radius) ** 2, num)


def _select_ball_neighbors(d2: np.ndarray, r2: float, num: int) -> np.ndarray:
    """PointNet++ neighbour selection from a squared-distance matrix.

    Rows (centres) are independent; the trailing axis indexes candidates.
    Accepts ``(m, n)`` or stacked ``(B, m, n)`` input — the single shared
    decision procedure is what makes the batched block fast path
    bit-identical to the reference: in-radius candidates are taken in
    candidate order, the first hit pads short rows, and a hitless centre
    falls back to its nearest candidate (``inf`` entries mark padding
    columns and can never be hits nor nearest).
    """
    n = d2.shape[-1]
    hit_idx = np.where(d2 <= r2, np.arange(n, dtype=np.int64), n)
    hit_idx = np.sort(hit_idx, axis=-1)[..., :num]
    if hit_idx.shape[-1] < num:
        pad_shape = hit_idx.shape[:-1] + (num - hit_idx.shape[-1],)
        hit_idx = np.concatenate(
            [hit_idx, np.full(pad_shape, n, dtype=np.int64)], axis=-1
        )
    first = hit_idx[..., 0]
    no_hit = first == n
    if np.any(no_hit):
        first = np.where(no_hit, np.argmin(d2, axis=-1), first)
    return np.where(hit_idx == n, first[..., None], hit_idx)


def batched_pairwise_sq_dists(
    centers: np.ndarray,
    candidates: np.ndarray,
    *,
    num_centers: np.ndarray | None = None,
    num_valid: np.ndarray | None = None,
) -> np.ndarray:
    """Stacked squared distances ``(B, m, n)`` with ``inf``-marked padding.

    Every slice is bitwise-equal to ``pairwise_sq_dists`` on its valid
    sub-arrays.  When every slice is small enough for the direct
    difference form (``m_b * n_b <=`` :data:`_DIRECT_FORM_MAX`) the whole
    stack is computed in one elementwise broadcast — elementwise ops give
    identical bits regardless of how the problem is sliced, which is the
    parity guarantee.  Otherwise each slice falls back to a
    ``pairwise_sq_dists`` call on exactly the reference shapes (a single
    batched GEMM could reorder accumulation; parity beats elegance).

    Args:
        centers: ``(B, m, 3)`` stacked query centres (padded).
        candidates: ``(B, n, 3)`` stacked search spaces (padded).
        num_centers: ``(B,)`` real centre counts (``None`` = all real).
        num_valid: ``(B,)`` real candidate counts (``None`` = all real).

    Returns:
        ``(B, m, n)`` float64; padding rows/columns hold ``inf``.
    """
    centers = np.asarray(centers, dtype=np.float64)
    candidates = np.asarray(candidates, dtype=np.float64)
    num_batches, m, _ = centers.shape
    n = candidates.shape[1]
    m_valid = np.full(num_batches, m) if num_centers is None else np.asarray(num_centers)
    n_valid = np.full(num_batches, n) if num_valid is None else np.asarray(num_valid)
    if np.all(m_valid * n_valid <= _DIRECT_FORM_MAX):
        d2 = ((centers[:, :, None, :] - candidates[:, None, :, :]) ** 2).sum(axis=3)
        if num_centers is not None:
            d2[np.arange(m)[None, :] >= m_valid[:, None], :] = np.inf
        if num_valid is not None:
            pad_cols = np.arange(n)[None, :] >= n_valid[:, None]
            d2[np.broadcast_to(pad_cols[:, None, :], d2.shape)] = np.inf
        return d2
    d2 = np.full((num_batches, m, n), np.inf)
    for b in range(num_batches):
        mv, nv = int(m_valid[b]), int(n_valid[b])
        if mv and nv:
            d2[b, :mv, :nv] = pairwise_sq_dists(centers[b, :mv], candidates[b, :nv])
    return d2


def batched_ball_query(
    centers: np.ndarray,
    candidates: np.ndarray,
    radius: float,
    num: int,
    *,
    num_centers: np.ndarray | None = None,
    num_valid: np.ndarray | None = None,
) -> np.ndarray:
    """Ball query over stacked problems ``(B, m, 3) × (B, n, 3)``.

    Slice ``b`` (restricted to its real rows) is bit-identical to
    ``ball_query(centers[b, :num_centers[b]], candidates[b, :num_valid[b]],
    radius, num)``; padding centre rows produce garbage the caller slices
    off.

    Returns:
        ``(B, m, num)`` int64 indices into each slice's candidate axis.
    """
    if radius <= 0:
        raise ValueError(f"radius must be positive, got {radius}")
    if num < 1:
        raise ValueError(f"num must be >= 1, got {num}")
    d2 = batched_pairwise_sq_dists(
        centers, candidates, num_centers=num_centers, num_valid=num_valid
    )
    return _select_ball_neighbors(d2, float(radius) ** 2, num)


def knn_search(centers: np.ndarray, candidates: np.ndarray, k: int) -> np.ndarray:
    """Exact K-nearest-neighbour indices for each centre.

    Neighbours are ordered nearest-first; equal distances break by
    candidate index (a stable argsort on the distance row), so the full
    result — including which of several equidistant boundary candidates
    makes the cut — is deterministic and independent of how the candidate
    row is partitioned.  That invariance is what lets the batched
    block-parallel fast path pad candidate rows and still reproduce this
    reference bit-for-bit.

    Args:
        centers: ``(m, 3)`` query centres.
        candidates: ``(n, 3)`` search space with ``n >= k``.
        k: neighbour count.

    Returns:
        ``(m, k)`` int64 indices into ``candidates``.
    """
    centers = np.asarray(centers, dtype=np.float64)
    candidates = np.asarray(candidates, dtype=np.float64)
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if len(candidates) < k:
        raise ValueError(f"need at least k={k} candidates, got {len(candidates)}")
    d2 = pairwise_sq_dists(centers, candidates)
    return _knn_from_dists(d2, k)


def _knn_from_dists(d2: np.ndarray, k: int) -> np.ndarray:
    """Top-``k`` columns of each row of ``d2`` by (distance, index).

    The (distance, index) lexicographic order defines the result
    uniquely, so any algorithm below returns identical bits.  Small rows
    take one stable argsort; large rows use an O(mn + m·c log c)
    partition: select the k-th smallest distance, close the candidate
    set over boundary ties (every column at distance <= the k-th value
    competes — this is what a bare ``argpartition`` gets wrong), then
    stable-order just that closure.
    """
    m, n = d2.shape
    if n <= 256 or 2 * k >= n:
        return np.argsort(d2, axis=1, kind="stable")[:, :k].astype(np.int64)
    rows = np.arange(m)[:, None]
    part = np.argpartition(d2, k - 1, axis=1)[:, :k]
    kth = d2[rows, part].max(axis=1, keepdims=True)
    closure_size = int((d2 <= kth).sum(axis=1).max())
    if closure_size == k:
        # No boundary ties anywhere: the winner *set* is unique and
        # ``part`` already holds it — just put it in (distance, index)
        # order.  The common case for continuous coordinates.
        vals = d2[rows, part]
        order = np.lexsort((part, vals), axis=1)
        return np.take_along_axis(part, order, axis=1).astype(np.int64)
    if 2 * closure_size >= n:  # massive boundary tie: sorting wins
        return np.argsort(d2, axis=1, kind="stable")[:, :k].astype(np.int64)
    masked = np.where(d2 <= kth, d2, np.inf)
    closure = np.argpartition(masked, closure_size - 1, axis=1)[:, :closure_size]
    vals = masked[rows, closure]
    order = np.lexsort((closure, vals), axis=1)[:, :k]
    return np.take_along_axis(closure, order, axis=1).astype(np.int64)


def batched_knn_search(
    centers: np.ndarray,
    candidates: np.ndarray,
    k: int,
    *,
    num_centers: np.ndarray | None = None,
    num_valid: np.ndarray | None = None,
) -> np.ndarray:
    """KNN over stacked problems ``(B, m, 3) × (B, n, 3)``.

    Padding candidates carry ``inf`` distance, so the stable
    distance-then-index ordering of :func:`knn_search` places them after
    every real candidate and slice ``b`` is bit-identical to
    ``knn_search(centers[b, :num_centers[b]], candidates[b, :num_valid[b]],
    k)``.  Every slice must keep at least ``k`` real candidates.

    Returns:
        ``(B, m, k)`` int64 indices into each slice's candidate axis.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    min_valid = (
        np.asarray(candidates).shape[1]
        if num_valid is None
        else int(np.min(num_valid))
    )
    if min_valid < k:
        raise ValueError(f"need at least k={k} candidates, got {min_valid}")
    d2 = batched_pairwise_sq_dists(
        centers, candidates, num_centers=num_centers, num_valid=num_valid
    )
    flat = _knn_from_dists(d2.reshape(-1, d2.shape[2]), k)
    return flat.reshape(d2.shape[0], d2.shape[1], k)


def idw_weights(
    centers: np.ndarray,
    neighbors_xyz: np.ndarray,
    *,
    eps: float = 1e-8,
) -> np.ndarray:
    """Normalised inverse-squared-distance weights of known neighbours.

    The single shared weight computation of every interpolation path —
    the exact backend, the serial and batched block ops, and the ragged
    kernels all call this, so identical neighbour indices always yield
    bit-identical weights.  Inputs are coerced to float64 (one dtype
    contract for every caller; mixed-precision inputs used to make the
    exact and block backends disagree in the last ulp).

    Args:
        centers: ``(m, 3)`` query points.
        neighbors_xyz: ``(m, k, 3)`` coordinates of each centre's
            neighbours.
        eps: guard against coincident points.

    Returns:
        ``(m, k)`` float64 weights; rows sum to one.
    """
    centers = np.asarray(centers, dtype=np.float64)
    neighbors_xyz = np.asarray(neighbors_xyz, dtype=np.float64)
    d2 = np.sum((centers[:, None, :] - neighbors_xyz) ** 2, axis=2)
    inv = 1.0 / np.maximum(d2, eps)
    return inv / inv.sum(axis=1, keepdims=True)


def interpolation_weights(
    centers: np.ndarray,
    candidates: np.ndarray,
    k: int = 3,
    *,
    eps: float = 1e-8,
) -> tuple[np.ndarray, np.ndarray]:
    """Inverse-distance weights over the K nearest candidates of each centre.

    This is the weight computation used by PointNet++ feature propagation
    (paper Fig. 2(c)): ``w_j = (1/d_j) / sum_i (1/d_i)`` over the K nearest
    sampled points.

    Returns:
        ``(indices, weights)`` with shapes ``(m, k)``; weights rows sum to 1.
    """
    idx = knn_search(centers, candidates, k)
    candidates = np.asarray(candidates, dtype=np.float64)
    return idx, idw_weights(centers, candidates[idx], eps=eps)


def interpolate_features(
    centers: np.ndarray,
    candidates: np.ndarray,
    candidate_features: np.ndarray,
    k: int = 3,
) -> np.ndarray:
    """Interpolate candidate features onto centres (3-NN inverse distance).

    Args:
        centers: ``(m, 3)`` points to restore features for.
        candidates: ``(n, 3)`` sampled points that carry features.
        candidate_features: ``(n, c)`` features of the candidates.
        k: neighbour count (3 in all evaluated networks).

    Returns:
        ``(m, c)`` interpolated features (float64).
    """
    candidate_features = np.asarray(candidate_features, dtype=np.float64)
    if candidate_features.ndim != 2 or len(candidate_features) != len(candidates):
        raise ValueError(
            f"candidate_features must be (n, c) with n={len(candidates)}, "
            f"got {candidate_features.shape}"
        )
    idx, weights = interpolation_weights(centers, candidates, k)
    return np.einsum("mk,mkc->mc", weights, candidate_features[idx])


def gather_features(features: np.ndarray, indices: np.ndarray) -> np.ndarray:
    """Gather feature rows by neighbour indices.

    Functionally this is just fancy indexing — the paper's contribution is
    about *where the bytes live* (block-local banks vs global random
    access), which the hardware model accounts for separately.

    Args:
        features: ``(n, c)`` feature table.
        indices: ``(m, k)`` (or any integer-shaped) indices into the table.

    Returns:
        Array of shape ``indices.shape + (c,)``.
    """
    features = np.asarray(features)
    indices = np.asarray(indices)
    if not np.issubdtype(indices.dtype, np.integer):
        raise ValueError(f"indices must be integers, got dtype {indices.dtype}")
    if indices.size and (indices.min() < 0 or indices.max() >= len(features)):
        raise IndexError(
            f"indices out of range [0, {len(features)}): "
            f"[{indices.min()}, {indices.max()}]"
        )
    return features[indices]
