"""Tests for the sharded serving front-end (:mod:`repro.shard`).

The obligations, layer by layer:

- the hash ring is a pure function of the member set (insertion-order
  independent), balanced within coarse bounds, and minimally disruptive
  on membership change;
- the shm transport round-trips arrays bit-exactly, falls back inline
  when the arena fills, reclaims every block, and unlinks segments on
  close (no leaked shared memory);
- the router delivers every submission exactly once, in submission
  order, bit-identical to the single-process windowed server over the
  same stream — across both transports, and across drains and joins;
- stream-affine routing keeps delta streams shard-local, so incremental
  patching still happens behind the router.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.datasets import load_cloud
from repro.runtime import BatchExecutor
from repro.serve import LoadSpec, WindowConfig, WindowedServer, generate
from repro.shard import (
    ArrayRef,
    HashRing,
    PickleChannel,
    ShardRouter,
    ShmArena,
    ShmPeer,
)

ENGINE = dict(partitioner="kdtree", block_size=32, kernel="auto")


def clouds_for(count, *, base=160, step=16, seed=0):
    return [
        load_cloud("modelnet40", base + step * i, seed=seed + i).coords
        for i in range(count)
    ]


class TestHashRing:
    def test_route_is_deterministic_and_member_only(self):
        ring = HashRing(["a", "b", "c"])
        keys = [f"key-{i}".encode() for i in range(256)]
        first = [ring.route(k) for k in keys]
        assert [ring.route(k) for k in keys] == first
        assert set(first) <= {"a", "b", "c"}

    @settings(deadline=None, max_examples=30)
    @given(
        names=st.sets(
            st.text(
                alphabet=st.characters(whitelist_categories=("Ll", "Nd")),
                min_size=1,
                max_size=8,
            ),
            min_size=1,
            max_size=6,
        ),
        seed=st.integers(0, 2**16),
    )
    def test_ring_is_insertion_order_independent(self, names, seed):
        ordered = sorted(names)
        rng = np.random.default_rng(seed)
        shuffled = list(ordered)
        rng.shuffle(shuffled)
        a, b = HashRing(ordered), HashRing(shuffled)
        keys = [bytes(rng.integers(0, 256, size=12, dtype=np.uint8))
                for _ in range(64)]
        assert [a.route(k) for k in keys] == [b.route(k) for k in keys]

    def test_balance_bounds(self):
        shards = [f"s{i}" for i in range(4)]
        ring = HashRing(shards)
        keys = [f"cloud-{i}".encode() for i in range(4096)]
        owners = [ring.route(k) for k in keys]
        for shard in shards:
            share = owners.count(shard) / len(keys)
            # Coarse but meaningful: every shard holds between a third
            # and three times its fair share.
            assert 1 / (3 * len(shards)) <= share <= 3 / len(shards), (
                shard, share,
            )

    def test_membership_change_remaps_minimally(self):
        ring = HashRing(["a", "b", "c", "d"])
        keys = [f"k{i}".encode() for i in range(2048)]
        before = {k: ring.route(k) for k in keys}
        ring.remove("d")
        after = {k: ring.route(k) for k in keys}
        # Keys not owned by the leaver never move; the leaver's keys
        # redistribute over the survivors.
        for k in keys:
            if before[k] != "d":
                assert after[k] == before[k]
            else:
                assert after[k] in ("a", "b", "c")
        moved = sum(before[k] != after[k] for k in keys)
        assert 0 < moved < len(keys) / 2

    def test_remove_then_re_add_rebuilds_identical_ring(self):
        ring = HashRing(["a", "b", "c", "d"])
        keys = [f"k{i}".encode() for i in range(2048)]
        before = {k: ring.route(k) for k in keys}
        points, owners = ring._points.copy(), list(ring._owners)

        ring.remove("c")
        # While "c" is out, keys it never owned keep routing unchanged —
        # a departed shard disturbs nobody else's warm caches.
        for k in keys:
            if before[k] != "c":
                assert ring.route(k) == before[k]

        ring.add("c")
        # The ring is a pure function of the member set: re-adding the
        # same shard id rebuilds it bit-identically, so every key
        # (including "c"'s) routes exactly as before the departure.
        assert np.array_equal(ring._points, points)
        assert ring._owners == owners
        assert {k: ring.route(k) for k in keys} == before

    def test_empty_ring_and_bad_members(self):
        ring = HashRing()
        with pytest.raises(RuntimeError):
            ring.route(b"x")
        with pytest.raises(KeyError):
            ring.remove("ghost")
        with pytest.raises(ValueError):
            ring.add("")
        ring.add("a")
        ring.add("a")  # idempotent
        assert len(ring) == 1 and "a" in ring


class TestTransport:
    def test_shm_roundtrip_bit_exact(self):
        arena = ShmArena(1 << 20)
        peer = ShmPeer()
        try:
            arrays = [
                np.random.default_rng(i).normal(size=(100 + i, 3))
                for i in range(4)
            ]
            refs = arena.pack_many(arrays)
            assert all(not r.inline for r in refs)
            views = peer.unpack_many(refs)
            for a, v in zip(arrays, views):
                assert np.array_equal(a, v)
            copies = peer.unpack_many(refs, copy=True)
            del views
            arena.reclaim(refs)
            assert arena.allocated == 0
            for a, c in zip(arrays, copies):
                assert np.array_equal(a, c)  # survives reclamation
        finally:
            peer.close()
            arena.close()

    def test_arena_overflow_degrades_to_inline(self):
        arena = ShmArena(4096)
        try:
            small = arena.pack(np.ones((8, 3)))
            big = arena.pack(np.zeros((4096, 3)))  # cannot fit
            assert not small.inline and big.inline
            assert arena.spilled == 1
            assert np.array_equal(
                PickleChannel().unpack(big), np.zeros((4096, 3))
            )
        finally:
            arena.close()

    def test_free_list_coalesces(self):
        arena = ShmArena(1 << 16)
        try:
            refs = [arena.pack(np.ones(1024)) for _ in range(8)]  # 8 KiB each
            assert arena.allocated == 8 * 8192
            arena.reclaim(refs[2:5])  # carve a middle hole
            # A single array spanning the coalesced hole must fit in shm.
            wide = arena.pack(np.ones(3 * 1024))
            assert not wide.inline
            arena.reclaim([wide] + refs[:2] + refs[5:])
            assert arena.allocated == 0
        finally:
            arena.close()

    def test_close_unlinks_segment(self):
        arena = ShmArena(1 << 16)
        ref = arena.pack(np.arange(16.0))
        peer = ShmPeer()
        got = peer.unpack(ref, copy=True)
        peer.close()
        arena.close()
        assert np.array_equal(got, np.arange(16.0))
        with pytest.raises(FileNotFoundError):
            ShmPeer().unpack(ref)

    def test_pickle_channel_matches_interface(self):
        chan = PickleChannel()
        arr = np.random.default_rng(0).normal(size=(64, 3))
        ref = chan.pack(arr)
        assert ref.inline and isinstance(ref, ArrayRef)
        assert np.array_equal(chan.unpack(ref), arr)
        chan.reclaim([ref, None])
        chan.close()


class TestShardRouter:
    def test_parity_with_single_process_server_both_transports(self):
        clouds = clouds_for(8)
        stream = clouds + clouds[1:4]  # repeats exercise dedup replay
        engine = BatchExecutor(mode="serial", max_workers=1, **ENGINE)
        with WindowedServer(engine, WindowConfig(max_clouds=4,
                                                 max_wait=0.01)) as server:
            reference = list(server.serve(iter(stream)))
        for transport in ("shm", "pickle"):
            with ShardRouter(2, engine=ENGINE, transport=transport) as router:
                served = list(router.serve(stream))
            assert [s.seq for s in served] == list(range(len(stream)))
            assert len(served) == len(reference)
            for ref, got in zip(reference, served):
                assert got.result.num_points == ref.num_points
                assert np.array_equal(ref.sampled, got.result.sampled)
                assert np.array_equal(ref.neighbors, got.result.neighbors)
                assert np.array_equal(ref.grouped, got.result.grouped)
                assert np.array_equal(
                    ref.interpolated, got.result.interpolated
                )
            # The repeats replay from the shard dedup windows.
            assert sum(s.result.reused for s in served) == 3

    def test_content_affinity_pins_repeats_to_one_shard(self):
        clouds = clouds_for(6)
        stream = clouds * 3
        with ShardRouter(3, engine=ENGINE, affinity="content") as router:
            served = list(router.serve(stream))
            owners = {}
            for s, cloud in zip(served, stream):
                owners.setdefault(id(cloud), set()).add(s.shard)
            assert all(len(v) == 1 for v in owners.values())
            stats = router.shard_stats
        assert sum(v["served"] for v in stats.values()) == len(stream)

    def test_drain_on_leave_delivers_in_flight_exactly_once(self):
        clouds = clouds_for(10)
        with ShardRouter(3, engine=ENGINE, max_in_flight=64) as router:
            for cloud in clouds:
                router.submit(cloud)
            victim = router.shards[0]
            router.remove_shard(victim)
            served = list(router.flush())
            # Exactly once, in submission order, none lost in the drain.
            assert [s.seq for s in served] == list(range(len(clouds)))
            assert victim not in router.shards
            # The survivors absorb the victim's key range.
            after = list(router.serve(clouds[:5]))
            assert len(after) == 5
            assert all(s.shard != victim for s in after)

    def test_add_shard_takes_traffic(self):
        clouds = clouds_for(12, seed=40)
        with ShardRouter(1, engine=ENGINE) as router:
            first = list(router.serve(clouds[:4]))
            assert {s.shard for s in first} == {"shard-0"}
            router.add_shard("shard-1")
            second = list(router.serve(clouds))
            assert [s.seq for s in second] == list(range(4, 16))
            shards_used = {s.shard for s in second}
            assert shards_used == {"shard-0", "shard-1"}

    def test_stream_affinity_keeps_delta_patching_shard_local(self):
        def frames(seed):
            return list(generate(LoadSpec(
                clouds=5, min_points=512, max_points=512, dup_rate=0.0,
                profile="frames", frame_motion=0.0, frame_churn=0.05,
                seed=seed,
            )))

        streams = {f"cam{i}": frames(seed) for i, seed in enumerate((1, 2))}
        engine = dict(partitioner="fractal", block_size=64, delta=True)
        with ShardRouter(2, engine=engine, transport="shm") as router:
            assert router.affinity == "stream"
            served = []
            for round_i in range(5):  # paced: one frame per stream per round
                for name, seq in streams.items():
                    router.submit(seq[round_i], stream=name)
                served.extend(router.flush())
            by_stream = {}
            for s in served:
                by_stream.setdefault(s.stream, set()).add(s.shard)
            assert all(len(v) == 1 for v in by_stream.values())
            sources = [s.result.partition_source for s in served]
            assert sources.count("patched") > 0
            # Per-stream frame order is preserved.
            for name in streams:
                seqs = [s.seq for s in served if s.stream == name]
                assert seqs == sorted(seqs)

    def test_shm_segments_fully_reclaimed(self):
        # That close() also unlinks every router-owned /dev/shm segment is
        # asserted after every test by the repro.analysis.sanitize plugin.
        clouds = clouds_for(6, seed=80)
        with ShardRouter(2, engine=ENGINE, transport="shm") as router:
            list(router.serve(clouds * 2))
            for name, shard in router._shards.items():
                # Every request block returned to the pool once its
                # worker reported it consumed.
                assert shard.channel.allocated == 0, name

    def test_traces_stay_off_the_wire_unless_requested(self):
        clouds = clouds_for(3, seed=120)
        with ShardRouter(1, engine=ENGINE) as router:
            served = list(router.serve(clouds))
        assert all(s.result.traces == {} for s in served)
        with ShardRouter(1, engine=ENGINE, ship_traces=True) as router:
            served = list(router.serve(clouds))
        assert all("fps" in s.result.traces for s in served)

    def test_router_rejects_bad_config(self):
        with pytest.raises(ValueError):
            ShardRouter(0, engine=ENGINE)
        with pytest.raises(ValueError):
            ShardRouter(2, engine=ENGINE, transport="carrier-pigeon")
        with pytest.raises(ValueError):
            ShardRouter(2, engine=ENGINE, affinity="random")
