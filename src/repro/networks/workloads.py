"""Table I workload registry: the seven evaluated network/task pairs.

Each :class:`WorkloadSpec` captures the structural parameters that drive
both cost modelling and functional runs: per-stage sampling ratios, group
sizes, radii, and MLP widths (taken from the released PointNet++ /
PointNeXt-S / PointVector-L configurations).  ``concrete(n)`` instantiates
the spec at an input scale, yielding per-stage point counts the runtime
compiler (:mod:`repro.runtime.compiler`) lowers into hardware operations.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core import dispatch

__all__ = [
    "SAConfig",
    "FPConfig",
    "WorkloadSpec",
    "ConcreteStage",
    "WORKLOADS",
    "get_workload",
]


@dataclass(frozen=True)
class SAConfig:
    """One set-abstraction stage.

    Attributes:
        ratio: downsampling ratio (``n_out = n_in // ratio``).
        k: neighbours per group (ball-query group size).
        radius: grouping radius in normalised units.
        mlp: shared-MLP widths applied to each grouped point.
    """

    ratio: int
    k: int
    radius: float
    mlp: tuple[int, ...]


@dataclass(frozen=True)
class FPConfig:
    """One feature-propagation stage (3-NN interpolation + MLP)."""

    mlp: tuple[int, ...]
    k: int = 3


@dataclass(frozen=True)
class WorkloadSpec:
    """A Table I row: network x task x dataset.

    Attributes:
        key: the paper's notation (e.g. ``PNXt(s)``).
        model: backbone family (pointnet2 | pointnext | pointvector).
        task: cls | partseg | seg.
        dataset: benchmark the paper pairs it with.
        in_channels: input feature width entering stage 1 (stem output
            or raw features).
        sa_stages / fp_stages: the stage pipeline.
        global_mlp: classification-only whole-cloud MLP widths.
        head: final MLP widths (ending in num_classes).
        num_classes: output classes.
    """

    key: str
    model: str
    task: str
    dataset: str
    in_channels: int
    sa_stages: tuple[SAConfig, ...]
    fp_stages: tuple[FPConfig, ...] = ()
    global_mlp: tuple[int, ...] = ()
    head: tuple[int, ...] = ()
    num_classes: int = 13

    def min_points(self) -> int:
        """Smallest input that keeps every stage non-empty."""
        prod = 1
        for sa in self.sa_stages:
            prod *= sa.ratio
        return prod

    def agg_plan(self, n: int) -> list[str]:
        """Cost-model aggregation order per SA stage at input size ``n``.

        One entry (``"eager"`` | ``"delayed"``) per set-abstraction
        stage, from :func:`repro.core.dispatch.choose_agg` — the same
        decision ``agg="auto"`` makes when the workload actually runs.
        """
        return [
            dispatch.choose_agg(
                stage.n_in, stage.n_out, stage.k,
                (3 + stage.in_channels, *stage.mlp),
            )
            for stage in self.concrete(n)
            if stage.kind == "sa"
        ]


@dataclass
class ConcreteStage:
    """One stage instantiated at a specific input scale."""

    kind: str  # "sa" | "fp" | "global" | "head"
    n_in: int
    n_out: int
    k: int = 0
    radius: float = 0.0
    mlp: tuple[int, ...] = ()
    in_channels: int = 0


def _chain(spec: WorkloadSpec, n: int) -> list[ConcreteStage]:
    """Instantiate the stage pipeline at input size ``n``."""
    stages: list[ConcreteStage] = []
    counts = [n]
    ch = spec.in_channels
    for sa in spec.sa_stages:
        n_in = counts[-1]
        n_out = max(n_in // sa.ratio, 1)
        stages.append(
            ConcreteStage(
                kind="sa", n_in=n_in, n_out=n_out, k=sa.k,
                radius=sa.radius, mlp=sa.mlp, in_channels=ch,
            )
        )
        counts.append(n_out)
        ch = sa.mlp[-1]
    if spec.task == "cls":
        stages.append(
            ConcreteStage(
                kind="global", n_in=counts[-1], n_out=1,
                mlp=spec.global_mlp, in_channels=ch,
            )
        )
        ch = spec.global_mlp[-1]
        stages.append(
            ConcreteStage(kind="head", n_in=1, n_out=1, mlp=spec.head, in_channels=ch)
        )
    else:
        # FP stages walk back up the SA pyramid.
        skip_channels = [spec.in_channels] + [sa.mlp[-1] for sa in spec.sa_stages[:-1]]
        for depth, fp in enumerate(spec.fp_stages):
            level = len(spec.sa_stages) - 1 - depth  # dense level index
            stages.append(
                ConcreteStage(
                    kind="fp", n_in=counts[level + 1], n_out=counts[level],
                    k=fp.k, mlp=fp.mlp,
                    in_channels=ch + skip_channels[level],
                )
            )
            ch = fp.mlp[-1]
        stages.append(
            ConcreteStage(kind="head", n_in=counts[0], n_out=counts[0],
                          mlp=spec.head, in_channels=ch)
        )
    return stages


WorkloadSpec.concrete = _chain  # type: ignore[attr-defined]


WORKLOADS: dict[str, WorkloadSpec] = {
    "PN++(c)": WorkloadSpec(
        key="PN++(c)", model="pointnet2", task="cls", dataset="modelnet40",
        in_channels=0,
        sa_stages=(
            SAConfig(2, 32, 0.2, (64, 64, 128)),
            SAConfig(4, 64, 0.4, (128, 128, 256)),
        ),
        global_mlp=(256, 512, 1024),
        head=(512, 256, 40),
        num_classes=40,
    ),
    "PNXt(c)": WorkloadSpec(
        key="PNXt(c)", model="pointnext", task="cls", dataset="modelnet40",
        in_channels=32,
        sa_stages=(
            SAConfig(2, 32, 0.15, (64, 64)),
            SAConfig(2, 32, 0.3, (128, 128)),
            SAConfig(2, 32, 0.6, (256, 256)),
        ),
        global_mlp=(512, 1024),
        head=(512, 256, 40),
        num_classes=40,
    ),
    "PN++(ps)": WorkloadSpec(
        key="PN++(ps)", model="pointnet2", task="partseg", dataset="shapenet",
        in_channels=0,
        sa_stages=(
            SAConfig(4, 32, 0.2, (64, 64, 128)),
            SAConfig(4, 64, 0.4, (128, 128, 256)),
        ),
        fp_stages=(
            FPConfig((256, 128)),
            FPConfig((128, 128, 128)),
        ),
        head=(128, 50),
        num_classes=50,
    ),
    "PNXt(ps)": WorkloadSpec(
        key="PNXt(ps)", model="pointnext", task="partseg", dataset="shapenet",
        in_channels=32,
        sa_stages=(
            SAConfig(4, 32, 0.15, (64, 64)),
            SAConfig(4, 32, 0.3, (128, 128)),
        ),
        fp_stages=(
            FPConfig((128, 128)),
            FPConfig((64, 64)),
        ),
        head=(64, 50),
        num_classes=50,
    ),
    "PN++(s)": WorkloadSpec(
        key="PN++(s)", model="pointnet2", task="seg", dataset="s3dis",
        in_channels=0,
        sa_stages=(
            SAConfig(4, 32, 0.1, (32, 32, 64)),
            SAConfig(4, 32, 0.2, (64, 64, 128)),
            SAConfig(4, 32, 0.4, (128, 128, 256)),
            SAConfig(4, 32, 0.8, (256, 256, 512)),
        ),
        fp_stages=(
            FPConfig((256, 256)),
            FPConfig((256, 256)),
            FPConfig((256, 128)),
            FPConfig((128, 128, 128)),
        ),
        head=(128, 13),
        num_classes=13,
    ),
    "PNXt(s)": WorkloadSpec(
        key="PNXt(s)", model="pointnext", task="seg", dataset="s3dis",
        in_channels=32,
        sa_stages=(
            SAConfig(4, 32, 0.1, (64, 64)),
            SAConfig(4, 32, 0.2, (128, 128)),
            SAConfig(4, 32, 0.4, (256, 256)),
            SAConfig(4, 32, 0.8, (512, 512)),
        ),
        fp_stages=(
            FPConfig((256, 256)),
            FPConfig((128, 128)),
            FPConfig((64, 64)),
            FPConfig((64, 64)),
        ),
        head=(64, 13),
        num_classes=13,
    ),
    "PVr(s)": WorkloadSpec(
        key="PVr(s)", model="pointvector", task="seg", dataset="s3dis",
        in_channels=64,
        sa_stages=(
            SAConfig(4, 32, 0.1, (96, 96)),
            SAConfig(4, 32, 0.2, (192, 192)),
            SAConfig(4, 32, 0.4, (384, 384)),
            SAConfig(4, 32, 0.8, (512, 512)),
        ),
        fp_stages=(
            FPConfig((384, 384)),
            FPConfig((256, 256)),
            FPConfig((128, 128)),
            FPConfig((128, 128)),
        ),
        head=(128, 13),
        num_classes=13,
    ),
}


def get_workload(key: str) -> WorkloadSpec:
    """Lookup by the paper's notation (e.g. ``"PNXt(s)"``)."""
    if key not in WORKLOADS:
        raise ValueError(f"unknown workload {key!r}; expected one of {list(WORKLOADS)}")
    return WORKLOADS[key]
