"""Tests for the Morton partitioner, voxel downsampling, and augmentations."""

import numpy as np
import pytest

from repro.geometry import PointCloud
from repro.geometry.voxel import voxel_downsample, voxel_downsample_indices
from repro.networks.augment import AugmentConfig, augment_cloud
from repro.partition.morton import MortonPartitioner, morton_codes


class TestMortonCodes:
    def test_locality(self, rng):
        """Close points get close codes more often than far points."""
        pts = rng.uniform(size=(500, 3))
        codes = morton_codes(pts)
        order = np.argsort(codes)
        consecutive = np.linalg.norm(
            pts[order][1:] - pts[order][:-1], axis=1
        ).mean()
        a, b = rng.integers(0, 500, 300), rng.integers(0, 500, 300)
        random_pairs = np.linalg.norm(pts[a] - pts[b], axis=1).mean()
        assert consecutive < 0.4 * random_pairs

    def test_deterministic(self, rng):
        pts = rng.normal(size=(100, 3))
        assert np.array_equal(morton_codes(pts), morton_codes(pts))

    def test_degenerate_axis(self):
        pts = np.column_stack([np.arange(10.0), np.zeros(10), np.zeros(10)])
        codes = morton_codes(pts)
        assert len(np.unique(codes)) == 10


class TestMortonPartitioner:
    def test_valid_partition(self, scene_coords):
        structure = MortonPartitioner(block_size=128)(scene_coords)
        structure.validate()
        assert structure.block_sizes.max() <= 128

    def test_perfectly_balanced(self, gaussian_cloud):
        structure = MortonPartitioner(block_size=100)(gaussian_cloud)
        sizes = structure.block_sizes
        assert sizes.max() - sizes.min() <= 1

    def test_one_global_sort(self, gaussian_cloud):
        structure = MortonPartitioner(block_size=100)(gaussian_cloud)
        assert structure.cost.sorts == [len(gaussian_cloud)]

    def test_neighbor_expansion(self, gaussian_cloud):
        expanded = MortonPartitioner(block_size=100)(gaussian_cloud)
        bare = MortonPartitioner(block_size=100, neighbor_expansion=False)(gaussian_cloud)
        assert expanded.search_sizes.mean() > bare.search_sizes.mean()

    def test_blocks_spatially_coherent(self, scene_coords):
        structure = MortonPartitioner(block_size=128)(scene_coords)
        extents = []
        for block in structure.blocks[:20]:
            pts = scene_coords[block.indices]
            extents.append(np.prod(pts.max(axis=0) - pts.min(axis=0) + 1e-9))
        total = np.prod(scene_coords.max(axis=0) - scene_coords.min(axis=0))
        assert np.median(extents) < total / 10

    def test_validates_params(self):
        with pytest.raises(ValueError, match="block_size"):
            MortonPartitioner(block_size=0)


class TestVoxelDownsample:
    def test_output_is_subset(self, rng):
        coords = rng.uniform(size=(1000, 3))
        idx = voxel_downsample_indices(coords, 0.2)
        assert len(idx) < 1000
        assert len(np.unique(idx)) == len(idx)

    def test_one_point_per_voxel(self, rng):
        coords = rng.uniform(size=(2000, 3))
        size = 0.25
        idx = voxel_downsample_indices(coords, size)
        keys = np.floor((coords[idx] - coords.min(axis=0)) / size).astype(np.int64)
        assert len(np.unique(keys, axis=0)) == len(idx)

    def test_smaller_voxels_keep_more(self, rng):
        coords = rng.uniform(size=(1500, 3))
        fine = voxel_downsample_indices(coords, 0.05)
        coarse = voxel_downsample_indices(coords, 0.3)
        assert len(fine) > len(coarse)

    def test_cloud_wrapper_keeps_labels(self, rng):
        cloud = PointCloud(
            rng.uniform(size=(500, 3)).astype(np.float32),
            labels=rng.integers(0, 5, size=500),
        )
        out = voxel_downsample(cloud, 0.2)
        assert out.labels is not None
        assert len(out.labels) == len(out)

    def test_validates_voxel_size(self, rng):
        with pytest.raises(ValueError, match="voxel_size"):
            voxel_downsample_indices(rng.uniform(size=(10, 3)), 0.0)


class TestAugment:
    def _cloud(self, rng):
        return PointCloud(
            rng.normal(size=(200, 3)).astype(np.float32),
            labels=rng.integers(0, 4, size=200),
            class_id=2,
        )

    def test_preserves_class_and_label_alignment(self, rng):
        cloud = self._cloud(rng)
        out = augment_cloud(cloud, rng)
        assert out.class_id == 2
        assert len(out.labels) == len(out)

    def test_rotation_preserves_z_and_radii(self, rng):
        cloud = self._cloud(rng)
        config = AugmentConfig(scale_low=1.0, scale_high=1.0,
                               jitter_sigma=0.0, dropout_max=0.0)
        out = augment_cloud(cloud, rng, config)
        assert np.allclose(out.coords[:, 2], cloud.coords[:, 2], atol=1e-5)
        assert np.allclose(
            np.linalg.norm(out.coords[:, :2], axis=1),
            np.linalg.norm(cloud.coords[:, :2], axis=1),
            atol=1e-4,
        )

    def test_dropout_bounded(self, rng):
        cloud = self._cloud(rng)
        config = AugmentConfig(dropout_max=0.5)
        for _ in range(5):
            out = augment_cloud(cloud, rng, config)
            assert len(out) >= 100  # at most 50% dropped

    def test_jitter_clipped(self, rng):
        cloud = self._cloud(rng)
        config = AugmentConfig(rotate_z=False, scale_low=1.0, scale_high=1.0,
                               jitter_sigma=0.05, jitter_clip=0.02, dropout_max=0.0)
        out = augment_cloud(cloud, rng, config)
        assert np.abs(out.coords - cloud.coords).max() <= 0.02 + 1e-6

    def test_training_with_augmentation_still_learns(self, rng):
        """Augmented training keeps the pipeline healthy end to end."""
        from repro.datasets import make_classification_dataset
        from repro.networks import ExactBackend, PNNClassifier, train_classifier

        base = make_classification_dataset(16, 96, seed=0)
        aug_rng = np.random.default_rng(0)
        clouds = [augment_cloud(c, aug_rng) for c in base]
        # Dropout changes sizes; classifier handles variable n.
        model = PNNClassifier(num_classes=10, num_points=96, seed=0)
        result = train_classifier(model, clouds, ExactBackend(),
                                  epochs=3, batch_size=8)
        assert result.losses[-1] < result.losses[0]
