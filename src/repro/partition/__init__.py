"""Partitioning strategies compared in the paper (Fig. 3 / Fig. 16).

``fractal`` is the paper's method (adapter over :mod:`repro.core`);
``uniform`` (PNNPU), ``kdtree`` (Crescent), ``octree`` (HGPCN-style), and
``none`` (PointAcc/Mesorasi) are the baselines, all built from scratch.
"""

from .base import PARTITIONER_NAMES, Partitioner, get_partitioner
from .fractal_adapter import FractalPartitioner
from .kdtree import KDTreePartitioner
from .morton import MortonPartitioner, morton_codes
from .none import NoPartitioner
from .octree import OctreePartitioner
from .stats import (
    PartitionSummary,
    fractal_traversal_count,
    kdtree_sort_count,
    summarize,
)
from .uniform import UniformPartitioner

__all__ = [
    "PARTITIONER_NAMES",
    "FractalPartitioner",
    "KDTreePartitioner",
    "MortonPartitioner",
    "NoPartitioner",
    "OctreePartitioner",
    "PartitionSummary",
    "Partitioner",
    "UniformPartitioner",
    "fractal_traversal_count",
    "get_partitioner",
    "kdtree_sort_count",
    "morton_codes",
    "summarize",
]
